//! Quickstart: size one popular movie and check the answer by simulation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the paper's core loop end to end:
//! 1. pick QoS targets (maximum batching wait `w`, minimum hit
//!    probability `P*`) for one movie;
//! 2. use the analytic model to find the cheapest `(B, n)` meeting them;
//! 3. validate the predicted hit probability with the discrete-event
//!    simulator.

use std::sync::Arc;

use vod_prealloc::dist::kinds::Gamma;
use vod_prealloc::model::{ModelOptions, Rates, VcrMix};
use vod_prealloc::sim::{run_replications, SimConfig};
use vod_prealloc::sizing::{max_feasible_streams, MovieSpec};
use vod_prealloc::workload::BehaviorModel;

fn main() {
    // A 120-minute movie; viewers' VCR sweeps follow the paper's skewed
    // gamma (mean 8 minutes); FF/RW run at 3x playback.
    let movie = MovieSpec::new(
        "blockbuster",
        120.0,
        0.5, // max batching wait: 30 seconds
        0.6, // at least 60% of VCR resumes must release their stream
        VcrMix::paper_fig7d(),
        Arc::new(Gamma::paper_fig7()),
        Rates::paper(),
    )
    .expect("valid spec");

    let opts = ModelOptions::default();
    println!(
        "movie: l = {} min, w <= {} min, P* = {}",
        movie.length, movie.max_wait, movie.target_hit
    );
    println!(
        "pure batching would need {} I/O streams (zero hit probability)",
        movie.pure_batching_streams()
    );

    // Cheapest feasible point: the largest n (smallest buffer) with
    // P(hit) >= P*.
    let n = max_feasible_streams(&movie, &opts)
        .expect("model evaluation")
        .expect("target is satisfiable");
    let buffer = movie.buffer_for_streams(n);
    let p_model = movie.hit_probability(n, &opts).expect("model evaluation");
    println!("\nchosen configuration:");
    println!(
        "  n = {n} I/O streams ({} fewer than pure batching)",
        movie.pure_batching_streams() - n
    );
    println!("  B = {buffer:.1} movie minutes of buffer");
    println!("  modelled P(hit) = {p_model:.3}");

    // Cross-check with the simulator.
    let params = movie.params_for_streams(n).expect("feasible n");
    let behavior = BehaviorModel::uniform_dist(
        (0.2, 0.2, 0.6),
        30.0, // a VCR interaction every ~30 playback minutes
        Arc::new(Gamma::paper_fig7()),
    );
    let agg = run_replications(&SimConfig::new(params, behavior), 7, 4);
    println!(
        "  simulated P(hit) = {:.3} ± {:.3} (4 replications)",
        agg.overall.mean(),
        agg.overall.ci_half_width(1.96)
    );
    println!(
        "\nEvery released stream serves future VCR requests or unpopular\n\
         movies — that is the cost-effectiveness argument of the paper."
    );
}
