//! A miniature of the paper's Figure 7: hit probability versus the number
//! of partitions, analytic model against discrete-event simulation, for a
//! chosen VCR mix and maximum wait.
//!
//! ```sh
//! cargo run --release --example model_vs_sim -- [ff|rw|pau|mix]
//! ```

use std::sync::Arc;

use vod_prealloc::dist::kinds::Gamma;
use vod_prealloc::model::{p_hit_single_dist, ModelOptions, Rates, SystemParams, VcrMix};
use vod_prealloc::sim::{run_replications, SimConfig};
use vod_prealloc::workload::BehaviorModel;

fn main() {
    let panel = std::env::args().nth(1).unwrap_or_else(|| "mix".into());
    let (mix_tuple, mix) = match panel.as_str() {
        "ff" => ((1.0, 0.0, 0.0), VcrMix::ff_only()),
        "rw" => ((0.0, 1.0, 0.0), VcrMix::rw_only()),
        "pau" => ((0.0, 0.0, 1.0), VcrMix::pause_only()),
        "mix" => ((0.2, 0.2, 0.6), VcrMix::paper_fig7d()),
        other => {
            eprintln!("unknown panel `{other}` (expected ff|rw|pau|mix)");
            std::process::exit(2);
        }
    };

    let l = 120.0;
    let w = 1.0; // one-minute maximum wait
    let dist = Gamma::paper_fig7();
    let opts = ModelOptions::default();

    println!("# panel = {panel}, l = {l}, w = {w}, durations ~ Gamma(2,4)");
    println!(
        "{:>4} {:>8} {:>10} {:>10} {:>8}",
        "n", "B", "model", "sim", "ci95"
    );
    for n in [10u32, 20, 40, 60, 80, 100] {
        let Ok(params) = SystemParams::from_wait(l, w, n, Rates::paper()) else {
            continue;
        };
        let model = p_hit_single_dist(&params, &dist, &mix, &opts).total;
        let behavior = BehaviorModel::uniform_dist(mix_tuple, 30.0, Arc::new(dist));
        let mut cfg = SimConfig::new(params, behavior);
        cfg.horizon = 30.0 * l;
        let agg = run_replications(&cfg, 42, 3);
        println!(
            "{n:>4} {:>8.1} {model:>10.4} {:>10.4} {:>8.4}",
            params.buffer(),
            agg.overall.mean(),
            agg.overall.ci_half_width(1.96)
        );
    }
}
