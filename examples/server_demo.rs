//! Drive the byte-exact VOD server: size a catalog with the model, host
//! it, subject it to interactive viewers, and report the data-path and
//! resource outcomes.
//!
//! ```sh
//! cargo run --release --example server_demo
//! ```

use rand::RngCore;
use vod_prealloc::dist::rng::seeded;
use vod_prealloc::model::{ModelOptions, VcrMix};
use vod_prealloc::server::{config_from_plan, vcr_reserve_estimate, MovieId, VodServer};
use vod_prealloc::sizing::{allocate_min_buffer, example1_movies, Budgets};
use vod_prealloc::workload::VcrKind;

fn main() {
    // 1. Size the catalog with the analytic model (Example 1's movies).
    let movies = example1_movies(VcrMix::paper_fig7d());
    let plan = allocate_min_buffer(
        &movies,
        Budgets {
            streams: 200,
            buffer: None,
        },
        &ModelOptions::default(),
    )
    .expect("plan exists");
    let lengths: Vec<u32> = movies.iter().map(|m| m.length as u32).collect();
    let reserve = vcr_reserve_estimate(&plan, 0.5, 3.0, 20.0);
    println!(
        "sized plan: {} streams + {:.1} buffer minutes, VCR reserve {reserve}",
        plan.total_streams(),
        plan.total_buffer()
    );

    // 2. Host it.
    let config = config_from_plan(&plan, &lengths, reserve);
    println!(
        "server provisioned: {} disk streams, {} buffer segments, {} movies\n",
        config.disk_streams,
        config.buffer_budget,
        config.movies.len()
    );
    let mut server = VodServer::new(config);

    // 3. Interactive load: open sessions and fire random VCR operations.
    let mut rng = seeded(2026);
    let mut sessions = Vec::new();
    for minute in 0..1200u64 {
        if minute % 2 == 0 {
            let movie = MovieId((rng.next_u64() % 3) as u32);
            if let Ok(s) = server.open_session(movie) {
                sessions.push(s);
            }
        }
        if !sessions.is_empty() && rng.next_u64().is_multiple_of(10) {
            let s = sessions[(rng.next_u64() as usize) % sessions.len()];
            let kind = match rng.next_u64() % 5 {
                0 => VcrKind::FastForward,
                1 => VcrKind::Rewind,
                _ => VcrKind::Pause,
            };
            let magnitude = 1 + (rng.next_u64() % 16) as u32;
            let _ = server.request_vcr(s, kind, magnitude); // denials are data
        }
        server.tick();
    }

    // 4. Report — the runtime snapshot uses the same metric vocabulary
    // the simulator reports, so the two are directly comparable.
    let rt = server.runtime_metrics();
    let m = server.metrics();
    println!("after {} simulated minutes:", server.now());
    println!("  sessions completed        : {}", m.sessions_done);
    println!("  minutes from buffer       : {}", rt.buffer_minutes);
    println!("  minutes from disk         : {}", rt.disk_minutes);
    println!(
        "  buffer service fraction   : {:.1}%",
        100.0 * rt.buffer_service_fraction()
    );
    println!("  byte verification failures: {}", m.verify_failures);
    println!(
        "  VCR resume hit ratio      : {:.3} ({} of {})",
        rt.resumes.value(),
        rt.resumes.hits(),
        rt.resumes.trials()
    );
    println!("  piggyback merges          : {}", m.piggyback_merges);
    println!("  VCR denials               : {}", rt.vcr_denied);
    println!("  resume starvations        : {}", rt.resume_starved);
    println!("  restart failures          : {}", rt.restart_failures);
    println!(
        "  avg dedicated streams     : {:.2} (peak {:.0})",
        rt.dedicated_avg, rt.dedicated_peak
    );
    assert_eq!(m.verify_failures, 0, "data path must be byte-exact");
    assert_eq!(
        rt.restart_failures, 0,
        "provisioning must cover the schedule"
    );
}
