//! System sizing across a catalog — the paper's §5 worked end to end
//! (Examples 1 and 2, Figures 8 and 9).
//!
//! ```sh
//! cargo run --release --example system_sizing
//! ```

use vod_prealloc::model::{ModelOptions, VcrMix};
use vod_prealloc::sizing::{
    allocate_min_buffer, cost_curve_with_catalog, example1_movies, Budgets, Catalog, HardwareSpec,
    ResourceCost,
};

fn main() {
    let opts = ModelOptions::default();
    let movies = example1_movies(VcrMix::paper_fig7d());

    // ---- Example 1: minimum-buffer allocation -------------------------
    let pure: u32 = movies.iter().map(|m| m.pure_batching_streams()).sum();
    println!("Example 1 — three popular movies, P* = 0.5 each");
    println!("pure batching: {pure} I/O streams, hit probability 0\n");

    let plan = allocate_min_buffer(
        &movies,
        Budgets {
            streams: pure,
            buffer: None,
        },
        &opts,
    )
    .expect("plan exists");
    println!(
        "{:<10} {:>8} {:>10} {:>8}",
        "movie", "streams", "buffer", "P(hit)"
    );
    for a in &plan.allocations {
        println!(
            "{:<10} {:>8} {:>10.1} {:>8.3}",
            a.movie, a.n_streams, a.buffer, a.p_hit
        );
    }
    println!(
        "{:<10} {:>8} {:>10.1}",
        "TOTAL",
        plan.total_streams(),
        plan.total_buffer()
    );
    println!(
        "saved {} I/O streams for {:.1} minutes of buffer\n",
        pure - plan.total_streams(),
        plan.total_buffer()
    );

    // ---- Example 2: hardware-derived prices ----------------------------
    let hw = HardwareSpec::paper_example2();
    let prices = hw.resource_cost().expect("valid prices");
    println!("Example 2 — 1997 hardware prices");
    println!(
        "C_b = ${:.0}/movie-minute, C_n = ${:.0}/stream, phi = {:.1}",
        prices.buffer_per_minute(),
        prices.per_stream(),
        prices.phi()
    );
    println!("plan cost at these prices: ${:.0}\n", plan.cost(&prices));

    // ---- Figure 9-style optimum per price regime -----------------------
    println!("cost-curve optima as memory gets cheaper (Figure 9):");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "phi", "opt streams", "opt buffer", "cost"
    );
    let catalog = Catalog::new(&movies, &opts).expect("catalog");
    for phi in [3.0, 6.0, 11.0, 16.0] {
        let curve = cost_curve_with_catalog(
            &catalog,
            ResourceCost::from_phi(phi).expect("valid phi"),
            3,
            700,
            25,
        );
        let best = curve.optimum().expect("non-empty curve");
        println!(
            "{phi:>6.1} {:>12} {:>12.1} {:>12.1}",
            best.total_streams, best.total_buffer, best.cost
        );
    }
}
