//! Close the paper's measurement loop: simulate viewers, record their VCR
//! durations as a trace, fit an [`Empirical`] distribution to the trace,
//! and feed it back into the analytic model — the workflow §2.1 sketches
//! ("the pdf of VCR requests can be obtained by statistics while the
//! movie is displayed").
//!
//! ```sh
//! cargo run --release --example trace_fitting
//! ```

use std::sync::Arc;

use vod_prealloc::dist::fit::{fit_all, ks_statistic};
use vod_prealloc::dist::kinds::{Empirical, Gamma};
use vod_prealloc::dist::DurationDist;
use vod_prealloc::model::{p_hit_single_dist, ModelOptions, Rates, SystemParams, VcrMix};
use vod_prealloc::sim::{run_seeded, SimConfig};
use vod_prealloc::workload::{write_csv, BehaviorModel};

fn main() {
    let params = SystemParams::new(120.0, 60.0, 20, Rates::paper()).expect("valid params");
    let true_dist = Gamma::paper_fig7();

    // 1. Observe the system: collect a VCR trace from the simulator.
    let behavior = BehaviorModel::uniform_dist((0.2, 0.2, 0.6), 30.0, Arc::new(true_dist));
    let mut cfg = SimConfig::new(params, behavior);
    cfg.collect_trace = true;
    cfg.horizon = 200.0 * 120.0;
    let report = run_seeded(&cfg, 99);
    println!("collected {} VCR operations", report.trace.len());

    // 2. Persist and reload the trace as CSV (a real deployment would
    //    accumulate this server-side).
    let mut csv = Vec::new();
    write_csv(&mut csv, &report.trace).expect("in-memory write");
    println!("trace CSV: {} bytes", csv.len());

    // 3. Fit an empirical duration law from the observed magnitudes.
    let magnitudes: Vec<f64> = report.trace.iter().map(|r| r.magnitude).collect();
    let fitted = Empirical::from_samples(&magnitudes).expect("non-empty trace");
    println!(
        "fitted empirical law: {} breakpoints, mean {:.2} (true mean {:.2})",
        fitted.breakpoints(),
        fitted.mean(),
        true_dist.mean()
    );

    // 4. Alternatively, fit the parametric families and rank them by the
    //    Kolmogorov–Smirnov statistic: the skewed gamma should win (the
    //    trace really was drawn from one).
    let ranked = fit_all(&magnitudes).expect("enough samples");
    println!("\nparametric fits ranked by KS statistic:");
    for c in &ranked {
        println!(
            "  {:<12} KS = {:.4}  (mean {:.2})",
            c.family,
            c.ks,
            c.dist.mean()
        );
    }
    println!(
        "  empirical    KS = {:.4}",
        ks_statistic(&fitted, &magnitudes)
    );

    // 5. Feed it back into the model and compare against the ground truth.
    let opts = ModelOptions::default();
    let mix = VcrMix::paper_fig7d();
    let with_true = p_hit_single_dist(&params, &true_dist, &mix, &opts).total;
    let with_fit = p_hit_single_dist(&params, &fitted, &mix, &opts).total;
    println!("\nP(hit) with the true gamma law : {with_true:.4}");
    println!("P(hit) with the fitted law     : {with_fit:.4}");
    println!(
        "simulated hit ratio            : {:.4}",
        report.runtime.resumes.value()
    );
    assert!(
        (with_true - with_fit).abs() < 0.02,
        "a trace of this size should recover the model input closely"
    );
}
