//! Offline stand-in for the subset of the `rand` crate used by this
//! workspace: the [`RngCore`] / [`SeedableRng`] traits and a deterministic
//! [`rngs::StdRng`].
//!
//! The build environment cannot reach crates.io, so the workspace path-deps
//! this crate instead. The API matches `rand 0.9` for everything the
//! workspace calls; the generator behind `StdRng` is xoshiro256++ seeded via
//! SplitMix64 (not upstream's ChaCha12), so *streams differ from upstream*
//! but every determinism guarantee the workspace relies on — same seed, same
//! stream — holds.

#![warn(missing_docs)]

/// A random number generator: the object-safe core trait.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit seed by expanding it with SplitMix64 —
    /// the same convention `rand_core` documents.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Fast, 256-bit state, passes BigCrush; not cryptographic
    /// (neither caller in this workspace needs that).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is an absorbing fixed point of xoshiro;
            // nudge it (cannot occur via seed_from_u64, only from_seed).
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn bits_look_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += r.next_u64().count_ones();
        }
        // 64000 bits, expect ~32000 ones; 6 sigma ≈ 760.
        assert!((31000..=33000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn zero_seed_not_stuck() {
        let mut r = StdRng::from_seed([0; 32]);
        assert_ne!(r.next_u64(), 0);
    }
}
