//! Value-generation strategies: numeric ranges, tuples, `Just`, mapping,
//! and unions. Each strategy is a pure function of the [`TestRng`] stream,
//! which is what makes cases reproducible from `(test name, case index)`.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A source of arbitrary values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed same-valued strategies (see
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<V> {
    #[allow(clippy::type_complexity)]
    arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
}

impl<V: Debug> Union<V> {
    /// An empty union; populate with [`Union::or`].
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self { arms: Vec::new() }
    }

    /// Add an equally-weighted arm.
    pub fn or<S>(mut self, strat: S) -> Self
    where
        S: Strategy<Value = V> + 'static,
    {
        self.arms.push(Box::new(move |rng| strat.generate(rng)));
        self
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
        (self.arms[idx])(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + rng.u01() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {self:?}");
        // u01 is [0, 1); stretch the top ulp so `hi` is reachable.
        let u = (rng.next_u64() % (1u64 << 53)) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range {self:?}");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {self:?}");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                $(let $v = $s.generate(rng);)+
                ($($v,)+)
            }
        }
    };
}

impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g, H / h);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("strategy::ranges", 0);
        for _ in 0..1000 {
            let x = (2.5f64..7.5).generate(&mut rng);
            assert!((2.5..7.5).contains(&x));
            let n = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&n));
            let m = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&m));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let strat = ((1u32..5), (0.0f64..1.0)).prop_map(|(n, x)| n as f64 + x);
        let mut rng = TestRng::for_case("strategy::map", 0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1.0..5.0).contains(&v));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let strat = Union::new().or(Just(1u32)).or(Just(2u32)).or(Just(3u32));
        let mut rng = TestRng::for_case("strategy::union", 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(strat.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
