//! Offline stand-in for the subset of `proptest` used by this workspace.
//!
//! The build environment cannot reach crates.io, so the workspace path-deps
//! this crate. It implements the pieces the test suites actually use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * [`Strategy`] for numeric ranges, tuples (arity 2–8), [`Just`] and
//!   mapped/unioned strategies,
//! * [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`],
//! * [`collection::vec`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the exact generated inputs
//!   (which are deterministic per test name and case index) instead of a
//!   minimized one.
//! * **`.proptest-regressions` files are kept but not replayed.** Their
//!   `cc <hash>` entries encode upstream's internal RNG state, which this
//!   stand-in cannot interpret. Known regressions must therefore also be
//!   encoded as explicit deterministic `#[test]`s (this workspace does so);
//!   the seed files stay checked in for environments with the real crate.
//! * Generation is deterministic: case `i` of test `t` derives its RNG from
//!   `hash(t) ⊕ i`, so failures reproduce without any persistence.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s of `len` elements drawn from `element`.
    ///
    /// Upstream accepts a size range; the workspace only uses fixed sizes,
    /// which is what this stand-in supports.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test module needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Mirrors upstream's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0.0f64..1.0, n in 1u32..10) { prop_assert!(x < n as f64); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr); $( $(#[$meta:meta])+ fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let strategies = ( $( $strat, )+ );
                for case in 0..cfg.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let ( $( $arg, )+ ) = {
                        let ( $( ref $arg, )+ ) = strategies;
                        ( $( $crate::strategy::Strategy::generate($arg, &mut rng), )+ )
                    };
                    // Describe inputs before the body may move them.
                    let described = {
                        let mut s = String::new();
                        $(
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&format!("{:?}", $arg));
                            s.push_str("; ");
                        )+
                        s
                    };
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            Ok(())
                        },
                    ));
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => panic!(
                            "proptest case {case}/{} failed: {e}\n  inputs: {described}",
                            cfg.cases,
                        ),
                        Err(payload) => {
                            eprintln!(
                                "proptest case {case}/{} panicked\n  inputs: {described}",
                                cfg.cases,
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

/// Uniformly choose between several strategies producing the same value
/// type. Upstream's weighted form (`w => strat`) is not supported.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new() $( .or($strat) )+
    };
}

/// Assert inside a `proptest!` body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}
