//! Test-runner support types: per-case deterministic RNG, run
//! configuration, and the error carried by `prop_assert!`.

/// Deterministic per-case RNG (xoshiro256++ seeded from the test name and
/// case index via FNV-1a + SplitMix64). Strategies draw from this stream
/// only, so a failing case is pinned by `(test, case)` alone.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for case `case` of the named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut state = h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut s = [0u64; 4];
        for word in &mut s {
            // SplitMix64 expansion; never yields the all-zero state.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *word = z ^ (z >> 31);
        }
        Self { s }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` on `[0, 1)` with 53 bits of precision.
    pub fn u01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run configuration. Only `cases` is consulted by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Self { cases }
    }
}

/// Failure raised by `prop_assert!` and friends.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed-assertion error with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_deterministic_per_case_and_distinct_across_cases() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(TestRng::for_case("t", 3).next_u64(), c.next_u64());
    }
}
