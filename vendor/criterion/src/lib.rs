//! Offline stand-in for the subset of `criterion` used by this workspace's
//! benches: [`Criterion`], benchmark groups, [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! The build environment cannot reach crates.io, so the workspace path-deps
//! this crate. Measurement is intentionally simple: after a warm-up, each
//! benchmark runs batches until a fixed wall-clock budget is spent and
//! reports mean / best ns-per-iteration on stdout. There is no statistical
//! analysis, HTML report, or baseline persistence — `cargo bench` output is
//! meant for quick relative comparisons; the repo's recorded numbers live in
//! `results/`.
//!
//! When `cargo test` compiles benches (`harness = false` keeps it to a
//! build), nothing here runs.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    /// Wall-clock budget per benchmark.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Self {
            measure_for: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.measure_for, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks (prefixes the id).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is time-budgeted, so
    /// the requested sample count does not change measurement.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.criterion.measure_for,
            f,
        );
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark, optionally carrying a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (for groups benching one function).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Units processed per iteration (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    budget: Duration,
    /// Mean ns/iter over the measured batches (set by `iter`).
    mean_ns: f64,
    /// Best batch's ns/iter.
    best_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measure `routine`, keeping its output live via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: grow the batch until it costs
        // ≳ 1 ms so timer overhead stays below ~0.1%.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = t.elapsed();
            if took >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let start = Instant::now();
        let mut total_iters = 0u64;
        let mut total_ns = 0f64;
        let mut best = f64::INFINITY;
        while start.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64;
            total_iters += batch;
            total_ns += ns;
            best = best.min(ns / batch as f64);
        }
        self.mean_ns = total_ns / total_iters as f64;
        self.best_ns = best;
        self.iters = total_iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, budget: Duration, mut f: F) {
    let mut b = Bencher {
        budget,
        mean_ns: f64::NAN,
        best_ns: f64::NAN,
        iters: 0,
    };
    f(&mut b);
    println!(
        "bench {id:<48} {:>14} ns/iter (best {:>12} ns, {} iters)",
        format_ns(b.mean_ns),
        format_ns(b.best_ns),
        b.iters
    );
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "-".into()
    } else if ns >= 100.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.2}")
    }
}

/// Bundle benchmark functions into a group runner, mirroring criterion's
/// simple form: `criterion_group!(benches, bench_a, bench_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more groups:
/// `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(5),
        };
        c.bench_function("noop_add", |b| b.iter(|| 1u64 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10).throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("sq", 3u32), &3u32, |b, &x| {
            b.iter(|| x * x)
        });
        g.finish();
    }
}
