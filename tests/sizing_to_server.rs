//! Cross-crate integration: model → sizing → server. A plan produced by
//! the §5 optimizer must, once hosted on the byte-exact server, deliver
//! (a) a correct data path, (b) zero restart failures, and (c) a VCR
//! resume hit ratio in the neighborhood the model promised.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use rand::RngCore;
use vod_prealloc::dist::rng::seeded;
use vod_prealloc::model::{ModelOptions, VcrMix};
use vod_prealloc::server::{config_from_plan, vcr_reserve_estimate, MovieId, VodServer};
use vod_prealloc::sizing::{allocate_min_buffer, example1_movies, Budgets};
use vod_prealloc::workload::VcrKind;

#[test]
fn planned_catalog_serves_cleanly() {
    // Use a modest stream budget so partitions stay large and the test
    // stays fast; P* = 0.5 must still hold per movie.
    let movies = example1_movies(VcrMix::paper_fig7d());
    let opts = ModelOptions::default();
    let plan = allocate_min_buffer(
        &movies,
        Budgets {
            streams: 60,
            buffer: None,
        },
        &opts,
    )
    .expect("satisfiable");
    for a in &plan.allocations {
        assert!(a.p_hit >= 0.5 - 1e-9, "{} misses its target", a.movie);
    }

    let lengths: Vec<u32> = movies.iter().map(|m| m.length as u32).collect();
    let reserve = vcr_reserve_estimate(&plan, 0.5, 3.0, 30.0);
    assert!(reserve >= 1);
    let config = config_from_plan(&plan, &lengths, reserve);
    let mut server = VodServer::new(config);

    let mut rng = seeded(123);
    let mut sessions = Vec::new();
    for minute in 0..1500u64 {
        if minute % 3 == 0 {
            let movie = MovieId((rng.next_u64() % 3) as u32);
            sessions.push(server.open_session(movie).expect("hosted movie"));
        }
        if !sessions.is_empty() && rng.next_u64().is_multiple_of(4) {
            // Target recent sessions — older ones have likely finished.
            let recent = &sessions[sessions.len().saturating_sub(20)..];
            let s = recent[(rng.next_u64() as usize) % recent.len()];
            let kind = match rng.next_u64() % 5 {
                0 => VcrKind::FastForward,
                1 => VcrKind::Rewind,
                _ => VcrKind::Pause,
            };
            let _ = server.request_vcr(s, kind, 1 + (rng.next_u64() % 12) as u32);
        }
        server.tick();
    }

    let m = server.metrics();
    assert_eq!(m.verify_failures, 0, "data path must be byte-exact");
    assert_eq!(
        m.runtime.restart_failures, 0,
        "provisioning must cover the schedule"
    );
    assert!(
        m.sessions_done > 100,
        "load actually ran: {}",
        m.sessions_done
    );
    assert!(
        m.runtime.resumes.trials() > 50,
        "VCR ops actually resumed: {}",
        m.runtime.resumes.trials()
    );
    // The server quantizes to integer minutes and its piggyback merges
    // change the position distribution, so require only the neighborhood:
    // clearly better than pure batching (0) and consistent with P* ≈ 0.5.
    let hit = m.runtime.resumes.value();
    assert!(
        hit > 0.35,
        "resume hit ratio {hit} too far below the planned P* = 0.5"
    );
}

#[test]
fn under_provisioned_catalog_reports_denials_not_corruption() {
    let movies = example1_movies(VcrMix::paper_fig7d());
    let opts = ModelOptions::default();
    let plan = allocate_min_buffer(
        &movies,
        Budgets {
            streams: 30,
            buffer: None,
        },
        &opts,
    )
    .expect("satisfiable");
    let lengths: Vec<u32> = movies.iter().map(|m| m.length as u32).collect();
    // Deliberately zero VCR reserve: interactivity should degrade
    // (denials), never corrupt.
    let mut config = config_from_plan(&plan, &lengths, 0);
    config.disk_streams = config
        .movies
        .iter()
        .map(|m| {
            // Just enough for the playback schedule, nothing spare.
            (m.geometry.length + m.geometry.partition_capacity) / m.geometry.restart_interval + 1
        })
        .sum();
    let mut server = VodServer::new(config);

    let mut rng = seeded(7);
    let mut sessions = Vec::new();
    let mut denials = 0u64;
    for minute in 0..800u64 {
        if minute % 4 == 0 {
            sessions.push(
                server
                    .open_session(MovieId((rng.next_u64() % 3) as u32))
                    .expect("hosted"),
            );
        }
        if !sessions.is_empty() && rng.next_u64().is_multiple_of(6) {
            let s = sessions[(rng.next_u64() as usize) % sessions.len()];
            if server.request_vcr(s, VcrKind::FastForward, 5).is_err() {
                denials += 1;
            }
        }
        server.tick();
    }
    assert!(denials > 0, "saturated reserve must deny some VCR requests");
    assert_eq!(server.metrics().verify_failures, 0);
}
