//! The full §5 loop validated in one piece: size the Example-1 catalog
//! with the analytic model, then simulate all three movies *together*
//! sharing one VCR reserve, and check that
//!
//! 1. each movie's simulated hit ratio lands at (or above) its planned
//!    `P(hit)` — the pre-allocation keeps its promise under load;
//! 2. a reserve sized by the Erlang-B extension keeps denials below the
//!    design target.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use std::sync::Arc;

use vod_prealloc::model::{ModelOptions, VcrMix};
use vod_prealloc::sim::{run_catalog_seeded, CatalogConfig, MovieLoad};
use vod_prealloc::sizing::{allocate_min_buffer, erlang_b, example1_movies, Budgets};
use vod_prealloc::workload::BehaviorModel;

#[test]
fn example1_catalog_sized_then_simulated() {
    let movies = example1_movies(VcrMix::paper_fig7d());
    let opts = ModelOptions::default();
    // Budget large enough that the water-fill leaves every movie well
    // inside the model's validated regime (the paper's Figure 7 starts
    // around n = 10; at n = 1 the uniform-position assumptions are at
    // their weakest and model-vs-sim gaps widen).
    let plan = allocate_min_buffer(
        &movies,
        Budgets {
            streams: 400,
            buffer: None,
        },
        &opts,
    )
    .expect("satisfiable");
    for a in &plan.allocations {
        assert!(
            a.n_streams >= 10,
            "{} got only {} streams",
            a.movie,
            a.n_streams
        );
    }

    // Build the catalog load: per-movie Poisson arrivals and the paper's
    // mixed VCR behavior.
    let loads: Vec<MovieLoad> = movies
        .iter()
        .zip(&plan.allocations)
        .map(|(m, a)| MovieLoad {
            params: m.params_for_streams(a.n_streams).expect("feasible"),
            mean_interarrival: 3.0,
            behavior: BehaviorModel::uniform_dist((0.2, 0.2, 0.6), 30.0, Arc::clone(&m.dist)),
        })
        .collect();

    // 1. Infinite reserve: measure offered load and per-movie hit ratios.
    let cfg = CatalogConfig {
        movies: loads,
        horizon: 40.0 * 120.0,
        warmup: 4.0 * 120.0,
        count_ff_end_as_hit: true,
        collect_trace: false,
        dedicated_capacity: None,
        faults: vod_runtime::FaultPlan::empty(),
        backend: vod_runtime::BackendKind::BatchingBuffering,
    };
    let free = run_catalog_seeded(&cfg, 55);
    for (movie, (report, alloc)) in free.per_movie.iter().zip(&plan.allocations).enumerate() {
        assert!(
            report.runtime.resumes.trials() > 300,
            "movie {movie}: too few resumes ({})",
            report.runtime.resumes.trials()
        );
        let sim = report.runtime.resumes.value();
        // The simulator's boundary behaviors bias RW/PAU upward, so the
        // plan's promise is a (noisy) lower bound.
        assert!(
            sim > alloc.p_hit - 0.05,
            "movie {movie} ({}): sim {sim:.3} well below planned {:.3}",
            alloc.movie,
            alloc.p_hit
        );
    }

    // 2. Size the shared reserve for ≤ 2% denials at the measured load
    //    and verify the capped run meets the target.
    let offered = free.runtime.dedicated_avg;
    assert!(offered > 0.5, "offered load {offered}");
    let mut cap = 1u32;
    while erlang_b(cap, offered) > 0.02 {
        cap += 1;
    }
    let mut capped = cfg.clone();
    capped.dedicated_capacity = Some(cap);
    let run = run_catalog_seeded(&capped, 56);
    let denial_rate = (run.runtime.vcr_denied + run.runtime.resume_starved) as f64
        / run.runtime.acquisition_attempts.max(1) as f64;
    assert!(
        denial_rate <= 0.05,
        "reserve of {cap} streams (offered {offered:.2}) denied {denial_rate:.3}"
    );
    assert!(run.runtime.dedicated_peak <= cap as f64 + 1e-9);
}
