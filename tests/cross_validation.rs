//! Three-way cross-validation of the shared `vod-runtime` semantics: the
//! same `(l, B, n, VCR mix)` configuration runs through the analytic
//! model, the continuous-time event simulator, and the integer-minute
//! tick server, and the three hit probabilities must agree pairwise.
//!
//! Tolerances (fixed seed, so these are deterministic margins, not
//! statistical bounds; measured values sit well inside them — see
//! EXPERIMENTS.md "Three-way cross-validation"):
//!
//! * sim − model ∈ [−0.05, 0.08] — the §4 validation window: one-seed
//!   noise plus the boundary behaviors (position-0 resumes) the paper
//!   documents as an upward sim bias;
//! * server − model ∈ [−0.05, 0.08] — same window: tick quantization
//!   replaces the continuous window by `(T, b)` integers;
//! * |server − sim| ≤ 0.05 — the two *drivers* of the shared semantics,
//!   differing only in time model and workload discretization.
//!
//! A second pair of same-seed runs must reproduce each leg's
//! `RuntimeMetrics` bitwise (`PartialEq` over every counter and f64).

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use std::sync::Arc;

use vod_prealloc::dist::kinds::Gamma;
use vod_prealloc::model::{p_hit_single_dist, ModelOptions, Rates, SystemParams, VcrMix};
use vod_prealloc::runtime::RuntimeMetrics;
use vod_prealloc::server::{run_harness, HarnessConfig, HostedMovie, MovieId, ServerConfig};
use vod_prealloc::sim::{run_seeded, SimConfig};
use vod_prealloc::workload::BehaviorModel;

const MOVIE_LEN: f64 = 120.0;
const SEED: u64 = 2026;

fn behavior() -> BehaviorModel {
    BehaviorModel::uniform_dist((0.2, 0.2, 0.6), 30.0, Arc::new(Gamma::paper_fig7()))
}

fn sim_config(params: SystemParams, horizon_lengths: f64) -> SimConfig {
    let mut cfg = SimConfig::new(params, behavior());
    cfg.horizon = horizon_lengths * MOVIE_LEN;
    cfg.warmup = 2.0 * MOVIE_LEN;
    cfg
}

fn harness_config(params: &SystemParams, n: u32, sim_cfg: &SimConfig) -> HarnessConfig {
    let movie = HostedMovie::from_allocation(MovieId(0), MOVIE_LEN as u32, n, params.buffer());
    HarnessConfig {
        server: ServerConfig {
            // Piggyback off: merge-back would re-enroll missed sessions
            // through a mechanism the model does not describe.
            piggyback: None,
            ..ServerConfig::provisioned(vec![movie], 80)
        },
        movie: MovieId(0),
        extra_movies: vec![],
        behavior: behavior(),
        mean_interarrival: sim_cfg.mean_interarrival,
        warmup: sim_cfg.warmup as u64,
        measure: (sim_cfg.horizon - sim_cfg.warmup) as u64,
    }
}

/// Run all three legs for one `(n, w)` point of the Figure-7(d) mixed
/// workload and return `(model, sim, server)` metrics.
fn three_way(n: u32, wait: f64) -> (f64, RuntimeMetrics, RuntimeMetrics) {
    let params =
        SystemParams::from_wait(MOVIE_LEN, wait, n, Rates::paper()).expect("valid configuration");
    let model = p_hit_single_dist(
        &params,
        &Gamma::paper_fig7(),
        &VcrMix::paper_fig7d(),
        &ModelOptions::default(),
    )
    .total;
    let sim_cfg = sim_config(params, 40.0);
    let sim = run_seeded(&sim_cfg, SEED).runtime;
    let server = run_harness(&harness_config(&params, n, &sim_cfg), SEED);
    (model, sim, server)
}

#[test]
fn three_way_agreement_w1_column() {
    for n in [20u32, 40, 60] {
        let (model, sim, server) = three_way(n, 1.0);
        let sim_hit = sim.hit_ratio();
        let srv_hit = server.hit_ratio();
        assert!(
            sim.resumes.trials() > 500 && server.resumes.trials() > 500,
            "n={n}: too few resumes (sim {}, server {})",
            sim.resumes.trials(),
            server.resumes.trials()
        );
        let sim_bias = sim_hit - model;
        assert!(
            (-0.05..=0.08).contains(&sim_bias),
            "n={n}: sim {sim_hit:.4} vs model {model:.4} (bias {sim_bias:.4})"
        );
        let srv_bias = srv_hit - model;
        assert!(
            (-0.05..=0.08).contains(&srv_bias),
            "n={n}: server {srv_hit:.4} vs model {model:.4} (bias {srv_bias:.4})"
        );
        assert!(
            (srv_hit - sim_hit).abs() <= 0.05,
            "n={n}: server {srv_hit:.4} vs sim {sim_hit:.4}"
        );
        // Provisioned generously: the mechanisms, not resource exhaustion,
        // must explain the numbers.
        assert_eq!(server.restart_failures, 0, "n={n}");
        assert_eq!(server.vcr_denied, 0, "n={n}");
        assert_eq!(sim.vcr_denied, 0, "n={n}");
    }
}

#[test]
fn same_seed_runs_are_bitwise_identical() {
    let params =
        SystemParams::from_wait(MOVIE_LEN, 1.0, 40, Rates::paper()).expect("valid configuration");
    let sim_cfg = sim_config(params, 10.0);
    let sim_a = run_seeded(&sim_cfg, SEED).runtime;
    let sim_b = run_seeded(&sim_cfg, SEED).runtime;
    assert_eq!(sim_a, sim_b, "simulator must be seed-deterministic");

    let harness = harness_config(&params, 40, &sim_cfg);
    let srv_a = run_harness(&harness, SEED);
    let srv_b = run_harness(&harness, SEED);
    assert_eq!(srv_a, srv_b, "server harness must be seed-deterministic");

    // And the two legs report through the same vocabulary: spot-check
    // that both actually populated the shared fields.
    for rt in [&sim_a, &srv_a] {
        assert!(rt.resumes.trials() > 0);
        assert!(rt.buffer_minutes > 0.0);
        assert!(rt.dedicated_peak >= 0.0);
    }
}
