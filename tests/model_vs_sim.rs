//! Cross-crate integration: the paper's §4 validation — the analytic
//! model must track the discrete-event simulation across VCR types,
//! waits, and stream counts (Figure 7), with the bias directions the
//! paper describes.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use std::sync::Arc;

use vod_prealloc::dist::kinds::{Exponential, Gamma};
use vod_prealloc::dist::DurationDist;
use vod_prealloc::model::{p_hit_single_dist, ModelOptions, Rates, SystemParams, VcrMix};
use vod_prealloc::sim::{run_replications, SimConfig};
use vod_prealloc::workload::BehaviorModel;

struct Case {
    mix_tuple: (f64, f64, f64),
    mix: VcrMix,
    n: u32,
    w: f64,
}

/// Assert `sim − model` falls inside `[bias_lo, bias_hi]`. The window is
/// asymmetric for RW/PAU, where the paper documents that the model
/// *underestimates* the real system (position-0 resumes count as misses
/// in the model but can hit the enrollment window in the simulator).
fn agree(case: &Case, dist: Arc<dyn DurationDist>, bias_lo: f64, bias_hi: f64) {
    let params = SystemParams::from_wait(120.0, case.w, case.n, Rates::paper())
        .expect("valid configuration");
    let model = p_hit_single_dist(&params, dist.as_ref(), &case.mix, &ModelOptions::default());
    let behavior = BehaviorModel::uniform_dist(case.mix_tuple, 30.0, dist);
    let mut cfg = SimConfig::new(params, behavior);
    cfg.horizon = 30.0 * 120.0;
    let agg = run_replications(&cfg, 11, 3);
    let sim = agg.overall.mean();
    let bias = sim - model.total;
    assert!(
        (bias_lo..=bias_hi).contains(&bias),
        "mix {:?} n={} w={}: model {:.4} vs sim {:.4} (bias {bias:.4} outside [{bias_lo}, {bias_hi}])",
        case.mix_tuple,
        case.n,
        case.w,
        model.total,
        sim
    );
}

#[test]
fn figure7a_ff_grid() {
    for (n, w) in [(20u32, 1.0), (40, 1.0), (60, 1.0), (30, 2.0)] {
        agree(
            &Case {
                mix_tuple: (1.0, 0.0, 0.0),
                mix: VcrMix::ff_only(),
                n,
                w,
            },
            Arc::new(Gamma::paper_fig7()),
            -0.05,
            0.05,
        );
    }
}

#[test]
fn figure7b_rw_grid() {
    for (n, w) in [(20u32, 1.0), (40, 1.0), (60, 1.0)] {
        agree(
            &Case {
                mix_tuple: (0.0, 1.0, 0.0),
                mix: VcrMix::rw_only(),
                n,
                w,
            },
            Arc::new(Gamma::paper_fig7()),
            -0.02,
            0.10,
        );
    }
}

#[test]
fn figure7c_pau_grid() {
    for (n, w) in [(20u32, 1.0), (40, 1.0), (60, 1.0)] {
        agree(
            &Case {
                mix_tuple: (0.0, 0.0, 1.0),
                mix: VcrMix::pause_only(),
                n,
                w,
            },
            Arc::new(Gamma::paper_fig7()),
            -0.02,
            0.10,
        );
    }
}

#[test]
fn figure7d_mixed_grid() {
    for (n, w) in [(20u32, 1.0), (40, 1.0), (60, 1.0), (50, 0.5)] {
        agree(
            &Case {
                mix_tuple: (0.2, 0.2, 0.6),
                mix: VcrMix::paper_fig7d(),
                n,
                w,
            },
            Arc::new(Gamma::paper_fig7()),
            -0.04,
            0.08,
        );
    }
}

#[test]
fn agreement_holds_for_other_duration_laws() {
    // The model claims generality in f: spot-check a very different law.
    agree(
        &Case {
            mix_tuple: (0.2, 0.2, 0.6),
            mix: VcrMix::paper_fig7d(),
            n: 30,
            w: 1.0,
        },
        Arc::new(Exponential::with_mean(3.0).expect("valid")),
        -0.04,
        0.08,
    );
}

#[test]
fn curves_fall_with_n_in_both_model_and_sim() {
    // Figure 7's qualitative shape along a fixed-w curve.
    let dist = Gamma::paper_fig7();
    let opts = ModelOptions::default();
    let mut last_model = f64::INFINITY;
    let mut last_sim = f64::INFINITY;
    for n in [15u32, 45, 90] {
        let params = SystemParams::from_wait(120.0, 1.0, n, Rates::paper()).expect("valid");
        let model = p_hit_single_dist(&params, &dist, &VcrMix::paper_fig7d(), &opts).total;
        let behavior = BehaviorModel::uniform_dist((0.2, 0.2, 0.6), 30.0, Arc::new(dist));
        let mut cfg = SimConfig::new(params, behavior);
        cfg.horizon = 20.0 * 120.0;
        let sim = run_replications(&cfg, 5, 2).overall.mean();
        assert!(model < last_model + 1e-9, "model not decreasing at n={n}");
        assert!(sim < last_sim + 0.03, "sim not decreasing at n={n}");
        last_model = model;
        last_sim = sim;
    }
}
