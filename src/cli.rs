//! Argument parsing and driver for the `vodplan` capacity-planning CLI.
//!
//! Kept in the library so the parsing and the plan assembly are unit
//! tested; `src/bin/vodplan.rs` is a thin shell around [`run`].
//!
//! Movie syntax (fields separated by `;` so distribution specs keep their
//! commas):
//!
//! ```text
//! --movie "name;l=120;w=0.5;p=0.6;dist=gamma:shape=2,scale=4"
//! ```

use std::sync::Arc;

use vod_model::{expected_miss_hold_piggyback, ModelOptions, Rates, SweepExecutor, VcrMix};
use vod_sizing::{
    allocate_min_buffer_with, procurement, size_vcr_reserve, Budgets, HardwareSpec, MovieSpec,
    ResourceCost, VcrLoad,
};

/// Parsed command line.
#[derive(Debug)]
pub struct Options {
    /// The catalog.
    pub movies: Vec<MovieSpec>,
    /// Stream budget `n_s`.
    pub streams: u32,
    /// Optional buffer budget `B_s` (movie minutes).
    pub buffer: Option<f64>,
    /// Cost ratio φ for pricing the plan.
    pub phi: f64,
    /// VCR operations per minute across the catalog (reserve sizing).
    pub vcr_ops_per_minute: f64,
    /// Target VCR denial probability.
    pub denial_target: f64,
    /// Worker threads for the per-movie sizing sweeps (1 = serial,
    /// 0 = one per core).
    pub threads: usize,
}

/// Error with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for CliError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Usage text.
pub const USAGE: &str = "\
vodplan — size buffer and I/O streams for a VOD catalog (ICDE'97 model)

USAGE:
  vodplan --movie SPEC [--movie SPEC …] [OPTIONS]

MOVIE SPEC (fields separated by `;`):
  name;l=MINUTES;w=MAX_WAIT;p=TARGET_HIT;dist=DIST[;mix=FF,RW,PAU]
  e.g.  \"thriller;l=120;w=0.5;p=0.6;dist=gamma:shape=2,scale=4\"

OPTIONS:
  --streams N       stream budget n_s            [default: pure-batching total]
  --buffer MIN      buffer budget B_s in minutes [default: unlimited]
  --phi X           memory/stream cost ratio     [default: 10.71, Example 2]
  --vcr-rate X      VCR ops per minute (reserve) [default: 1.0]
  --denial P        VCR denial target            [default: 0.01]
  --threads N       worker threads for sizing sweeps (0 = all cores)
                                                 [default: 1]
  --help            print this text
";

/// Parse one `--movie` value.
pub fn parse_movie(spec: &str) -> Result<MovieSpec, CliError> {
    let mut name = None;
    let mut l = None;
    let mut w = None;
    let mut p = None;
    let mut dist = None;
    let mut mix = VcrMix::paper_fig7d();
    for (i, field) in spec.split(';').enumerate() {
        let field = field.trim();
        if field.is_empty() {
            continue;
        }
        if i == 0 && !field.contains('=') {
            name = Some(field.to_string());
            continue;
        }
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| CliError(format!("expected key=value in movie field `{field}`")))?;
        let num = |v: &str| -> Result<f64, CliError> {
            v.trim()
                .parse()
                .map_err(|_| CliError(format!("bad number `{v}` for `{key}`")))
        };
        match key.trim() {
            "l" => l = Some(num(value)?),
            "w" => w = Some(num(value)?),
            "p" => p = Some(num(value)?),
            "dist" => {
                dist = Some(
                    vod_dist::parse_spec(value)
                        .map_err(|e| CliError(format!("movie `{spec}`: {e}")))?,
                )
            }
            "mix" => {
                let parts: Vec<&str> = value.split(',').collect();
                if parts.len() != 3 {
                    return err(format!("mix needs three probabilities, got `{value}`"));
                }
                mix = VcrMix::new(num(parts[0])?, num(parts[1])?, num(parts[2])?)
                    .map_err(|e| CliError(format!("movie `{spec}`: {e}")))?;
            }
            other => return err(format!("unknown movie field `{other}`")),
        }
    }
    let name = name.ok_or_else(|| CliError(format!("movie `{spec}`: missing name")))?;
    let (Some(l), Some(w), Some(p), Some(dist)) = (l, w, p, dist) else {
        return err(format!("movie `{name}`: need l=, w=, p= and dist= fields"));
    };
    MovieSpec::new(name, l, w, p, mix, Arc::from(dist), Rates::paper())
        .map_err(|e| CliError(format!("movie `{spec}`: {e}")))
}

/// Parse the full argument list (without the program name).
pub fn parse_args(args: &[String]) -> Result<Options, CliError> {
    let mut movies = Vec::new();
    let mut streams = None;
    let mut buffer = None;
    let mut phi = 750.0 / 70.0;
    let mut vcr_rate = 1.0;
    let mut denial = 0.01;
    let mut threads = 1usize;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<&String, CliError> {
            *i += 1;
            args.get(*i)
                .ok_or_else(|| CliError(format!("`{}` needs a value", args[*i - 1])))
        };
        match args[i].as_str() {
            "--movie" => movies.push(parse_movie(take(&mut i)?)?),
            "--streams" => {
                streams = Some(
                    take(&mut i)?
                        .parse()
                        .map_err(|_| CliError("--streams needs an integer".into()))?,
                )
            }
            "--buffer" => {
                buffer = Some(
                    take(&mut i)?
                        .parse()
                        .map_err(|_| CliError("--buffer needs a number".into()))?,
                )
            }
            "--phi" => {
                phi = take(&mut i)?
                    .parse()
                    .map_err(|_| CliError("--phi needs a number".into()))?
            }
            "--vcr-rate" => {
                vcr_rate = take(&mut i)?
                    .parse()
                    .map_err(|_| CliError("--vcr-rate needs a number".into()))?
            }
            "--denial" => {
                denial = take(&mut i)?
                    .parse()
                    .map_err(|_| CliError("--denial needs a probability".into()))?
            }
            "--threads" => {
                threads = take(&mut i)?
                    .parse()
                    .map_err(|_| CliError("--threads needs an integer".into()))?
            }
            "--help" | "-h" => return err(USAGE),
            other => return err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
        i += 1;
    }
    if movies.is_empty() {
        return err(format!("no movies given\n\n{USAGE}"));
    }
    let streams = streams.unwrap_or_else(|| movies.iter().map(|m| m.pure_batching_streams()).sum());
    Ok(Options {
        movies,
        streams,
        buffer,
        phi,
        vcr_ops_per_minute: vcr_rate,
        denial_target: denial,
        threads,
    })
}

/// Execute the plan and render a report.
pub fn run(opts: &Options) -> Result<String, CliError> {
    use std::fmt::Write;
    let model_opts = ModelOptions::default();
    let exec = SweepExecutor::new(opts.threads);
    let plan = allocate_min_buffer_with(
        &opts.movies,
        Budgets {
            streams: opts.streams,
            buffer: opts.buffer,
        },
        &model_opts,
        &exec,
    )
    .map_err(|e| CliError(format!("allocation failed: {e}")))?;

    let mut out = String::new();
    let pure: u32 = opts.movies.iter().map(|m| m.pure_batching_streams()).sum();
    let _ = writeln!(
        out,
        "catalog of {} movies; stream budget {}",
        opts.movies.len(),
        opts.streams
    );
    let _ = writeln!(
        out,
        "pure batching baseline: {pure} streams (hit probability 0)\n"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>10} {:>8} {:>8}",
        "movie", "streams", "buffer", "P(hit)", "w"
    );
    for (a, m) in plan.allocations.iter().zip(&opts.movies) {
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>10.1} {:>8.3} {:>8.2}",
            a.movie, a.n_streams, a.buffer, a.p_hit, m.max_wait
        );
    }
    let _ = writeln!(
        out,
        "\ntotals: {} streams + {:.1} buffer minutes ({} streams saved)",
        plan.total_streams(),
        plan.total_buffer(),
        pure.saturating_sub(plan.total_streams())
    );

    let prices = ResourceCost::from_phi(opts.phi).map_err(|e| CliError(format!("bad phi: {e}")))?;
    let _ = writeln!(
        out,
        "cost at phi = {:.2}: {:.1} stream-equivalents",
        opts.phi,
        plan.cost(&prices)
    );

    // Reserve sizing from the worst planned hit probability, with +5%
    // piggyback merge-back assumed for miss holds.
    let worst = plan
        .allocations
        .iter()
        .zip(&opts.movies)
        .min_by(|(a, _), (b, _)| a.p_hit.total_cmp(&b.p_hit))
        .ok_or_else(|| CliError("plan has no allocations".to_string()))?;
    let params = worst
        .1
        .params_for_streams(worst.0.n_streams)
        .map_err(|e| CliError(format!("internal: {e}")))?;
    let load = VcrLoad {
        ops_per_minute: opts.vcr_ops_per_minute,
        mean_phase1: 3.0,
        mean_miss_hold: expected_miss_hold_piggyback(&params, 0.05),
        p_hit: worst.0.p_hit,
    };
    let reserve = size_vcr_reserve(&load, opts.denial_target)
        .map_err(|e| CliError(format!("reserve sizing: {e}")))?;
    let _ = writeln!(
        out,
        "VCR reserve for ≤{:.1}% denials at {:.1} ops/min: {} streams \
         (offered load {:.1} Erlangs, piggyback +5%)",
        100.0 * opts.denial_target,
        opts.vcr_ops_per_minute,
        reserve,
        load.offered_erlangs()
    );
    let _ = writeln!(
        out,
        "grand total: {} I/O streams + {:.1} buffer minutes",
        plan.total_streams() + reserve,
        plan.total_buffer()
    );

    // Shopping list at the Example-2 hardware prices.
    let hw = HardwareSpec::paper_example2();
    let catalog_minutes: f64 = opts.movies.iter().map(|m| m.length).sum();
    let shopping = procurement(&plan, reserve, catalog_minutes, &hw)
        .map_err(|e| CliError(format!("procurement: {e}")))?;
    let _ = writeln!(
        out,
        "
hardware (1997 prices): {} disks (bandwidth {} / capacity {}), {:.0} MB RAM          — ${:.0} disks + ${:.0} memory = ${:.0}",
        shopping.disks,
        shopping.disks_for_bandwidth,
        shopping.disks_for_capacity,
        shopping.memory_mb,
        shopping.disk_dollars,
        shopping.memory_dollars,
        shopping.total_dollars()
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_movie_full() {
        let m = parse_movie("thriller;l=120;w=0.5;p=0.6;dist=gamma:shape=2,scale=4").unwrap();
        assert_eq!(m.name, "thriller");
        assert_eq!(m.length, 120.0);
        assert_eq!(m.max_wait, 0.5);
        assert_eq!(m.target_hit, 0.6);
    }

    #[test]
    fn parse_movie_with_mix() {
        let m = parse_movie("x;l=90;w=1;p=0.5;dist=exp:mean=5;mix=0.5,0.3,0.2").unwrap();
        assert!((m.mix.ff() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parse_movie_errors() {
        assert!(parse_movie("l=90;w=1;p=0.5;dist=exp:mean=5").is_err()); // no name
        assert!(parse_movie("x;l=90;w=1;p=0.5").is_err()); // no dist
        assert!(parse_movie("x;l=90;w=1;p=0.5;dist=bogus:a=1").is_err());
        assert!(parse_movie("x;l=90;w=1;p=0.5;dist=exp:mean=5;mix=0.5,0.5").is_err());
        assert!(parse_movie("x;l=90;w=1;p=2.0;dist=exp:mean=5").is_err()); // p > 1
    }

    #[test]
    fn parse_args_defaults() {
        let o = parse_args(&args(&["--movie", "a;l=60;w=0.5;p=0.5;dist=exp:mean=5"])).unwrap();
        assert_eq!(o.streams, 120); // pure batching default
        assert!((o.phi - 750.0 / 70.0).abs() < 1e-12);
        assert_eq!(o.threads, 1); // serial unless asked
    }

    #[test]
    fn parse_args_threads() {
        let o = parse_args(&args(&[
            "--movie",
            "a;l=60;w=0.5;p=0.5;dist=exp:mean=5",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(o.threads, 4);
        assert!(parse_args(&args(&["--threads", "x"])).is_err());
    }

    #[test]
    fn parse_args_rejects_junk() {
        assert!(parse_args(&args(&["--bogus"])).is_err());
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["--movie"])).is_err());
    }

    #[test]
    fn end_to_end_plan_renders() {
        let o = parse_args(&args(&[
            "--movie",
            "a;l=60;w=1;p=0.5;dist=exp:mean=5",
            "--movie",
            "b;l=90;w=1.5;p=0.5;dist=gamma:shape=2,scale=4",
            "--streams",
            "80",
        ]))
        .unwrap();
        let report = run(&o).unwrap();
        assert!(report.contains("totals:"), "{report}");
        assert!(report.contains("VCR reserve"), "{report}");
        assert!(report.contains("hardware (1997 prices)"), "{report}");
        assert!(report.contains('a') && report.contains('b'));
    }
}
