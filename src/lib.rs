//! # vod-prealloc
//!
//! A Rust reproduction of *"Buffer and I/O Resource Pre-allocation for
//! Implementing Batching and Buffering Techniques for Video-on-Demand
//! Systems"* (M. Y. Y. Leung, J. C. S. Lui, L. Golubchik — ICDE 1997).
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`model`] — the paper's analytic hit-probability model (Eqs. 1–22).
//! * [`sizing`] — feasible `(B, n)` sets, multi-movie allocation, and the
//!   cost model of §5 (Examples 1–2, Figures 8–9).
//! * [`sim`] — the discrete-event simulator used for model verification
//!   (§4, Figure 7).
//! * [`server`] — a byte-exact virtual-time VOD server implementing
//!   batching, static partitioned buffering, VCR service, and
//!   piggybacking.
//! * [`runtime`] — the shared mechanism semantics both drivers (`sim`
//!   and `server`) are built on: partition-window membership, the
//!   `(l, B, n) → (T, b)` quantization rule, resume classification,
//!   stream-reserve accounting, and the common metric vocabulary.
//! * [`dist`] — numerics and VCR-duration distributions.
//! * [`workload`] — arrival processes, viewer behavior, traces,
//!   statistics.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results per figure/table.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

pub mod cli;

pub use vod_dist as dist;
pub use vod_model as model;
pub use vod_runtime as runtime;
pub use vod_server as server;
pub use vod_sim as sim;
pub use vod_sizing as sizing;
pub use vod_workload as workload;
