//! `vodplan` — command-line capacity planner built on the ICDE'97 model.
//!
//! ```sh
//! vodplan --movie "thriller;l=120;w=0.5;p=0.6;dist=gamma:shape=2,scale=4" \
//!         --movie "classic;l=90;w=1;p=0.5;dist=exp:mean=5" \
//!         --streams 300 --phi 11 --vcr-rate 2 --denial 0.01
//! ```

use vod_prealloc::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match cli::run(&opts) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("vodplan: {e}");
            std::process::exit(1);
        }
    }
}
