#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test pass.
# Run from the repo root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build + test =="
cargo build --release
cargo test -q

echo "CI OK"
