#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test pass.
# Run from the repo root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (deny rustdoc warnings, incl. broken intra-doc links) =="
# First-party crates only: the vendored offline stand-ins (vendor/) are
# path dependencies and would otherwise be documented too.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
  -p vod-prealloc -p vod-dist -p vod-model -p vod-sizing -p vod-workload \
  -p vod-runtime -p vod-sim -p vod-server -p vod-bench

echo "== tier-1: build + test =="
cargo build --release
cargo test -q

echo "== cross-validation: model vs sim vs server =="
cargo test --release -q --test cross_validation

echo "CI OK"
