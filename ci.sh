#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test pass.
# Run from the repo root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

# Single source of truth for the clippy invocation. The hard lint wall
# (clippy::float_cmp, clippy::unwrap_used, forbid(unsafe_code)) lives in
# [workspace.lints] in Cargo.toml; this only adds the blanket -D warnings.
CLIPPY_FLAGS="-D warnings"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- ${CLIPPY_FLAGS}

echo "== vod-lint (workspace semantic analyzer, see DESIGN.md §9/§14) =="
mkdir -p results
# The binary prints the per-rule summary table and exits non-zero on any
# unsuppressed finding; the gate is exact — schema v2, zero findings, no
# baseline slack.
cargo run -p vod-lint --release -- --workspace --json results/LINT_REPORT.json
grep -q '"version": 2' results/LINT_REPORT.json
grep -q '"findings": \[\]' results/LINT_REPORT.json
# Dogfood: the linter's own sources pass the same gate standalone.
cargo run -p vod-lint --release -- --root . crates/lint/src

echo "== cargo doc (deny rustdoc warnings, incl. broken intra-doc links) =="
# First-party crates only: the vendored offline stand-ins (vendor/) are
# path dependencies and would otherwise be documented too.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
  -p vod-prealloc -p vod-dist -p vod-model -p vod-sizing -p vod-workload \
  -p vod-runtime -p vod-sim -p vod-server -p vod-federation -p vod-bench \
  -p vod-lint

echo "== tier-1: build + test =="
cargo build --release
cargo test -q

echo "== cross-validation: model vs sim vs server =="
cargo test --release -q --test cross_validation

echo "== chaos: 3-backend fault matrix (determinism + conservation, see DESIGN.md §10/§13) =="
cargo run --release -p vod-bench --bin chaos
# The bin exits non-zero on any violation; belt-and-braces the written
# report too: schema v2, all 54 cells present, every backend clean, and
# per-tick monotonicity/conservation recorded zero violations.
grep -q '"schema": 2' results/CHAOS_REPORT.json
grep -q '"ok": true' results/CHAOS_REPORT.json
test "$(grep -c '"seed"' results/CHAOS_REPORT.json)" -eq 54
test "$(grep -c '"backend": "pyramid_broadcast"' results/CHAOS_REPORT.json)" -eq 18
test "$(grep -c '"backend": "dedicated_stream"' results/CHAOS_REPORT.json)" -eq 18
test "$(grep -c '"violations": 0' results/CHAOS_REPORT.json)" -eq 54

echo "== federation: sharded-catalog chaos matrix (whole-shard outage failover, see DESIGN.md §15) =="
cargo run --release -p vod-bench --bin federation
# The bin exits non-zero on any violation or determinism break; verify
# the written report too: schema v1, all 42 cells present, the 1-shard
# empty-plan identity with run_harness held, and every cell's per-tick
# conservation audit recorded zero violations.
grep -q '"schema": 1' results/FEDERATION_REPORT.json
grep -q '"ok": true' results/FEDERATION_REPORT.json
grep -q '"identity_ok": true' results/FEDERATION_REPORT.json
test "$(grep -c '"seed"' results/FEDERATION_REPORT.json)" -eq 42
test "$(grep -c '"violations": 0' results/FEDERATION_REPORT.json)" -eq 42

echo "== scale: wheel+arena engine smoke (downscaled; the full run uses --sessions 1000000) =="
cargo run --release -p vod-bench --bin scale -- --sessions 50000 --ticks 120

echo "== backend_compare: all three DeliveryBackends, reduced grid (see DESIGN.md §12) =="
cargo run --release -p vod-bench --bin backend_compare -- --smoke

echo "CI OK"
