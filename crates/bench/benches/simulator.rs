//! Criterion benchmarks of the discrete-event simulator and the data-path
//! server: events per second and ticks per second under load.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use rand::RngCore;
use vod_dist::kinds::Gamma;
use vod_dist::rng::seeded;
use vod_model::{Rates, SystemParams};
use vod_server::{HostedMovie, MovieId, ServerConfig, VodServer};
use vod_sim::{run_seeded, SimConfig};
use vod_workload::{BehaviorModel, VcrKind};

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_run");
    g.sample_size(10);
    for movies in [5u64, 20] {
        let params = SystemParams::new(120.0, 60.0, 20, Rates::paper()).expect("valid");
        let behavior =
            BehaviorModel::uniform_dist((0.2, 0.2, 0.6), 30.0, Arc::new(Gamma::paper_fig7()));
        let mut cfg = SimConfig::new(params, behavior);
        cfg.horizon = movies as f64 * 120.0;
        cfg.warmup = 120.0;
        g.throughput(Throughput::Elements(movies));
        g.bench_with_input(
            BenchmarkId::new("horizon_movies", movies),
            &cfg,
            |b, cfg| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(run_seeded(cfg, seed).runtime.resumes.trials())
                })
            },
        );
    }
    g.finish();
}

fn bench_server(c: &mut Criterion) {
    let mut g = c.benchmark_group("server_tick");
    g.sample_size(10);
    let minutes = 600u64;
    g.throughput(Throughput::Elements(minutes));
    g.bench_function("random_load_600min", |b| {
        b.iter(|| {
            let movie = HostedMovie::from_allocation(MovieId(0), 120, 10, 60.0);
            let mut server = VodServer::new(ServerConfig::provisioned(vec![movie], 8));
            let mut rng = seeded(3);
            let mut sessions = Vec::new();
            for _ in 0..minutes {
                if rng.next_u64().is_multiple_of(2) {
                    if let Ok(s) = server.open_session(MovieId(0)) {
                        sessions.push(s);
                    }
                }
                if !sessions.is_empty() && rng.next_u64().is_multiple_of(8) {
                    let s = sessions[(rng.next_u64() as usize) % sessions.len()];
                    let kind = match rng.next_u64() % 3 {
                        0 => VcrKind::FastForward,
                        1 => VcrKind::Rewind,
                        _ => VcrKind::Pause,
                    };
                    let _ = server.request_vcr(s, kind, 1 + (rng.next_u64() % 15) as u32);
                }
                server.tick();
            }
            black_box(server.metrics().runtime.buffer_minutes)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sim, bench_server);
criterion_main!(benches);
