//! Criterion benchmarks of the numerics substrate: special functions,
//! quadrature, root finding, and distribution kernels — the primitives
//! every model evaluation is built from.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use vod_dist::kinds::{Empirical, Gamma};
use vod_dist::quad::{adaptive_simpson, gauss_legendre};
use vod_dist::root::brent;
use vod_dist::special::{gamma_p, ln_gamma};
use vod_dist::DurationDist;

fn bench_special(c: &mut Criterion) {
    let mut g = c.benchmark_group("special");
    g.bench_function("ln_gamma", |b| {
        b.iter(|| ln_gamma(black_box(7.25)));
    });
    g.bench_function("gamma_p_series_branch", |b| {
        b.iter(|| gamma_p(black_box(2.0), black_box(1.5)));
    });
    g.bench_function("gamma_p_contfrac_branch", |b| {
        b.iter(|| gamma_p(black_box(2.0), black_box(25.0)));
    });
    g.finish();
}

fn bench_quad(c: &mut Criterion) {
    let mut g = c.benchmark_group("quadrature");
    g.bench_function("adaptive_simpson_smooth", |b| {
        b.iter(|| adaptive_simpson(|x| (-x).exp() * x.sin(), 0.0, black_box(10.0), 1e-10));
    });
    g.bench_function("gauss_legendre_16", |b| {
        b.iter(|| gauss_legendre(|x| (-x).exp() * x.sin(), 0.0, black_box(10.0)));
    });
    g.finish();
}

fn bench_root(c: &mut Criterion) {
    c.bench_function("brent_cdf_inversion", |b| {
        let d = Gamma::paper_fig7();
        b.iter(|| brent(|x| d.cdf(x) - black_box(0.63), 0.0, 200.0, 1e-12).expect("bracketed"));
    });
}

fn bench_dist_kernels(c: &mut Criterion) {
    let gamma = Gamma::paper_fig7();
    let samples: Vec<f64> = {
        use vod_dist::rng::seeded;
        let mut rng = seeded(1);
        (0..10_000).map(|_| gamma.sample(&mut rng)).collect()
    };
    let emp = Empirical::from_samples(&samples).expect("non-empty");
    let mut g = c.benchmark_group("dist_kernels");
    g.bench_function("gamma_cdf", |b| b.iter(|| gamma.cdf(black_box(9.5))));
    g.bench_function("gamma_cdf_integral", |b| {
        b.iter(|| gamma.cdf_integral(black_box(9.5)))
    });
    g.bench_function("empirical10k_cdf", |b| b.iter(|| emp.cdf(black_box(9.5))));
    g.bench_function("empirical10k_cdf_integral", |b| {
        b.iter(|| emp.cdf_integral(black_box(9.5)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_special,
    bench_quad,
    bench_root,
    bench_dist_kernels
);
criterion_main!(benches);
