//! Criterion benchmarks of the sizing machinery: feasibility bisection,
//! allocation, and cost-curve tracing (with and without a prebuilt
//! catalog — the ablation behind `Catalog`).

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use vod_dist::kinds::Exponential;
use vod_model::{ModelOptions, Rates, VcrMix};
use vod_sizing::{
    allocate_min_buffer, cost_curve, cost_curve_with_catalog, max_feasible_streams, Budgets,
    Catalog, MovieSpec, ResourceCost,
};

fn toy_movies() -> Vec<MovieSpec> {
    let mk = |name: &str, l: f64, w: f64, mean: f64| {
        MovieSpec::new(
            name,
            l,
            w,
            0.5,
            VcrMix::paper_fig7d(),
            Arc::new(Exponential::with_mean(mean).unwrap()),
            Rates::paper(),
        )
        .expect("valid")
    };
    vec![
        mk("a", 60.0, 1.0, 4.0),
        mk("b", 90.0, 1.5, 6.0),
        mk("c", 45.0, 0.75, 2.0),
    ]
}

fn bench_feasibility(c: &mut Criterion) {
    let movies = toy_movies();
    let opts = ModelOptions::default();
    let mut g = c.benchmark_group("sizing");
    g.sample_size(10);
    g.bench_function("max_feasible_bisection", |b| {
        b.iter(|| max_feasible_streams(black_box(&movies[0]), &opts).expect("ok"))
    });
    g.bench_function("allocate_min_buffer", |b| {
        b.iter(|| {
            allocate_min_buffer(
                black_box(&movies),
                Budgets {
                    streams: 120,
                    buffer: None,
                },
                &opts,
            )
            .expect("feasible")
        })
    });
    g.finish();
}

fn bench_curves(c: &mut Criterion) {
    let movies = toy_movies();
    let opts = ModelOptions::default();
    let prices = ResourceCost::from_phi(11.0).expect("valid");
    let mut g = c.benchmark_group("cost_curve");
    g.sample_size(10);
    g.bench_function("rebuilding_catalog", |b| {
        b.iter(|| cost_curve(black_box(&movies), prices, 3, 150, 5, &opts).expect("ok"))
    });
    let catalog = Catalog::new(&movies, &opts).expect("ok");
    g.bench_function("prebuilt_catalog", |b| {
        b.iter(|| cost_curve_with_catalog(black_box(&catalog), prices, 3, 150, 5))
    });
    g.finish();
}

criterion_group!(benches, bench_feasibility, bench_curves);
criterion_main!(benches);
