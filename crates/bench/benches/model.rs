//! Criterion micro-benchmarks of the analytic model: per-component cost,
//! scaling with the stream count, distribution sensitivity, and the
//! decomposed-vs-oracle gap.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use vod_dist::kinds::{Empirical, Exponential, Gamma, LogNormal};
use vod_dist::DurationDist;
use vod_model::{
    p_hit_ff, p_hit_pause, p_hit_rw, p_hit_single_dist, ModelOptions, Rates, SystemParams, VcrMix,
};

fn params(n: u32) -> SystemParams {
    SystemParams::from_wait(120.0, 1.0, n, Rates::paper()).expect("valid")
}

fn bench_components(c: &mut Criterion) {
    let d = Gamma::paper_fig7();
    let opts = ModelOptions::default();
    let p = params(20);
    let mut g = c.benchmark_group("model_components");
    g.bench_function("ff", |b| {
        b.iter(|| p_hit_ff(black_box(&p), &d, &opts).total())
    });
    g.bench_function("rw", |b| {
        b.iter(|| p_hit_rw(black_box(&p), &d, &opts).total())
    });
    g.bench_function("pause", |b| {
        b.iter(|| p_hit_pause(black_box(&p), &d, &opts))
    });
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let d = Gamma::paper_fig7();
    let opts = ModelOptions::default();
    let mix = VcrMix::paper_fig7d();
    let mut g = c.benchmark_group("model_scaling_n");
    g.sample_size(20);
    for n in [10u32, 40, 100] {
        let p = params(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| p_hit_single_dist(black_box(p), &d, &mix, &opts).total)
        });
    }
    g.finish();
}

fn bench_distributions(c: &mut Criterion) {
    let opts = ModelOptions::default();
    let mix = VcrMix::paper_fig7d();
    let p = params(20);
    let samples: Vec<f64> = {
        use vod_dist::rng::seeded;
        let g = Gamma::paper_fig7();
        let mut rng = seeded(5);
        (0..5000).map(|_| g.sample(&mut rng)).collect()
    };
    let dists: Vec<(&str, Box<dyn DurationDist>)> = vec![
        ("gamma", Box::new(Gamma::paper_fig7())),
        (
            "exponential",
            Box::new(Exponential::with_mean(8.0).unwrap()),
        ),
        (
            "lognormal",
            Box::new(LogNormal::with_mean_cv(8.0, 0.7).unwrap()),
        ),
        (
            "empirical_5k",
            Box::new(Empirical::from_samples(&samples).unwrap()),
        ),
    ];
    let mut g = c.benchmark_group("model_by_distribution");
    g.sample_size(20);
    for (name, d) in &dists {
        g.bench_function(*name, |b| {
            b.iter(|| p_hit_single_dist(black_box(&p), d.as_ref(), &mix, &opts).total)
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_components,
    bench_scaling,
    bench_distributions
);
criterion_main!(benches);
