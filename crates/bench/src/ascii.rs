//! Minimal ASCII scatter/line plotting for experiment output — renders
//! Figure-7/9-style curves directly in the terminal so the regenerated
//! figures are *visible*, not just tabulated.

/// A named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label; its first character is the plot glyph.
    pub label: String,
    /// Data points (need not be sorted).
    pub points: Vec<(f64, f64)>,
}

/// Render series on a `width x height` character canvas with simple
/// axes. Returns the drawing as a string.
pub fn plot(series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "canvas too small");
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if pts.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    if x_hi <= x_lo {
        x_hi = x_lo + 1.0;
    }
    if y_hi <= y_lo {
        y_hi = y_lo + 1.0;
    }
    let mut canvas = vec![vec![' '; width]; height];
    for s in series {
        let glyph = s.label.chars().next().unwrap_or('*');
        for &(x, y) in &s.points {
            let cx = ((x - x_lo) / (x_hi - x_lo) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_lo) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            canvas[row][cx.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{y_hi:>10.3} ┤"));
    out.push_str(&canvas[0].iter().collect::<String>());
    out.push('\n');
    for row in canvas.iter().take(height - 1).skip(1) {
        out.push_str("           │");
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{y_lo:>10.3} ┤"));
    out.push_str(&canvas[height - 1].iter().collect::<String>());
    out.push('\n');
    out.push_str("           └");
    out.push_str(&"─".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "            {:<10.1}{:>width$.1}\n",
        x_lo,
        x_hi,
        width = width.saturating_sub(10)
    ));
    for s in series {
        out.push_str(&format!(
            "            {} = {}\n",
            s.label.chars().next().unwrap_or('*'),
            s.label
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_something_sane() {
        let s = Series {
            label: "model".into(),
            points: (0..20)
                .map(|i| (i as f64, (i as f64 * 0.3).sin()))
                .collect(),
        };
        let out = plot(&[s], 40, 10);
        assert!(out.contains('m'), "glyph missing:\n{out}");
        assert!(out.lines().count() >= 12);
        assert!(out.contains("model"));
    }

    #[test]
    fn empty_series_ok() {
        assert_eq!(plot(&[], 40, 10), "(no data)\n");
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        let s = Series {
            label: "flat".into(),
            points: vec![(1.0, 2.0), (2.0, 2.0)],
        };
        let out = plot(&[s], 20, 5);
        assert!(out.contains('f'));
    }

    #[test]
    #[should_panic(expected = "canvas too small")]
    fn tiny_canvas_rejected() {
        plot(&[], 2, 2);
    }
}
