//! Figure 7 — model verification.
//!
//! "Simulation and theoretical results for normal playback and (a) only
//! fast-forward … (b) only rewind … (c) only pause … (d) all kinds of VCR
//! requests with P_FF = 0.2, P_RW = 0.2, P_PAU = 0.6. Interarrival times
//! are exponential and 1/λ = 2 minutes; duration of VCR requests is drawn
//! from a skewed gamma distribution with mean = 8 minutes (α = 2, γ = 4)."
//!
//! The probability of a hit is plotted as a function of the number of
//! partitions `n`, one curve per maximum waiting time `w`; movie length
//! `l = 120`, `R_FF = R_RW = 3 R_PB`.

use std::sync::Arc;

use vod_dist::kinds::Gamma;
use vod_model::{p_hit_single_dist, ModelOptions, Rates, SweepExecutor, SystemParams, VcrMix};
use vod_sim::{run_replications, SimConfig};
use vod_workload::BehaviorModel;

/// Which panel of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Panel {
    /// (a) FF only.
    A,
    /// (b) RW only.
    B,
    /// (c) PAU only.
    C,
    /// (d) mixed 0.2/0.2/0.6.
    D,
}

impl Panel {
    /// Parse `a|b|c|d` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "a" | "ff" => Some(Panel::A),
            "b" | "rw" => Some(Panel::B),
            "c" | "pau" => Some(Panel::C),
            "d" | "mix" => Some(Panel::D),
            _ => None,
        }
    }

    /// The VCR mix of this panel.
    pub fn mix(self) -> VcrMix {
        match self {
            Panel::A => VcrMix::ff_only(),
            Panel::B => VcrMix::rw_only(),
            Panel::C => VcrMix::pause_only(),
            Panel::D => VcrMix::paper_fig7d(),
        }
    }

    /// The mix as a `(ff, rw, pau)` tuple for the behavior model.
    pub fn mix_tuple(self) -> (f64, f64, f64) {
        match self {
            Panel::A => (1.0, 0.0, 0.0),
            Panel::B => (0.0, 1.0, 0.0),
            Panel::C => (0.0, 0.0, 1.0),
            Panel::D => (0.2, 0.2, 0.6),
        }
    }

    /// Panel label, e.g. `"7a"`.
    pub fn label(self) -> &'static str {
        match self {
            Panel::A => "7a",
            Panel::B => "7b",
            Panel::C => "7c",
            Panel::D => "7d",
        }
    }
}

/// One point of a Figure-7 curve.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Point {
    /// Partitions / streams `n`.
    pub n: u32,
    /// Buffer minutes `B = l − n·w`.
    pub buffer: f64,
    /// Analytic `P(hit)`.
    pub model: f64,
    /// Simulated hit ratio (mean over replications).
    pub sim: f64,
    /// 95% half-width over replications.
    pub sim_ci: f64,
}

/// Experiment configuration (defaults follow the paper's §4).
#[derive(Debug, Clone)]
pub struct Fig7Config {
    /// Movie length (minutes).
    pub movie_len: f64,
    /// Maximum waiting times, one curve each.
    pub waits: Vec<f64>,
    /// Stream counts along the x axis.
    pub ns: Vec<u32>,
    /// Simulation replications per point.
    pub replications: u32,
    /// Simulated horizon in movie lengths.
    pub horizon_movies: f64,
    /// Mean playback minutes between VCR interactions.
    pub mean_play_between: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Fig7Config {
    fn default() -> Self {
        Self {
            movie_len: 120.0,
            waits: vec![0.5, 1.0, 2.0],
            ns: vec![10, 20, 30, 40, 50, 60, 80, 100],
            replications: 3,
            horizon_movies: 30.0,
            mean_play_between: 30.0,
            seed: 1997,
        }
    }
}

/// Generate one curve (fixed `w`) of a Figure-7 panel.
pub fn curve(panel: Panel, cfg: &Fig7Config, w: f64) -> Vec<Fig7Point> {
    curve_with(panel, cfg, w, &SweepExecutor::serial())
}

/// [`curve`] fanning the per-`n` model evaluation and seeded simulation
/// across `exec`. Each point's simulation seed derives only from `cfg.seed`
/// and its own `n`, so the output is bitwise identical to the serial curve.
pub fn curve_with(panel: Panel, cfg: &Fig7Config, w: f64, exec: &SweepExecutor) -> Vec<Fig7Point> {
    let dist = Gamma::paper_fig7();
    let opts = ModelOptions::default();
    let pts = exec.map(&cfg.ns, |&n| {
        let Ok(params) = SystemParams::from_wait(cfg.movie_len, w, n, Rates::paper()) else {
            return None; // n·w exceeds l: no such configuration
        };
        let model = p_hit_single_dist(&params, &dist, &panel.mix(), &opts).total;
        let behavior =
            BehaviorModel::uniform_dist(panel.mix_tuple(), cfg.mean_play_between, Arc::new(dist));
        let mut sim_cfg = SimConfig::new(params, behavior);
        sim_cfg.horizon = cfg.horizon_movies * cfg.movie_len;
        let agg = run_replications(&sim_cfg, cfg.seed.wrapping_add(n as u64), cfg.replications);
        Some(Fig7Point {
            n,
            buffer: params.buffer(),
            model,
            sim: agg.overall.mean(),
            sim_ci: agg.overall.ci_half_width(1.96),
        })
    });
    pts.into_iter().flatten().collect()
}

/// Generate all curves of a panel, keyed by `w`.
pub fn panel_data(panel: Panel, cfg: &Fig7Config) -> Vec<(f64, Vec<Fig7Point>)> {
    panel_data_with(panel, cfg, &SweepExecutor::serial())
}

/// [`panel_data`] with an executor; curves run in sequence, points within
/// each curve in parallel.
pub fn panel_data_with(
    panel: Panel,
    cfg: &Fig7Config,
    exec: &SweepExecutor,
) -> Vec<(f64, Vec<Fig7Point>)> {
    cfg.waits
        .iter()
        .map(|&w| (w, curve_with(panel, cfg, w, exec)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_panel_matches_paper_shape() {
        // Small configuration for test speed: the defining Figure-7
        // property is that model and simulation agree closely and that
        // the hit probability falls as n grows at fixed w.
        let cfg = Fig7Config {
            ns: vec![20, 60],
            replications: 2,
            horizon_movies: 15.0,
            ..Default::default()
        };
        let pts = curve(Panel::A, &cfg, 1.0);
        assert_eq!(pts.len(), 2);
        assert!(pts[0].model > pts[1].model, "P(hit) must fall with n");
        for p in &pts {
            assert!(
                (p.model - p.sim).abs() < 0.05,
                "n={}: model {} vs sim {}",
                p.n,
                p.model,
                p.sim
            );
        }
    }

    #[test]
    fn parallel_curve_matches_serial_bitwise() {
        let cfg = Fig7Config {
            ns: vec![10, 20, 40, 130], // 130·1.0 > 120 exercises the skip path
            replications: 1,
            horizon_movies: 8.0,
            ..Default::default()
        };
        let serial = curve(Panel::D, &cfg, 1.0);
        assert_eq!(serial.len(), 3, "n = 130 must be skipped");
        let exec = SweepExecutor::new(4);
        let par = curve_with(Panel::D, &cfg, 1.0, &exec);
        let again = curve_with(Panel::D, &cfg, 1.0, &exec);
        for other in [&par, &again] {
            assert_eq!(other.len(), serial.len());
            for (a, b) in serial.iter().zip(other) {
                assert_eq!(a.n, b.n);
                assert_eq!(a.buffer.to_bits(), b.buffer.to_bits());
                assert_eq!(a.model.to_bits(), b.model.to_bits(), "n={}", a.n);
                assert_eq!(a.sim.to_bits(), b.sim.to_bits(), "n={}", a.n);
                assert_eq!(a.sim_ci.to_bits(), b.sim_ci.to_bits(), "n={}", a.n);
            }
        }
    }

    #[test]
    fn panel_parse() {
        assert_eq!(Panel::parse("a"), Some(Panel::A));
        assert_eq!(Panel::parse("MIX"), Some(Panel::D));
        assert_eq!(Panel::parse("x"), None);
    }
}
