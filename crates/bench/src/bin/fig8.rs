//! Regenerate Figure 8: feasible (B, n) pairs for the Example-1 movies in
//! 5-minute buffer steps at `P* = 0.5`.
//!
//! ```sh
//! cargo run --release -p vod-bench --bin fig8 -- [--csv] [--step MINUTES] [--threads N]
//! ```

use vod_bench::fig8::data_with;
use vod_bench::table::{num, Table};
use vod_model::{SweepExecutor, VcrMix};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv = false;
    let mut step = 5.0;
    let mut exec = SweepExecutor::serial();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" => csv = true,
            "--step" => {
                i += 1;
                step = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("expected --step MINUTES"));
            }
            "--threads" => {
                i += 1;
                let n = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("expected --threads N"));
                exec = SweepExecutor::new(n);
            }
            other => die(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    println!("# Figure 8: feasible (B, n) pairs, P* = 0.5, {step}-minute buffer steps");
    println!("# movies: (l=75, w=0.1, gamma mean 8), (l=60, w=0.5, exp mean 5), (l=90, w=0.25, exp mean 2)");
    for series in data_with(VcrMix::paper_fig7d(), step, &exec) {
        println!("## {}", series.movie);
        let mut t = Table::new(vec!["B", "n", "P(hit)", "feasible"]);
        for p in &series.points {
            t.row(vec![
                num(p.buffer, 1),
                p.n_streams.to_string(),
                num(p.p_hit, 4),
                if p.feasible {
                    "yes".into()
                } else {
                    "no".to_string()
                },
            ]);
        }
        print!("{}", if csv { t.to_csv() } else { t.render() });
        let max_feasible = series
            .feasible()
            .map(|p| p.n_streams)
            .max()
            .map(|n| n.to_string())
            .unwrap_or_else(|| "none".into());
        println!("max feasible n: {max_feasible}\n");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("fig8: {msg}");
    std::process::exit(2);
}
