//! Extension experiment: the full §5 loop at catalog scale — size the
//! Example-1 movies with the analytic model, then simulate all three
//! together sharing one VCR reserve and compare planned vs simulated
//! hit probabilities per movie, plus reserve denial rates.
//!
//! ```sh
//! cargo run --release -p vod-bench --bin catalog_sim -- [--streams N] [--threads N]
//! ```

use std::sync::Arc;

use vod_bench::table::{num, Table};
use vod_model::{ModelOptions, SweepExecutor, VcrMix};
use vod_sim::{run_catalog_seeded, CatalogConfig, MovieLoad};
use vod_sizing::{allocate_min_buffer_with, erlang_b, example1_movies, Budgets};
use vod_workload::BehaviorModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut streams = 400u32;
    let mut exec = SweepExecutor::serial();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--streams" => {
                i += 1;
                streams = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("catalog_sim: expected --streams N");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                i += 1;
                let n = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("catalog_sim: expected --threads N");
                    std::process::exit(2);
                });
                exec = SweepExecutor::new(n);
            }
            other => {
                eprintln!("catalog_sim: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let movies = example1_movies(VcrMix::paper_fig7d());
    let opts = ModelOptions::default();
    let plan = allocate_min_buffer_with(
        &movies,
        Budgets {
            streams,
            buffer: None,
        },
        &opts,
        &exec,
    )
    .expect("satisfiable");
    println!(
        "# Catalog simulation: Example-1 movies, stream budget {streams} \
         (plan uses {} + {:.1} buffer min)",
        plan.total_streams(),
        plan.total_buffer()
    );

    let loads: Vec<MovieLoad> = movies
        .iter()
        .zip(&plan.allocations)
        .map(|(m, a)| MovieLoad {
            params: m.params_for_streams(a.n_streams).expect("feasible"),
            mean_interarrival: 3.0,
            behavior: BehaviorModel::uniform_dist((0.2, 0.2, 0.6), 30.0, Arc::clone(&m.dist)),
        })
        .collect();
    let cfg = CatalogConfig {
        movies: loads,
        horizon: 60.0 * 120.0,
        warmup: 5.0 * 120.0,
        count_ff_end_as_hit: true,
        collect_trace: false,
        dedicated_capacity: None,
        faults: vod_runtime::FaultPlan::empty(),
        backend: vod_runtime::BackendKind::BatchingBuffering,
    };
    let free = run_catalog_seeded(&cfg, 2026);

    println!("\n## planned vs simulated hit probability (shared catalog)");
    let mut t = Table::new(vec!["movie", "n*", "B*", "planned", "simulated", "resumes"]);
    for (a, r) in plan.allocations.iter().zip(&free.per_movie) {
        t.row(vec![
            a.movie.clone(),
            a.n_streams.to_string(),
            num(a.buffer, 1),
            num(a.p_hit, 3),
            num(r.runtime.resumes.value(), 3),
            r.runtime.resumes.trials().to_string(),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\n## shared VCR reserve (offered load {:.2} Erlangs, peak {:.0})",
        free.runtime.dedicated_avg, free.runtime.dedicated_peak
    );
    let mut t = Table::new(vec!["reserve", "sim denial", "Erlang-B"]);
    for factor in [1.0, 1.2, 1.5] {
        let cap = ((free.runtime.dedicated_avg * factor).round() as u32).max(1);
        let mut capped = cfg.clone();
        capped.dedicated_capacity = Some(cap);
        let run = run_catalog_seeded(&capped, 2027);
        let measured = (run.runtime.vcr_denied + run.runtime.resume_starved) as f64
            / run.runtime.acquisition_attempts.max(1) as f64;
        t.row(vec![
            cap.to_string(),
            num(measured, 4),
            num(erlang_b(cap, free.runtime.dedicated_avg), 4),
        ]);
    }
    print!("{}", t.render());
}
