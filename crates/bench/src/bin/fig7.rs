//! Regenerate Figure 7: hit probability vs number of partitions, model
//! against simulation.
//!
//! ```sh
//! cargo run --release -p vod-bench --bin fig7 -- [--panel a|b|c|d] [--csv] [--fast] [--threads N]
//! ```
//!
//! Without `--panel`, all four panels are produced. `--threads N` fans the
//! per-`n` evaluations across N workers (0 = all cores); output is
//! bitwise identical to the serial run.

use vod_bench::ascii::{plot, Series};
use vod_bench::fig7::{panel_data_with, Fig7Config, Panel};
use vod_bench::table::{num, Table};
use vod_model::SweepExecutor;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut panels = vec![Panel::A, Panel::B, Panel::C, Panel::D];
    let mut csv = false;
    let mut do_plot = false;
    let mut exec = SweepExecutor::serial();
    let mut cfg = Fig7Config::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--panel" => {
                i += 1;
                let p = args
                    .get(i)
                    .and_then(|s| Panel::parse(s))
                    .unwrap_or_else(|| die("expected --panel a|b|c|d"));
                panels = vec![p];
            }
            "--csv" => csv = true,
            "--plot" => do_plot = true,
            "--threads" => {
                i += 1;
                let n = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("expected --threads N"));
                exec = SweepExecutor::new(n);
            }
            "--fast" => {
                cfg.ns = vec![10, 30, 60, 100];
                cfg.waits = vec![1.0];
                cfg.replications = 2;
                cfg.horizon_movies = 15.0;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    for panel in panels {
        println!(
            "# Figure {}: l = {}, gamma(2,4) durations, 1/lambda = 2 min, mix = {:?}",
            panel.label(),
            cfg.movie_len,
            panel.mix_tuple()
        );
        for (w, points) in panel_data_with(panel, &cfg, &exec) {
            println!("## w = {w} minutes");
            let mut t = Table::new(vec!["n", "B", "model", "sim", "ci95", "|diff|"]);
            for p in &points {
                t.row(vec![
                    p.n.to_string(),
                    num(p.buffer, 1),
                    num(p.model, 4),
                    num(p.sim, 4),
                    num(p.sim_ci, 4),
                    num((p.model - p.sim).abs(), 4),
                ]);
            }
            print!("{}", if csv { t.to_csv() } else { t.render() });
            if do_plot {
                let model = Series {
                    label: "model".into(),
                    points: points.iter().map(|p| (p.n as f64, p.model)).collect(),
                };
                let sim = Series {
                    label: "+sim".into(),
                    points: points.iter().map(|p| (p.n as f64, p.sim)).collect(),
                };
                print!("{}", plot(&[model, sim], 64, 16));
            }
            println!();
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("fig7: {msg}");
    std::process::exit(2);
}
