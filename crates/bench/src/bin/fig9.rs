//! Regenerate Figure 9: system cost vs total I/O streams for
//! φ ∈ {3, 4, 6, 10, 11, 16} over the Example-1 catalog.
//!
//! ```sh
//! cargo run --release -p vod-bench --bin fig9 -- [--csv] [--stride N] [--threads N]
//! ```

use vod_bench::ascii::{plot, Series};
use vod_bench::fig9::{data_with, PAPER_PHIS};
use vod_bench::table::{num, Table};
use vod_model::{SweepExecutor, VcrMix};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv = false;
    let mut do_plot = false;
    let mut stride = 20;
    let mut exec = SweepExecutor::serial();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" => csv = true,
            "--plot" => do_plot = true,
            "--stride" => {
                i += 1;
                stride = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("expected --stride N"));
            }
            "--threads" => {
                i += 1;
                let n = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("expected --threads N"));
                exec = SweepExecutor::new(n);
            }
            other => die(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    println!("# Figure 9: system cost C = C_n(phi*SumB + Sumn) vs total streams");
    let curves = data_with(VcrMix::paper_fig7d(), stride, &exec);
    for (panel, (phi, curve)) in PAPER_PHIS.iter().zip(&curves).enumerate() {
        let letter = (b'a' + panel as u8) as char;
        println!("## panel 9({letter}): phi = {phi}");
        let mut t = Table::new(vec!["streams", "buffer", "cost"]);
        for p in &curve.points {
            t.row(vec![
                p.total_streams.to_string(),
                num(p.total_buffer, 1),
                num(p.cost, 1),
            ]);
        }
        print!("{}", if csv { t.to_csv() } else { t.render() });
        if do_plot {
            let series = Series {
                label: format!("cost(phi={phi})"),
                points: curve
                    .points
                    .iter()
                    .map(|p| (p.total_streams as f64, p.cost))
                    .collect(),
            };
            print!("{}", plot(&[series], 64, 14));
        }
        if let Some(best) = curve.optimum() {
            println!(
                "optimum: {} streams, {:.1} buffer minutes, cost {:.1}\n",
                best.total_streams, best.total_buffer, best.cost
            );
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("fig9: {msg}");
    std::process::exit(2);
}
