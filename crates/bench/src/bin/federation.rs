//! Federation chaos matrix (schema v1): drive sharded federations
//! through a seed × plan × shard-count grid with per-tick conservation
//! audits, checking that
//!
//! * every displaced session is accounted (re-admitted, re-waiting, or
//!   denied) — the ledger balances in every cell,
//! * identical `(seed, config, plan)` inputs reproduce
//!   bitwise-identical outcomes,
//! * a **one-shard federation with an empty plan is bitwise-identical
//!   to the plain `run_harness`** on the same config/seed (the
//!   federation layer adds zero behavior until shards/faults exist),
//!   reported as `"identity_ok"`, and
//! * Zipf-drifting and flash-crowd workload shapes stay conserved under
//!   whole-shard outage + recovery.
//!
//! Writes `results/FEDERATION_REPORT.json` (3 seeds × \[1,2,4\] shards ×
//! 4 plans + 2 shaped cells × 3 seeds = 42 cells); exits non-zero on
//! any violation.
//!
//! ```sh
//! cargo run --release -p vod-bench --bin federation
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use vod_bench::table::Table;
use vod_dist::kinds::Gamma;
use vod_federation::{
    run_federation, FederationConfig, FederationHarnessConfig, FederationOutcome, ShardSpec,
    WorkloadShape,
};
use vod_model::{Rates, SystemParams};
use vod_runtime::{BackendKind, DegradePolicy, FaultEvent, FaultKind, FaultPlan};
use vod_server::{run_harness, HarnessConfig, HostedMovie, MovieId, ServerConfig};
use vod_workload::BehaviorModel;

const MOVIE_LEN: f64 = 120.0;
const STREAMS: u32 = 20;
const WARMUP: u64 = 240;
const MEASURE: u64 = 1200;
const SEEDS: [u64; 3] = [11, 2026, 77_777];
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn behavior() -> BehaviorModel {
    BehaviorModel::uniform_dist((0.2, 0.2, 0.6), 30.0, Arc::new(Gamma::paper_fig7()))
}

/// The same single-movie server the chaos matrix drives (so the
/// identity leg compares against the established harness baseline).
fn shard_server() -> ServerConfig {
    let params = SystemParams::from_wait(MOVIE_LEN, 1.0, STREAMS, Rates::paper())
        .expect("valid configuration");
    let movie =
        HostedMovie::from_allocation(MovieId(0), MOVIE_LEN as u32, STREAMS, params.buffer());
    ServerConfig {
        piggyback: None,
        ..ServerConfig::provisioned(vec![movie], 40)
    }
}

/// A federation of `shards` replicas of the single-movie shard server.
fn federation_config(shards: usize) -> FederationConfig {
    FederationConfig {
        shards: (0..shards)
            .map(|_| ShardSpec {
                backend: BackendKind::BatchingBuffering,
                server: shard_server(),
            })
            .collect(),
        placement: vec![(0..shards).map(|s| (s, MovieId(0))).collect()],
        policy: DegradePolicy::default(),
    }
}

fn workload_config(shape: WorkloadShape) -> FederationHarnessConfig {
    FederationHarnessConfig {
        movie: 0,
        extra_movies: vec![],
        behavior: behavior(),
        mean_interarrival: 2.0,
        warmup: WARMUP,
        measure: MEASURE,
        workload: shape,
    }
}

/// The named fault plans of the matrix, sized to `shards`. Every event
/// lands inside the measured window.
fn plans(shards: usize) -> Vec<(&'static str, FaultPlan)> {
    let last = (shards - 1) as u32;
    vec![
        ("baseline", FaultPlan::empty()),
        (
            "outage-recovery",
            FaultPlan::new(vec![
                FaultEvent {
                    at: 520,
                    kind: FaultKind::ShardOutage { shard: 0 },
                },
                FaultEvent {
                    at: 640,
                    kind: FaultKind::ShardRecovery { shard: 0 },
                },
            ]),
        ),
        (
            "shard-storm",
            FaultPlan::generate_federation(9, WARMUP + MEASURE, 10, shards as u32),
        ),
        (
            "mixed",
            FaultPlan::new(vec![
                FaultEvent {
                    at: 420,
                    kind: FaultKind::DiskStreamLoss { count: 4 },
                },
                FaultEvent {
                    at: 520,
                    kind: FaultKind::ShardOutage { shard: last },
                },
                FaultEvent {
                    at: 600,
                    kind: FaultKind::DiskSlowdown {
                        period: 3,
                        duration: 120,
                    },
                },
                FaultEvent {
                    at: 700,
                    kind: FaultKind::ShardRecovery { shard: last },
                },
                FaultEvent {
                    at: 800,
                    kind: FaultKind::BufferShrink { segments: 30 },
                },
                FaultEvent {
                    at: 1000,
                    kind: FaultKind::BufferRestore { segments: 30 },
                },
            ]),
        ),
    ]
}

fn shape_name(shape: WorkloadShape) -> &'static str {
    match shape {
        WorkloadShape::RoundRobin => "round-robin",
        WorkloadShape::ZipfDrift { .. } => "zipf-drift",
        WorkloadShape::FlashCrowd { .. } => "flash-crowd",
    }
}

fn json_cell(
    seed: u64,
    shards: usize,
    plan_name: &str,
    shape: WorkloadShape,
    plan: &FaultPlan,
    out: &FederationOutcome,
) -> String {
    format!(
        "    {{\"seed\": {seed}, \"shards\": {shards}, \"plan\": \"{plan_name}\", \
         \"workload\": \"{}\", \"plan_events\": {}, \"violations\": {}, \
         \"sessions_opened\": {}, \"sessions_denied\": {}, \"sessions_done\": {}, \
         \"degraded_at_end\": {}, \"displaced_in_flight\": {}, \"federation\": {}}}",
        shape_name(shape),
        plan.to_json(),
        out.violation_count,
        out.sessions_opened,
        out.sessions_denied_admission,
        out.sessions_done,
        out.degraded_at_end,
        out.displaced_in_flight,
        out.fed.to_json(),
    )
}

/// Run one cell twice (determinism pin) and collect its failures.
fn run_cell(
    seed: u64,
    shards: usize,
    plan_name: &str,
    plan: &FaultPlan,
    shape: WorkloadShape,
    failures: &mut Vec<String>,
) -> FederationOutcome {
    let cfg = workload_config(shape);
    let out = run_federation(federation_config(shards), plan, &cfg, seed);
    let again = run_federation(federation_config(shards), plan, &cfg, seed);
    let tag = format!(
        "seed {seed} shards {shards} plan {plan_name} workload {}",
        shape_name(shape)
    );
    if out != again {
        failures.push(format!("{tag}: outcome not bitwise deterministic"));
    }
    if out.violation_count > 0 {
        failures.push(format!(
            "{tag}: {} invariant violation(s), first: {}",
            out.violation_count,
            out.violations.first().map_or("?", |v| v.as_str()),
        ));
    }
    let resolved = out.fed.readmitted_cohort
        + out.fed.readmitted_dedicated
        + out.fed.denied_transient
        + out.fed.denied_permanent;
    if out.fed.displaced_total != resolved + out.displaced_in_flight {
        failures.push(format!(
            "{tag}: displaced ledger out of balance ({} displaced, {} resolved, {} in flight)",
            out.fed.displaced_total, resolved, out.displaced_in_flight
        ));
    }
    out
}

fn main() -> ExitCode {
    let mut failures: Vec<String> = Vec::new();
    let mut cells = Vec::new();
    let mut identity_ok = true;
    let mut t = Table::new(vec![
        "seed",
        "shards",
        "plan",
        "workload",
        "violat.",
        "opened",
        "denied",
        "displaced",
        "cohort",
        "dedic.",
        "den.trans",
        "den.perm",
    ]);
    let push_row = |t: &mut Table,
                    seed: u64,
                    shards: usize,
                    plan_name: &str,
                    shape: WorkloadShape,
                    out: &FederationOutcome| {
        t.row(vec![
            seed.to_string(),
            shards.to_string(),
            plan_name.to_string(),
            shape_name(shape).to_string(),
            out.violation_count.to_string(),
            out.sessions_opened.to_string(),
            out.sessions_denied_admission.to_string(),
            out.fed.displaced_total.to_string(),
            out.fed.readmitted_cohort.to_string(),
            out.fed.readmitted_dedicated.to_string(),
            out.fed.denied_transient.to_string(),
            out.fed.denied_permanent.to_string(),
        ]);
    };
    for seed in SEEDS {
        // Identity leg: the 1-shard empty-plan federation must be
        // bitwise-identical to the plain harness.
        let plain = HarnessConfig {
            server: shard_server(),
            movie: MovieId(0),
            extra_movies: vec![],
            behavior: behavior(),
            mean_interarrival: 2.0,
            warmup: WARMUP,
            measure: MEASURE,
        };
        let reference = run_harness(&plain, seed);
        for shards in SHARD_COUNTS {
            for (plan_name, plan) in plans(shards) {
                let out = run_cell(
                    seed,
                    shards,
                    plan_name,
                    &plan,
                    WorkloadShape::RoundRobin,
                    &mut failures,
                );
                if shards == 1 && plan.is_empty() {
                    let matches = out.per_shard[0].as_ref() == Some(&reference)
                        && out.sessions_denied_admission == 0;
                    if !matches {
                        identity_ok = false;
                        failures.push(format!(
                            "seed {seed}: 1-shard empty-plan federation diverged from run_harness"
                        ));
                    }
                }
                push_row(
                    &mut t,
                    seed,
                    shards,
                    plan_name,
                    WorkloadShape::RoundRobin,
                    &out,
                );
                cells.push(json_cell(
                    seed,
                    shards,
                    plan_name,
                    WorkloadShape::RoundRobin,
                    &plan,
                    &out,
                ));
            }
        }
        // Shaped-load cells: drifting Zipf popularity and a flash crowd
        // over a 2-shard federation under whole-shard outage+recovery.
        let (plan_name, plan) = ("outage-recovery", &plans(2)[1].1);
        for shape in [
            WorkloadShape::ZipfDrift {
                start_skew: 0.2,
                end_skew: 1.6,
            },
            WorkloadShape::FlashCrowd {
                at: 520,
                duration: 120,
                factor: 4.0,
                movie: 0,
            },
        ] {
            let out = run_cell(seed, 2, plan_name, plan, shape, &mut failures);
            push_row(&mut t, seed, 2, plan_name, shape, &out);
            cells.push(json_cell(seed, 2, plan_name, shape, plan, &out));
        }
    }
    println!(
        "# Federation chaos matrix (l = 120, n = {STREAMS}, seeds {SEEDS:?}, \
         shards {SHARD_COUNTS:?}, warmup {WARMUP}, measure {MEASURE})"
    );
    print!("{}", t.render());
    println!(
        "(displaced/cohort/dedicated/denied are front-tier ledger counters \
         over the measured window)"
    );

    let ok = failures.is_empty();
    let json = format!(
        "{{\n  \"schema\": 1,\n  \"ok\": {ok},\n  \"identity_ok\": {identity_ok},\n  \
         \"failures\": [{}],\n  \"cells\": [\n{}\n  ]\n}}\n",
        failures
            .iter()
            .map(|f| format!("\"{}\"", f.replace('"', "'")))
            .collect::<Vec<_>>()
            .join(", "),
        cells.join(",\n")
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/FEDERATION_REPORT.json", json).expect("write json");
    println!(
        "\nwrote results/FEDERATION_REPORT.json ({} cells)",
        cells.len()
    );
    if !ok {
        for f in &failures {
            eprintln!("FEDERATION FAILURE: {f}");
        }
        return ExitCode::FAILURE;
    }
    println!("all federation invariants held");
    ExitCode::SUCCESS
}
