//! Chaos matrix (schema v2): drive **all three delivery backends**
//! through a seed × fault-plan grid — the incumbent batching server via
//! [`vod_server::run_chaos`], pyramid broadcast and dedicated unicast
//! via [`vod_server::run_chaos_backend`] — checking after **every
//! tick** that
//!
//! * no session is lost or double-counted,
//! * streams are conserved (`in_use + free + failed == provisioned`,
//!   plus each backend's own audits: channel-wheel phase and reception
//!   fronts for pyramid, reserve/queue conservation for dedicated),
//! * cumulative metrics never move backwards,
//! * identical `(seed, plan, backend)` inputs reproduce
//!   bitwise-identical outcomes, and
//! * the empty plan reproduces the plain harness exactly **per
//!   backend** (graceful degradation must cost nothing when nothing
//!   fails).
//!
//! Each plan also runs through the continuous-time simulator's fault
//! mirror under the same backend so the hit-ratio impact is visible on
//! both legs. Writes `results/CHAOS_REPORT.json` (3 seeds × 6 plans ×
//! 3 backends = 54 cells); exits non-zero on any violation.
//!
//! ```sh
//! cargo run --release -p vod-bench --bin chaos
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use vod_bench::table::{num, Table};
use vod_dist::kinds::Gamma;
use vod_model::{Rates, SystemParams};
use vod_runtime::{BackendKind, DegradePolicy, FaultEvent, FaultKind, FaultPlan};
use vod_server::{
    run_chaos, run_chaos_backend, run_harness, run_harness_backend, ChaosOutcome, HarnessConfig,
    HostedMovie, MovieId, ServerConfig,
};
use vod_sim::{run_seeded, SimConfig};
use vod_workload::BehaviorModel;

const MOVIE_LEN: f64 = 120.0;
const STREAMS: u32 = 20;
const WARMUP: u64 = 240;
const MEASURE: u64 = 1200;
const SEEDS: [u64; 3] = [11, 2026, 77_777];

fn behavior() -> BehaviorModel {
    BehaviorModel::uniform_dist((0.2, 0.2, 0.6), 30.0, Arc::new(Gamma::paper_fig7()))
}

fn harness_config() -> HarnessConfig {
    let params = SystemParams::from_wait(MOVIE_LEN, 1.0, STREAMS, Rates::paper())
        .expect("valid configuration");
    let movie =
        HostedMovie::from_allocation(MovieId(0), MOVIE_LEN as u32, STREAMS, params.buffer());
    HarnessConfig {
        server: ServerConfig {
            piggyback: None,
            ..ServerConfig::provisioned(vec![movie], 40)
        },
        movie: MovieId(0),
        extra_movies: vec![],
        behavior: behavior(),
        mean_interarrival: 2.0,
        warmup: WARMUP,
        measure: MEASURE,
    }
}

/// The named fault plans of the matrix. Every event lands inside the
/// measured window so the degradation shows up in the metrics.
fn plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("baseline", FaultPlan::empty()),
        (
            "disk-loss",
            FaultPlan::new(vec![FaultEvent {
                at: 420,
                kind: FaultKind::DiskStreamLoss { count: 4 },
            }]),
        ),
        (
            "disk-outage",
            FaultPlan::new(vec![FaultEvent {
                at: 520,
                kind: FaultKind::DiskOutage {
                    count: 6,
                    recover_after: 60,
                },
            }]),
        ),
        (
            "slowdown",
            FaultPlan::new(vec![FaultEvent {
                at: 600,
                kind: FaultKind::DiskSlowdown {
                    period: 3,
                    duration: 120,
                },
            }]),
        ),
        (
            "buffer-squeeze",
            FaultPlan::new(vec![
                FaultEvent {
                    at: 450,
                    kind: FaultKind::BufferShrink { segments: 30 },
                },
                FaultEvent {
                    at: 900,
                    kind: FaultKind::BufferRestore { segments: 30 },
                },
            ]),
        ),
        ("storm", FaultPlan::generate(9, WARMUP + MEASURE, 8)),
    ]
}

/// Run the sim leg with the same plan under `backend` and return its
/// overall hit ratio.
fn sim_hit_ratio(plan: &FaultPlan, seed: u64, backend: BackendKind) -> f64 {
    let params = SystemParams::from_wait(MOVIE_LEN, 1.0, STREAMS, Rates::paper())
        .expect("valid configuration");
    let mut cfg = SimConfig::new(params, behavior());
    cfg.horizon = (WARMUP + MEASURE) as f64;
    cfg.warmup = WARMUP as f64;
    cfg.faults = plan.clone();
    cfg.backend = backend;
    run_seeded(&cfg, seed).runtime.hit_ratio()
}

fn json_case(seed: u64, name: &str, plan: &FaultPlan, out: &ChaosOutcome, sim_hit: f64) -> String {
    let violations: Vec<String> = out
        .violations
        .iter()
        .map(|v| format!("\"{}\"", v.replace('"', "'")))
        .collect();
    format!(
        "    {{\"seed\": {seed}, \"plan\": \"{name}\", \"plan_events\": {}, \
         \"violations\": {}, \"violation_details\": [{}], \
         \"sessions_opened\": {}, \"sessions_done\": {}, \"degraded_at_end\": {}, \
         \"sim_hit_ratio\": {:.6}, \"metrics\": {}}}",
        plan.to_json(),
        out.violation_count,
        violations.join(", "),
        out.sessions_opened,
        out.sessions_done,
        out.degraded_at_end,
        sim_hit,
        out.metrics.to_json(),
    )
}

/// Schema-v2 cell for the non-incumbent backends: [`json_case`] plus a
/// `"backend"` discriminator. The incumbent's cells keep the v1 shape
/// (no `backend` key) so they stay byte-identical across reports.
fn json_case_backend(
    seed: u64,
    backend: BackendKind,
    name: &str,
    plan: &FaultPlan,
    out: &ChaosOutcome,
    sim_hit: f64,
) -> String {
    let violations: Vec<String> = out
        .violations
        .iter()
        .map(|v| format!("\"{}\"", v.replace('"', "'")))
        .collect();
    format!(
        "    {{\"seed\": {seed}, \"backend\": \"{}\", \"plan\": \"{name}\", \
         \"plan_events\": {}, \
         \"violations\": {}, \"violation_details\": [{}], \
         \"sessions_opened\": {}, \"sessions_done\": {}, \"degraded_at_end\": {}, \
         \"sim_hit_ratio\": {:.6}, \"metrics\": {}}}",
        backend.name(),
        plan.to_json(),
        out.violation_count,
        violations.join(", "),
        out.sessions_opened,
        out.sessions_done,
        out.degraded_at_end,
        sim_hit,
        out.metrics.to_json(),
    )
}

fn main() -> ExitCode {
    let cfg = harness_config();
    let policy = DegradePolicy::default();
    let mut failures: Vec<String> = Vec::new();
    let mut json_cases = Vec::new();
    let mut t = Table::new(vec![
        "seed",
        "backend",
        "plan",
        "faults",
        "violat.",
        "degr.entries",
        "rejoined",
        "dedicated",
        "den.trans",
        "den.perm",
        "srv hit",
        "sim hit",
    ]);
    for seed in SEEDS {
        // Incumbent batching/buffering leg: untouched v1 cells, pinned
        // byte-identical across reports.
        let fault_free = run_harness(&cfg, seed);
        for (name, plan) in plans() {
            let out = run_chaos(&cfg, seed, &plan, policy);
            let again = run_chaos(&cfg, seed, &plan, policy);
            if out != again {
                failures.push(format!(
                    "seed {seed} plan {name}: outcome not bitwise deterministic"
                ));
            }
            if plan.is_empty() && out.metrics != fault_free {
                failures.push(format!(
                    "seed {seed} plan {name}: empty plan diverged from run_harness"
                ));
            }
            if out.violation_count > 0 {
                failures.push(format!(
                    "seed {seed} plan {name}: {} invariant violation(s), first: {}",
                    out.violation_count,
                    out.violations.first().map_or("?", |v| v.as_str()),
                ));
            }
            let sim_hit = sim_hit_ratio(&plan, seed, BackendKind::BatchingBuffering);
            t.row(vec![
                seed.to_string(),
                "batching".to_string(),
                name.to_string(),
                out.metrics.faults_injected.to_string(),
                out.violation_count.to_string(),
                out.metrics.degraded_entries.to_string(),
                out.metrics.degraded_rejoined.to_string(),
                out.metrics.degraded_dedicated.to_string(),
                out.metrics.denied_transient.to_string(),
                out.metrics.denied_permanent.to_string(),
                num(out.metrics.hit_ratio(), 3),
                num(sim_hit, 3),
            ]);
            json_cases.push(json_case(seed, name, &plan, &out, sim_hit));
        }
        // Alternative backends: same grid through the backend-generic
        // harness, with each backend's own invariant audits on.
        for kind in [BackendKind::PyramidBroadcast, BackendKind::DedicatedStream] {
            let bname = kind.name();
            let fault_free = run_harness_backend(&cfg, kind, seed);
            for (name, plan) in plans() {
                let run = run_chaos_backend(&cfg, kind, seed, &plan, policy);
                let again = run_chaos_backend(&cfg, kind, seed, &plan, policy);
                if run != again {
                    failures.push(format!(
                        "seed {seed} backend {bname} plan {name}: \
                         outcome not bitwise deterministic"
                    ));
                }
                if plan.is_empty() && run != fault_free {
                    failures.push(format!(
                        "seed {seed} backend {bname} plan {name}: \
                         empty plan diverged from the plain harness"
                    ));
                }
                let out = &run.outcome;
                if out.violation_count > 0 {
                    failures.push(format!(
                        "seed {seed} backend {bname} plan {name}: \
                         {} invariant violation(s), first: {}",
                        out.violation_count,
                        out.violations.first().map_or("?", |v| v.as_str()),
                    ));
                }
                let sim_hit = sim_hit_ratio(&plan, seed, kind);
                t.row(vec![
                    seed.to_string(),
                    match kind {
                        BackendKind::PyramidBroadcast => "pyramid".to_string(),
                        _ => "dedicated".to_string(),
                    },
                    name.to_string(),
                    out.metrics.faults_injected.to_string(),
                    out.violation_count.to_string(),
                    out.metrics.degraded_entries.to_string(),
                    out.metrics.degraded_rejoined.to_string(),
                    out.metrics.degraded_dedicated.to_string(),
                    out.metrics.denied_transient.to_string(),
                    out.metrics.denied_permanent.to_string(),
                    num(out.metrics.hit_ratio(), 3),
                    num(sim_hit, 3),
                ]);
                json_cases.push(json_case_backend(seed, kind, name, &plan, out, sim_hit));
            }
        }
    }
    println!(
        "# Chaos matrix (l = 120, n = {STREAMS}, disk 40, seeds {SEEDS:?}, \
         3 backends, warmup {WARMUP}, measure {MEASURE})"
    );
    print!("{}", t.render());
    println!("(faults counted in the measured window; srv/sim hit = resume hit ratio)");

    let ok = failures.is_empty();
    let json = format!(
        "{{\n  \"schema\": 2,\n  \"ok\": {ok},\n  \"failures\": [{}],\n  \"cases\": [\n{}\n  ]\n}}\n",
        failures
            .iter()
            .map(|f| format!("\"{}\"", f.replace('"', "'")))
            .collect::<Vec<_>>()
            .join(", "),
        json_cases.join(",\n")
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/CHAOS_REPORT.json", json).expect("write json");
    println!("\nwrote results/CHAOS_REPORT.json");
    if !ok {
        for f in &failures {
            eprintln!("CHAOS FAILURE: {f}");
        }
        return ExitCode::FAILURE;
    }
    println!("all chaos invariants held");
    ExitCode::SUCCESS
}
