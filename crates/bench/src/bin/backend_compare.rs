//! Backend comparison sweep: the same seeded workload, catalog, and
//! startup-wait promise through all three delivery backends
//! ([`vod_server::DeliveryBackend`]) —
//! batching+buffering (the paper's scheme), pyramid fast broadcasting,
//! and the pure-unicast dedicated-stream baseline — across a catalog
//! size × offered load grid.
//!
//! Each cell reports the Eq. 23 provisioning cost `C = C_n(φ·ΣB + Σn)`
//! at the paper's Example 2 prices (φ ≈ 10.7), the resume hit
//! probability `P(hit)`, and the mean startup wait. Identical seeds per
//! cell make the columns directly comparable. Writes
//! `results/BENCH_backend_compare.json`; `--smoke` runs a reduced grid
//! with hard assertions and writes nothing (CI gate).
//!
//! ```sh
//! cargo run --release -p vod-bench --bin backend_compare [-- --smoke]
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use vod_bench::table::{num, Table};
use vod_dist::kinds::Gamma;
use vod_runtime::BackendKind;
use vod_server::{
    run_harness_backend, BackendRun, HarnessConfig, HostedMovie, MovieId, ServerConfig,
};
use vod_sizing::HardwareSpec;
use vod_workload::BehaviorModel;

const MOVIE_LEN: u32 = 120;
const STREAMS_PER_MOVIE: u32 = 20;
const BUFFER_PER_MOVIE: f64 = 100.0;
const VCR_RESERVE: u32 = 40;

struct Grid {
    catalogs: Vec<u32>,
    interarrivals: Vec<f64>,
    seeds: Vec<u64>,
    warmup: u64,
    measure: u64,
}

fn grid(smoke: bool) -> Grid {
    if smoke {
        Grid {
            catalogs: vec![1],
            interarrivals: vec![2.0],
            seeds: vec![11],
            warmup: 120,
            measure: 360,
        }
    } else {
        Grid {
            catalogs: vec![1, 3],
            interarrivals: vec![4.0, 2.0, 1.0],
            seeds: vec![11, 2026],
            warmup: 240,
            measure: 1200,
        }
    }
}

fn behavior() -> BehaviorModel {
    BehaviorModel::uniform_dist((0.2, 0.2, 0.6), 30.0, Arc::new(Gamma::paper_fig7()))
}

/// The shared provisioning for a `catalog`-movie cell: every movie gets
/// the harness geometry `(l = 120, n = 20, B = 100)`, one pool, one VCR
/// reserve. `make_backend` re-derives each scheme's own envelope from
/// this config, holding the catalog and wait promise fixed.
fn harness_config(catalog: u32, interarrival: f64, g: &Grid) -> HarnessConfig {
    let movies: Vec<HostedMovie> = (0..catalog)
        .map(|m| {
            HostedMovie::from_allocation(MovieId(m), MOVIE_LEN, STREAMS_PER_MOVIE, BUFFER_PER_MOVIE)
        })
        .collect();
    HarnessConfig {
        server: ServerConfig {
            piggyback: None,
            ..ServerConfig::provisioned(movies, VCR_RESERVE)
        },
        movie: MovieId(0),
        extra_movies: (1..catalog).map(MovieId).collect(),
        behavior: behavior(),
        mean_interarrival: interarrival,
        warmup: g.warmup,
        measure: g.measure,
    }
}

fn json_cell(catalog: u32, interarrival: f64, seed: u64, run: &BackendRun, cost: f64) -> String {
    format!(
        "    {{\"catalog\": {catalog}, \"interarrival\": {interarrival}, \"seed\": {seed}, \
         \"backend\": \"{}\", \"io_streams\": {}, \"buffer_segments\": {}, \
         \"cost\": {cost:.3}, \"hit_ratio\": {:.6}, \
         \"startup_wait_mean\": {:.6}, \"startup_wait_samples\": {}, \
         \"sessions_opened\": {}, \"sessions_done\": {}, \"violations\": {}, \
         \"metrics\": {}}}",
        run.kind.name(),
        run.io_streams,
        run.buffer_segments,
        run.outcome.metrics.hit_ratio(),
        run.startup_wait_mean,
        run.startup_wait_samples,
        run.outcome.sessions_opened,
        run.outcome.sessions_done,
        run.outcome.violation_count,
        run.outcome.metrics.to_json(),
    )
}

fn main() -> ExitCode {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("backend_compare: unknown argument `{other}` (expected --smoke)");
                return ExitCode::from(2);
            }
        }
    }
    let g = grid(smoke);
    let prices = HardwareSpec::paper_example2()
        .resource_cost()
        .expect("paper prices are valid");
    let mut failures: Vec<String> = Vec::new();
    let mut cells: Vec<String> = Vec::new();
    let mut t = Table::new(vec![
        "catalog", "1/λ", "seed", "backend", "Σn", "ΣB", "cost $", "P(hit)", "wait μ", "opened",
        "done", "violat.",
    ]);
    for &catalog in &g.catalogs {
        for &interarrival in &g.interarrivals {
            let cfg = harness_config(catalog, interarrival, &g);
            for &seed in &g.seeds {
                for backend in BackendKind::ALL {
                    let run = run_harness_backend(&cfg, backend, seed);
                    let cost = prices.total(run.buffer_segments as f64, run.io_streams);
                    if run.outcome.violation_count > 0 {
                        failures.push(format!(
                            "{backend} catalog {catalog} 1/λ {interarrival} seed {seed}: \
                             {} invariant violation(s), first: {}",
                            run.outcome.violation_count,
                            run.outcome.violations.first().map_or("?", |v| v.as_str()),
                        ));
                    }
                    if run.startup_wait_samples == 0 {
                        failures.push(format!(
                            "{backend} catalog {catalog} 1/λ {interarrival} seed {seed}: \
                             no startup waits sampled"
                        ));
                    }
                    t.row(vec![
                        catalog.to_string(),
                        interarrival.to_string(),
                        seed.to_string(),
                        backend.name().to_string(),
                        run.io_streams.to_string(),
                        run.buffer_segments.to_string(),
                        num(cost, 0),
                        num(run.outcome.metrics.hit_ratio(), 3),
                        num(run.startup_wait_mean, 2),
                        run.outcome.sessions_opened.to_string(),
                        run.outcome.sessions_done.to_string(),
                        run.outcome.violation_count.to_string(),
                    ]);
                    cells.push(json_cell(catalog, interarrival, seed, &run, cost));
                }
            }
        }
    }
    println!(
        "# Backend comparison (l = {MOVIE_LEN}, n = {STREAMS_PER_MOVIE}, B = {BUFFER_PER_MOVIE} \
         per movie, reserve {VCR_RESERVE}, φ = {:.2}, warmup {}, measure {}{})",
        prices.phi(),
        g.warmup,
        g.measure,
        if smoke { ", SMOKE" } else { "" }
    );
    print!("{}", t.render());
    println!(
        "(cost = C_n(φ·ΣB + Σn) at Example 2 prices; wait μ = mean minutes from open to \
         scheduled start; pyramid's client-side buffer is not priced)"
    );

    let ok = failures.is_empty();
    if smoke {
        // CI gate: assert, print, and leave the canonical JSON alone.
        if !ok {
            for f in &failures {
                eprintln!("BACKEND_COMPARE FAILURE: {f}");
            }
            return ExitCode::FAILURE;
        }
        println!("smoke sweep passed (canonical JSON untouched)");
        return ExitCode::SUCCESS;
    }
    let json = format!(
        "{{\n  \"ok\": {ok},\n  \"phi\": {:.6},\n  \"failures\": [{}],\n  \"cells\": [\n{}\n  ]\n}}\n",
        prices.phi(),
        failures
            .iter()
            .map(|f| format!("\"{}\"", f.replace('"', "'")))
            .collect::<Vec<_>>()
            .join(", "),
        cells.join(",\n")
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_backend_compare.json", json).expect("write json");
    println!("\nwrote results/BENCH_backend_compare.json");
    if !ok {
        for f in &failures {
            eprintln!("BACKEND_COMPARE FAILURE: {f}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
