//! Million-session scale benchmark for the timer-wheel + arena engine.
//!
//! Opens `--sessions` concurrent sessions (default one million) against
//! a [`vod_server::VodServer`], mass-enrolls them at tick 0, drives
//! `--ticks` virtual minutes of lockstep delivery with a seeded VCR
//! sprinkle, and writes events/sec and peak RSS to
//! `results/BENCH_scale.json`. The virtual-time driver
//! ([`vod_server::run_scale`]) is deterministic; only the wall-clock and
//! memory measurements taken here vary by machine, which is why they
//! live in this bin (exempt from the determinism lint wall) and not in
//! the server crate.
//!
//! ```sh
//! cargo run --release -p vod-bench --bin scale -- \
//!     [--sessions N] [--ticks N] [--movies N] [--vcr-per-tick N] [--out PATH]
//! ```

use std::time::Instant;

use vod_server::{run_scale, ScaleConfig};

const SEED: u64 = 42;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ScaleConfig {
        sessions: 1_000_000,
        ticks: 40,
        movies: 16,
        vcr_per_tick: 64,
    };
    let mut out_path = "results/BENCH_scale.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        i += 1;
        let value = args.get(i).unwrap_or_else(|| {
            eprintln!("scale: expected a value after {flag}");
            std::process::exit(2);
        });
        match flag.as_str() {
            "--sessions" => cfg.sessions = parse(&flag, value),
            "--ticks" => cfg.ticks = parse(&flag, value),
            "--movies" => cfg.movies = parse(&flag, value),
            "--vcr-per-tick" => cfg.vcr_per_tick = parse(&flag, value),
            "--out" => out_path = value.clone(),
            other => {
                eprintln!("scale: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "# scale: {} sessions x {} ticks, {} movies, {} VCR ops/tick, {cores} core(s)",
        cfg.sessions, cfg.ticks, cfg.movies, cfg.vcr_per_tick
    );

    let t0 = Instant::now();
    let out = run_scale(&cfg, SEED);
    let elapsed = t0.elapsed().as_secs_f64();
    let events_per_sec = out.events as f64 / elapsed.max(1e-9);
    let peak_rss_kb = peak_rss_kb().unwrap_or(0);

    assert_eq!(out.verify_failures, 0, "byte verification failed at scale");
    println!(
        "opened {} sessions, {} concurrent at end, {} segments delivered, {} VCR ops",
        out.sessions, out.concurrent_at_end, out.segments, out.vcr_accepted
    );
    println!(
        "{} events in {elapsed:.2} s = {events_per_sec:.0} events/sec, peak RSS {:.1} MiB",
        out.events,
        peak_rss_kb as f64 / 1024.0
    );

    let json = format!(
        "{{\n  \"benchmark\": \"scale\",\n  \"available_cores\": {cores},\n  \
         \"seed\": {SEED},\n  \"sessions\": {},\n  \"ticks\": {},\n  \"movies\": {},\n  \
         \"vcr_per_tick\": {},\n  \"concurrent_at_end\": {},\n  \"segments\": {},\n  \
         \"vcr_accepted\": {},\n  \"events\": {},\n  \"verify_failures\": {},\n  \
         \"elapsed_sec\": {elapsed:.3},\n  \"events_per_sec\": {events_per_sec:.0},\n  \
         \"peak_rss_kb\": {peak_rss_kb}\n}}\n",
        out.sessions,
        out.ticks,
        cfg.movies,
        cfg.vcr_per_tick,
        out.concurrent_at_end,
        out.segments,
        out.vcr_accepted,
        out.events,
        out.verify_failures,
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("scale: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("scale: invalid value `{value}` for {flag}");
        std::process::exit(2);
    })
}

/// Peak resident set size in KiB from `/proc/self/status` (`VmHWM`);
/// `None` off Linux or if the field is missing.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}
