//! Wall-clock benchmark for the `SweepExecutor` parallel evaluation path.
//!
//! Measures two representative workloads serial vs multi-threaded, checks
//! the parallel results are *bitwise identical* to the serial ones, and
//! writes `results/BENCH_parallel_sweep.json`:
//!
//! 1. **fig7-sweep** — the analytic `P(hit)` curve of Figure 7(d)
//!    evaluated on a fine `n` grid (model only; the seeded simulation
//!    is deterministic per point and would only dilute the model timing).
//! 2. **catalog-sizing** — `Catalog::new` over a synthetic 100-movie
//!    catalog: one feasibility bisection per movie, each a chain of
//!    `hit_probability` evaluations.
//!
//! ```sh
//! cargo run --release -p vod-bench --bin parallel_sweep -- [--threads N] [--out PATH]
//! ```
//!
//! Speedups are machine-dependent: the recorded `available_cores` field
//! gives the context (a 1-core container cannot show a parallel speedup
//! no matter the thread count).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use vod_dist::kinds::{Exponential, Gamma};
use vod_model::{p_hit_single_dist, ModelOptions, Rates, SweepExecutor, SystemParams, VcrMix};
use vod_sizing::{Catalog, MovieSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = vec![2usize, 4];
    let mut out_path = "results/BENCH_parallel_sweep.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                let n: usize = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("parallel_sweep: expected --threads N");
                    std::process::exit(2);
                });
                threads = vec![n];
            }
            "--out" => {
                i += 1;
                out_path = args
                    .get(i)
                    .unwrap_or_else(|| {
                        eprintln!("parallel_sweep: expected --out PATH");
                        std::process::exit(2);
                    })
                    .clone();
            }
            other => {
                eprintln!("parallel_sweep: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("# parallel_sweep: {cores} core(s) available");

    let mut tasks = String::new();
    bench_fig7_sweep(&threads, &mut tasks);
    tasks.push_str(",\n");
    bench_catalog_sizing(&threads, &mut tasks);

    let json = format!(
        "{{\n  \"benchmark\": \"parallel_sweep\",\n  \"available_cores\": {cores},\n  \"tasks\": [\n{tasks}\n  ]\n}}\n"
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("parallel_sweep: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
}

/// Figure-7(d)-style model sweep: P(hit) at every n on a fine grid.
fn bench_fig7_sweep(threads: &[usize], out: &mut String) {
    let dist = Gamma::paper_fig7();
    let mix = VcrMix::paper_fig7d();
    let opts = ModelOptions::default();
    let ns: Vec<u32> = (4..=236).collect();
    let eval = |&n: &u32| -> u64 {
        let params = SystemParams::from_wait(120.0, 0.5, n, Rates::paper()).expect("n*w < l");
        p_hit_single_dist(&params, &dist, &mix, &opts)
            .total
            .to_bits()
    };

    let t0 = Instant::now();
    let serial = SweepExecutor::serial().map(&ns, eval);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("fig7-sweep: {} points, serial {serial_ms:.1} ms", ns.len());

    let mut runs = String::new();
    for (k, &t) in threads.iter().enumerate() {
        let exec = SweepExecutor::new(t);
        let t0 = Instant::now();
        let par = exec.map(&ns, eval);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let identical = par == serial;
        assert!(identical, "fig7-sweep: parallel diverged at {t} threads");
        println!(
            "fig7-sweep: {t} threads {ms:.1} ms (speedup {:.2}x)",
            serial_ms / ms
        );
        if k > 0 {
            runs.push(',');
        }
        let _ = write!(
            runs,
            "\n        {{ \"threads\": {t}, \"ms\": {ms:.3}, \"speedup\": {:.3}, \"bitwise_identical\": {identical} }}",
            serial_ms / ms
        );
    }
    let _ = write!(
        out,
        "    {{\n      \"task\": \"fig7-sweep\",\n      \"points\": {},\n      \"serial_ms\": {serial_ms:.3},\n      \"parallel\": [{runs}\n      ]\n    }}",
        ns.len()
    );
}

/// A deterministic synthetic catalog: lengths 60–180 min, waits and VCR
/// means varied so each movie's feasibility bisection differs.
fn synthetic_catalog(count: usize) -> Vec<MovieSpec> {
    (0..count)
        .map(|i| {
            let l = 60.0 + 1.2 * i as f64;
            let w = 0.5 + 0.02 * (i % 10) as f64;
            let mean = 2.0 + 0.25 * (i % 16) as f64;
            MovieSpec::new(
                format!("m{i:03}"),
                l,
                w,
                0.5,
                VcrMix::paper_fig7d(),
                Arc::new(Exponential::with_mean(mean).expect("valid mean")),
                Rates::paper(),
            )
            .expect("valid synthetic movie")
        })
        .collect()
}

/// Catalog sizing: one feasibility bisection per movie.
fn bench_catalog_sizing(threads: &[usize], out: &mut String) {
    let movies = synthetic_catalog(100);
    let opts = ModelOptions::default();

    let t0 = Instant::now();
    let serial = Catalog::new(&movies, &opts).expect("satisfiable catalog");
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mid_total = (serial.len() as u32 + serial.max_total_streams()) / 2;
    let serial_plan = serial
        .plan_at_stream_total(mid_total, &opts)
        .expect("model ok")
        .expect("feasible");
    println!(
        "catalog-sizing: {} movies, serial {serial_ms:.1} ms",
        movies.len()
    );

    let mut runs = String::new();
    for (k, &t) in threads.iter().enumerate() {
        let exec = SweepExecutor::new(t);
        let t0 = Instant::now();
        let par = Catalog::new_with(&movies, &opts, &exec).expect("satisfiable catalog");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let par_plan = par
            .plan_at_stream_total(mid_total, &opts)
            .expect("model ok")
            .expect("feasible");
        let identical = serial_plan.allocations.len() == par_plan.allocations.len()
            && serial_plan
                .allocations
                .iter()
                .zip(&par_plan.allocations)
                .all(|(a, b)| {
                    a.n_streams == b.n_streams
                        && a.buffer.to_bits() == b.buffer.to_bits()
                        && a.p_hit.to_bits() == b.p_hit.to_bits()
                });
        assert!(
            identical,
            "catalog-sizing: parallel diverged at {t} threads"
        );
        println!(
            "catalog-sizing: {t} threads {ms:.1} ms (speedup {:.2}x)",
            serial_ms / ms
        );
        if k > 0 {
            runs.push(',');
        }
        let _ = write!(
            runs,
            "\n        {{ \"threads\": {t}, \"ms\": {ms:.3}, \"speedup\": {:.3}, \"bitwise_identical\": {identical} }}",
            serial_ms / ms
        );
    }
    let _ = write!(
        out,
        "    {{\n      \"task\": \"catalog-sizing\",\n      \"movies\": {},\n      \"serial_ms\": {serial_ms:.3},\n      \"parallel\": [{runs}\n      ]\n    }}",
        movies.len()
    );
}
