//! Extension experiment: validate the Erlang-loss model of the VCR
//! reserve against the discrete-event simulator (see EXPERIMENTS.md,
//! "VCR reserve sizing").
//!
//! 1. Measure the offered dedicated-stream load with an infinite reserve.
//! 2. Sweep finite reserves; compare simulated denial rates with
//!    Erlang-B, and show the analytic piggyback hold-time model shrinking
//!    the load.
//!
//! ```sh
//! cargo run --release -p vod-bench --bin reserve_check
//! ```

use std::sync::Arc;

use vod_bench::table::{num, Table};
use vod_dist::kinds::Gamma;
use vod_model::{
    expected_miss_hold_piggyback, expected_miss_hold_plain, p_hit_single_dist, ModelOptions, Rates,
    SystemParams, VcrMix,
};
use vod_sim::{run_seeded, SimConfig};
use vod_sizing::{erlang_b, size_vcr_reserve, VcrLoad};
use vod_workload::BehaviorModel;

fn main() {
    let params = SystemParams::new(120.0, 24.0, 12, Rates::paper()).expect("valid");
    let behavior =
        BehaviorModel::uniform_dist((0.45, 0.45, 0.1), 25.0, Arc::new(Gamma::paper_fig7()));
    let mut cfg = SimConfig::new(params, behavior);
    cfg.mean_interarrival = 1.5;
    cfg.horizon = 80.0 * 120.0;
    cfg.warmup = 5.0 * 120.0;

    // Offered load from the uncapped system.
    let free = run_seeded(&cfg, 2024);
    let offered = free.runtime.dedicated_avg;
    println!("# Reserve validation (l=120, B=24, n=12; mix 0.45/0.45/0.1)");
    println!(
        "uncapped run: offered load {offered:.2} Erlangs, peak {:.0}, hit ratio {:.3}\n",
        free.runtime.dedicated_peak,
        free.runtime.resumes.value()
    );

    println!("## simulated denial rate vs Erlang-B");
    let mut t = Table::new(vec![
        "reserve",
        "sim denial",
        "Erlang-B",
        "|diff|",
        "regime",
    ]);
    for factor in [0.6, 0.8, 1.0, 1.1, 1.25, 1.5] {
        let cap = ((offered * factor).round() as u32).max(1);
        let mut capped = cfg.clone();
        capped.dedicated_capacity = Some(cap);
        let run = run_seeded(&capped, 2025);
        let measured = (run.runtime.vcr_denied + run.runtime.resume_starved) as f64
            / run.runtime.acquisition_attempts.max(1) as f64;
        let predicted = erlang_b(cap, offered);
        t.row(vec![
            cap.to_string(),
            num(measured, 4),
            num(predicted, 4),
            num((measured - predicted).abs(), 4),
            if factor < 1.0 {
                "overload (retrials inflate)".to_string()
            } else {
                "engineered".to_string()
            },
        ]);
    }
    print!("{}", t.render());

    // Analytic load build-up: model hit probability + hold times.
    println!("\n## analytic load and reserve sizing");
    let opts = ModelOptions::default();
    let p_hit = p_hit_single_dist(
        &params,
        &Gamma::paper_fig7(),
        &VcrMix::new(0.45, 0.45, 0.1).expect("valid"),
        &opts,
    )
    .total;
    // Interaction rate: population ≈ l/interarrival viewers, each
    // interacting every mean_play_between minutes.
    let population = 120.0 / 1.5;
    let ops_per_minute = population / 25.0;
    let phase1 = 0.9 * (8.0 / 3.0); // FF/RW sweeps at 3x; pauses hold nothing
    for (label, miss_hold) in [
        ("no piggyback", expected_miss_hold_plain(&params)),
        ("piggyback +5%", expected_miss_hold_piggyback(&params, 0.05)),
        (
            "piggyback +10%",
            expected_miss_hold_piggyback(&params, 0.10),
        ),
    ] {
        let load = VcrLoad {
            ops_per_minute,
            mean_phase1: phase1,
            mean_miss_hold: miss_hold,
            p_hit,
        };
        let reserve = size_vcr_reserve(&load, 0.01).expect("valid target");
        println!(
            "{label:<15} E[miss hold] = {miss_hold:>6.1} min  offered = {:>6.1} E  reserve(1% denial) = {reserve}",
            load.offered_erlangs()
        );
    }
    println!(
        "\n(model P(hit) = {p_hit:.3}; raising it — more buffer — or merging faster\n \
         shrinks the reserve: the paper's cost-effectiveness loop, quantified)"
    );
}
