//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. Eq.-19 jump cutoff vs the extended summation (FF).
//! 2. Decomposed closed forms vs brute-force 2-D integration oracles
//!    (accuracy + speed).
//! 3. Quadrature tolerance sensitivity.
//! 4. Sizing: greedy water-fill vs per-movie independent choices.
//! 5. Piggyback merge-back on/off in the data-path server.
//!
//! ```sh
//! cargo run --release -p vod-bench --bin ablations -- [--threads N]
//! ```
//!
//! `--threads N` parallelizes the table-generation sweeps; the timing
//! ablations (2 and 3) stay serial so their measured durations are
//! meaningful.

use std::time::Instant;

use rand::RngCore;
use vod_bench::table::{num, Table};
use vod_dist::kinds::Gamma;
use vod_dist::rng::seeded;
use vod_model::{
    p_hit_ff, p_hit_ff_direct, p_hit_pause, p_hit_pause_direct, p_hit_rw, p_hit_rw_direct,
    ModelOptions, Rates, SweepExecutor, SystemParams,
};
use vod_server::{HostedMovie, MovieId, ServerConfig, VodServer};
use vod_workload::VcrKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exec = SweepExecutor::serial();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                let n = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("ablations: expected --threads N");
                    std::process::exit(2);
                });
                exec = SweepExecutor::new(n);
            }
            other => {
                eprintln!("ablations: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    eq19_vs_extended(&exec);
    decomposed_vs_oracle();
    tolerance_sensitivity();
    piggyback_on_off();
}

fn eq19_vs_extended(exec: &SweepExecutor) {
    println!("# Ablation 1: Eq.-19 jump cutoff vs extended summation (FF, gamma(2,4))");
    let d = Gamma::paper_fig7();
    let mut t = Table::new(vec!["l", "B", "n", "paper eq19", "extended", "diff"]);
    let cases = [
        (120.0, 30.0, 10u32),
        (120.0, 60.0, 20),
        (120.0, 90.0, 40),
        (120.0, 110.0, 60),
        (75.0, 39.0, 360),
        // Few streams + large buffer: Eq. 19 yields i_max < 1 (no jump
        // terms at all) while partial jump hits still exist — the cutoff
        // bites here.
        (120.0, 100.0, 5),
        (120.0, 110.0, 4),
        (90.0, 80.0, 3),
    ];
    let rows = exec.map(&cases, |&(l, b, n)| {
        let p = SystemParams::new(l, b, n, Rates::paper()).expect("valid");
        let paper = p_hit_ff(&p, &d, &ModelOptions::paper()).total();
        let ext = p_hit_ff(&p, &d, &ModelOptions::default()).total();
        vec![
            num(l, 0),
            num(b, 0),
            n.to_string(),
            num(paper, 5),
            num(ext, 5),
            num(ext - paper, 5),
        ]
    });
    for row in rows {
        t.row(row);
    }
    print!("{}", t.render());
    println!("(the cutoff drops only partial-hit tails; differences stay small)\n");
}

fn decomposed_vs_oracle() {
    println!("# Ablation 2: decomposed closed forms vs 2-D integration oracles");
    let d = Gamma::paper_fig7();
    let p = SystemParams::new(120.0, 60.0, 20, Rates::paper()).expect("valid");
    let opts = ModelOptions::default();
    let mut t = Table::new(vec![
        "component",
        "decomposed",
        "oracle",
        "|diff|",
        "speedup",
    ]);
    type Eval<'a> = Box<dyn Fn() -> f64 + 'a>;
    let cases: Vec<(&str, Eval<'_>, Eval<'_>)> = vec![
        (
            "FF",
            Box::new(|| p_hit_ff(&p, &d, &opts).total()),
            Box::new(|| p_hit_ff_direct(&p, &d, &opts)),
        ),
        (
            "RW",
            Box::new(|| p_hit_rw(&p, &d, &opts).total()),
            Box::new(|| p_hit_rw_direct(&p, &d, &opts)),
        ),
        (
            "PAU",
            Box::new(|| p_hit_pause(&p, &d, &opts)),
            Box::new(|| p_hit_pause_direct(&p, &d, &opts)),
        ),
    ];
    for (name, fast, slow) in cases {
        let t0 = Instant::now();
        let a = fast();
        let fast_t = t0.elapsed();
        let t0 = Instant::now();
        let b = slow();
        let slow_t = t0.elapsed();
        t.row(vec![
            name.to_string(),
            num(a, 6),
            num(b, 6),
            format!("{:.1e}", (a - b).abs()),
            format!(
                "{:.0}x",
                slow_t.as_secs_f64() / fast_t.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    print!("{}", t.render());
    println!();
}

fn tolerance_sensitivity() {
    println!("# Ablation 3: quadrature tolerance sensitivity (FF, l=120, B=60, n=20)");
    let d = Gamma::paper_fig7();
    let p = SystemParams::new(120.0, 60.0, 20, Rates::paper()).expect("valid");
    let reference = p_hit_ff(
        &p,
        &d,
        &ModelOptions {
            tol: 1e-12,
            ..Default::default()
        },
    )
    .total();
    let mut t = Table::new(vec!["tol", "P(hit|FF)", "error vs 1e-12", "time"]);
    for tol in [1e-3, 1e-6, 1e-9] {
        let opts = ModelOptions {
            tol,
            ..Default::default()
        };
        let t0 = Instant::now();
        let v = p_hit_ff(&p, &d, &opts).total();
        t.row(vec![
            format!("{tol:.0e}"),
            num(v, 8),
            format!("{:.1e}", (v - reference).abs()),
            format!("{:?}", t0.elapsed()),
        ]);
    }
    print!("{}", t.render());
    println!();
}

fn piggyback_on_off() {
    println!("# Ablation 5: piggyback merge-back on/off (server, random VCR load)");
    let mut t = Table::new(vec![
        "piggyback",
        "merges",
        "avg dedicated",
        "disk segs",
        "buffer segs",
    ]);
    for on in [true, false] {
        let movie = HostedMovie::from_allocation(MovieId(0), 120, 10, 60.0);
        let mut cfg = ServerConfig::provisioned(vec![movie], 12);
        if !on {
            cfg.piggyback = None;
        }
        let mut server = VodServer::new(cfg);
        let mut rng = seeded(7);
        let mut sessions = Vec::new();
        for _ in 0..2000u64 {
            if rng.next_u64().is_multiple_of(2) {
                if let Ok(s) = server.open_session(MovieId(0)) {
                    sessions.push(s);
                }
            }
            if !sessions.is_empty() && rng.next_u64().is_multiple_of(8) {
                let s = sessions[(rng.next_u64() as usize) % sessions.len()];
                let kind = match rng.next_u64() % 3 {
                    0 => VcrKind::FastForward,
                    1 => VcrKind::Rewind,
                    _ => VcrKind::Pause,
                };
                let _ = server.request_vcr(s, kind, 1 + (rng.next_u64() % 15) as u32);
            }
            server.tick();
        }
        let rt = server.runtime_metrics();
        t.row(vec![
            if on { "on" } else { "off" }.to_string(),
            server.metrics().piggyback_merges.to_string(),
            num(rt.dedicated_avg, 2),
            num(rt.disk_minutes, 0),
            num(rt.buffer_minutes, 0),
        ]);
    }
    print!("{}", t.render());
    println!("(merging back releases dedicated streams: lower avg dedicated, fewer disk reads)");
}
