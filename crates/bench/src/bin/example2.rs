//! Regenerate §5 Example 2: resource prices from 1997 hardware and the
//! cost of the Example-1 plan.
//!
//! Paper reference output: C_b = $750/movie-minute, C_n = $70/stream,
//! φ ≈ 11.
//!
//! ```sh
//! cargo run --release -p vod-bench --bin example2
//! ```

use vod_bench::ex2::run;
use vod_model::VcrMix;

fn main() {
    let out = run(VcrMix::paper_fig7d());
    println!("# Example 2");
    println!(
        "hardware: ${:.0} disk @ {:.0} MB/s, {:.0} Mb/s video, ${:.0}/MB memory",
        out.hardware.disk_cost,
        out.hardware.disk_bandwidth_mb_s,
        out.hardware.video_rate_mbit_s,
        out.hardware.memory_cost_per_mb
    );
    println!(
        "buffer for one movie minute: {:.0} MB  -> C_b = ${:.0}  (paper: $750)",
        out.hardware.mb_per_movie_minute(),
        out.prices.buffer_per_minute()
    );
    println!(
        "streams per disk: {:.0}            -> C_n = ${:.0}   (paper: $70)",
        out.hardware.streams_per_disk(),
        out.prices.per_stream()
    );
    println!(
        "phi = C_b/C_n = {:.2}              (paper: ~11)",
        out.prices.phi()
    );
    println!();
    println!(
        "Example-1 plan priced at these rates: {} streams + {:.1} buffer minutes = ${:.0}",
        out.ex1.plan.total_streams(),
        out.ex1.plan.total_buffer(),
        out.plan_cost
    );
    println!(
        "(pure batching would cost ${:.0} in streams alone but has hit probability 0,\n \
         failing the P* = 0.5 target — it is not a QoS-comparable option)",
        out.pure_batching_cost
    );
}
