//! Three-way cross-validation of the shared `vod-runtime` semantics:
//! run the same `(l, B, n, VCR mix)` configuration through
//!
//! 1. the analytic model (`p_hit_single_dist`, continuous time),
//! 2. the discrete-event simulator (`vod-sim`, continuous time),
//! 3. the tick server (`vod-server` + its load harness, integer minutes),
//!
//! and tabulate the hit probabilities side by side. Writes the full
//! [`vod_runtime::RuntimeMetrics`] of the sim and server legs to
//! `results/CROSS_VALIDATION.json` — the two legs share one metric
//! vocabulary, so the JSON objects are field-for-field comparable.
//!
//! ```sh
//! cargo run --release -p vod-bench --bin cross_validate
//! ```

use std::sync::Arc;

use vod_bench::table::{num, Table};
use vod_dist::kinds::Gamma;
use vod_model::{p_hit_single_dist, ModelOptions, Rates, SystemParams, VcrMix};
use vod_server::{HarnessConfig, HostedMovie, MovieId, ServerConfig};
use vod_sim::{run_seeded, SimConfig};
use vod_workload::BehaviorModel;

/// One validated configuration: Figure 7(d)'s mixed workload along the
/// `w = 1` column.
struct Case {
    n: u32,
    wait: f64,
}

const MOVIE_LEN: f64 = 120.0;
const SEED: u64 = 2026;

fn behavior() -> BehaviorModel {
    BehaviorModel::uniform_dist((0.2, 0.2, 0.6), 30.0, Arc::new(Gamma::paper_fig7()))
}

fn main() {
    let cases = [
        Case { n: 20, wait: 1.0 },
        Case { n: 40, wait: 1.0 },
        Case { n: 60, wait: 1.0 },
    ];
    let mut t = Table::new(vec![
        "n",
        "B",
        "model",
        "sim",
        "server",
        "sim-model",
        "srv-model",
        "srv-sim",
    ]);
    let mut json_cases = Vec::new();
    for case in &cases {
        let params = SystemParams::from_wait(MOVIE_LEN, case.wait, case.n, Rates::paper())
            .expect("valid configuration");
        let model = p_hit_single_dist(
            &params,
            &Gamma::paper_fig7(),
            &VcrMix::paper_fig7d(),
            &ModelOptions::default(),
        )
        .total;

        let mut sim_cfg = SimConfig::new(params, behavior());
        sim_cfg.horizon = 40.0 * MOVIE_LEN;
        sim_cfg.warmup = 2.0 * MOVIE_LEN;
        let sim = run_seeded(&sim_cfg, SEED);

        let movie =
            HostedMovie::from_allocation(MovieId(0), MOVIE_LEN as u32, case.n, params.buffer());
        let harness = HarnessConfig {
            server: ServerConfig {
                piggyback: None,
                ..ServerConfig::provisioned(vec![movie], 80)
            },
            movie: MovieId(0),
            extra_movies: vec![],
            behavior: behavior(),
            mean_interarrival: sim_cfg.mean_interarrival,
            warmup: sim_cfg.warmup as u64,
            measure: (sim_cfg.horizon - sim_cfg.warmup) as u64,
        };
        let server = vod_server::run_harness(&harness, SEED);

        let sim_hit = sim.runtime.hit_ratio();
        let srv_hit = server.hit_ratio();
        t.row(vec![
            case.n.to_string(),
            num(params.buffer(), 0),
            num(model, 3),
            num(sim_hit, 3),
            num(srv_hit, 3),
            num(sim_hit - model, 3),
            num(srv_hit - model, 3),
            num(srv_hit - sim_hit, 3),
        ]);
        json_cases.push(format!(
            "    {{\"n\": {}, \"buffer\": {}, \"wait\": {}, \"model_p_hit\": {:.6}, \
             \"sim\": {}, \"server\": {}}}",
            case.n,
            params.buffer(),
            case.wait,
            model,
            sim.runtime.to_json(),
            server.to_json()
        ));
    }
    println!("# Three-way cross-validation (l = 120, w = 1, mix 0.2/0.2/0.6, seed {SEED})");
    print!("{}", t.render());
    println!("(model: continuous time; sim: continuous time, one seed; server: integer ticks)");

    let json = format!(
        "{{\n  \"seed\": {SEED},\n  \"cases\": [\n{}\n  ]\n}}\n",
        json_cases.join(",\n")
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/CROSS_VALIDATION.json", json).expect("write json");
    println!("\nwrote results/CROSS_VALIDATION.json");
}
