//! Regenerate §5 Example 1: minimum-buffer allocation for the three-movie
//! catalog against the 1230-stream pure-batching baseline.
//!
//! Paper reference output: [(B, n)] = [(39, 360), (30, 60), (44.5, 182)],
//! ΣB = 113.5 minutes, Σn = 602 (628 streams saved).
//!
//! ```sh
//! cargo run --release -p vod-bench --bin example1
//! ```

use vod_bench::ex1::run;
use vod_bench::table::{num, Table};
use vod_model::VcrMix;

fn main() {
    let out = run(VcrMix::paper_fig7d());
    println!("# Example 1 (VCR mix assumption: P_FF=0.2, P_RW=0.2, P_PAU=0.6)");
    println!(
        "pure batching: {} I/O streams, hit probability 0",
        out.pure_batching_streams
    );
    let mut t = Table::new(vec!["movie", "n*", "B*", "P(hit)", "paper (B*, n*)"]);
    let paper = ["(39, 360)", "(30, 60)", "(44.5, 182)"];
    for (a, p) in out.plan.allocations.iter().zip(paper) {
        t.row(vec![
            a.movie.clone(),
            a.n_streams.to_string(),
            num(a.buffer, 1),
            num(a.p_hit, 3),
            p.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "TOTAL: {} streams + {:.1} buffer minutes  (paper: 602 + 113.5)",
        out.plan.total_streams(),
        out.plan.total_buffer()
    );
    println!(
        "saved {} I/O streams vs pure batching (paper: 628)",
        out.streams_saved()
    );
}
