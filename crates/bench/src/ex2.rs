//! Example 2 — §5: derive resource prices from hardware and cost the
//! Example-1 plan.
//!
//! The paper: a $700 2 GB SCSI disk at 5 MB/s, 4 Mb/s MPEG-2, $25/MB RAM
//! give `C_b = $750` per buffered movie minute, `C_n = $70` per stream,
//! `φ ≈ 11`. These are exact arithmetic and must reproduce to the digit.

use vod_model::VcrMix;
use vod_sizing::{HardwareSpec, ResourceCost};

use crate::ex1::{run as run_ex1, Example1};

/// Outcome of the Example-2 reproduction.
#[derive(Debug, Clone)]
pub struct Example2 {
    /// The hardware price list.
    pub hardware: HardwareSpec,
    /// Derived prices.
    pub prices: ResourceCost,
    /// The Example-1 plan priced with them.
    pub ex1: Example1,
    /// Total plan cost in dollars.
    pub plan_cost: f64,
    /// Pure-batching dollar cost (streams only). Note this configuration
    /// *fails* the `P* = 0.5` QoS target (hit probability 0), so it is a
    /// reference point, not a comparable alternative.
    pub pure_batching_cost: f64,
}

/// Run Example 2.
pub fn run(mix: VcrMix) -> Example2 {
    let hardware = HardwareSpec::paper_example2();
    // vod-lint: allow(no-panic) — paper Example 2 hardware constants are valid.
    let prices = hardware.resource_cost().expect("paper constants are valid");
    let ex1 = run_ex1(mix);
    let plan_cost = ex1.plan.cost(&prices);
    let pure_batching_cost = prices.total(0.0, ex1.pure_batching_streams);
    Example2 {
        hardware,
        prices,
        ex1,
        plan_cost,
        pure_batching_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prices_exact() {
        let out = run(VcrMix::paper_fig7d());
        assert!((out.prices.buffer_per_minute() - 750.0).abs() < 1e-9);
        assert!((out.prices.per_stream() - 70.0).abs() < 1e-9);
        assert!((out.prices.phi() - 75.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn plan_cost_is_the_feasible_minimum_at_paper_phi() {
        // At φ ≈ 11 memory dominates, so among configurations meeting the
        // QoS targets the min-buffer plan (maximum feasible streams) is
        // also the cost optimum — §5's observation about Figure 9(e).
        let out = run(VcrMix::paper_fig7d());
        let want = out
            .prices
            .total(out.ex1.plan.total_buffer(), out.ex1.plan.total_streams());
        assert!((out.plan_cost - want).abs() < 1e-9);
        assert!(out.plan_cost > 0.0);
    }
}
