//! Minimal fixed-width table / CSV rendering for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned table with an optional CSV rendering.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = *w);
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Render as CSV (no quoting — cells are numeric/identifiers here).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with fixed precision, trimming to a compact cell.
pub fn num(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["n", "p"]);
        t.row(vec!["10", "0.5"]);
        t.row(vec!["100", "0.25"]);
        let s = t.render();
        assert!(s.contains("  n     p"), "got:\n{s}");
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn csv_round() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec![num(1.25, 2), num(3.0, 1)]);
        assert_eq!(t.to_csv(), "a,b\n1.25,3.0\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
