//! Figure 8 — "different (B, n) pairs for movies 1, 2, 3 for each 5
//! minutes of buffer space": the feasible frontier of each Example-1
//! movie at `P* = 0.5`, scanned in 5-minute buffer steps.

use vod_model::{ModelOptions, SweepExecutor, VcrMix};
use vod_sizing::{example1_movies, scan_by_buffer_step_with, FeasiblePoint, MovieSpec};

/// Feasible-set scan for one movie.
#[derive(Debug, Clone)]
pub struct Fig8Series {
    /// Movie name.
    pub movie: String,
    /// Scan points in increasing-buffer order.
    pub points: Vec<FeasiblePoint>,
}

impl Fig8Series {
    /// The feasible subset of the scan.
    pub fn feasible(&self) -> impl Iterator<Item = &FeasiblePoint> {
        self.points.iter().filter(|p| p.feasible)
    }
}

/// Generate the Figure-8 data: one series per Example-1 movie. The paper
/// does not state the VCR mix used; pass the assumption explicitly (the
/// experiment records use the Figure-7d mix).
pub fn data(mix: VcrMix, buffer_step: f64) -> Vec<Fig8Series> {
    data_for(&example1_movies(mix), buffer_step)
}

/// [`data`] with an executor for the per-point model evaluations.
pub fn data_with(mix: VcrMix, buffer_step: f64, exec: &SweepExecutor) -> Vec<Fig8Series> {
    data_for_with(&example1_movies(mix), buffer_step, exec)
}

/// Same scan for an arbitrary catalog.
pub fn data_for(movies: &[MovieSpec], buffer_step: f64) -> Vec<Fig8Series> {
    data_for_with(movies, buffer_step, &SweepExecutor::serial())
}

/// [`data_for`] fanning each movie's scan points across `exec`; output is
/// bitwise identical to the serial scan.
pub fn data_for_with(
    movies: &[MovieSpec],
    buffer_step: f64,
    exec: &SweepExecutor,
) -> Vec<Fig8Series> {
    let opts = ModelOptions::default();
    movies
        .iter()
        .map(|m| Fig8Series {
            movie: m.name.clone(),
            points: scan_by_buffer_step_with(m, buffer_step, &opts, exec)
                // vod-lint: allow(no-panic) — the fig8 example movies are fixed
                // in-range constants from the paper.
                .expect("valid example movies"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_series_with_feasible_heads() {
        let series = data(VcrMix::paper_fig7d(), 15.0);
        assert_eq!(series.len(), 3);
        for s in &series {
            assert!(!s.points.is_empty(), "{} empty", s.movie);
            // Large-buffer end must be feasible (P* = 0.5 is modest).
            assert!(
                s.points.last().expect("non-empty").feasible,
                "{}: n = 1 point should be feasible",
                s.movie
            );
            // p_hit increases with buffer along the scan — except possibly
            // at the appended n = 1 endpoint, where a single movie-length
            // partition wastes window past the movie end and the hit
            // probability dips (see EXPERIMENTS.md, Figure-8 notes).
            let ps: Vec<f64> = s
                .points
                .iter()
                .filter(|p| p.n_streams >= 2)
                .map(|p| p.p_hit)
                .collect();
            for w in ps.windows(2) {
                assert!(w[1] >= w[0] - 1e-6, "{}: {ps:?}", s.movie);
            }
        }
    }
}
