//! # vod-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `fig7` | Figure 7(a–d): model vs simulation hit probability |
//! | `fig8` | Figure 8: feasible (B, n) pairs per movie |
//! | `fig9` | Figure 9(a–f): system cost vs streams for φ sweeps |
//! | `example1` | §5 Example 1: minimum-buffer allocation |
//! | `example2` | §5 Example 2: hardware-derived C_b, C_n, φ |
//! | `ablations` | design-choice ablations from DESIGN.md |
//!
//! The library half hosts the data-generation routines so the binaries
//! and the Criterion micro-benches share one implementation, and so the
//! integration tests can assert on the numbers that the binaries print.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

pub mod ascii;
pub mod ex1;
pub mod ex2;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table;
