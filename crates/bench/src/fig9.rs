//! Figure 9 — "System cost vs number of I/O streams for different values
//! of φ": six panels sweeping φ ∈ {3, 4, 6, 10, 11, 16} over the
//! Example-1 catalog. The minimum of each curve is the optimal sizing for
//! that price regime; for large φ (1997 memory prices) it sits at the
//! maximum feasible stream count, and as memory gets cheaper it moves
//! inward — exactly the qualitative claim of §5.

use vod_model::{ModelOptions, SweepExecutor, VcrMix};
use vod_sizing::{
    cost_curve_with_catalog, example1_movies, Catalog, CostCurve, MovieSpec, ResourceCost,
};

/// The φ values of the six panels, in the paper's order (a)–(f).
pub const PAPER_PHIS: [f64; 6] = [3.0, 4.0, 6.0, 10.0, 11.0, 16.0];

/// Generate the Figure-9 curves for the Example-1 catalog.
pub fn data(mix: VcrMix, stride: u32) -> Vec<CostCurve> {
    data_for(&example1_movies(mix), stride)
}

/// [`data`] with an executor for the catalog's per-movie bisections.
pub fn data_with(mix: VcrMix, stride: u32, exec: &SweepExecutor) -> Vec<CostCurve> {
    data_for_with(&example1_movies(mix), stride, exec)
}

/// Same sweep for an arbitrary catalog.
pub fn data_for(movies: &[MovieSpec], stride: u32) -> Vec<CostCurve> {
    data_for_with(movies, stride, &SweepExecutor::serial())
}

/// [`data_for`] building the catalog frontier in parallel. The φ-sweep
/// itself is pure arithmetic over the precomputed frontier, so only the
/// per-movie feasibility bisections fan out; results are bitwise identical
/// to the serial sweep.
pub fn data_for_with(movies: &[MovieSpec], stride: u32, exec: &SweepExecutor) -> Vec<CostCurve> {
    let opts = ModelOptions::default();
    // vod-lint: allow(no-panic) — the fig9 catalog is the paper's fixed example set.
    let catalog = Catalog::new_with(movies, &opts, exec).expect("satisfiable catalog");
    let n_lo = movies.len() as u32;
    let n_hi = catalog.max_total_streams();
    PAPER_PHIS
        .iter()
        .map(|&phi| {
            cost_curve_with_catalog(
                &catalog,
                // vod-lint: allow(no-panic) — PAPER_PHIS are in-range constants.
                ResourceCost::from_phi(phi).expect("valid phi"),
                n_lo,
                n_hi,
                stride,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_moves_inward_as_memory_cheapens() {
        let curves = data(VcrMix::paper_fig7d(), 10);
        assert_eq!(curves.len(), 6);
        let opt_streams: Vec<u32> = curves
            .iter()
            .map(|c| c.optimum().expect("non-empty").total_streams)
            .collect();
        // φ = 3 (cheap memory) must prefer strictly fewer streams than
        // φ = 16 (expensive memory).
        assert!(
            opt_streams[0] <= opt_streams[5],
            "optima {opt_streams:?} not ordered with φ"
        );
        // At the paper's φ ≈ 11 the optimum sits at the feasible maximum
        // (the "minimum cost occurs when the number of I/O streams
        // reaches its maximum feasible value" observation).
        let c11 = &curves[4];
        let max_n = c11.points.last().expect("non-empty").total_streams;
        assert_eq!(c11.optimum().expect("non-empty").total_streams, max_n);
    }
}
