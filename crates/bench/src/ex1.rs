//! Example 1 — §5: allocate buffer and streams for three popular movies.
//!
//! The paper: pure batching needs `75/0.1 + 60/0.5 + 90/0.25 = 1230` I/O
//! streams with hit probability 0; solving the optimization with
//! `n_s = 1230` gives `[(39, 360), (30, 60), (44.5, 182)]` — 113.5 buffer
//! minutes and 602 streams, i.e. 628 streams saved.
//!
//! Exact optimizer output depends on the RW/PAU derivations the paper
//! left to its tech report; the assertions in EXPERIMENTS.md are on the
//! *shape*: hundreds of streams saved for on-the-order-of-100 buffer
//! minutes, every movie meeting `P* = 0.5`.

use vod_model::{ModelOptions, VcrMix};
use vod_sizing::{allocate_min_buffer, example1_movies, Budgets, ResourcePlan};

/// Outcome of the Example-1 reproduction.
#[derive(Debug, Clone)]
pub struct Example1 {
    /// Streams pure batching would need (paper: 1230).
    pub pure_batching_streams: u32,
    /// The optimized allocation.
    pub plan: ResourcePlan,
}

impl Example1 {
    /// Streams saved relative to pure batching.
    pub fn streams_saved(&self) -> i64 {
        self.pure_batching_streams as i64 - self.plan.total_streams() as i64
    }
}

/// Run Example 1 under the given VCR mix assumption.
pub fn run(mix: VcrMix) -> Example1 {
    let movies = example1_movies(mix);
    let pure: u32 = movies.iter().map(|m| m.pure_batching_streams()).sum();
    let plan = allocate_min_buffer(
        &movies,
        Budgets {
            streams: pure,
            buffer: None,
        },
        &ModelOptions::default(),
    )
    // vod-lint: allow(no-panic) — paper Example 1 constants are satisfiable by
    // construction; a failure means the model itself regressed.
    .expect("Example 1 is satisfiable");
    Example1 {
        pure_batching_streams: pure,
        plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let out = run(VcrMix::paper_fig7d());
        assert_eq!(out.pure_batching_streams, 1230);
        assert!(
            out.streams_saved() > 300,
            "saved only {} streams",
            out.streams_saved()
        );
        for a in &out.plan.allocations {
            assert!(a.p_hit >= 0.5 - 1e-9, "{} misses P*", a.movie);
            assert!(a.buffer > 0.0);
        }
    }
}
