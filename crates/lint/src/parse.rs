//! Lightweight item-level parse layer over the token stream.
//!
//! The semantic rules need more shape than a flat token list — which fn
//! a token lives in, what `Self` means there, which enum variants exist
//! — but far less than a real AST. This module extracts exactly that:
//! enum declarations with their variant names, struct declarations with
//! their field types, and fn items with signature and body token ranges,
//! resolved against the enclosing `impl` block's `Self` type. Everything
//! is recovered by bracket matching; on malformed input the parser skips
//! forward rather than erroring (the compiler owns syntax diagnostics,
//! the linter only needs best-effort structure).

use crate::tokenizer::{TokKind, Token};

/// One `enum` declaration: name, variant names, declaration line.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum type name.
    pub name: String,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
    /// 1-indexed line of the `enum` keyword.
    pub line: u32,
}

/// One `struct` declaration with named fields.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct type name.
    pub name: String,
    /// `(field, type-text)` pairs; type text is the joined token text.
    pub fields: Vec<(String, String)>,
    /// 1-indexed line of the `struct` keyword.
    pub line: u32,
}

/// One `fn` item: signature facts plus the body's token index range.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// `Self` type when declared inside an `impl` block.
    pub self_type: Option<String>,
    /// `(param, type-text)` pairs; `self` receivers are omitted.
    pub params: Vec<(String, String)>,
    /// Return type text after `->`, if any.
    pub ret: Option<String>,
    /// Token index range `[body_start, body_end)` of the `{ ... }` body,
    /// including the braces themselves. Empty for bodyless trait fns.
    pub body: (usize, usize),
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
}

/// Item-level structure of one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All enum declarations.
    pub enums: Vec<EnumDef>,
    /// All named-field struct declarations.
    pub structs: Vec<StructDef>,
    /// All fn items, including those nested in impl/trait blocks.
    pub fns: Vec<FnDef>,
}

/// Find the index of the matching close delimiter for the open delimiter
/// at `open` (any of `(`/`[`/`{`), or `tokens.len()` when unbalanced.
pub fn matching_close(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Join token texts with single spaces (canonical "type text" form).
pub fn join_tokens(tokens: &[Token]) -> String {
    tokens
        .iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parse the item structure of a token stream.
pub fn parse_items(tokens: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    // Stack of `Self` types for nested impl blocks: (close-index, type).
    let mut impl_stack: Vec<(usize, String)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while let Some((close, _)) = impl_stack.last() {
            if i > *close {
                impl_stack.pop();
            } else {
                break;
            }
        }
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" => {
                if let Some((self_ty, body_open)) = parse_impl_header(tokens, i) {
                    let close = matching_close(tokens, body_open);
                    impl_stack.push((close, self_ty));
                    i = body_open + 1;
                } else {
                    i += 1;
                }
            }
            "enum" => {
                if let Some((def, next)) = parse_enum(tokens, i) {
                    out.enums.push(def);
                    i = next;
                } else {
                    i += 1;
                }
            }
            "struct" => {
                if let Some((def, next)) = parse_struct(tokens, i) {
                    out.structs.push(def);
                    i = next;
                } else {
                    i += 1;
                }
            }
            "fn" => {
                let self_type = impl_stack.last().map(|(_, ty)| ty.clone());
                if let Some((def, next)) = parse_fn(tokens, i, self_type) {
                    i = next;
                    out.fns.push(def);
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    out
}

/// Parse `impl [<...>] Type [for Type2] {`, returning the `Self` type
/// name (the `for` target when present) and the body-open token index.
fn parse_impl_header(tokens: &[Token], at: usize) -> Option<(String, usize)> {
    let mut i = at + 1;
    // Skip generic parameter list `<...>` by angle counting.
    if tokens.get(i).is_some_and(|t| t.text == "<") {
        let mut depth = 0i32;
        while i < tokens.len() {
            match tokens[i].text.as_str() {
                "<" | "<<" => depth += if tokens[i].text == "<<" { 2 } else { 1 },
                ">" | ">>" => depth -= if tokens[i].text == ">>" { 2 } else { 1 },
                _ => {}
            }
            i += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    // Collect path segments until `for`, `where`, or `{`; the last plain
    // ident before generics is the type name of interest.
    let mut name: Option<String> = None;
    let mut saw_for = false;
    while i < tokens.len() {
        let tx = tokens[i].text.as_str();
        match tx {
            "{" => return name.map(|n| (n, i)),
            ";" => return None, // e.g. `impl Trait for Type;` degenerate
            "for" => {
                saw_for = true;
                name = None;
                i += 1;
            }
            "where" => {
                // Skip to the body open.
                while i < tokens.len() && tokens[i].text != "{" {
                    i += 1;
                }
            }
            "<" => {
                // Generic args on the type; skip them.
                let mut depth = 0i32;
                while i < tokens.len() {
                    match tokens[i].text.as_str() {
                        "<" => depth += 1,
                        ">" => depth -= 1,
                        ">>" => depth -= 2,
                        "{" if depth <= 0 => break,
                        _ => {}
                    }
                    i += 1;
                    if depth <= 0 {
                        break;
                    }
                }
            }
            _ => {
                if tokens[i].kind == TokKind::Ident && tx != "dyn" && tx != "mut" {
                    name = Some(tx.to_string());
                }
                i += 1;
            }
        }
    }
    let _ = saw_for;
    None
}

/// Parse `enum Name [<...>] { Variant, Variant(..), Variant { .. } }`.
fn parse_enum(tokens: &[Token], at: usize) -> Option<(EnumDef, usize)> {
    let name_tok = tokens.get(at + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let mut i = at + 2;
    while i < tokens.len() && tokens[i].text != "{" {
        if tokens[i].text == ";" {
            return None;
        }
        i += 1;
    }
    if i >= tokens.len() {
        return None;
    }
    let close = matching_close(tokens, i);
    let mut variants = Vec::new();
    let mut j = i + 1;
    // At depth 1: a variant is an ident at the start of a comma-separated
    // entry, optionally followed by `(..)`/`{..}` payload or `= expr`.
    let mut at_entry_start = true;
    while j < close {
        let t = &tokens[j];
        match t.text.as_str() {
            "," => {
                at_entry_start = true;
                j += 1;
            }
            "(" | "[" | "{" => {
                j = matching_close(tokens, j) + 1;
            }
            "#" => {
                // Variant attribute `#[...]`.
                if tokens.get(j + 1).is_some_and(|n| n.text == "[") {
                    j = matching_close(tokens, j + 1) + 1;
                } else {
                    j += 1;
                }
            }
            _ => {
                if at_entry_start && t.kind == TokKind::Ident {
                    variants.push(t.text.clone());
                    at_entry_start = false;
                }
                j += 1;
            }
        }
    }
    Some((
        EnumDef {
            name: name_tok.text.clone(),
            variants,
            line: tokens[at].line,
        },
        close + 1,
    ))
}

/// Parse `struct Name [<...>] { field: Type, ... }`. Tuple and unit
/// structs yield no field map (the rules only need named fields).
fn parse_struct(tokens: &[Token], at: usize) -> Option<(StructDef, usize)> {
    let name_tok = tokens.get(at + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let mut i = at + 2;
    while i < tokens.len() && tokens[i].text != "{" {
        match tokens[i].text.as_str() {
            // Unit struct or tuple struct: no named fields to record.
            ";" => {
                return Some((
                    StructDef {
                        name: name_tok.text.clone(),
                        fields: Vec::new(),
                        line: tokens[at].line,
                    },
                    i + 1,
                ))
            }
            "(" => {
                i = matching_close(tokens, i) + 1;
            }
            _ => i += 1,
        }
    }
    if i >= tokens.len() {
        return None;
    }
    let close = matching_close(tokens, i);
    let mut fields = Vec::new();
    let mut j = i + 1;
    while j < close {
        let t = &tokens[j];
        match t.text.as_str() {
            "#" => {
                if tokens.get(j + 1).is_some_and(|n| n.text == "[") {
                    j = matching_close(tokens, j + 1) + 1;
                } else {
                    j += 1;
                }
            }
            "pub" => {
                // Skip visibility, including `pub(crate)` etc.
                j += 1;
                if tokens.get(j).is_some_and(|n| n.text == "(") {
                    j = matching_close(tokens, j) + 1;
                }
            }
            _ => {
                if t.kind == TokKind::Ident && tokens.get(j + 1).is_some_and(|n| n.text == ":") {
                    // Field: collect type tokens to the next depth-1 comma.
                    let ty_start = j + 2;
                    let mut k = ty_start;
                    let mut depth = 0i32;
                    while k < close {
                        match tokens[k].text.as_str() {
                            "(" | "[" | "{" | "<" => depth += 1,
                            ")" | "]" | "}" | ">" => depth -= 1,
                            ">>" => depth -= 2,
                            "," if depth <= 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    fields.push((t.text.clone(), join_tokens(&tokens[ty_start..k])));
                    j = k;
                } else {
                    j += 1;
                }
            }
        }
    }
    Some((
        StructDef {
            name: name_tok.text.clone(),
            fields,
            line: tokens[at].line,
        },
        close + 1,
    ))
}

/// Parse one fn item starting at the `fn` keyword.
fn parse_fn(tokens: &[Token], at: usize, self_type: Option<String>) -> Option<(FnDef, usize)> {
    let name_tok = tokens.get(at + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    // Find the parameter list open paren, skipping generics.
    let mut i = at + 2;
    if tokens.get(i).is_some_and(|t| t.text == "<") {
        let mut depth = 0i32;
        while i < tokens.len() {
            match tokens[i].text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            i += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    if tokens.get(i).is_none_or(|t| t.text != "(") {
        return None;
    }
    let params_close = matching_close(tokens, i);
    let params = parse_params(tokens, i + 1, params_close);
    // Return type: tokens between `->` and the body `{` / `where` / `;`.
    let mut j = params_close + 1;
    let mut ret = None;
    if tokens.get(j).is_some_and(|t| t.text == "->") {
        let ret_start = j + 1;
        let mut k = ret_start;
        let mut depth = 0i32;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                ">>" => depth -= 2,
                "{" | ";" if depth <= 0 => break,
                "where" if depth <= 0 => break,
                _ => {}
            }
            k += 1;
        }
        ret = Some(join_tokens(&tokens[ret_start..k]));
        j = k;
    }
    while j < tokens.len() && tokens[j].text != "{" && tokens[j].text != ";" {
        j += 1;
    }
    let body = if tokens.get(j).is_some_and(|t| t.text == "{") {
        let close = matching_close(tokens, j);
        (j, close + 1)
    } else {
        (j, j)
    };
    let next = body.1.max(j + 1);
    Some((
        FnDef {
            name: name_tok.text.clone(),
            self_type,
            params,
            ret,
            body,
            line: tokens[at].line,
        },
        next,
    ))
}

/// Parse a parameter list between `open+1` and `close` into
/// `(name, type-text)` pairs, skipping any `self` receiver and pattern
/// parameters (only simple `name: Type` entries are recorded).
fn parse_params(tokens: &[Token], start: usize, close: usize) -> Vec<(String, String)> {
    let mut params = Vec::new();
    let mut j = start;
    let mut entry_start = true;
    while j < close {
        match tokens[j].text.as_str() {
            "," => {
                entry_start = true;
                j += 1;
            }
            "(" | "[" | "{" => j = matching_close(tokens, j) + 1,
            "&" | "mut" => j += 1,
            _ => {
                if entry_start
                    && tokens[j].kind == TokKind::Ident
                    && tokens[j].text != "self"
                    && tokens.get(j + 1).is_some_and(|n| n.text == ":")
                {
                    let ty_start = j + 2;
                    let mut k = ty_start;
                    let mut depth = 0i32;
                    while k < close {
                        match tokens[k].text.as_str() {
                            "(" | "[" | "<" => depth += 1,
                            ")" | "]" | ">" => depth -= 1,
                            ">>" => depth -= 2,
                            "," if depth <= 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    params.push((tokens[j].text.clone(), join_tokens(&tokens[ty_start..k])));
                    j = k;
                } else {
                    entry_start = false;
                    j += 1;
                }
            }
        }
    }
    params
}
