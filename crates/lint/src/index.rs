//! Workspace symbol index for the semantic rules.
//!
//! Built in a first pass over every first-party file, then handed to the
//! per-file rule pass. The index records the three symbol families the
//! semantic rules reason about:
//!
//! * enum variant sets (exhaustiveness: `fault-exhaustive` compares each
//!   handler's referenced variants against the full declared set, so
//!   adding a `FaultKind` variant widens the requirement automatically);
//! * struct field types (`unchecked-sub` resolves `self.field` and
//!   `x.field` operands to integer types through them);
//! * fn/method return types (`unchecked-sub` resolves `x.failed()`-style
//!   call operands; a name is only "known" when every declaration in the
//!   workspace agrees on the return type, so ambiguous names stay
//!   unknown and never produce findings).

use std::collections::{BTreeMap, BTreeSet};

use crate::parse::{parse_items, ParsedFile};
use crate::tokenizer::tokenize;

/// Symbol index over a set of files (the whole workspace, or a single
/// fixture in tests — fixtures declare their own types, so the semantic
/// rules are self-contained per file).
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// Enum name → declared variant names.
    pub enums: BTreeMap<String, Vec<String>>,
    /// Struct name → field name → type text.
    pub struct_fields: BTreeMap<String, BTreeMap<String, String>>,
    /// fn/method name → set of return-type texts seen across the
    /// workspace. Unambiguous iff the set has exactly one element.
    pub fn_returns: BTreeMap<String, BTreeSet<String>>,
}

impl WorkspaceIndex {
    /// Index one file's already-parsed items.
    pub fn add_parsed(&mut self, parsed: &ParsedFile) {
        for e in &parsed.enums {
            self.enums.insert(e.name.clone(), e.variants.clone());
        }
        for s in &parsed.structs {
            let entry = self.struct_fields.entry(s.name.clone()).or_default();
            for (f, ty) in &s.fields {
                entry.insert(f.clone(), ty.clone());
            }
        }
        for f in &parsed.fns {
            let ret = f.ret.clone().unwrap_or_else(|| "()".to_string());
            self.fn_returns
                .entry(f.name.clone())
                .or_default()
                .insert(ret);
        }
    }

    /// Build an index from `(label, source)` pairs.
    pub fn from_sources<'a>(sources: impl IntoIterator<Item = &'a str>) -> WorkspaceIndex {
        let mut idx = WorkspaceIndex::default();
        for src in sources {
            let stream = tokenize(src);
            idx.add_parsed(&parse_items(&stream.tokens));
        }
        idx
    }

    /// The type of `Type::field`, when `Type` is indexed and has it.
    pub fn field_type(&self, ty: &str, field: &str) -> Option<&str> {
        self.struct_fields.get(ty)?.get(field).map(String::as_str)
    }

    /// The unambiguous return type of a fn/method name, if the whole
    /// workspace agrees on one.
    pub fn return_type(&self, name: &str) -> Option<&str> {
        let set = self.fn_returns.get(name)?;
        if set.len() == 1 {
            set.iter().next().map(String::as_str)
        } else {
            None
        }
    }
}

/// Is a type text one of the unsigned integer primitives?
pub fn is_unsigned(ty: &str) -> bool {
    matches!(ty.trim(), "u8" | "u16" | "u32" | "u64" | "u128" | "usize")
}
