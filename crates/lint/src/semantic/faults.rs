//! Rule `fault-exhaustive`: every `FaultKind` / `BackendKind` variant
//! must be handled everywhere faults or backends are dispatched.
//!
//! rustc already rejects a non-exhaustive `match` — what it cannot
//! reject is the two ways a new variant slips through *silently*:
//!
//! 1. a `_ =>` wildcard arm in a match over one of these enums compiles
//!    happily when a variant is added and swallows it at runtime, so
//!    wildcards are banned in such matches (name every variant; the
//!    compiler then turns the next variant addition into a build error);
//! 2. a fault handler (`apply_faults*` / `inject_faults*`) that
//!    dispatches with `if let` / `==` chains instead of a match has no
//!    exhaustiveness check at all, so the rule requires each handler
//!    *file* that references any `FaultKind` variant to reference all of
//!    them — adding a variant fails lint in every backend and the sim
//!    until each one names it. `BackendKind` gets the same file-level
//!    treatment in dispatch files (two or more variants referenced).
//!
//! The variant sets come from the workspace index, never a hardcoded
//! list, so the requirement widens automatically with the enum.

use std::collections::BTreeSet;

use crate::index::WorkspaceIndex;
use crate::parse::{matching_close, ParsedFile};
use crate::rules::{Finding, Rule};
use crate::tokenizer::{TokKind, Token};

/// Enums whose handling must stay exhaustive across the workspace.
const EXHAUSTIVE_ENUMS: &[&str] = &["FaultKind", "BackendKind"];

/// fn-name prefixes that mark a file as a fault handler.
const FAULT_HANDLER_PREFIXES: &[&str] = &["apply_fault", "inject_fault"];

/// Run the rule over one file.
pub fn check(
    file: &str,
    tokens: &[Token],
    parsed: &ParsedFile,
    index: &WorkspaceIndex,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for enum_name in EXHAUSTIVE_ENUMS {
        let Some(variants) = index.enums.get(*enum_name) else {
            continue;
        };
        check_wildcard_arms(file, tokens, enum_name, in_test, out);
        check_file_coverage(file, tokens, parsed, enum_name, variants, in_test, out);
    }
}

/// Ban `_ =>` arms in matches whose patterns reference `enum_name`.
fn check_wildcard_arms(
    file: &str,
    tokens: &[Token],
    enum_name: &str,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind != TokKind::Ident || tokens[i].text != "match" || in_test(tokens[i].line)
        {
            i += 1;
            continue;
        }
        // Scrutinee runs to the first `{` at delimiter depth 0.
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= tokens.len() {
            break;
        }
        let close = matching_close(tokens, j);
        // Walk the arms: pattern position runs from an arm start to its
        // `=>`; arm bodies (blocks or depth-0 expressions) are skipped.
        let mut k = j + 1;
        let mut in_pattern = true;
        let mut references_enum = false;
        let mut wildcard_line: Option<u32> = None;
        while k < close {
            let t = &tokens[k];
            match t.text.as_str() {
                "(" | "[" => {
                    k = matching_close(tokens, k) + 1;
                    continue;
                }
                "{" => {
                    // Arm-body block (or struct pattern inside a
                    // pattern, which also ends before the next `=>`).
                    k = matching_close(tokens, k) + 1;
                    if !in_pattern {
                        in_pattern = true;
                    }
                    continue;
                }
                "=>" => in_pattern = false,
                "," => in_pattern = true,
                "_" if in_pattern
                    && tokens
                        .get(k + 1)
                        .is_some_and(|n| n.text == "=>" || n.text == "if") =>
                {
                    wildcard_line.get_or_insert(t.line);
                }
                _ => {
                    if in_pattern
                        && t.text == enum_name
                        && tokens.get(k + 1).is_some_and(|n| n.text == "::")
                    {
                        references_enum = true;
                    }
                }
            }
            k += 1;
        }
        if references_enum {
            if let Some(line) = wildcard_line {
                out.push(Finding {
                    file: file.to_string(),
                    line,
                    rule: Rule::FaultExhaustive,
                    message: format!(
                        "wildcard `_` arm in a match over `{enum_name}` — name every variant so adding one fails the build instead of being silently swallowed"
                    ),
                });
            }
        }
        i = j + 1;
    }
}

/// File-level coverage: handler files must reference every variant.
fn check_file_coverage(
    file: &str,
    tokens: &[Token],
    parsed: &ParsedFile,
    enum_name: &str,
    variants: &[String],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let mut referenced: BTreeSet<&str> = BTreeSet::new();
    let mut first_ref_line = None;
    for w in tokens.windows(3) {
        if w[0].text == enum_name
            && w[1].text == "::"
            && w[2].kind == TokKind::Ident
            && variants.iter().any(|v| *v == w[2].text)
            && !in_test(w[0].line)
        {
            referenced.insert(
                variants
                    .iter()
                    .find(|v| **v == w[2].text)
                    .map(|v| v.as_str())
                    .unwrap_or(""),
            );
            first_ref_line.get_or_insert(w[0].line);
        }
    }
    let required = match enum_name {
        // Fault handlers must mirror the full taxonomy.
        "FaultKind" => {
            !referenced.is_empty()
                && parsed.fns.iter().any(|f| {
                    FAULT_HANDLER_PREFIXES.iter().any(|p| f.name.starts_with(p))
                        && f.body.0 < f.body.1
                })
        }
        // Dispatch files (two or more variants named) must name all.
        _ => referenced.len() >= 2,
    };
    if !required {
        return;
    }
    let missing: Vec<&str> = variants
        .iter()
        .map(String::as_str)
        .filter(|v| !referenced.contains(v))
        .collect();
    if let (Some(line), false) = (first_ref_line, missing.is_empty()) {
        out.push(Finding {
            file: file.to_string(),
            line,
            rule: Rule::FaultExhaustive,
            message: format!(
                "this file handles `{enum_name}` but covers {}/{} variants — missing: {}",
                referenced.len(),
                variants.len(),
                missing.join(", ")
            ),
        });
    }
}
