//! Rule `counter-conservation`: paired-counter mutations must stay
//! paired, and counter-mutating files must carry an audit (the PR 8
//! `reserve.failed != disk.failed` fail-before-release class).
//!
//! Three paired groups, each checked per fn body:
//!
//! 1. **reserve/disk stream parity** — a `reserve.fail_streams(..)` (or
//!    `recover_streams`) call must be paired with the disk-side call of
//!    the same name in the same fn, so the two failure ledgers move
//!    together. Files that never reference `DiskSubsystem` (the sim
//!    mirrors the reserve without a disk model) are exempt.
//! 2. **degraded population** — `metrics.runtime.degraded_entries += ..`
//!    must be accompanied by a mutation of the backend's live population
//!    counter (`degraded_count`/`starved_count`) in the same fn; the
//!    per-tick audits compare the two.
//! 3. **fault attribution** — `faults_injected += ..` may only happen in
//!    a fn that actually handles `FaultKind` events.
//!
//! Mirror merges (`x.degraded_entries += y.degraded_entries`, as in
//! `RuntimeMetrics` aggregation) conserve by construction and are
//! exempt. Any file with a non-exempt mutation site must also define or
//! call `check_invariants` — the audited scope the ledgers are checked
//! under.

use crate::dataflow::operand_ending_at;
use crate::parse::{FnDef, ParsedFile};
use crate::rules::{Finding, Rule};
use crate::tokenizer::{TokKind, Token};

/// Stream-ledger methods whose reserve/disk sides must move together.
const PAIRED_STREAM_METHODS: &[&str] = &["fail_streams", "recover_streams"];

/// Live-population counters that mirror `degraded_entries`.
const POPULATION_COUNTERS: &[&str] = &["degraded_count", "starved_count"];

/// Run the rule over every fn body in the file.
pub fn check(
    file: &str,
    tokens: &[Token],
    parsed: &ParsedFile,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let file_has_disk = tokens
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "DiskSubsystem");
    let file_has_audit = tokens
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "check_invariants");
    let mut first_mutation: Option<u32> = None;

    for fndef in &parsed.fns {
        let (start, end) = fndef.body;
        if start >= end {
            continue;
        }
        let body = &tokens[start..end.min(tokens.len())];
        check_stream_parity(
            file,
            tokens,
            fndef,
            file_has_disk,
            in_test,
            &mut first_mutation,
            out,
        );
        check_population(file, body, in_test, &mut first_mutation, out);
        check_fault_attribution(file, body, in_test, &mut first_mutation, out);
    }

    if let Some(line) = first_mutation {
        if !file_has_audit {
            out.push(Finding {
                file: file.to_string(),
                line,
                rule: Rule::CounterConservation,
                message:
                    "file mutates conserved counters but never defines or calls `check_invariants` — every ledger mutation must be reachable from an audit"
                        .into(),
            });
        }
    }
}

/// Group 1: reserve-side stream calls need a disk-side twin in the fn.
fn check_stream_parity(
    file: &str,
    tokens: &[Token],
    fndef: &FnDef,
    file_has_disk: bool,
    in_test: &dyn Fn(u32) -> bool,
    first_mutation: &mut Option<u32>,
    out: &mut Vec<Finding>,
) {
    let (start, end) = fndef.body;
    let end = end.min(tokens.len());
    for method in PAIRED_STREAM_METHODS {
        let mut reserve_line: Option<u32> = None;
        let mut disk_seen = false;
        for i in start..end {
            let t = &tokens[i];
            if t.kind != TokKind::Ident || t.text != *method || in_test(t.line) {
                continue;
            }
            // Must be a method call: `.method(`.
            if i == 0
                || tokens[i - 1].text != "."
                || tokens.get(i + 1).is_none_or(|n| n.text != "(")
            {
                continue;
            }
            let Some(recv) = operand_ending_at(tokens, i - 1) else {
                continue;
            };
            let recv_text: String = tokens[recv.0..recv.1]
                .iter()
                .map(|t| t.text.as_str())
                .collect();
            if recv_text.contains("reserve") {
                reserve_line.get_or_insert(t.line);
            } else if recv_text.contains("disk") {
                disk_seen = true;
            }
        }
        if let Some(line) = reserve_line {
            if first_mutation.is_none() {
                *first_mutation = Some(line);
            }
            if file_has_disk && !disk_seen {
                out.push(Finding {
                    file: file.to_string(),
                    line,
                    rule: Rule::CounterConservation,
                    message: format!(
                        "`reserve.{method}` without the paired disk-side `{method}` in the same fn — reserve and disk failure ledgers must move together (PR 8 parity class)"
                    ),
                });
            }
        }
    }
}

/// Group 2: `degraded_entries +=` needs a population-counter mutation.
fn check_population(
    file: &str,
    body: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    first_mutation: &mut Option<u32>,
    out: &mut Vec<Finding>,
) {
    let population_mutated = body.windows(2).any(|w| {
        w[0].kind == TokKind::Ident
            && POPULATION_COUNTERS.contains(&w[0].text.as_str())
            && matches!(w[1].text.as_str(), "+=" | "-=" | "=")
    });
    for (k, w) in body.windows(2).enumerate() {
        if w[0].kind != TokKind::Ident
            || w[0].text != "degraded_entries"
            || w[1].text != "+="
            || in_test(w[0].line)
        {
            continue;
        }
        // Mirror merge: `a.degraded_entries += b.degraded_entries`.
        if body
            .get(k + 2..)
            .is_some_and(|rest| rest.iter().take(4).any(|t| t.text == "degraded_entries"))
        {
            continue;
        }
        if first_mutation.is_none() {
            *first_mutation = Some(w[0].line);
        }
        if !population_mutated {
            out.push(Finding {
                file: file.to_string(),
                line: w[0].line,
                rule: Rule::CounterConservation,
                message:
                    "`degraded_entries` incremented without mutating the live population counter (degraded_count/starved_count) in the same fn — the per-tick audit compares the two"
                        .into(),
            });
        }
    }
}

/// Group 3: `faults_injected +=` only inside `FaultKind` handlers.
fn check_fault_attribution(
    file: &str,
    body: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    first_mutation: &mut Option<u32>,
    out: &mut Vec<Finding>,
) {
    let handles_faults = body
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "FaultKind");
    for (k, w) in body.windows(2).enumerate() {
        if w[0].kind != TokKind::Ident
            || w[0].text != "faults_injected"
            || w[1].text != "+="
            || in_test(w[0].line)
        {
            continue;
        }
        if body
            .get(k + 2..)
            .is_some_and(|rest| rest.iter().take(4).any(|t| t.text == "faults_injected"))
        {
            continue;
        }
        if first_mutation.is_none() {
            *first_mutation = Some(w[0].line);
        }
        if !handles_faults {
            out.push(Finding {
                file: file.to_string(),
                line: w[0].line,
                rule: Rule::CounterConservation,
                message:
                    "`faults_injected` incremented in a fn that handles no `FaultKind` — fault attribution must happen at the injection site"
                        .into(),
            });
        }
    }
}
