//! Rule `time-domain`: tick, minute, and segment quantities must not
//! mix in arithmetic or comparisons without an explicit conversion (the
//! PR 2 double-rounding class: two quantities quantized in different
//! domains were combined as if commensurable).
//!
//! Domains are assigned from declaration-site naming, which this
//! codebase keeps disciplined (`*_ticks`, `stall_minutes`,
//! `buffer_segments`, ...): an identifier belongs to a domain iff its
//! name contains exactly one of the domain substrings. An operand's
//! domain is the domain of its identifiers when they agree; operands
//! mixing domains internally, or containing a conversion-shaped name
//! (`to_*`, `from_*`, `per_*`, `as_*`), are treated as explicit
//! conversions and never flagged. Unclassified names (`length`,
//! `restart_interval`, bare literals) have no domain — the tick grid
//! deliberately identifies one tick with one minute-sized segment, so
//! only *named* cross-domain mixes are errors.

use crate::dataflow::{operand_ending_at, operand_starting_at, operand_text};
use crate::parse::ParsedFile;
use crate::rules::{Finding, Rule};
use crate::tokenizer::{TokKind, Token};

/// The three time-like unit domains of the tick server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Virtual-clock ticks (`now`, `*_tick`, `ticks`).
    Tick,
    /// Wall minutes of the paper's model (`stall_minutes`, `length_minutes`).
    Minute,
    /// Movie segments / partition slots (`segments`, `buffer_segments`).
    Segment,
}

impl Domain {
    fn name(self) -> &'static str {
        match self {
            Domain::Tick => "tick",
            Domain::Minute => "minute",
            Domain::Segment => "segment",
        }
    }
}

/// Domain of one identifier, from its name. Names matching several
/// domains (`ticks_per_minute`) are conversions, not members.
fn ident_domain(name: &str) -> Option<Domain> {
    let lower = name.to_ascii_lowercase();
    let hits = [
        (lower.contains("tick"), Domain::Tick),
        (lower.contains("minute"), Domain::Minute),
        (lower.contains("segment"), Domain::Segment),
    ];
    let mut found = None;
    for (hit, d) in hits {
        if hit {
            if found.is_some() {
                return None;
            }
            found = Some(d);
        }
    }
    found
}

/// Does the name look like an explicit unit conversion?
fn is_conversion_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    ["to_", "from_", "per_", "as_", "convert"]
        .iter()
        .any(|p| lower.contains(p))
}

/// Domain of an operand token range: the agreed domain of its
/// classified identifiers; `None` on internal disagreement or when a
/// conversion-shaped name appears anywhere in the operand.
fn operand_domain(tokens: &[Token], range: (usize, usize)) -> Option<Domain> {
    let mut found: Option<Domain> = None;
    for t in &tokens[range.0..range.1] {
        if t.kind != TokKind::Ident {
            continue;
        }
        if is_conversion_name(&t.text) {
            return None;
        }
        if let Some(d) = ident_domain(&t.text) {
            match found {
                Some(prev) if prev != d => return None,
                _ => found = Some(d),
            }
        }
    }
    found
}

/// Operators across which domains must agree.
const MIXING_OPS: &[&str] = &["+", "-", "+=", "-=", "<", ">", "<=", ">=", "==", "!="];

/// Run the rule over every fn body in the file.
pub fn check(
    file: &str,
    tokens: &[Token],
    parsed: &ParsedFile,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for fndef in &parsed.fns {
        let (start, end) = fndef.body;
        for i in start..end.min(tokens.len()) {
            let t = &tokens[i];
            if t.kind != TokKind::Punct || !MIXING_OPS.contains(&t.text.as_str()) || in_test(t.line)
            {
                continue;
            }
            let Some(l) = operand_ending_at(tokens, i) else {
                continue;
            };
            let Some(r) = operand_starting_at(tokens, i + 1) else {
                continue;
            };
            let (Some(ld), Some(rd)) = (operand_domain(tokens, l), operand_domain(tokens, r))
            else {
                continue;
            };
            if ld != rd {
                out.push(Finding {
                    file: file.to_string(),
                    line: t.line,
                    rule: Rule::TimeDomain,
                    message: format!(
                        "cross-domain `{}` between `{}` ({}) and `{}` ({}) — convert explicitly before mixing units (PR 2 rounding-domain class)",
                        t.text,
                        operand_text(tokens, l),
                        ld.name(),
                        operand_text(tokens, r),
                        rd.name()
                    ),
                });
            }
        }
    }
}
