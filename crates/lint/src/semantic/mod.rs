//! Semantic rule families (lint v2).
//!
//! Unlike the token rules in [`crate::rules`], these see structure: fn
//! bodies from [`crate::parse`], cross-file symbol facts from
//! [`crate::index`], and per-fn use-def/guard facts from
//! [`crate::dataflow`]. Each family encodes one bug class this repo has
//! actually shipped and fixed (see DESIGN.md §14):
//!
//! | rule | bug class |
//! |------|-----------|
//! | `unchecked-sub` | PR 6 — unsigned subtraction underflow in the session hot path |
//! | `counter-conservation` | PR 8 — `reserve.failed != disk.failed` fail-before-release parity |
//! | `fault-exhaustive` | PR 5/8 — a new `FaultKind`/`BackendKind` variant silently unhandled |
//! | `time-domain` | PR 2 — tick/minute/segment quantities mixed without conversion |

pub mod counters;
pub mod faults;
pub mod time_domain;
pub mod unchecked_sub;

use crate::index::WorkspaceIndex;
use crate::parse::ParsedFile;
use crate::rules::Finding;
use crate::tokenizer::Token;

/// Run every semantic family over one deterministic-core file.
pub fn run(
    file: &str,
    tokens: &[Token],
    parsed: &ParsedFile,
    index: &WorkspaceIndex,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    unchecked_sub::check(file, tokens, parsed, index, in_test, out);
    counters::check(file, tokens, parsed, in_test, out);
    faults::check(file, tokens, parsed, index, in_test, out);
    time_domain::check(file, tokens, parsed, in_test, out);
}
