//! Rule `unchecked-sub`: unguarded `a - b` / `a -= b` on unsigned
//! integers in the deterministic core (the PR 6 underflow class).
//!
//! A subtraction is flagged only when *both* operand types resolve to
//! unsigned integers (through locals, params, struct fields, or
//! workspace-unambiguous method return types) and no guard is visible in
//! the same fn. Guards that silence a site:
//!
//! * an ordering comparison implying `a >= b` anywhere in the fn —
//!   `if`/`while` conditions, `match` guards, and `debug_assert!`s all
//!   count (the analysis is flow-insensitive on purpose);
//! * for `a - k` with literal `k`, a threshold fact (`a > 0` guards
//!   `a - 1`);
//! * a use-def relation proving order: `b = a.min(..)`, `b = a % ..`,
//!   `b = a & ..`, `a = b.max(..)`, `a = b + ..`;
//! * writing `saturating_sub`/`checked_sub` instead (no `-` token), or a
//!   justified `vod-lint: allow(unchecked-sub)` directive.
//!
//! Operands the extractor cannot type are skipped: the rule trades
//! recall for a zero-false-positive default, because the workspace gate
//! requires `findings == 0`.

use crate::dataflow::{
    analyze_fn, operand_ending_at, operand_starting_at, operand_text, resolve_type,
};
use crate::index::{is_unsigned, WorkspaceIndex};
use crate::parse::ParsedFile;
use crate::rules::{Finding, Rule};
use crate::tokenizer::{TokKind, Token};

/// Run the rule over every fn body in the file.
pub fn check(
    file: &str,
    tokens: &[Token],
    parsed: &ParsedFile,
    index: &WorkspaceIndex,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for fndef in &parsed.fns {
        let (start, end) = fndef.body;
        if start >= end {
            continue;
        }
        let facts = analyze_fn(tokens, fndef, index);
        for i in start..end.min(tokens.len()) {
            let t = &tokens[i];
            if t.kind != TokKind::Punct || (t.text != "-" && t.text != "-=") || in_test(t.line) {
                continue;
            }
            if t.text == "-" && !is_binary_minus(tokens, i) {
                continue;
            }
            let Some(l) = operand_ending_at(tokens, i) else {
                continue;
            };
            let Some(r) = operand_starting_at(tokens, i + 1) else {
                continue;
            };
            // A literal left side (`64 - x`) is a constant-bound shape
            // the rule does not reason about.
            if l.1 - l.0 == 1 && tokens[l.0].kind == TokKind::Int {
                continue;
            }
            let Some(lt) = resolve_type(tokens, l, fndef, &facts, index) else {
                continue;
            };
            if !is_unsigned(&lt) {
                continue;
            }
            let right_is_literal = r.1 - r.0 == 1 && tokens[r.0].kind == TokKind::Int;
            if !right_is_literal {
                let Some(rt) = resolve_type(tokens, r, fndef, &facts, index) else {
                    continue;
                };
                if !is_unsigned(&rt) && rt != "{integer}" {
                    continue;
                }
            }
            let ltext = operand_text(tokens, l);
            let rtext = operand_text(tokens, r);
            if facts.guards_subtraction(&ltext, &rtext) {
                continue;
            }
            out.push(Finding {
                file: file.to_string(),
                line: t.line,
                rule: Rule::UncheckedSub,
                message: format!(
                    "unsigned subtraction `{ltext} {} {rtext}` ({lt}) with no visible `>=` guard — use saturating_sub/checked_sub or guard it (PR 6 underflow class)",
                    t.text
                ),
            });
        }
    }
}

/// Is the `-` at `i` a binary operator (vs unary negation)?
fn is_binary_minus(tokens: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|p| &tokens[p]) else {
        return false;
    };
    matches!(prev.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
        || matches!(prev.text.as_str(), ")" | "]" | "?")
}
