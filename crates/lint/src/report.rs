//! Machine-readable report: JSON serialization and baseline ratcheting.
//!
//! The JSON is hand-rolled (the workspace is vendored-offline, and the
//! shape is four scalar fields plus a flat findings array), with full
//! string escaping so arbitrary matched text round-trips.

use crate::rules::{Finding, Rule};

/// Aggregate result of a lint run over many files.
#[derive(Debug, Default)]
pub struct Report {
    /// All surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by well-formed inline suppressions.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings matched against the `--baseline` report (reported but
    /// not counted toward the exit code).
    pub baselined: usize,
    /// Analyzer wall time in milliseconds, stamped by the CLI. Zero in
    /// library use (tests pin the schema, not the timing).
    pub wall_time_ms: u64,
}

impl Report {
    /// Canonical ordering so text and JSON output are deterministic.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
    }

    /// Surviving findings per rule, over the full catalog (zeroes
    /// included, so the report shape is stable as rules are added).
    pub fn rule_counts(&self) -> Vec<(&'static str, usize)> {
        Rule::ALL
            .iter()
            .map(|r| {
                (
                    r.name(),
                    self.findings.iter().filter(|f| f.rule == *r).count(),
                )
            })
            .collect()
    }

    /// Render the JSON report (schema v2: per-rule counts and analyzer
    /// wall time on top of the v1 scalars; see DESIGN.md §14).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"version\": 2,\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        s.push_str(&format!("  \"baselined\": {},\n", self.baselined));
        s.push_str(&format!("  \"wall_time_ms\": {},\n", self.wall_time_ms));
        s.push_str("  \"rule_counts\": {");
        for (i, (name, count)) in self.rule_counts().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{name}\": {count}"));
        }
        s.push_str("\n  },\n");
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                escape(&f.file),
                f.line,
                f.rule.name(),
                escape(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Escape a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A baseline loaded from a previous JSON report. Matching is by
/// `(file, rule, message)` — line numbers drift across edits — and is
/// count-bounded: a baseline with N entries for a key forgives at most N
/// findings with that key, so new instances of an old defect still fail.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: Vec<(String, String, String, usize)>, // (file, rule, message, remaining)
}

impl Baseline {
    /// Parse a baseline from the JSON produced by [`Report::to_json`].
    /// The parser is a minimal scanner for that exact shape; unknown
    /// fields are ignored, malformed input yields an error string.
    pub fn parse(json: &str) -> Result<Baseline, String> {
        let mut entries: Vec<(String, String, String, usize)> = Vec::new();
        // Scan for finding objects by their "file" keys; each object is
        // emitted on one line by `to_json`, so line-wise parsing is exact
        // for our own output and tolerant of reformatting that keeps one
        // object per line.
        for line in json.lines() {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with('{') || !line.contains("\"file\"") {
                continue;
            }
            let file = extract_str(line, "file").ok_or("finding object missing \"file\"")?;
            let rule = extract_str(line, "rule").ok_or("finding object missing \"rule\"")?;
            let message =
                extract_str(line, "message").ok_or("finding object missing \"message\"")?;
            if let Some(e) = entries
                .iter_mut()
                .find(|e| e.0 == file && e.1 == rule && e.2 == message)
            {
                e.3 += 1;
            } else {
                entries.push((file, rule, message, 1));
            }
        }
        Ok(Baseline { entries })
    }

    /// Consume one budget slot for this finding if the baseline covers it.
    pub fn absorb(&mut self, f: &Finding) -> bool {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.0 == f.file && e.1 == f.rule.name() && e.2 == f.message && e.3 > 0)
        {
            e.3 -= 1;
            true
        } else {
            false
        }
    }
}

/// Pull the string value of `"key": "..."` out of a single-line JSON
/// object, undoing the escapes [`escape`] produces.
fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let bytes: Vec<char> = line[start..].chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            '"' => return Some(out),
            '\\' => {
                let next = *bytes.get(i + 1)?;
                match next {
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'u' => {
                        // \uXXXX
                        let hex: String = bytes.get(i + 2..i + 6)?.iter().collect();
                        let v = u32::from_str_radix(&hex, 16).ok()?;
                        out.push(char::from_u32(v)?);
                        i += 4;
                    }
                    c => out.push(c),
                }
                i += 2;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    None
}

/// Re-export used by tests to assert rule identity from parsed names.
pub fn rule_names() -> Vec<&'static str> {
    Rule::ALL.iter().map(|r| r.name()).collect()
}
