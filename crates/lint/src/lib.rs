//! `vod-lint` — workspace invariant checker for the VOD reproduction.
//!
//! A dependency-free static-analysis pass (hand-rolled tokenizer, no
//! `syn`) that walks the first-party crate sources and enforces the
//! domain invariants the test suite can only probabilistically catch:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `float-cmp` | no `==`/`!=` with float-literal operands outside `#[cfg(test)]` — use the `vod_dist::approx` helpers |
//! | `no-panic` | no `unwrap`/`expect`/`panic!`/`todo!`/`dbg!` in library code paths |
//! | `quantize-cast` | no ad-hoc `floor`/`round`/`ceil`/`trunc` or float→int `as` casts in files touching partition geometry — quantization goes through `QuantizedGeometry` |
//! | `nondet` | no `std::time`, `HashMap`/`HashSet`, `RandomState`/`DefaultHasher`, `available_parallelism`, or thread-identity sources in the runtime/sim/server deterministic core |
//! | `pub-fn-doc` | every `pub fn` in `vod-dist`/`vod-runtime` carries a doc comment |
//! | `suppression` | every inline suppression names a known rule and carries a justification |
//!
//! Findings print as `file:line rule message`, a machine-readable JSON
//! report is written with `--json`, and the binary exits nonzero on any
//! unsuppressed, un-baselined finding. Suppress a single site with
//! a comment on (or directly above) the offending line:
//!
//! ```text
//! // vod-lint: allow(quantize-cast) — this IS the blessed rounding site
//! ```
//!
//! See DESIGN.md §9 for the rule catalog rationale and suppression policy.

#![forbid(unsafe_code)]

pub mod report;
pub mod rules;
pub mod tokenizer;
pub mod walk;

pub use report::{Baseline, Report};
pub use rules::{lint_source, FileClass, FileLint, Finding, Rule};

use std::path::Path;

/// Lint every first-party file under `root`, returning the aggregated
/// (sorted) report. IO errors carry the offending path.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let files =
        walk::workspace_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut report = Report::default();
    for path in files {
        let label = walk::rel_label(root, &path);
        let src = std::fs::read_to_string(&path).map_err(|e| format!("reading {label}: {e}"))?;
        let lint = lint_source(&label, &src, walk::classify(&label));
        report.findings.extend(lint.findings);
        report.suppressed += lint.suppressed;
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}
