//! `vod-lint` — workspace semantic analyzer for the VOD reproduction.
//!
//! A dependency-free static-analysis pass (hand-rolled tokenizer, no
//! `syn`) that walks the first-party crate sources and enforces the
//! domain invariants the test suite can only probabilistically catch.
//! Six token-level rules (v1) run per line; four semantic families (v2)
//! run over a lightweight parse layer ([`parse`]), a workspace symbol
//! index ([`index`]), and intra-procedural use-def facts ([`dataflow`]):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `float-cmp` | no `==`/`!=` with float-literal operands outside `#[cfg(test)]` — use the `vod_dist::approx` helpers |
//! | `no-panic` | no `unwrap`/`expect`/`panic!`/`todo!`/`dbg!` in library code paths |
//! | `quantize-cast` | no ad-hoc `floor`/`round`/`ceil`/`trunc` or float→int `as` casts in files touching partition geometry — quantization goes through `QuantizedGeometry` |
//! | `nondet` | no `std::time`, `HashMap`/`HashSet`, `RandomState`/`DefaultHasher`, `available_parallelism`, or thread-identity sources in the runtime/sim/server deterministic core |
//! | `pub-fn-doc` | every `pub fn` in `vod-dist`/`vod-runtime`/`vod-lint` carries a doc comment |
//! | `suppression` | every inline suppression names a known rule and carries a justification |
//! | `unchecked-sub` | no unguarded `a - b` on unsigned integers in the deterministic core — guard with `>=`, or use `saturating_sub`/`checked_sub` (PR 6 class) |
//! | `counter-conservation` | paired ledgers (`reserve`/`disk` stream failures, `degraded_entries`/population, `faults_injected`) mutate together, in files with a `check_invariants` audit (PR 8 class) |
//! | `fault-exhaustive` | every `FaultKind`/`BackendKind` variant handled in each fault handler and dispatch file; no `_` wildcard over those enums (PR 5/8 class) |
//! | `time-domain` | no tick/minute/segment cross-domain arithmetic without explicit conversion (PR 2 class) |
//!
//! Findings print as `file:line rule message`, a machine-readable JSON
//! report (schema v2: per-rule counts + analyzer wall time) is written
//! with `--json`, and the binary exits nonzero on any unsuppressed,
//! un-baselined finding. The CI gate requires exactly zero findings.
//! Suppress a single site with a comment on (or directly above) the
//! offending line:
//!
//! ```text
//! // vod-lint: allow(quantize-cast) — this IS the blessed rounding site
//! ```
//!
//! See DESIGN.md §9 (token rules) and §14 (semantic rule catalog v2)
//! for the rationale and suppression policy.

#![forbid(unsafe_code)]

pub mod dataflow;
pub mod index;
pub mod parse;
pub mod report;
pub mod rules;
pub mod semantic;
pub mod tokenizer;
pub mod walk;

pub use index::WorkspaceIndex;
pub use report::{Baseline, Report};
pub use rules::{lint_source, lint_source_indexed, FileClass, FileLint, Finding, Rule};

use std::path::Path;

/// Lint every first-party file under `root`, returning the aggregated
/// (sorted) report. Two passes: the first builds the workspace symbol
/// index (enum variant sets, struct field types, method return types)
/// from every file, the second runs the rules against it — so the
/// semantic rules see cross-file facts, e.g. a `FaultKind` variant
/// added in `vod-runtime` widens the exhaustiveness requirement on
/// every backend. IO errors carry the offending path.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let files =
        walk::workspace_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        let label = walk::rel_label(root, path);
        let src = std::fs::read_to_string(path).map_err(|e| format!("reading {label}: {e}"))?;
        sources.push((label, src));
    }
    let index = WorkspaceIndex::from_sources(sources.iter().map(|(_, s)| s.as_str()));
    let mut report = Report::default();
    for (label, src) in &sources {
        let lint = lint_source_indexed(label, src, walk::classify(label), &index);
        report.findings.extend(lint.findings);
        report.suppressed += lint.suppressed;
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}
