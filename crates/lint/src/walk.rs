//! Workspace walking and path-based file classification.

use std::path::{Path, PathBuf};

use crate::rules::FileClass;

/// Crates whose `src/` trees form the deterministic core: the PR 2
/// cross-validation gate requires bitwise same-seed agreement across
/// them, so nondeterminism sources are banned outright.
const DETERMINISTIC_CRATES: &[&str] = &["runtime", "sim", "server", "federation"];

/// Crates whose public API carries the paper's numerics — plus the
/// linter itself (dogfood: rule semantics live in the doc comments);
/// every `pub fn` must document its domain (and panics, per clippy's
/// `missing_panics_doc`).
const DOC_REQUIRED_CRATES: &[&str] = &["dist", "runtime", "lint", "federation"];

/// Classify a workspace-relative path (forward slashes) into the rule
/// families that apply to it. Binaries (`src/bin/`, `main.rs`) keep the
/// numeric rules but are exempt from `no-panic`: a CLI aborting on bad
/// input is acceptable, a library function aborting is not.
pub fn classify(rel: &str) -> FileClass {
    let is_bin = rel.contains("/bin/") || rel.ends_with("main.rs") || rel.ends_with("build.rs");
    let crate_of = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    FileClass {
        library: !is_bin,
        deterministic: DETERMINISTIC_CRATES.contains(&crate_of),
        doc_required: DOC_REQUIRED_CRATES.contains(&crate_of),
    }
}

/// Enumerate the first-party `.rs` files of the workspace rooted at
/// `root`: the root package's `src/` and every `crates/*/src/`. Test
/// trees, benches, examples, and the vendored stand-ins are out of
/// scope (tests are exempt from the domain rules by design, and vendor
/// code is third-party API surface we mirror, not author).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut roots = vec![root.join("src")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut names: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        names.sort();
        for c in names {
            roots.push(c.join("src"));
        }
    }
    let mut files = Vec::new();
    for r in roots {
        if r.is_dir() {
            collect_rs(&r, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
pub fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Workspace-relative, forward-slash form of `path` under `root`; falls
/// back to the full path when `path` is outside `root`.
pub fn rel_label(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
