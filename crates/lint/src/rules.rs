//! The rule engine: domain invariants checked over the token stream.
//!
//! Every rule is named, line-anchored, and suppressible with an inline
//! `//` comment directive: the tool name, a colon, then
//! `allow(<rule>) — <justification>`, trailing the offending line or
//! standing directly above it. The justification text is mandatory; a
//! bare directive is itself reported under the `suppression` rule.

use crate::index::WorkspaceIndex;
use crate::parse::parse_items;
use crate::tokenizer::{tokenize, Comment, TokKind, Token, TokenStream};

/// The rule catalog. Names are stable: they appear in findings, reports,
/// baselines, and suppression directives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `==`/`!=` with a float-literal operand outside `#[cfg(test)]`.
    FloatCmp,
    /// `unwrap`/`expect`/`panic!`/`todo!`/`dbg!` in library code paths.
    NoPanic,
    /// Ad-hoc `floor`/`round`/`ceil`/`trunc` or float-to-int `as` casts
    /// in files that touch partition geometry.
    QuantizeCast,
    /// Nondeterminism sources in the deterministic core.
    Nondet,
    /// Undocumented `pub fn` in the numeric/runtime API crates.
    PubFnDoc,
    /// Malformed suppression directive (unknown rule, or no justification).
    Suppression,
    /// Unguarded unsigned subtraction in the deterministic core.
    UncheckedSub,
    /// Paired-counter mutation without its twin or an audit in scope.
    CounterConservation,
    /// Missing `FaultKind`/`BackendKind` coverage in a handler file, or
    /// a wildcard arm that would swallow new variants.
    FaultExhaustive,
    /// Cross-domain tick/minute/segment arithmetic without conversion.
    TimeDomain,
}

impl Rule {
    /// Stable kebab-case rule name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::FloatCmp => "float-cmp",
            Rule::NoPanic => "no-panic",
            Rule::QuantizeCast => "quantize-cast",
            Rule::Nondet => "nondet",
            Rule::PubFnDoc => "pub-fn-doc",
            Rule::Suppression => "suppression",
            Rule::UncheckedSub => "unchecked-sub",
            Rule::CounterConservation => "counter-conservation",
            Rule::FaultExhaustive => "fault-exhaustive",
            Rule::TimeDomain => "time-domain",
        }
    }

    /// Parse a rule name as written inside `allow(...)`.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "float-cmp" => Some(Rule::FloatCmp),
            "no-panic" => Some(Rule::NoPanic),
            "quantize-cast" => Some(Rule::QuantizeCast),
            "nondet" => Some(Rule::Nondet),
            "pub-fn-doc" => Some(Rule::PubFnDoc),
            "suppression" => Some(Rule::Suppression),
            "unchecked-sub" => Some(Rule::UncheckedSub),
            "counter-conservation" => Some(Rule::CounterConservation),
            "fault-exhaustive" => Some(Rule::FaultExhaustive),
            "time-domain" => Some(Rule::TimeDomain),
            _ => None,
        }
    }

    /// Every rule, in report order.
    pub const ALL: &'static [Rule] = &[
        Rule::FloatCmp,
        Rule::NoPanic,
        Rule::QuantizeCast,
        Rule::Nondet,
        Rule::PubFnDoc,
        Rule::Suppression,
        Rule::UncheckedSub,
        Rule::CounterConservation,
        Rule::FaultExhaustive,
        Rule::TimeDomain,
    ];
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation, including the matched text.
    pub message: String,
}

impl Finding {
    /// Render as the canonical `file:line rule message` text line.
    pub fn render(&self) -> String {
        format!(
            "{}:{} {} {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Which rule families apply to a file. Derived from the workspace path
/// by [`crate::walk::classify`], or constructed directly in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// Library code path: `no-panic` applies. False for `src/bin/`,
    /// `main.rs`, and build scripts.
    pub library: bool,
    /// Deterministic core (runtime/sim/server): `nondet` applies.
    pub deterministic: bool,
    /// Numeric/runtime API crate (dist/runtime): `pub-fn-doc` applies.
    pub doc_required: bool,
}

/// Result of linting one file: surviving findings plus how many were
/// suppressed by directives.
#[derive(Debug, Default)]
pub struct FileLint {
    /// Findings not covered by a suppression directive.
    pub findings: Vec<Finding>,
    /// Count of findings silenced by a well-formed directive.
    pub suppressed: usize,
}

/// Geometry marker types: a file mentioning any of these is treated as
/// "touching partition or broadcast geometry" and gets the
/// `quantize-cast` rule.
const GEOMETRY_MARKERS: &[&str] = &["QuantizedGeometry", "PartitionWindows", "PyramidGeometry"];

/// Identifiers that, as `.method()` calls, constitute ad-hoc quantization.
const ROUNDING_METHODS: &[&str] = &["floor", "round", "ceil", "trunc"];

/// Lint one file's source text under the given classification, with a
/// symbol index built from the file itself. Fixture tests and
/// single-file CLI runs use this entry: the semantic rules resolve
/// types and enum variant sets against the file's own declarations, so
/// a fixture is self-contained. Workspace runs use
/// [`lint_source_indexed`] with the cross-file index instead.
pub fn lint_source(file: &str, src: &str, class: FileClass) -> FileLint {
    let index = WorkspaceIndex::from_sources([src]);
    lint_source_indexed(file, src, class, &index)
}

/// Lint one file against a pre-built (typically workspace-wide) index.
pub fn lint_source_indexed(
    file: &str,
    src: &str,
    class: FileClass,
    index: &WorkspaceIndex,
) -> FileLint {
    let stream = tokenize(src);
    let test_regions = test_regions(&stream.tokens);
    let in_test = |line: u32| test_regions.iter().any(|r| r.0 <= line && line <= r.1);
    let (suppressions, mut findings) = parse_suppressions(file, &stream.comments);

    let geometry = stream
        .tokens
        .iter()
        .any(|t| t.kind == TokKind::Ident && GEOMETRY_MARKERS.contains(&t.text.as_str()));

    rule_float_cmp(file, &stream, &in_test, &mut findings);
    if class.library {
        rule_no_panic(file, &stream, &in_test, &mut findings);
    }
    if geometry {
        rule_quantize_cast(file, &stream, &in_test, &mut findings);
    }
    if class.deterministic {
        rule_nondet(file, &stream, &in_test, &mut findings);
    }
    if class.doc_required {
        rule_pub_fn_doc(file, src, &stream, &in_test, &mut findings);
    }
    if class.deterministic {
        let parsed = parse_items(&stream.tokens);
        crate::semantic::run(
            file,
            &stream.tokens,
            &parsed,
            index,
            &in_test,
            &mut findings,
        );
    }

    // A directive trailing a code line covers that line; a standalone
    // directive (possibly a multi-line justification comment) covers the
    // next line that contains code.
    let token_lines: std::collections::BTreeSet<u32> =
        stream.tokens.iter().map(|t| t.line).collect();
    let mut out = FileLint::default();
    for f in findings {
        let covered = suppressions.iter().any(|s| {
            s.rule == f.rule
                && if token_lines.contains(&s.line) {
                    s.line == f.line
                } else {
                    token_lines.range(s.line + 1..).next() == Some(&f.line)
                }
        });
        if covered && f.rule != Rule::Suppression {
            out.suppressed += 1;
        } else {
            out.findings.push(f);
        }
    }
    out.findings.sort_by_key(|a| (a.line, a.rule));
    out
}

/// A parsed, well-formed suppression directive.
struct SuppressionSite {
    line: u32,
    rule: Rule,
}

/// Extract suppression directives from the comment stream. Malformed
/// directives (unknown rule name, missing justification) become findings
/// under [`Rule::Suppression`].
fn parse_suppressions(file: &str, comments: &[Comment]) -> (Vec<SuppressionSite>, Vec<Finding>) {
    let mut sites = Vec::new();
    let mut findings = Vec::new();
    let marker = "vod-lint:";
    for c in comments {
        let Some(pos) = c.text.find(marker) else {
            continue;
        };
        let rest = c.text[pos + marker.len()..].trim_start();
        let Some(inner) = rest.strip_prefix("allow(") else {
            findings.push(Finding {
                file: file.to_string(),
                line: c.line,
                rule: Rule::Suppression,
                message: "directive must be of the form allow(<rule>) <justification>".into(),
            });
            continue;
        };
        let Some(close) = inner.find(')') else {
            findings.push(Finding {
                file: file.to_string(),
                line: c.line,
                rule: Rule::Suppression,
                message: "unclosed allow( in suppression directive".into(),
            });
            continue;
        };
        let names = &inner[..close];
        let justification = inner[close + 1..]
            .trim_start_matches([' ', '\t', '—', '-', ':', '–'])
            .trim();
        if justification.len() < 8 {
            findings.push(Finding {
                file: file.to_string(),
                line: c.line,
                rule: Rule::Suppression,
                message: "suppression requires a justification after allow(...)".into(),
            });
            continue;
        }
        for name in names.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match Rule::from_name(name) {
                Some(rule) => sites.push(SuppressionSite { line: c.line, rule }),
                None => findings.push(Finding {
                    file: file.to_string(),
                    line: c.line,
                    rule: Rule::Suppression,
                    message: format!("unknown rule `{name}` in suppression directive"),
                }),
            }
        }
    }
    (sites, findings)
}

/// Line ranges (inclusive) of `#[cfg(test)]` / `#[test]` items. Rules
/// exempt these regions: test code may compare floats exactly, unwrap,
/// and use ad-hoc arithmetic to cross-check the blessed implementations.
fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions: Vec<(u32, u32)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let is_cfg_test = matches_seq(tokens, i, &["#", "[", "cfg", "(", "test", ")", "]"]);
        let is_test_attr = matches_seq(tokens, i, &["#", "[", "test", "]"]);
        if !(is_cfg_test || is_test_attr) {
            i += 1;
            continue;
        }
        let attr_len = if is_cfg_test { 7 } else { 4 };
        // Find the item body: first `{` before any item-terminating `;`.
        let mut j = i + attr_len;
        let mut open = None;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "{" => {
                    open = Some(j);
                    break;
                }
                ";" => break,
                _ => j += 1,
            }
        }
        let Some(open) = open else {
            i += attr_len;
            continue;
        };
        let mut depth = 0usize;
        let mut k = open;
        let mut end_line = tokens[open].line;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = tokens[k].line;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        regions.push((tokens[i].line, end_line));
        i = k.max(i + attr_len);
    }
    regions
}

fn matches_seq(tokens: &[Token], at: usize, texts: &[&str]) -> bool {
    texts.len() <= tokens.len().saturating_sub(at)
        && texts
            .iter()
            .enumerate()
            .all(|(k, t)| tokens[at + k].text == *t)
}

/// Rule `float-cmp`: `==`/`!=` where an operand is a float literal.
///
/// Token-level heuristic: the token directly left of the operator, or the
/// first token right of it after unary `-`/`(`, is a float literal. This
/// catches the load-bearing cases (`x == 0.0`) without type inference;
/// float-typed variable comparisons are left to clippy's `float_cmp`.
fn rule_float_cmp(
    file: &str,
    s: &TokenStream,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in s.tokens.iter().enumerate() {
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        if in_test(t.line) {
            continue;
        }
        let left_float = i > 0 && s.tokens[i - 1].kind == TokKind::Float;
        let mut j = i + 1;
        while j < s.tokens.len() && matches!(s.tokens[j].text.as_str(), "-" | "(") {
            j += 1;
        }
        let right_float = j < s.tokens.len() && s.tokens[j].kind == TokKind::Float;
        if left_float || right_float {
            let lit = if right_float {
                &s.tokens[j]
            } else {
                &s.tokens[i - 1]
            };
            out.push(Finding {
                file: file.to_string(),
                line: t.line,
                rule: Rule::FloatCmp,
                message: format!(
                    "float equality `{} {}` — use the epsilon/exact helpers in vod-dist::approx",
                    t.text, lit.text
                ),
            });
        }
    }
}

/// Rule `no-panic`: panic-family calls in library code. `unwrap`/`expect`
/// must be method calls (`.unwrap()`); `panic`/`todo`/`dbg`/`unimplemented`
/// must be macro invocations (`panic!`). Plain `assert!` is allowed: it
/// states an invariant, and `pub-fn-doc` plus clippy's `missing_panics_doc`
/// force it to be documented.
fn rule_no_panic(
    file: &str,
    s: &TokenStream,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in s.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || in_test(t.line) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| s.tokens[p].text.as_str());
        let next = s.tokens.get(i + 1).map(|n| n.text.as_str());
        let hit = match t.text.as_str() {
            "unwrap" | "expect" => prev == Some(".") && next == Some("("),
            "panic" | "todo" | "dbg" | "unimplemented" => next == Some("!"),
            _ => false,
        };
        if hit {
            out.push(Finding {
                file: file.to_string(),
                line: t.line,
                rule: Rule::NoPanic,
                message: format!(
                    "`{}` in library code — propagate a Result/Option or suppress with justification",
                    t.text
                ),
            });
        }
    }
}

/// Rule `quantize-cast`: in geometry-touching files, rounding must go
/// through `QuantizedGeometry`, not ad-hoc `.floor()`/`.round()` chains
/// or float-to-int `as` casts (the PR 2 double-rounding bug class).
fn rule_quantize_cast(
    file: &str,
    s: &TokenStream,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in s.tokens.iter().enumerate() {
        if in_test(t.line) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| s.tokens[p].text.as_str());
        let next = s.tokens.get(i + 1).map(|n| n.text.as_str());
        if t.kind == TokKind::Ident
            && ROUNDING_METHODS.contains(&t.text.as_str())
            && prev == Some(".")
            && next == Some("(")
        {
            out.push(Finding {
                file: file.to_string(),
                line: t.line,
                rule: Rule::QuantizeCast,
                message: format!(
                    "ad-hoc `.{}()` in geometry code — quantization must go through QuantizedGeometry",
                    t.text
                ),
            });
        }
        if t.kind == TokKind::Ident
            && t.text == "as"
            && i > 0
            && s.tokens[i - 1].kind == TokKind::Float
            && s.tokens.get(i + 1).is_some_and(|n| {
                matches!(
                    n.text.as_str(),
                    "usize" | "u8" | "u16" | "u32" | "u64" | "i32" | "i64" | "isize"
                )
            })
        {
            out.push(Finding {
                file: file.to_string(),
                line: t.line,
                rule: Rule::QuantizeCast,
                message: "truncating float-to-int `as` cast in geometry code".into(),
            });
        }
    }
}

/// Rule `nondet`: sources of nondeterminism in the runtime/sim/server
/// deterministic core — wall-clock time, hash-order iteration, thread
/// identity. `BTreeMap`/`BTreeSet` are the sanctioned replacements.
fn rule_nondet(file: &str, s: &TokenStream, in_test: &dyn Fn(u32) -> bool, out: &mut Vec<Finding>) {
    for (i, t) in s.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || in_test(t.line) {
            continue;
        }
        let std_prefixed = i >= 2 && s.tokens[i - 1].text == "::" && s.tokens[i - 2].text == "std";
        let msg = match t.text.as_str() {
            "HashMap" | "HashSet" => Some(format!(
                "`{}` in the deterministic core — iteration order is nondeterministic, use BTreeMap/BTreeSet",
                t.text
            )),
            "Instant" | "SystemTime" => Some(format!("wall-clock `{}` in the deterministic core", t.text)),
            "RandomState" | "DefaultHasher" => Some(format!(
                "`{}` hashes with per-process random state in the deterministic core — use BTree collections or a fixed-key hasher",
                t.text
            )),
            "available_parallelism" => Some(
                "`available_parallelism` varies by machine — the deterministic core must not branch on core count"
                    .into(),
            ),
            "time" if std_prefixed => Some("`std::time` in the deterministic core".into()),
            "thread" if std_prefixed => Some("`std::thread` identity/ordering in the deterministic core".into()),
            "thread_rng" => Some("`thread_rng` is unseeded — deterministic code must take an explicit seed".into()),
            _ => None,
        };
        if let Some(message) = msg {
            out.push(Finding {
                file: file.to_string(),
                line: t.line,
                rule: Rule::Nondet,
                message,
            });
        }
    }
}

/// Rule `pub-fn-doc`: every `pub fn` in the numeric/runtime API crates
/// carries a `///` doc comment (domain and panic behaviour live there;
/// clippy's `missing_panics_doc` enforces the `# Panics` section).
/// `pub(crate)`/`pub(super)` items are internal and exempt.
fn rule_pub_fn_doc(
    file: &str,
    src: &str,
    s: &TokenStream,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let lines: Vec<&str> = src.lines().collect();
    for (i, t) in s.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "pub" || in_test(t.line) {
            continue;
        }
        // Skip restricted visibility: pub(crate), pub(super), pub(in ...).
        let mut j = i + 1;
        if s.tokens.get(j).is_some_and(|n| n.text == "(") {
            continue;
        }
        // Allow qualifiers between `pub` and `fn`.
        while s
            .tokens
            .get(j)
            .is_some_and(|n| matches!(n.text.as_str(), "const" | "async" | "unsafe" | "extern"))
        {
            j += 1;
        }
        if s.tokens.get(j).is_none_or(|n| n.text != "fn") {
            continue;
        }
        let name = s
            .tokens
            .get(j + 1)
            .map(|n| n.text.clone())
            .unwrap_or_default();
        // Walk upward over attributes and blank-free decoration to find a
        // doc comment directly attached to this item.
        let mut documented = false;
        let mut l = t.line as usize - 1; // index of the `pub` line in `lines`
        while l > 0 {
            let prev = lines[l - 1].trim_start();
            if prev.starts_with("///") || prev.starts_with("#[doc") || prev.starts_with("#![doc") {
                documented = true;
                break;
            }
            if prev.starts_with("#[")
                || prev.starts_with(")]")
                || prev.starts_with("]")
                || prev.ends_with("]") && prev.starts_with("derive")
            {
                l -= 1;
                continue;
            }
            break;
        }
        if !documented {
            out.push(Finding {
                file: file.to_string(),
                line: t.line,
                rule: Rule::PubFnDoc,
                message: format!(
                    "public fn `{name}` has no doc comment — document its domain and panics"
                ),
            });
        }
    }
}
