//! `vod-lint` CLI: the CI lint gate.
//!
//! ```text
//! vod-lint --workspace [--root DIR] [--json REPORT] [--baseline REPORT] [PATH...]
//! ```
//!
//! Exit codes: 0 clean (or all findings baselined/suppressed), 1 findings,
//! 2 usage or IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use vod_lint::{lint_source, walk, Baseline, Report};

struct Args {
    workspace: bool,
    root: PathBuf,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: PathBuf::from("."),
        json: None,
        baseline: None,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a path")?),
            "--json" => args.json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?)),
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?))
            }
            "--help" | "-h" => {
                return Err("usage: vod-lint --workspace [--root DIR] [--json REPORT] [--baseline REPORT] [PATH...]".into())
            }
            p if !p.starts_with('-') => args.paths.push(PathBuf::from(p)),
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if !args.workspace && args.paths.is_empty() {
        return Err("nothing to lint: pass --workspace or explicit paths (try --help)".into());
    }
    Ok(args)
}

fn run() -> Result<Report, String> {
    let started = Instant::now();
    let args = parse_args()?;
    let mut report = if args.workspace {
        vod_lint::lint_workspace(&args.root)?
    } else {
        Report::default()
    };
    // Explicit paths (files or directories), classified relative to root.
    let mut extra_files = Vec::new();
    for p in &args.paths {
        if p.is_dir() {
            walk::collect_rs(p, &mut extra_files)
                .map_err(|e| format!("walking {}: {e}", p.display()))?;
        } else {
            extra_files.push(p.clone());
        }
    }
    for path in extra_files {
        let label = walk::rel_label(&args.root, &path);
        let src = std::fs::read_to_string(&path).map_err(|e| format!("reading {label}: {e}"))?;
        let lint = lint_source(&label, &src, walk::classify(&label));
        report.findings.extend(lint.findings);
        report.suppressed += lint.suppressed;
        report.files_scanned += 1;
    }
    report.sort();

    // Baseline ratchet: previously recorded findings don't fail the gate.
    if let Some(bl_path) = &args.baseline {
        let text = std::fs::read_to_string(bl_path)
            .map_err(|e| format!("reading baseline {}: {e}", bl_path.display()))?;
        let mut baseline = Baseline::parse(&text)?;
        let (old, fresh): (Vec<_>, Vec<_>) =
            report.findings.drain(..).partition(|f| baseline.absorb(f));
        report.baselined = old.len();
        report.findings = fresh;
    }
    report.wall_time_ms = started.elapsed().as_millis() as u64;

    if let Some(json_path) = &args.json {
        if let Some(dir) = json_path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating {}: {e}", dir.display()))?;
            }
        }
        std::fs::write(json_path, report.to_json())
            .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    }
    Ok(report)
}

fn main() -> ExitCode {
    match run() {
        Ok(report) => {
            for f in &report.findings {
                println!("{}", f.render());
            }
            // Per-rule summary table (schema v2 `rule_counts`).
            eprintln!("vod-lint: rule                  findings");
            for (name, count) in report.rule_counts() {
                eprintln!("vod-lint:   {name:<20} {count:>8}");
            }
            eprintln!(
                "vod-lint: {} file(s), {} finding(s), {} suppressed, {} baselined, {} ms",
                report.files_scanned,
                report.findings.len(),
                report.suppressed,
                report.baselined,
                report.wall_time_ms
            );
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("vod-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
