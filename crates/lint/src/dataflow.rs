//! Intra-procedural use-def tracking for the semantic rules.
//!
//! Per fn body, this module recovers just enough dataflow to reason
//! about unsigned arithmetic: the inferred type of each `let` local, the
//! defining expression text of each local (so `let b = a.min(x)` proves
//! `a - b` safe), and every ordering comparison in the body (so a
//! `debug_assert!(a >= b)`, an `if a >= b` dominator, or a `while a > b`
//! loop head counts as a guard). The analysis is deliberately flow-
//! insensitive — a comparison anywhere in the fn counts — which trades a
//! little soundness for zero false positives on guard placement; the
//! rules that consume it only *silence* findings with these facts, never
//! produce them.

use std::collections::BTreeMap;

use crate::index::WorkspaceIndex;
use crate::parse::{matching_close, FnDef};
use crate::tokenizer::{TokKind, Token};

/// Facts recovered from one fn body.
#[derive(Debug, Default)]
pub struct FnFacts {
    /// Local name → inferred type text (only when inference succeeded).
    pub locals: BTreeMap<String, String>,
    /// Local name → defining expression (compact text, last def wins).
    pub defs: BTreeMap<String, String>,
    /// Ordering/equality comparisons `(left, op, right)` as compact
    /// operand texts; includes `if`/`while`/`match`-guard/`assert!` sites
    /// uniformly (they are all just comparison tokens).
    pub cmps: Vec<(String, String, String)>,
}

/// Render an operand token range as compact text (`self.disk.failed()`).
pub fn operand_text(tokens: &[Token], range: (usize, usize)) -> String {
    tokens[range.0..range.1]
        .iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .concat()
}

/// Find the open delimiter matching the close delimiter at `close`,
/// searching backwards; returns `close` when unbalanced.
fn matching_open(tokens: &[Token], close: usize) -> usize {
    let mut depth = 0usize;
    let mut i = close;
    loop {
        match tokens[i].text.as_str() {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        if i == 0 {
            return close;
        }
        i -= 1;
    }
}

/// Operators that, adjacent to an operand, make it part of a larger
/// arithmetic expression the extractor cannot type (`a + b - c`).
const LEFT_POISON: &[&str] = &["+", "-", "*", "/", "%", "<<", ">>"];
const RIGHT_POISON: &[&str] = &["*", "/", "%", "<<", ">>"];

/// Extract the simple operand ending at `end` (exclusive): an ident/
/// `self` path with optional field projections, method calls, and
/// indexing (`self.disk.failed()`, `xs[i].n`, `count`). Returns `None`
/// for anything compound (parenthesized subexpressions, arithmetic
/// chains) — the caller skips what it cannot type.
pub fn operand_ending_at(tokens: &[Token], end: usize) -> Option<(usize, usize)> {
    let mut i = end;
    loop {
        if i == 0 {
            return None;
        }
        let t = &tokens[i - 1];
        match t.text.as_str() {
            ")" | "]" => {
                let open = matching_open(tokens, i - 1);
                if open == i - 1 || open == 0 {
                    return None;
                }
                // A call or index must follow an ident; a bare
                // parenthesized expression is compound.
                if tokens[open - 1].kind != TokKind::Ident {
                    return None;
                }
                i = open;
            }
            _ if t.kind == TokKind::Ident || t.kind == TokKind::Int => {
                i -= 1;
                // Keep walking through `.`/`::` path segments.
                if i >= 1 && matches!(tokens[i - 1].text.as_str(), "." | "::") && i >= 2 {
                    i -= 1;
                    continue;
                }
                break;
            }
            _ => return None,
        }
    }
    // Reject operands that are themselves the tail of a larger
    // arithmetic expression.
    if i > 0 && LEFT_POISON.contains(&tokens[i - 1].text.as_str()) {
        return None;
    }
    if i > 0 && tokens[i - 1].text == "as" {
        // `x as u64 - 1`: the operand is the cast; its type is the
        // target primitive, which is exactly the single token we found.
        return Some((i, end));
    }
    Some((i, end))
}

/// Extract the simple operand starting at `start`: the mirror of
/// [`operand_ending_at`], walking forward over a path with calls and
/// indexing. Returns the token range, extended over a trailing
/// `as <primitive>` cast when present.
pub fn operand_starting_at(tokens: &[Token], start: usize) -> Option<(usize, usize)> {
    let first = tokens.get(start)?;
    if first.kind != TokKind::Ident && first.kind != TokKind::Int {
        return None;
    }
    let mut i = start + 1;
    loop {
        match tokens.get(i).map(|t| t.text.as_str()) {
            Some(".") | Some("::") => {
                if tokens.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
                    i += 2;
                } else {
                    break;
                }
            }
            Some("(") | Some("[") => {
                let close = matching_close(tokens, i);
                if close >= tokens.len() {
                    return None;
                }
                i = close + 1;
            }
            _ => break,
        }
    }
    // `b as u64`: extend over the cast so the type is the target.
    if tokens.get(i).is_some_and(|t| t.text == "as")
        && tokens.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
    {
        i += 2;
    }
    if tokens
        .get(i)
        .is_some_and(|t| RIGHT_POISON.contains(&t.text.as_str()))
    {
        return None;
    }
    Some((start, i))
}

/// Resolve the type of an operand range using locals/params, struct
/// fields, and workspace-unambiguous method return types. Returns the
/// type text, `"{integer}"` for an unsuffixed int literal, or `None`.
pub fn resolve_type(
    tokens: &[Token],
    range: (usize, usize),
    fndef: &FnDef,
    facts: &FnFacts,
    index: &WorkspaceIndex,
) -> Option<String> {
    let toks = &tokens[range.0..range.1];
    if toks.is_empty() {
        return None;
    }
    // `expr as T` — the cast target is the type.
    if toks.len() >= 2 && toks[toks.len() - 2].text == "as" {
        return Some(toks[toks.len() - 1].text.clone());
    }
    if toks.len() == 1 && toks[0].kind == TokKind::Int {
        return Some(literal_type(&toks[0].text));
    }
    // A lone primitive-type ident is the tail of an `as` cast whose
    // source [`operand_ending_at`] dropped: its type is itself.
    if toks.len() == 1 && is_primitive(&toks[0].text) {
        return Some(toks[0].text.clone());
    }
    // Walk the path segment by segment: `self` / local / param roots,
    // then `.field` lookups and `.method()` return types.
    let mut cur: Option<String> = None;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let is_call = toks.get(i + 1).is_some_and(|n| n.text == "(");
        let seg = t.text.as_str();
        cur = if i == 0 {
            if seg == "self" {
                fndef.self_type.clone()
            } else if is_call {
                index.return_type(seg).map(str::to_string)
            } else {
                facts.locals.get(seg).cloned().or_else(|| {
                    fndef
                        .params
                        .iter()
                        .find(|(p, _)| p == seg)
                        .map(|(_, ty)| ty.clone())
                })
            }
        } else {
            match seg {
                // Methods whose return type is structural, not indexed.
                "len" | "capacity" | "count" if is_call => Some("usize".to_string()),
                // Type-preserving numeric combinators.
                "min" | "max" | "clamp" | "saturating_sub" | "saturating_add" | "wrapping_sub"
                | "abs_diff" | "pow"
                    if is_call =>
                {
                    cur
                }
                _ if is_call => index.return_type(seg).map(str::to_string),
                _ => {
                    let base = cur?;
                    let base = base.trim_start_matches('&').trim().to_string();
                    index.field_type(&base, seg).map(str::to_string)
                }
            }
        };
        cur.as_ref()?;
        if is_call || toks.get(i + 1).is_some_and(|n| n.text == "[") {
            i = matching_close_rel(toks, i + 1) + 1;
        } else {
            i += 1;
        }
        // Skip the `.`/`::` separator.
        if toks.get(i).is_some_and(|n| n.text == "." || n.text == "::") {
            i += 1;
        } else {
            break;
        }
    }
    cur.map(|ty| ty.trim_start_matches('&').trim().to_string())
}

/// [`matching_close`] over a sub-slice with slice-relative indices.
fn matching_close_rel(toks: &[Token], open: usize) -> usize {
    matching_close(toks, open)
}

/// Is `ty` a primitive numeric type name?
fn is_primitive(ty: &str) -> bool {
    matches!(
        ty,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
            | "f32"
            | "f64"
    )
}

/// Type of an integer literal from its suffix (`3u32` → `u32`), or the
/// `"{integer}"` placeholder for unsuffixed literals.
fn literal_type(text: &str) -> String {
    for suffix in [
        "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128",
    ] {
        if text.ends_with(suffix) {
            return suffix.to_string();
        }
    }
    "{integer}".to_string()
}

/// Numeric value of an int-literal operand text, when it is one.
pub fn literal_value(text: &str) -> Option<u64> {
    let stripped: String = text
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_')
        .collect();
    if stripped.is_empty() {
        return None;
    }
    stripped.replace('_', "").parse().ok()
}

/// Analyze one fn body: local types/defs plus comparison facts.
pub fn analyze_fn(tokens: &[Token], fndef: &FnDef, index: &WorkspaceIndex) -> FnFacts {
    let mut facts = FnFacts::default();
    let (start, end) = fndef.body;
    let body_end = end.min(tokens.len());
    // Pass 1, in order: `let [mut] name [: Type] = expr` bindings. In-
    // order processing lets later lets resolve through earlier ones.
    let mut i = start;
    while i < body_end {
        if tokens[i].text != "let" {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.text == "mut") {
            j += 1;
        }
        let Some(name_tok) = tokens.get(j) else { break };
        if name_tok.kind != TokKind::Ident
            || !tokens
                .get(j + 1)
                .is_some_and(|t| t.text == ":" || t.text == "=")
        {
            // Pattern binding (`let Some(x) = ...`) — out of scope.
            i = j;
            continue;
        }
        let name = name_tok.text.clone();
        let mut ty: Option<String> = None;
        let mut k = j + 1;
        if tokens[k].text == ":" {
            // Explicit annotation: collect type tokens to `=` or `;`.
            let ty_start = k + 1;
            let mut depth = 0i32;
            let mut m = ty_start;
            while m < body_end {
                match tokens[m].text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth -= 1,
                    ">>" => depth -= 2,
                    "=" | ";" if depth <= 0 => break,
                    _ => {}
                }
                m += 1;
            }
            ty = Some(
                tokens[ty_start..m]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect::<Vec<_>>()
                    .join(" "),
            );
            k = m;
        }
        if tokens.get(k).is_some_and(|t| t.text == "=") {
            // Initializer: tokens to the statement-ending `;` at depth 0.
            let expr_start = k + 1;
            let mut depth = 0i32;
            let mut m = expr_start;
            while m < body_end {
                match tokens[m].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth <= 0 => break,
                    _ => {}
                }
                m += 1;
            }
            facts
                .defs
                .insert(name.clone(), operand_text(tokens, (expr_start, m)));
            if ty.is_none() {
                // Infer from the initializer when it is a simple operand
                // spanning the whole expression.
                if let Some(r) = operand_starting_at(tokens, expr_start) {
                    if r.1 == m {
                        ty = resolve_type(tokens, r, fndef, &facts, index);
                    }
                }
            }
            i = m;
        } else {
            i = k;
        }
        if let Some(ty) = ty {
            if ty != "{integer}" {
                facts.locals.insert(name, ty);
            }
        }
    }
    // Pass 2: comparison facts anywhere in the body.
    for op_idx in start..body_end {
        let op = tokens[op_idx].text.as_str();
        if !matches!(op, "<" | ">" | "<=" | ">=" | "==" | "!=")
            || tokens[op_idx].kind != TokKind::Punct
        {
            continue;
        }
        let Some(l) = operand_ending_at(tokens, op_idx) else {
            continue;
        };
        let Some(r) = operand_starting_at(tokens, op_idx + 1) else {
            continue;
        };
        facts.cmps.push((
            operand_text(tokens, l),
            op.to_string(),
            operand_text(tokens, r),
        ));
    }
    facts
}

impl FnFacts {
    /// Is `left - right` dominated by an ordering fact implying
    /// `left >= right`? Checks direct comparisons both ways and, for a
    /// literal `right`, threshold comparisons (`x > 0` guards `x - 1`).
    pub fn guards_subtraction(&self, left: &str, right: &str) -> bool {
        for (l, op, r) in &self.cmps {
            let direct = (l == left && r == right && matches!(op.as_str(), ">=" | ">"))
                || (l == right && r == left && matches!(op.as_str(), "<=" | "<"))
                || (l == left && r == right && op == "==")
                || (l == right && r == left && op == "==");
            if direct {
                return true;
            }
            if let Some(k) = literal_value(right) {
                // Threshold guard on the left operand vs a literal bound.
                let ok = (l == left
                    && literal_value(r).is_some_and(|m| match op.as_str() {
                        ">" => m >= k.saturating_sub(1),
                        ">=" | "==" => m >= k,
                        "!=" => m == 0 && k == 1,
                        _ => false,
                    }))
                    || (r == left
                        && literal_value(l).is_some_and(|m| match op.as_str() {
                            "<" => m >= k.saturating_sub(1),
                            "<=" | "==" => m >= k,
                            "!=" => m == 0 && k == 1,
                            _ => false,
                        }));
                if ok {
                    return true;
                }
            }
        }
        // Use-def relations: `right = left.min(..)`, `right = left % ..`,
        // `right = left & ..`, `left = right.max(..)`, `left = right + ..`.
        if let Some(rdef) = self.defs.get(right) {
            if rdef.starts_with(&format!("{left}.min("))
                || rdef.ends_with(&format!(".min({left})"))
                || rdef.starts_with(&format!("{left}%"))
                || rdef.starts_with(&format!("{left}&"))
                || rdef.starts_with(&format!("{left}>>"))
            {
                return true;
            }
        }
        if let Some(ldef) = self.defs.get(left) {
            if ldef.starts_with(&format!("{right}.max(")) || ldef.starts_with(&format!("{right}+"))
            {
                return true;
            }
        }
        false
    }
}
