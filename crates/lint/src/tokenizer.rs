//! Hand-rolled Rust tokenizer.
//!
//! `vod-lint` deliberately does not depend on `syn` (the workspace is
//! vendored-offline and the rules only need token-level context), so this
//! module implements just enough of the Rust lexical grammar to drive the
//! rule engine: identifiers, integer/float literals, string/char/lifetime
//! literals, multi-character operators, and comments. Comments are kept
//! (with line numbers) because suppression directives live in them.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `QuantizedGeometry`, ...).
    Ident,
    /// Integer literal, including hex/octal/binary forms.
    Int,
    /// Float literal (`1.0`, `2.`, `1e-3`, `1f64`).
    Float,
    /// String literal of any flavour (plain, raw, byte).
    Str,
    /// Character literal (`'x'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Operator or delimiter; multi-char operators are single tokens.
    Punct,
}

/// One lexed token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

/// A `//` or `/* */` comment, kept for suppression parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the leading `//` or `/*`.
    pub text: String,
    /// 1-indexed line the comment starts on.
    pub line: u32,
}

/// Output of [`tokenize`]: the token stream plus the comment stream.
#[derive(Debug, Default)]
pub struct TokenStream {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so greedy matching works.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenize `src`. The lexer is lossy in ways the rules don't care about
/// (no spans, no keyword classification) but is careful about the cases
/// that would corrupt rule matching: nested block comments, raw strings,
/// lifetimes vs char literals, float vs method-call-on-int (`1.max(2)`),
/// and range expressions (`0..10`).
pub fn tokenize(src: &str) -> TokenStream {
    let chars: Vec<char> = src.chars().collect();
    let mut out = TokenStream::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = chars.len();

    macro_rules! bump_lines {
        ($text:expr) => {
            line += $text.chars().filter(|&c| c == '\n').count() as u32
        };
    }

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push(Comment {
                text: chars[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Raw / byte string prefixes: r"", r#""#, b"", br#""#.
        if (c == 'r' || c == 'b') && {
            let mut j = i + 1;
            if c == 'b' && j < n && chars[j] == 'r' {
                j += 1;
            }
            while j < n && chars[j] == '#' {
                j += 1;
            }
            j < n && chars[j] == '"' && matches!(chars[i + 1], '"' | '#' | 'r')
        } {
            let start = i;
            let start_line = line;
            let mut j = i + 1;
            if c == 'b' && chars[j] == 'r' {
                j += 1;
            }
            let mut hashes = 0;
            while j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            // Opening quote.
            j += 1;
            // Scan to closing quote followed by `hashes` hash marks.
            loop {
                if j >= n {
                    break;
                }
                if chars[j] == '"' {
                    let mut k = j + 1;
                    let mut seen = 0;
                    while k < n && seen < hashes && chars[k] == '#' {
                        seen += 1;
                        k += 1;
                    }
                    if seen == hashes {
                        j = k;
                        break;
                    }
                }
                j += 1;
            }
            let text: String = chars[start..j.min(n)].iter().collect();
            bump_lines!(text);
            out.tokens.push(Token {
                kind: TokKind::Str,
                text,
                line: start_line,
            });
            i = j;
            continue;
        }
        // Byte char b'x'.
        if c == 'b' && i + 1 < n && chars[i + 1] == '\'' {
            let (tok, next) = lex_char_from(&chars, i + 1, line);
            out.tokens.push(Token {
                kind: tok.kind,
                text: format!("b{}", tok.text),
                line,
            });
            i = next;
            continue;
        }
        // Identifier / keyword (raw idents r#x handled by the `r` not
        // matching the raw-string arm above when followed by `#ident`).
        if is_ident_start(c) {
            let start = i;
            if c == 'r'
                && i + 1 < n
                && chars[i + 1] == '#'
                && i + 2 < n
                && is_ident_start(chars[i + 2])
            {
                i += 2; // consume r#
            }
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let start = i;
            let mut kind = TokKind::Int;
            if c == '0' && i + 1 < n && matches!(chars[i + 1], 'x' | 'o' | 'b') {
                i += 2;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            } else {
                while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    i += 1;
                }
                // Fractional part: `.` followed by a digit, or a trailing
                // `.` that isn't a range (`..`) or method call (`1.max`).
                if i < n && chars[i] == '.' {
                    let after = chars.get(i + 1).copied();
                    match after {
                        Some(d) if d.is_ascii_digit() => {
                            kind = TokKind::Float;
                            i += 1;
                            while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                                i += 1;
                            }
                        }
                        Some('.') => {}                    // range 0..x
                        Some(a) if is_ident_start(a) => {} // 1.max(2)
                        _ => {
                            kind = TokKind::Float; // trailing-dot float `2.`
                            i += 1;
                        }
                    }
                }
                // Exponent.
                if i < n
                    && matches!(chars[i], 'e' | 'E')
                    && chars.get(i + 1).is_some_and(|&a| {
                        a.is_ascii_digit()
                            || ((a == '+' || a == '-')
                                && chars.get(i + 2).is_some_and(|d| d.is_ascii_digit()))
                    })
                {
                    kind = TokKind::Float;
                    i += 1;
                    if matches!(chars.get(i), Some('+') | Some('-')) {
                        i += 1;
                    }
                    while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        i += 1;
                    }
                }
            }
            // Type suffix (u32, f64, ...).
            let suffix_start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            let suffix: String = chars[suffix_start..i].iter().collect();
            if suffix.starts_with("f32") || suffix.starts_with("f64") {
                kind = TokKind::Float;
            }
            out.tokens.push(Token {
                kind,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // String literal.
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n {
                if chars[i] == '\\' {
                    // A line-continuation escape consumes the newline; it
                    // still has to count toward the line number.
                    if chars.get(i + 1) == Some(&'\n') {
                        line += 1;
                    }
                    i += 2;
                    continue;
                }
                if chars[i] == '"' {
                    i += 1;
                    break;
                }
                if chars[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: chars[start..i.min(n)].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let is_lifetime = match next {
                Some(a) if is_ident_start(a) => {
                    // 'a is a lifetime unless closed by ' right after the
                    // single ident char ('x'), which makes a char literal.
                    let mut j = i + 1;
                    while j < n && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    chars.get(j).copied() != Some('\'')
                }
                _ => false,
            };
            if is_lifetime {
                let start = i;
                i += 1;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            } else {
                let (tok, next_i) = lex_char_from(&chars, i, line);
                out.tokens.push(tok);
                i = next_i;
            }
            continue;
        }
        // Multi-char operator, longest match first.
        let rest: String = chars[i..n.min(i + 3)].iter().collect();
        if let Some(op) = OPERATORS.iter().find(|op| rest.starts_with(**op)) {
            out.tokens.push(Token {
                kind: TokKind::Punct,
                text: (*op).to_string(),
                line,
            });
            i += op.len();
            continue;
        }
        // Single-char punct.
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Lex a char literal starting at the `'` at `chars[i]`.
fn lex_char_from(chars: &[char], i: usize, line: u32) -> (Token, usize) {
    let n = chars.len();
    let start = i;
    let mut j = i + 1;
    if j < n && chars[j] == '\\' {
        j += 2;
        // \u{...}
        if j <= n && chars.get(j - 1) == Some(&'{') {
            while j < n && chars[j] != '}' {
                j += 1;
            }
            j += 1;
        }
    } else if j < n {
        j += 1;
    }
    if j < n && chars[j] == '\'' {
        j += 1;
    }
    (
        Token {
            kind: TokKind::Char,
            text: chars[start..j.min(n)].iter().collect(),
            line,
        },
        j,
    )
}
