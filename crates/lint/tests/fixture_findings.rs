//! Fixture-driven tests for the `vod-lint` rule engine.
//!
//! Each known-bad fixture under `tests/fixtures/` marks every line the
//! engine must flag with a trailing `LINT: <rule>` comment (one rule name
//! per expected finding; repeat the name for multiple findings on one
//! line). The harness compares the engine's `(line, rule)` output against
//! those markers exactly, so a rule that over- or under-fires fails the
//! test with a precise diff. Suppression-directive behaviour and the
//! JSON/baseline shapes are asserted by hand.

#![allow(clippy::unwrap_used, clippy::float_cmp)]

use vod_lint::walk::classify;
use vod_lint::{lint_source, report, Baseline, FileClass, Finding, Report, Rule};

/// Parse the `LINT: <rule> [<rule>...]` markers out of a fixture.
fn expected_markers(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(rest) = line.split("LINT:").nth(1) {
            for rule in rest.split_whitespace() {
                out.push((i as u32 + 1, rule.to_string()));
            }
        }
    }
    out
}

fn as_pairs(findings: &[Finding]) -> Vec<(u32, String)> {
    findings
        .iter()
        .map(|f| (f.line, f.rule.name().to_string()))
        .collect()
}

fn check_fixture(name: &str, src: &str, class: FileClass) -> vod_lint::FileLint {
    let lint = lint_source(name, src, class);
    assert_eq!(
        as_pairs(&lint.findings),
        expected_markers(src),
        "fixture {name}: findings do not match the LINT markers"
    );
    lint
}

#[test]
fn clean_fixture_has_no_findings() {
    let lint = lint_source(
        "fixtures/clean.rs",
        include_str!("fixtures/clean.rs"),
        FileClass {
            library: true,
            deterministic: true,
            doc_required: true,
        },
    );
    assert!(lint.findings.is_empty(), "unexpected: {:?}", lint.findings);
    assert_eq!(lint.suppressed, 0);
}

#[test]
fn float_cmp_flags_literal_comparisons_outside_tests() {
    let lint = check_fixture(
        "fixtures/float_cmp.rs",
        include_str!("fixtures/float_cmp.rs"),
        FileClass::default(),
    );
    assert_eq!(lint.findings.len(), 3);
    assert!(lint.findings.iter().all(|f| f.rule == Rule::FloatCmp));
}

#[test]
fn no_panic_flags_panic_family_but_not_asserts() {
    let lint = check_fixture(
        "fixtures/no_panic.rs",
        include_str!("fixtures/no_panic.rs"),
        FileClass {
            library: true,
            ..FileClass::default()
        },
    );
    assert_eq!(lint.findings.len(), 5);
}

#[test]
fn no_panic_is_off_for_binary_targets() {
    let lint = lint_source(
        "fixtures/no_panic.rs",
        include_str!("fixtures/no_panic.rs"),
        FileClass::default(), // library = false, as for src/bin/ files
    );
    assert!(lint.findings.is_empty());
}

#[test]
fn quantize_cast_fires_only_in_geometry_files() {
    let lint = check_fixture(
        "fixtures/quantize.rs",
        include_str!("fixtures/quantize.rs"),
        FileClass::default(),
    );
    assert_eq!(lint.findings.len(), 3);
    // The blessed `.round()` site carries a directive and is suppressed.
    assert_eq!(lint.suppressed, 1);

    // Identical code without the marker type never enters the rule.
    let stripped = include_str!("fixtures/quantize.rs").replace("QuantizedGeometry", "Plain");
    let lint = lint_source("fixtures/quantize.rs", &stripped, FileClass::default());
    assert!(lint.findings.is_empty());
}

#[test]
fn nondet_flags_clocks_hashes_and_thread_identity() {
    let lint = check_fixture(
        "fixtures/nondet.rs",
        include_str!("fixtures/nondet.rs"),
        FileClass {
            deterministic: true,
            ..FileClass::default()
        },
    );
    assert_eq!(lint.findings.len(), 10);

    // Outside the deterministic core the same file is unconstrained.
    let lint = lint_source(
        "fixtures/nondet.rs",
        include_str!("fixtures/nondet.rs"),
        FileClass::default(),
    );
    assert!(lint.findings.is_empty());
}

#[test]
fn pub_fn_doc_requires_docs_on_public_functions() {
    let lint = check_fixture(
        "fixtures/pub_fn_doc.rs",
        include_str!("fixtures/pub_fn_doc.rs"),
        FileClass {
            doc_required: true,
            ..FileClass::default()
        },
    );
    assert_eq!(lint.findings.len(), 2);
    assert!(lint
        .findings
        .iter()
        .any(|f| f.message.contains("`undocumented`")));
    assert!(lint.findings.iter().any(|f| f.message.contains("`bad`")));
}

#[test]
fn suppression_directives_cover_and_misfire_as_specified() {
    let lint = lint_source(
        "fixtures/suppressions.rs",
        include_str!("fixtures/suppressions.rs"),
        FileClass {
            library: true,
            ..FileClass::default()
        },
    );
    // Standalone + trailing well-formed directives each silence one site.
    assert_eq!(lint.suppressed, 2);
    // Three malformed directives report under `suppression`; the two
    // no-panic sites they failed to cover survive.
    let suppression_msgs: Vec<&str> = lint
        .findings
        .iter()
        .filter(|f| f.rule == Rule::Suppression)
        .map(|f| f.message.as_str())
        .collect();
    assert_eq!(suppression_msgs.len(), 3, "{suppression_msgs:?}");
    assert!(suppression_msgs
        .iter()
        .any(|m| m.contains("unknown rule `bogus-rule`")));
    assert!(suppression_msgs
        .iter()
        .any(|m| m.contains("requires a justification")));
    assert!(suppression_msgs
        .iter()
        .any(|m| m.contains("must be of the form")));
    assert_eq!(
        lint.findings
            .iter()
            .filter(|f| f.rule == Rule::NoPanic)
            .count(),
        2
    );
}

#[test]
fn findings_render_as_file_line_rule_message() {
    let lint = lint_source(
        "fixtures/float_cmp.rs",
        include_str!("fixtures/float_cmp.rs"),
        FileClass::default(),
    );
    let first = &lint.findings[0];
    let rendered = first.render();
    assert!(
        rendered.starts_with(&format!("fixtures/float_cmp.rs:{} float-cmp ", first.line)),
        "unexpected render: {rendered}"
    );
}

#[test]
fn json_report_shape_round_trips_through_baseline() {
    let lint = lint_source(
        "fixtures/no_panic.rs",
        include_str!("fixtures/no_panic.rs"),
        FileClass {
            library: true,
            ..FileClass::default()
        },
    );
    let mut rep = Report {
        findings: lint.findings.clone(),
        suppressed: lint.suppressed,
        files_scanned: 1,
        baselined: 0,
        wall_time_ms: 0,
    };
    rep.sort();
    let json = rep.to_json();
    assert!(json.contains("\"version\": 2"));
    assert!(json.contains("\"files_scanned\": 1"));
    assert!(json.contains("\"wall_time_ms\": 0"));
    assert!(json.contains("\"rule\": \"no-panic\""));
    // Schema v2: per-rule counts over the full catalog, zeroes included.
    assert!(json.contains(&format!("\"no-panic\": {}", rep.findings.len())));
    assert!(json.contains("\"unchecked-sub\": 0"));
    assert!(json.contains("\"time-domain\": 0"));
    // One finding object per line, carrying all four keys.
    let obj_lines: Vec<&str> = json
        .lines()
        .filter(|l| l.trim_start().starts_with('{') && l.contains("\"file\""))
        .collect();
    assert_eq!(obj_lines.len(), rep.findings.len());
    for l in &obj_lines {
        for key in ["\"file\"", "\"line\"", "\"rule\"", "\"message\""] {
            assert!(l.contains(key), "missing {key} in {l}");
        }
    }

    // The baseline parsed from that JSON absorbs each finding exactly
    // once: the budget is count-bounded, so a *new* instance of an old
    // defect is not forgiven.
    let mut base = Baseline::parse(&json).unwrap();
    for f in &rep.findings {
        assert!(base.absorb(f), "baseline should cover {}", f.render());
    }
    assert!(
        !base.absorb(&rep.findings[0]),
        "baseline budget must be exhausted after one absorb per finding"
    );
}

#[test]
fn classify_maps_paths_to_rule_families() {
    let c = classify("crates/sim/src/engine.rs");
    assert!(c.library && c.deterministic && !c.doc_required);

    let c = classify("crates/dist/src/special.rs");
    assert!(c.library && c.doc_required && !c.deterministic);

    let c = classify("crates/runtime/src/quantize.rs");
    assert!(c.library && c.deterministic && c.doc_required);

    let c = classify("crates/bench/src/bin/fig7.rs");
    assert!(!c.library);

    let c = classify("src/main.rs");
    assert!(!c.library);

    let c = classify("src/cli.rs");
    assert!(c.library && !c.deterministic && !c.doc_required);
}

#[test]
fn rule_names_round_trip() {
    for name in report::rule_names() {
        let rule = Rule::from_name(name).unwrap();
        assert_eq!(rule.name(), name);
    }
    assert!(Rule::from_name("not-a-rule").is_none());
}

#[test]
fn merged_workspace_tree_lints_clean() {
    // CARGO_MANIFEST_DIR = crates/lint; the workspace root is two up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf();
    let rep = vod_lint::lint_workspace(&root).unwrap();
    assert!(
        rep.findings.is_empty(),
        "workspace must lint clean:\n{}",
        rep.findings
            .iter()
            .map(Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        rep.files_scanned > 50,
        "walk found too few files: {}",
        rep.files_scanned
    );
}
