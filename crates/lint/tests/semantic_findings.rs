//! Fixture-driven tests for the v2 semantic rule families, plus
//! mutation probes: each probe edits a guarded fixture the way a
//! regressing patch would (drop an assert, drop a `.min` clamp, delete
//! a match arm, rename the audit) and asserts the corresponding rule
//! starts firing. That is the property the workspace gate rests on —
//! `findings == 0` only means something if removing a guard is visible.

#![allow(clippy::unwrap_used)]

use vod_lint::{lint_source, FileClass, Finding, Rule};

/// The classification under which the semantic families run.
fn det() -> FileClass {
    FileClass {
        deterministic: true,
        ..FileClass::default()
    }
}

/// Parse the `LINT: <rule> [<rule>...]` markers out of a fixture.
fn expected_markers(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(rest) = line.split("LINT:").nth(1) {
            for rule in rest.split_whitespace() {
                out.push((i as u32 + 1, rule.to_string()));
            }
        }
    }
    out
}

fn as_pairs(findings: &[Finding]) -> Vec<(u32, String)> {
    findings
        .iter()
        .map(|f| (f.line, f.rule.name().to_string()))
        .collect()
}

fn check_fixture(name: &str, src: &str) -> vod_lint::FileLint {
    let lint = lint_source(name, src, det());
    assert_eq!(
        as_pairs(&lint.findings),
        expected_markers(src),
        "fixture {name}: findings do not match the LINT markers"
    );
    lint
}

const UNCHECKED_SUB: &str = include_str!("fixtures/unchecked_sub.rs");
const COUNTERS: &str = include_str!("fixtures/counter_conservation.rs");
const FAULTS: &str = include_str!("fixtures/fault_exhaustive.rs");
const TIME: &str = include_str!("fixtures/time_domain.rs");

#[test]
fn unchecked_sub_matches_markers() {
    let lint = check_fixture("fixtures/unchecked_sub.rs", UNCHECKED_SUB);
    assert_eq!(lint.findings.len(), 2);
    assert!(lint.findings.iter().all(|f| f.rule == Rule::UncheckedSub));
    // The directive-covered `self.failed - tail` site.
    assert_eq!(lint.suppressed, 1);
}

#[test]
fn removing_the_assert_guard_makes_unchecked_sub_fire() {
    let mutated = UNCHECKED_SUB.replace("debug_assert!(self.budget > 0);", "");
    let lint = lint_source("fixtures/unchecked_sub.rs", &mutated, det());
    assert_eq!(
        lint.findings
            .iter()
            .filter(|f| f.rule == Rule::UncheckedSub)
            .count(),
        3,
        "dropping the debug_assert must unguard `self.budget -= 1`"
    );
    assert!(lint
        .findings
        .iter()
        .any(|f| f.message.contains("self.budget -= 1")));
}

#[test]
fn removing_the_min_clamp_makes_unchecked_sub_fire() {
    let mutated = UNCHECKED_SUB.replace("count.min(self.failed)", "count");
    let lint = lint_source("fixtures/unchecked_sub.rs", &mutated, det());
    assert_eq!(
        lint.findings
            .iter()
            .filter(|f| f.rule == Rule::UncheckedSub)
            .count(),
        3,
        "dropping the .min clamp must unguard `self.failed -= recovered`"
    );
}

#[test]
fn counter_conservation_matches_markers() {
    let lint = check_fixture("fixtures/counter_conservation.rs", COUNTERS);
    assert_eq!(lint.findings.len(), 3);
    assert!(lint
        .findings
        .iter()
        .all(|f| f.rule == Rule::CounterConservation));
}

#[test]
fn removing_the_audit_adds_a_file_level_finding() {
    let mutated = COUNTERS.replace("fn check_invariants", "fn unaudited");
    let lint = lint_source("fixtures/counter_conservation.rs", &mutated, det());
    assert_eq!(lint.findings.len(), 4);
    assert!(
        lint.findings
            .iter()
            .any(|f| f.message.contains("check_invariants")),
        "renaming the audit away must produce the file-level audit finding"
    );
}

#[test]
fn fault_exhaustive_matches_markers() {
    let lint = check_fixture("fixtures/fault_exhaustive.rs", FAULTS);
    assert_eq!(lint.findings.len(), 1);
    assert!(lint.findings[0]
        .message
        .contains("wildcard `_` arm in a match over `FaultKind`"));
}

#[test]
fn removing_a_fault_arm_breaks_file_coverage() {
    let mutated = FAULTS.replace("FaultKind::DiskSlowdown => self.faults_seen += 1,", "");
    let lint = lint_source("fixtures/fault_exhaustive.rs", &mutated, det());
    assert!(
        lint.findings
            .iter()
            .any(|f| f.rule == Rule::FaultExhaustive
                && f.message.contains("missing: DiskSlowdown")),
        "deleting the DiskSlowdown arm must fail handler-file coverage: {:?}",
        lint.findings
    );
}

/// The widening property the federation work leans on: the variant set
/// comes from the *index*, not a hardcoded list, so merely declaring a
/// new `FaultKind` variant (here the shard pair this repo added for
/// whole-shard chaos) obliges every fault-handler file to name it — no
/// linter change required.
#[test]
fn declaring_new_fault_variants_widens_handler_coverage() {
    let mutated = FAULTS.replace(
        "    DiskSlowdown,\n}",
        "    DiskSlowdown,\n    ShardOutage,\n    ShardRecovery,\n}",
    );
    assert_ne!(mutated, FAULTS, "fixture edit must apply");
    let lint = lint_source("fixtures/fault_exhaustive.rs", &mutated, det());
    assert!(
        lint.findings.iter().any(|f| f.rule == Rule::FaultExhaustive
            && f.message.contains("missing: ShardOutage, ShardRecovery")),
        "new variants must widen the handler-file obligation: {:?}",
        lint.findings
    );
}

#[test]
fn wildcarding_backend_dispatch_fires_twice() {
    let mutated = FAULTS.replace("BackendKind::BatchedBuffer => 3,", "_ => 3,");
    let lint = lint_source("fixtures/fault_exhaustive.rs", &mutated, det());
    assert!(lint.findings.iter().any(|f| f
        .message
        .contains("wildcard `_` arm in a match over `BackendKind`")));
    assert!(lint
        .findings
        .iter()
        .any(|f| f.message.contains("missing: BatchedBuffer")));
}

#[test]
fn time_domain_matches_markers() {
    let lint = check_fixture("fixtures/time_domain.rs", TIME);
    assert_eq!(lint.findings.len(), 2);
    assert!(lint.findings.iter().all(|f| f.rule == Rule::TimeDomain));
    // The directive-covered `segment_len + pad_minutes` site.
    assert_eq!(lint.suppressed, 1);
}

#[test]
fn clean_fixture_survives_the_semantic_families() {
    let lint = lint_source(
        "fixtures/clean.rs",
        include_str!("fixtures/clean.rs"),
        FileClass {
            library: true,
            deterministic: true,
            doc_required: true,
        },
    );
    assert!(lint.findings.is_empty(), "unexpected: {:?}", lint.findings);
}
