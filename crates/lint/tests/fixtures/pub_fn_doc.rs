//! Known-bad fixture for the pub-fn-doc rule (class: doc-required).

/// Documented function — fine.
pub fn documented() {}

pub fn undocumented() {} // LINT: pub-fn-doc

/// Documented, with an attribute between the doc comment and the item.
#[inline]
pub fn attr_between() {}

pub struct Wide;

impl Wide {
    /// Documented method.
    pub fn ok(&self) {}

    pub fn bad(&self) {} // LINT: pub-fn-doc

    pub(crate) fn internal(&self) {}
}

#[cfg(test)]
mod tests {
    #[test]
    fn helpers_in_tests_need_no_docs() {
        pub fn helper() {}
        helper();
    }
}
