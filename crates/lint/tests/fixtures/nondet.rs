//! Known-bad fixture for the nondet rule (class: deterministic core).

use std::collections::HashMap; // LINT: nondet
use std::collections::HashSet; // LINT: nondet
use std::collections::BTreeMap;

pub fn wall_clock() {
    let _t = std::time::SystemTime::now(); // LINT: nondet nondet
}

pub fn stopwatch() {
    let _start = Instant::now(); // LINT: nondet
}

pub fn thread_identity() {
    let _id = std::thread::current(); // LINT: nondet
}

pub fn unseeded() -> u32 {
    let _r = thread_rng(); // LINT: nondet
    0
}

pub fn hash_state() {
    let _s = RandomState::new(); // LINT: nondet
    let _h = DefaultHasher::new(); // LINT: nondet
}

pub fn core_count() -> usize {
    available_parallelism().map_or(1, |n| n.get()) // LINT: nondet
}

pub fn sanctioned(m: &BTreeMap<u32, u32>) -> usize {
    m.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_time_themselves() {
        let _t = std::time::Instant::now();
    }
}
