//! Known-bad fixture for the fault-exhaustive rule. The enums are
//! declared here so the single-file index carries their variant sets;
//! `apply_faults` marks the file as a fault handler, which obliges it
//! to reference every `FaultKind` variant (the mutation test deletes
//! one arm to prove the coverage check fires).

pub enum FaultKind {
    DiskStreamLoss,
    DiskOutage,
    DiskSlowdown,
}

pub enum BackendKind {
    PyramidBroadcast,
    DedicatedStream,
    BatchedBuffer,
}

pub struct Sim {
    pub faults_seen: u32,
}

impl Sim {
    pub fn apply_faults(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::DiskStreamLoss => self.faults_seen += 1,
            FaultKind::DiskOutage => self.faults_seen += 1,
            FaultKind::DiskSlowdown => self.faults_seen += 1,
        }
    }

    pub fn classify(&self, kind: FaultKind) -> u32 {
        match kind {
            FaultKind::DiskStreamLoss => 1,
            _ => 0, // LINT: fault-exhaustive
        }
    }

    pub fn dispatch(&self, backend: BackendKind) -> u32 {
        match backend {
            BackendKind::PyramidBroadcast => 1,
            BackendKind::DedicatedStream => 2,
            BackendKind::BatchedBuffer => 3,
        }
    }
}
