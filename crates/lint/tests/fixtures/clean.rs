//! Known-good fixture: passes every rule with every class enabled.

use std::collections::BTreeMap;

/// Sum the values of a documented, deterministic map.
pub fn total(m: &BTreeMap<u32, u64>) -> u64 {
    m.values().sum()
}

/// Fallible lookup propagates the miss instead of panicking.
pub fn lookup(m: &BTreeMap<u32, u64>, k: u32) -> Option<u64> {
    m.get(&k).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_unwrap_and_compare_floats() {
        let mut m = BTreeMap::new();
        m.insert(1, 2);
        assert!(lookup(&m, 1).unwrap() == 2);
        assert!(1.5 == 1.5);
    }
}
