//! Known-bad fixture for the no-panic rule (class: library).

pub fn bad(v: Option<u32>) -> u32 {
    let a = v.unwrap(); // LINT: no-panic
    let b = Some(a).expect("present"); // LINT: no-panic
    if a > b {
        panic!("unreachable"); // LINT: no-panic
    }
    let c = dbg!(a + b); // LINT: no-panic
    c
}

pub fn stubbed() -> u32 {
    todo!() // LINT: no-panic
}

pub fn asserts_are_allowed(v: &[u32]) -> u32 {
    assert!(!v.is_empty(), "documented invariant");
    v[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(Some(3_u32).unwrap(), 3);
    }
}
