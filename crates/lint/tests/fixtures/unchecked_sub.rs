//! Known-bad fixture for the unchecked-sub rule (deterministic core).
//! Guarded shapes mirror the blessed idioms in `reserve.rs`/`disk.rs`.

pub struct Ledger {
    failed: u32,
    budget: usize,
}

impl Ledger {
    pub fn bad_field_sub(&mut self, count: u32) {
        self.failed -= count; // LINT: unchecked-sub
    }

    pub fn bad_expr(&self, before: u32) -> u32 {
        self.failed - before // LINT: unchecked-sub
    }

    pub fn guarded_by_if(&mut self, count: u32) {
        if self.failed >= count {
            self.failed -= count;
        }
    }

    pub fn guarded_by_assert(&mut self) {
        debug_assert!(self.budget > 0);
        self.budget -= 1;
    }

    pub fn guarded_by_min(&mut self, count: u32) -> u32 {
        let recovered = count.min(self.failed);
        self.failed -= recovered;
        recovered
    }

    pub fn saturating_is_blessed(&self, before: u32) -> u32 {
        self.failed.saturating_sub(before)
    }

    pub fn signed_is_fine(&self, x: i64, y: i64) -> i64 {
        x - y
    }

    pub fn suppressed(&self, tail: u32) -> u32 {
        self.failed - tail // vod-lint: allow(unchecked-sub) — caller holds the partition invariant
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_subtract() {
        let a: u32 = 1;
        let _ = a - 1;
    }
}
