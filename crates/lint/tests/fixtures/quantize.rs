//! Known-bad fixture for the quantize-cast rule. The `QuantizedGeometry`
//! type mention below opts the whole file into the rule.

pub struct QuantizedGeometry;

pub fn bad_floor(x: f64) -> f64 {
    x.floor() // LINT: quantize-cast
}

pub fn bad_chain(x: f64) -> f64 {
    (x * 2.0).ceil() // LINT: quantize-cast
}

pub fn bad_cast() -> u32 {
    7.5 as u32 // LINT: quantize-cast
}

pub fn blessed(x: f64) -> f64 {
    // vod-lint: allow(quantize-cast) — fixture: the one blessed rounding site
    x.round()
}

#[cfg(test)]
mod tests {
    #[test]
    fn ad_hoc_rounding_allowed_in_tests() {
        assert!((super::blessed(1.4) - 1.0) < 0.5);
    }
}
