//! Known-bad fixture for the time-domain rule: tick/minute/segment
//! quantities mixed across comparison and additive operators.

pub fn bad_compare(now_tick: u64, stall_minutes: u64) -> bool {
    now_tick >= stall_minutes // LINT: time-domain
}

pub fn bad_sum(base_minutes: u64, buffer_segments: u64) -> u64 {
    base_minutes + buffer_segments // LINT: time-domain
}

pub fn same_domain(start_minute: u64, end_minute: u64) -> u64 {
    end_minute.max(start_minute)
}

pub fn converted(now_tick: u64, ticks_per_minute: u64, stall_minutes: u64) -> bool {
    let now_minutes = now_tick / ticks_per_minute;
    now_minutes >= stall_minutes
}

pub fn suppressed(segment_len: u64, pad_minutes: u64) -> u64 {
    segment_len + pad_minutes // vod-lint: allow(time-domain) — the pad is defined as minutes of exactly one segment
}
