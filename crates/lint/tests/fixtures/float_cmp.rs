//! Known-bad fixture for the float-cmp rule.

pub fn bad_right(x: f64) -> bool {
    x == 0.0 // LINT: float-cmp
}

pub fn bad_left(x: f64) -> bool {
    1.5 != x // LINT: float-cmp
}

pub fn bad_negated(x: f64) -> bool {
    x == -(2.5) // LINT: float-cmp
}

pub fn fine_ints(x: u32) -> bool {
    x == 3
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_comparison_allowed_in_tests() {
        assert!(super::bad_right(0.0));
        let y = 1.0_f64;
        assert!(y == 1.0);
    }
}
