//! Known-bad fixture for the counter-conservation rule. The file
//! mentions `DiskSubsystem` so the reserve/disk parity group applies,
//! and defines `check_invariants` so the file-level audit is satisfied
//! (the mutation test strips it to prove the audit fires).

pub struct DiskSubsystem {
    pub online: bool,
}

pub struct Backend {
    degraded_count: u64,
}

impl Backend {
    pub fn bad_parity(&mut self, count: u32) {
        self.reserve.fail_streams(count); // LINT: counter-conservation
    }

    pub fn good_parity(&mut self, count: u32) {
        self.reserve.fail_streams(count);
        self.disk.fail_streams(count);
    }

    pub fn bad_population(&mut self) {
        self.metrics.runtime.degraded_entries += 1; // LINT: counter-conservation
    }

    pub fn good_population(&mut self) {
        self.degraded_count += 1;
        self.metrics.runtime.degraded_entries += 1;
    }

    pub fn mirror_merge(&mut self, other: &Backend) {
        self.metrics.runtime.degraded_entries += other.degraded_entries;
    }

    pub fn bad_attribution(&mut self) {
        self.metrics.runtime.faults_injected += 1; // LINT: counter-conservation
    }

    pub fn good_attribution(&mut self) {
        let seen = FaultKind::DiskStreamLoss;
        let _ = seen;
        self.metrics.runtime.faults_injected += 1;
    }

    fn check_invariants(&self) -> bool {
        self.degraded_count < u64::MAX
    }
}
