//! Fixture for suppression-directive handling: two good directives (one
//! standalone, one trailing) and three malformed ones.

pub fn suppressed_standalone(v: Option<u32>) -> u32 {
    // vod-lint: allow(no-panic) — fixture justification: invariant held by caller
    v.unwrap()
}

pub fn suppressed_trailing(v: Option<u32>) -> u32 {
    v.unwrap() // vod-lint: allow(no-panic) — fixture: trailing directive form
}

pub fn unknown_rule(v: Option<u32>) -> u32 {
    // vod-lint: allow(bogus-rule) — justification text long enough
    v.unwrap()
}

pub fn missing_justification(v: Option<u32>) -> u32 {
    // vod-lint: allow(no-panic)
    v.unwrap()
}

pub fn not_an_allow() -> u32 {
    // vod-lint: deny(no-panic) — wrong verb entirely
    0
}
