//! Textual distribution specs.
//!
//! Experiment configuration (bench binaries, workload files) names
//! distributions as compact strings, e.g.:
//!
//! ```text
//! exp:mean=5
//! gamma:shape=2,scale=4
//! gamma:shape=2,mean=8
//! uniform:lo=0,hi=16
//! det:value=8
//! weibull:shape=2,scale=9
//! lognormal:mean=8,cv=0.5
//! ```
//!
//! [`parse_spec`] turns such a string into a boxed [`DurationDist`];
//! [`DistSpec`] is the parsed intermediate for callers that want to
//! inspect or re-render it.

use std::collections::BTreeMap;

use crate::kinds::{Deterministic, Exponential, Gamma, LogNormal, Pareto, Uniform, Weibull};
use crate::{DistError, DurationDist};

/// A parsed distribution spec: kind name plus key=value parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DistSpec {
    /// Lowercased kind name, e.g. `"gamma"`.
    pub kind: String,
    /// Parameter map in input order-independent (sorted) form.
    pub params: BTreeMap<String, f64>,
}

impl DistSpec {
    /// Parse the textual form `kind:key=value,key=value`.
    pub fn parse(s: &str) -> Result<Self, DistError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(DistError::ParseError("empty spec".into()));
        }
        let (kind, rest) = match s.split_once(':') {
            Some((k, r)) => (k, r),
            None => (s, ""),
        };
        let kind = kind.trim().to_ascii_lowercase();
        if kind.is_empty() {
            return Err(DistError::ParseError(format!("missing kind in `{s}`")));
        }
        let mut params = BTreeMap::new();
        for part in rest.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part.split_once('=').ok_or_else(|| {
                DistError::ParseError(format!("expected key=value, got `{part}`"))
            })?;
            let value: f64 = value.trim().parse().map_err(|_| {
                DistError::ParseError(format!("bad number `{}` for `{}`", value.trim(), key))
            })?;
            if params
                .insert(key.trim().to_ascii_lowercase(), value)
                .is_some()
            {
                return Err(DistError::ParseError(format!(
                    "duplicate parameter `{}`",
                    key.trim()
                )));
            }
        }
        Ok(Self { kind, params })
    }

    /// Instantiate the distribution this spec describes.
    pub fn build(&self) -> Result<Box<dyn DurationDist>, DistError> {
        let get = |key: &str| -> Result<f64, DistError> {
            self.params.get(key).copied().ok_or_else(|| {
                DistError::ParseError(format!("`{}` requires parameter `{key}`", self.kind))
            })
        };
        let expect_keys = |allowed: &[&str]| -> Result<(), DistError> {
            for k in self.params.keys() {
                if !allowed.contains(&k.as_str()) {
                    return Err(DistError::ParseError(format!(
                        "`{}` does not take parameter `{k}`",
                        self.kind
                    )));
                }
            }
            Ok(())
        };
        match self.kind.as_str() {
            "exp" | "exponential" => {
                expect_keys(&["mean", "rate"])?;
                if let Some(&mean) = self.params.get("mean") {
                    Ok(Box::new(Exponential::with_mean(mean)?))
                } else {
                    Ok(Box::new(Exponential::with_rate(get("rate")?)?))
                }
            }
            "gamma" => {
                expect_keys(&["shape", "scale", "mean"])?;
                let shape = get("shape")?;
                if let Some(&scale) = self.params.get("scale") {
                    Ok(Box::new(Gamma::new(shape, scale)?))
                } else {
                    Ok(Box::new(Gamma::with_shape_mean(shape, get("mean")?)?))
                }
            }
            "uniform" => {
                expect_keys(&["lo", "hi"])?;
                Ok(Box::new(Uniform::new(get("lo")?, get("hi")?)?))
            }
            "det" | "deterministic" | "const" => {
                expect_keys(&["value"])?;
                Ok(Box::new(Deterministic::new(get("value")?)?))
            }
            "weibull" => {
                expect_keys(&["shape", "scale"])?;
                Ok(Box::new(Weibull::new(get("shape")?, get("scale")?)?))
            }
            "pareto" | "lomax" => {
                expect_keys(&["shape", "scale", "mean"])?;
                let shape = get("shape")?;
                if let Some(&scale) = self.params.get("scale") {
                    Ok(Box::new(Pareto::new(shape, scale)?))
                } else {
                    Ok(Box::new(Pareto::with_shape_mean(shape, get("mean")?)?))
                }
            }
            "lognormal" | "lognorm" => {
                expect_keys(&["mean", "cv", "mu", "sigma"])?;
                if self.params.contains_key("mu") || self.params.contains_key("sigma") {
                    Ok(Box::new(LogNormal::new(get("mu")?, get("sigma")?)?))
                } else {
                    Ok(Box::new(LogNormal::with_mean_cv(get("mean")?, get("cv")?)?))
                }
            }
            other => Err(DistError::ParseError(format!(
                "unknown distribution kind `{other}` \
                 (known: exp, gamma, uniform, det, weibull, lognormal, pareto)"
            ))),
        }
    }
}

/// Convenience: parse and build in one step.
pub fn parse_spec(s: &str) -> Result<Box<dyn DurationDist>, DistError> {
    DistSpec::parse(s)?.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_distributions() {
        let g = parse_spec("gamma:shape=2,scale=4").unwrap();
        assert!((g.mean() - 8.0).abs() < 1e-12);
        let g2 = parse_spec("gamma:shape=2,mean=8").unwrap();
        assert!((g2.cdf(8.0) - g.cdf(8.0)).abs() < 1e-12);
        let e = parse_spec("exp:mean=5").unwrap();
        assert!((e.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn parses_every_kind() {
        for s in [
            "exp:rate=0.2",
            "uniform:lo=1,hi=9",
            "det:value=8",
            "weibull:shape=2,scale=9",
            "pareto:shape=2.5,mean=8",
            "pareto:shape=2,scale=6",
            "lognormal:mean=8,cv=0.5",
            "lognormal:mu=1.5,sigma=0.4",
        ] {
            let d = parse_spec(s).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert!(d.mean() > 0.0, "{s}");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let d = parse_spec(" gamma : shape = 2 , scale = 4 ").unwrap();
        assert!((d.mean() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_spec("").is_err());
        assert!(parse_spec("zeta:mean=3").is_err());
        assert!(parse_spec("gamma:shape=2").is_err()); // missing scale/mean
        assert!(parse_spec("exp:mean=abc").is_err());
        assert!(parse_spec("exp:mean=5,mean=6").is_err());
        assert!(parse_spec("exp:mean=5,bogus=1").is_err());
        assert!(parse_spec("uniform:lo=5,hi=2").is_err());
    }

    #[test]
    fn spec_is_inspectable() {
        let spec = DistSpec::parse("gamma:shape=2,scale=4").unwrap();
        assert_eq!(spec.kind, "gamma");
        assert_eq!(spec.params.get("shape"), Some(&2.0));
        assert_eq!(spec.params.get("scale"), Some(&4.0));
    }
}
