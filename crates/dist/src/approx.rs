//! Float comparison helpers: the only sanctioned way to compare floats
//! for equality outside `#[cfg(test)]`.
//!
//! The workspace lint wall (`vod-lint`'s `float-cmp` rule and clippy's
//! `float_cmp`) bans raw `==`/`!=` on floats in library code: the PR 1
//! `scan_by_buffer_step` regression came from exactly that kind of
//! drift-sensitive comparison. Code that genuinely needs *exact* bit
//! equality (sentinel zeros, root-finding early exits, sign bookkeeping)
//! routes through [`exact_zero`]/[`exact_eq`], which name the intent and
//! concentrate the suppressions in one audited place; tolerance-based
//! comparisons use [`approx_eq`]/[`approx_zero`].

/// Is `x` exactly zero (either signed zero)?
///
/// Use only where exact zero is semantically special — a quantile at
/// `p == 0`, a residual that is *bitwise* zero so no further refinement
/// is possible — never to test "small".
#[allow(clippy::float_cmp)]
pub fn exact_zero(x: f64) -> bool {
    // vod-lint: allow(float-cmp) — this is the blessed exact-zero site the
    // float-cmp rule points everyone at; the comparison is intentional.
    x == 0.0
}

/// Are `a` and `b` exactly (bitwise-as-values) equal?
///
/// For sign bookkeeping (`exact_eq(fa.signum(), fb.signum())`) and
/// degenerate-denominator guards in interpolation formulas, where a
/// tolerance would be wrong. NaN compares unequal to everything,
/// including itself, matching IEEE semantics.
#[allow(clippy::float_cmp)]
pub fn exact_eq(a: f64, b: f64) -> bool {
    // vod-lint: allow(float-cmp) — blessed exact-equality site; see the doc
    // comment for when exactness (not tolerance) is the correct semantics.
    a == b
}

/// Is `|x| ≤ eps`? The tolerance-based zero test.
pub fn approx_zero(x: f64, eps: f64) -> bool {
    x.abs() <= eps
}

/// Relative-scale equality: `|a − b| ≤ eps · max(1, |a|, |b|)`.
///
/// The `max(1, …)` floor makes the test absolute near zero and relative
/// for large magnitudes, the standard mixed criterion for quadrature and
/// sweep outputs.
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps * 1.0_f64.max(a.abs()).max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_zero_accepts_both_signed_zeros() {
        assert!(exact_zero(0.0));
        assert!(exact_zero(-0.0));
        assert!(!exact_zero(f64::MIN_POSITIVE));
        assert!(!exact_zero(f64::NAN));
    }

    #[test]
    fn exact_eq_is_ieee() {
        assert!(exact_eq(1.5, 1.5));
        assert!(!exact_eq(1.5, 1.5 + f64::EPSILON * 2.0));
        assert!(!exact_eq(f64::NAN, f64::NAN));
        assert!(exact_eq(0.0, -0.0));
    }

    #[test]
    fn approx_eq_mixed_criterion() {
        assert!(approx_eq(1e-12, 0.0, 1e-9));
        assert!(approx_eq(1e9, 1e9 * (1.0 + 1e-12), 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-3));
    }
}
