//! Fitting duration distributions to observed samples.
//!
//! §2.1 of the paper: "The pdf of VCR requests can be obtained by
//! statistics while the movie is displayed." [`crate::kinds::Empirical`] ingests
//! raw samples directly; this module adds the parametric route — fit the
//! classical families by the method of moments and rank candidates with a
//! Kolmogorov–Smirnov statistic — so an operator can trade the empirical
//! law's fidelity for a smooth, extrapolating model.

use crate::kinds::{Exponential, Gamma, LogNormal, Weibull};
use crate::root::brent;
use crate::{DistError, DurationDist};

/// Sample mean and (unbiased) variance, the inputs to every
/// method-of-moments fit. Errors on fewer than 2 samples or non-finite
/// values.
pub fn sample_moments(samples: &[f64]) -> Result<(f64, f64), DistError> {
    if samples.len() < 2 {
        return Err(DistError::Empty("samples (need at least 2)"));
    }
    let n = samples.len() as f64;
    let mut sum = 0.0;
    for &x in samples {
        if !x.is_finite() || x < 0.0 {
            return Err(DistError::InvalidParameter {
                name: "sample".into(),
                value: x,
                requirement: "finite and >= 0",
            });
        }
        sum += x;
    }
    let mean = sum / n;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    Ok((mean, var))
}

/// Fit an exponential by matching the mean.
pub fn fit_exponential(samples: &[f64]) -> Result<Exponential, DistError> {
    let (mean, _) = sample_moments(samples)?;
    Exponential::with_mean(mean)
}

/// Fit a gamma by the method of moments: `shape = mean²/var`,
/// `scale = var/mean`.
pub fn fit_gamma(samples: &[f64]) -> Result<Gamma, DistError> {
    let (mean, var) = sample_moments(samples)?;
    if var <= 0.0 {
        return Err(DistError::InvalidParameter {
            name: "variance".into(),
            value: var,
            requirement: "> 0 (samples must vary)",
        });
    }
    Gamma::new(mean * mean / var, var / mean)
}

/// Fit a lognormal by matching mean and coefficient of variation.
pub fn fit_lognormal(samples: &[f64]) -> Result<LogNormal, DistError> {
    let (mean, var) = sample_moments(samples)?;
    if var <= 0.0 || mean <= 0.0 {
        return Err(DistError::InvalidParameter {
            name: "variance".into(),
            value: var,
            requirement: "> 0 (samples must vary)",
        });
    }
    LogNormal::with_mean_cv(mean, var.sqrt() / mean)
}

/// Fit a Weibull by the method of moments. The shape solves
/// `Γ(1+2/k)/Γ(1+1/k)² = 1 + cv²` (monotone in `k`), found by Brent on
/// `k ∈ [0.08, 80]`; the scale then matches the mean.
pub fn fit_weibull(samples: &[f64]) -> Result<Weibull, DistError> {
    use crate::special::ln_gamma;
    let (mean, var) = sample_moments(samples)?;
    if var <= 0.0 || mean <= 0.0 {
        return Err(DistError::InvalidParameter {
            name: "variance".into(),
            value: var,
            requirement: "> 0 (samples must vary)",
        });
    }
    let target = 1.0 + var / (mean * mean);
    let ratio = |k: f64| (ln_gamma(1.0 + 2.0 / k) - 2.0 * ln_gamma(1.0 + 1.0 / k)).exp();
    let shape = brent(|k| ratio(k) - target, 0.08, 80.0, 1e-10).map_err(|_| {
        DistError::InvalidParameter {
            name: "cv".into(),
            value: (var.sqrt() / mean),
            requirement: "within the Weibull-representable range",
        }
    })?;
    let scale = mean / (ln_gamma(1.0 + 1.0 / shape)).exp();
    Weibull::new(shape, scale)
}

/// Kolmogorov–Smirnov statistic `D_n = sup_x |F_n(x) − F(x)|` of samples
/// against a candidate distribution. Lower is better; for n samples from
/// the true law, `D_n ≈ 1.36/√n` at the 5% level.
pub fn ks_statistic(dist: &dyn DurationDist, samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "need samples");
    let mut xs: Vec<f64> = samples.to_vec();
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let f = dist.cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// A ranked fit candidate.
#[derive(Debug)]
pub struct FitCandidate {
    /// Family name.
    pub family: &'static str,
    /// The fitted distribution.
    pub dist: Box<dyn DurationDist>,
    /// KS statistic against the input samples.
    pub ks: f64,
}

/// Fit every parametric family this crate supports and rank by KS
/// statistic (best first). Families whose fit fails (e.g. zero variance)
/// are skipped.
pub fn fit_all(samples: &[f64]) -> Result<Vec<FitCandidate>, DistError> {
    // Validate inputs once through sample_moments.
    sample_moments(samples)?;
    let mut out: Vec<FitCandidate> = Vec::new();
    if let Ok(d) = fit_exponential(samples) {
        out.push(candidate("exponential", Box::new(d), samples));
    }
    if let Ok(d) = fit_gamma(samples) {
        out.push(candidate("gamma", Box::new(d), samples));
    }
    if let Ok(d) = fit_lognormal(samples) {
        out.push(candidate("lognormal", Box::new(d), samples));
    }
    if let Ok(d) = fit_weibull(samples) {
        out.push(candidate("weibull", Box::new(d), samples));
    }
    if out.is_empty() {
        return Err(DistError::Empty("fit candidates"));
    }
    out.sort_by(|a, b| a.ks.total_cmp(&b.ks));
    Ok(out)
}

fn candidate(family: &'static str, dist: Box<dyn DurationDist>, samples: &[f64]) -> FitCandidate {
    let ks = ks_statistic(dist.as_ref(), samples);
    FitCandidate { family, dist, ks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn draws(d: &dyn DurationDist, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn moments_basic() {
        let (m, v) = sample_moments(&[2.0, 4.0, 6.0]).unwrap();
        assert!((m - 4.0).abs() < 1e-12);
        assert!((v - 4.0).abs() < 1e-12);
        assert!(sample_moments(&[1.0]).is_err());
        assert!(sample_moments(&[1.0, -1.0]).is_err());
    }

    #[test]
    fn gamma_recovers_parameters() {
        let truth = Gamma::paper_fig7();
        let xs = draws(&truth, 60_000, 1);
        let fit = fit_gamma(&xs).unwrap();
        assert!((fit.shape() - 2.0).abs() < 0.1, "shape {}", fit.shape());
        assert!((fit.scale() - 4.0).abs() < 0.2, "scale {}", fit.scale());
    }

    #[test]
    fn weibull_recovers_parameters() {
        let truth = Weibull::new(1.7, 6.0).unwrap();
        let xs = draws(&truth, 60_000, 2);
        let fit = fit_weibull(&xs).unwrap();
        assert!((fit.shape() - 1.7).abs() < 0.08, "shape {}", fit.shape());
        assert!((fit.scale() - 6.0).abs() < 0.2, "scale {}", fit.scale());
    }

    #[test]
    fn ks_small_for_true_family_large_for_wrong() {
        let truth = Gamma::paper_fig7();
        let xs = draws(&truth, 20_000, 3);
        let good = ks_statistic(&fit_gamma(&xs).unwrap(), &xs);
        let bad = ks_statistic(&Exponential::with_mean(8.0).unwrap(), &xs);
        assert!(good < 0.02, "good fit KS {good}");
        assert!(bad > 3.0 * good, "exp KS {bad} vs gamma KS {good}");
    }

    #[test]
    fn fit_all_ranks_true_family_first_or_close() {
        let truth = Gamma::new(2.0, 4.0).unwrap();
        let xs = draws(&truth, 30_000, 4);
        let ranked = fit_all(&xs).unwrap();
        assert!(ranked.len() >= 3);
        // Gamma or its close cousins (Weibull/lognormal can mimic) must
        // beat the exponential, whose cv = 1 ≠ 1/√2.
        let exp_rank = ranked
            .iter()
            .position(|c| c.family == "exponential")
            .expect("exponential fitted");
        let gamma_rank = ranked
            .iter()
            .position(|c| c.family == "gamma")
            .expect("gamma fitted");
        assert!(gamma_rank < exp_rank, "{ranked:?}");
        // Ranking is sorted.
        for w in ranked.windows(2) {
            assert!(w[0].ks <= w[1].ks);
        }
    }

    #[test]
    fn ks_detects_scale_errors() {
        let xs = draws(&Exponential::with_mean(5.0).unwrap(), 5_000, 5);
        let right = ks_statistic(&Exponential::with_mean(5.0).unwrap(), &xs);
        let wrong = ks_statistic(&Exponential::with_mean(10.0).unwrap(), &xs);
        assert!(right < 0.03);
        assert!(wrong > 0.15);
    }
}
