//! Scalar root finding: bisection and Brent's method.
//!
//! Used for distribution quantiles (inverting a cdf) and for the sizing
//! solver (finding the `n` at which `P(hit)` crosses a target `P*`).

/// Outcome of a bracketing root search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RootError {
    /// `f(a)` and `f(b)` have the same sign, so `[a, b]` does not bracket a
    /// root.
    NotBracketed {
        /// Function value at the left endpoint.
        fa: f64,
        /// Function value at the right endpoint.
        fb: f64,
    },
    /// The function returned a non-finite value during the search.
    NonFinite {
        /// The abscissa where the non-finite value was produced.
        at: f64,
    },
}

impl std::fmt::Display for RootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RootError::NotBracketed { fa, fb } => {
                write!(f, "interval does not bracket a root (f(a)={fa}, f(b)={fb})")
            }
            RootError::NonFinite { at } => write!(f, "function non-finite at x={at}"),
        }
    }
}

impl std::error::Error for RootError {}

/// Plain bisection on `[a, b]`; requires a sign change. Converges linearly
/// but unconditionally. `tol` is an absolute tolerance on `x`.
pub fn bisect<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, tol: f64) -> Result<f64, RootError> {
    let (mut lo, mut hi) = (a.min(b), a.max(b));
    let mut flo = f(lo);
    let fhi = f(hi);
    if !flo.is_finite() {
        return Err(RootError::NonFinite { at: lo });
    }
    if !fhi.is_finite() {
        return Err(RootError::NonFinite { at: hi });
    }
    if crate::approx::exact_zero(flo) {
        return Ok(lo);
    }
    if crate::approx::exact_zero(fhi) {
        return Ok(hi);
    }
    if crate::approx::exact_eq(flo.signum(), fhi.signum()) {
        return Err(RootError::NotBracketed { fa: flo, fb: fhi });
    }
    // 200 halvings take any finite interval below f64 resolution.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if hi - lo <= tol || mid <= lo || mid >= hi {
            return Ok(mid);
        }
        let fmid = f(mid);
        if !fmid.is_finite() {
            return Err(RootError::NonFinite { at: mid });
        }
        if crate::approx::exact_zero(fmid) {
            return Ok(mid);
        }
        if crate::approx::exact_eq(fmid.signum(), flo.signum()) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Brent's method on `[a, b]`; requires a sign change. Combines bisection
/// with secant and inverse quadratic interpolation — superlinear on smooth
/// functions, never worse than bisection.
pub fn brent<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, tol: f64) -> Result<f64, RootError> {
    let (mut a, mut b) = (a, b);
    let mut fa = f(a);
    let mut fb = f(b);
    if !fa.is_finite() {
        return Err(RootError::NonFinite { at: a });
    }
    if !fb.is_finite() {
        return Err(RootError::NonFinite { at: b });
    }
    if crate::approx::exact_zero(fa) {
        return Ok(a);
    }
    if crate::approx::exact_zero(fb) {
        return Ok(b);
    }
    if crate::approx::exact_eq(fa.signum(), fb.signum()) {
        return Err(RootError::NotBracketed { fa, fb });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;
    for _ in 0..200 {
        if crate::approx::exact_zero(fb) || (b - a).abs() <= tol {
            return Ok(b);
        }
        let s = if !crate::approx::exact_eq(fa, fc) && !crate::approx::exact_eq(fb, fc) {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };
        let cond_range = {
            let lo = (3.0 * a + b) / 4.0;
            let hi = b;
            let (lo, hi) = (lo.min(hi), lo.max(hi));
            !(lo..=hi).contains(&s)
        };
        let cond_slow = if mflag {
            (s - b).abs() >= (b - c).abs() / 2.0
        } else {
            (s - b).abs() >= (c - d).abs() / 2.0
        };
        let cond_tiny = if mflag {
            (b - c).abs() < tol
        } else {
            (c - d).abs() < tol
        };
        let s = if cond_range || cond_slow || cond_tiny {
            mflag = true;
            0.5 * (a + b)
        } else {
            mflag = false;
            s
        };
        let fs = f(s);
        if !fs.is_finite() {
            return Err(RootError::NonFinite { at: s });
        }
        d = c;
        c = b;
        fc = fb;
        if !crate::approx::exact_eq(fa.signum(), fs.signum()) {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn brent_finds_sqrt2_fast() {
        let mut evals = 0;
        let r = brent(
            |x| {
                evals += 1;
                x * x - 2.0
            },
            0.0,
            2.0,
            1e-14,
        )
        .unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!(evals < 40, "brent took {evals} evaluations");
    }

    #[test]
    fn unbracketed_is_error() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9),
            Err(RootError::NotBracketed { .. })
        ));
        assert!(matches!(
            brent(|x| x * x + 1.0, -1.0, 1.0, 1e-9),
            Err(RootError::NotBracketed { .. })
        ));
    }

    #[test]
    fn endpoint_roots_returned_exactly() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-9).unwrap(), 0.0);
        assert_eq!(brent(|x| x - 1.0, 0.0, 1.0, 1e-9).unwrap(), 1.0);
    }

    #[test]
    fn brent_transcendental() {
        // Root of cos(x) = x, the Dottie number.
        let r = brent(|x| x.cos() - x, 0.0, 1.0, 1e-14).unwrap();
        assert!((r - 0.739_085_133_215_160_6).abs() < 1e-12);
    }

    #[test]
    fn brent_flat_then_steep() {
        // cdf-like shape: flat near 0, steep later.
        let f = |x: f64| (1.0 - (-5.0 * x).exp()) - 0.5;
        let r = brent(f, 0.0, 10.0, 1e-13).unwrap();
        assert!((r - (2.0f64.ln() / 5.0)).abs() < 1e-10);
    }
}
