//! The [`DurationDist`] trait: what the analytic model needs to know about
//! the distribution of VCR-operation durations.
//!
//! The paper (§3.1) deliberately keeps the VCR-duration distribution
//! general: "we assume that the VCR behavior has a general distribution and
//! construct a model which is able to handle a general probability
//! distribution". Every probability in the model reduces to evaluations of
//! the cdf `F` and of its running integral `H(y) = ∫₀^y F(u) du`, so the
//! trait exposes both, along with sampling (for the simulator) and moments
//! (for workload construction and tests).

use rand::RngCore;

use crate::quad::adaptive_simpson;
use crate::root::brent;

/// A probability distribution over non-negative VCR-operation durations,
/// measured in movie minutes (see DESIGN.md §3 for the unit convention).
///
/// Implementations must satisfy, for all `x ≤ y`:
/// * `0 ≤ cdf(x) ≤ cdf(y) ≤ 1`, with `cdf(x) = 0` for `x ≤ 0`;
/// * `cdf_integral(y) − cdf_integral(x) ∈ [0, y − x]` (it integrates a
///   function bounded by 1);
/// * `sample` draws from the same law as `cdf` describes.
///
/// The trait is object-safe: the model and the simulator both work with
/// `&dyn DurationDist`.
pub trait DurationDist: std::fmt::Debug + Send + Sync {
    /// Probability density at `x` (0 for `x < 0`). Distributions with atoms
    /// (e.g. [`crate::kinds::Deterministic`]) return 0 everywhere and are
    /// described entirely by their cdf.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function `F(x) = P[X ≤ x]`.
    fn cdf(&self, x: f64) -> f64;

    /// `H(y) = ∫₀^y F(u) du`, the running integral of the cdf.
    ///
    /// For `y ≤ 0` this is 0. Every built-in distribution implements this
    /// in closed form; external implementations may fall back to
    /// [`numeric_cdf_integral`].
    fn cdf_integral(&self, y: f64) -> f64;

    /// Mean of the distribution.
    fn mean(&self) -> f64;

    /// Variance of the distribution.
    fn variance(&self) -> f64;

    /// Draw one variate.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;

    /// An interval `[lo, hi]` outside of which the distribution has
    /// (essentially) no mass; used to bracket quantile searches and to
    /// bound numeric integration. The default covers heavy-tailed
    /// distributions via the mean.
    fn support_hint(&self) -> (f64, f64) {
        (0.0, f64::INFINITY)
    }

    /// `p`-quantile (generalized inverse cdf). The default implementation
    /// brackets using [`DurationDist::support_hint`] and solves with
    /// Brent's method; distributions with a closed-form inverse override
    /// this.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile domain: p in [0,1]");
        if crate::approx::exact_zero(p) {
            return 0.0;
        }
        let (lo, hint_hi) = self.support_hint();
        // Expand the upper bracket geometrically until it covers p.
        let mut hi = if hint_hi.is_finite() {
            hint_hi
        } else {
            (self.mean() + 4.0 * self.variance().sqrt()).max(1.0)
        };
        let mut guard = 0;
        while self.cdf(hi) < p {
            hi *= 2.0;
            guard += 1;
            if guard > 200 {
                return hi; // p is (numerically) 1; return the far tail.
            }
        }
        brent(|x| self.cdf(x) - p, lo, hi, 1e-12 * (1.0 + hi)).unwrap_or(0.5 * (lo + hi))
    }
}

/// Numeric fallback for [`DurationDist::cdf_integral`]: adaptive Simpson on
/// the cdf. Cost is a few hundred cdf evaluations at `tol = 1e-10`; fine
/// for one-off use, but model sweeps should prefer closed forms.
pub fn numeric_cdf_integral(dist: &dyn DurationDist, y: f64) -> f64 {
    if y <= 0.0 {
        return 0.0;
    }
    adaptive_simpson(|u| dist.cdf(u), 0.0, y, 1e-10)
}

/// Shared validation helper: check that a would-be parameter is finite and
/// strictly positive, returning a uniform error message.
pub(crate) fn require_positive(name: &str, v: f64) -> Result<f64, crate::DistError> {
    if v.is_finite() && v > 0.0 {
        Ok(v)
    } else {
        Err(crate::DistError::InvalidParameter {
            name: name.to_string(),
            value: v,
            requirement: "finite and > 0",
        })
    }
}

/// Shared validation helper for non-negative parameters.
pub(crate) fn require_non_negative(name: &str, v: f64) -> Result<f64, crate::DistError> {
    if v.is_finite() && v >= 0.0 {
        Ok(v)
    } else {
        Err(crate::DistError::InvalidParameter {
            name: name.to_string(),
            value: v,
            requirement: "finite and >= 0",
        })
    }
}
