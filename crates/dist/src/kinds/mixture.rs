//! Finite mixture of duration distributions.
//!
//! Real VCR behavior is multi-modal — short "skip the recap" hops mixed
//! with long "skip to the ending" jumps. A mixture of the primitive kinds
//! models this while keeping every quantity the analytic model needs in
//! closed form (all are linear in the mixture weights).

use rand::RngCore;

use crate::duration::DurationDist;
use crate::rng::u01;
use crate::DistError;

/// Convex combination of component distributions.
#[derive(Debug)]
pub struct Mixture {
    /// Normalized weights, parallel to `components`.
    weights: Vec<f64>,
    components: Vec<Box<dyn DurationDist>>,
}

impl Mixture {
    /// Build a mixture from `(weight, component)` pairs. Weights must be
    /// finite and non-negative with a positive sum; they are normalized.
    pub fn new(parts: Vec<(f64, Box<dyn DurationDist>)>) -> Result<Self, DistError> {
        if parts.is_empty() {
            return Err(DistError::Empty("mixture components"));
        }
        let mut weights = Vec::with_capacity(parts.len());
        let mut components = Vec::with_capacity(parts.len());
        let mut total = 0.0;
        for (w, c) in parts {
            if !w.is_finite() || w < 0.0 {
                return Err(DistError::BadWeights(format!(
                    "weight {w} is not finite and non-negative"
                )));
            }
            total += w;
            weights.push(w);
            components.push(c);
        }
        if total <= 0.0 {
            return Err(DistError::BadWeights("weights sum to zero".into()));
        }
        for w in &mut weights {
            *w /= total;
        }
        Ok(Self {
            weights,
            components,
        })
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the mixture has no components (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The normalized weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    fn weighted<F: Fn(&dyn DurationDist) -> f64>(&self, f: F) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * f(c.as_ref()))
            .sum()
    }
}

impl DurationDist for Mixture {
    fn pdf(&self, x: f64) -> f64 {
        self.weighted(|c| c.pdf(x))
    }

    fn cdf(&self, x: f64) -> f64 {
        self.weighted(|c| c.cdf(x))
    }

    fn cdf_integral(&self, y: f64) -> f64 {
        self.weighted(|c| c.cdf_integral(y))
    }

    fn mean(&self) -> f64 {
        self.weighted(|c| c.mean())
    }

    fn variance(&self) -> f64 {
        // Var = Σ wᵢ (σᵢ² + μᵢ²) − μ², the law of total variance.
        let mean = self.mean();
        self.weighted(|c| {
            let m = c.mean();
            c.variance() + m * m
        }) - mean * mean
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let mut u = u01(rng);
        for (w, c) in self.weights.iter().zip(&self.components) {
            if u < *w {
                return c.sample(rng);
            }
            u -= w;
        }
        // Floating-point residue: fall back to the last component.
        self.components
            .last()
            // vod-lint: allow(no-panic) — the constructor rejects empty component
            // lists, so the mixture always has a last component.
            .expect("mixture is non-empty by construction")
            .sample(rng)
    }

    fn support_hint(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for c in &self.components {
            let (l, h) = c.support_hint();
            lo = lo.min(l);
            hi = hi.max(h);
        }
        (lo.min(hi), hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duration::numeric_cdf_integral;
    use crate::kinds::{Deterministic, Exponential, Gamma};
    use crate::rng::seeded;

    fn bimodal() -> Mixture {
        Mixture::new(vec![
            (
                0.7,
                Box::new(Exponential::with_mean(2.0).unwrap()) as Box<dyn DurationDist>,
            ),
            (0.3, Box::new(Gamma::new(9.0, 4.0).unwrap())),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(Mixture::new(vec![]).is_err());
        assert!(Mixture::new(vec![(
            -1.0,
            Box::new(Deterministic::new(1.0).unwrap()) as Box<dyn DurationDist>
        )])
        .is_err());
        assert!(Mixture::new(vec![(
            0.0,
            Box::new(Deterministic::new(1.0).unwrap()) as Box<dyn DurationDist>
        )])
        .is_err());
    }

    #[test]
    fn weights_are_normalized() {
        let m = Mixture::new(vec![
            (
                2.0,
                Box::new(Deterministic::new(1.0).unwrap()) as Box<dyn DurationDist>,
            ),
            (6.0, Box::new(Deterministic::new(5.0).unwrap())),
        ])
        .unwrap();
        assert!((m.weights()[0] - 0.25).abs() < 1e-15);
        assert!((m.weights()[1] - 0.75).abs() < 1e-15);
        assert!((m.mean() - (0.25 * 1.0 + 0.75 * 5.0)).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_convex_combination() {
        let m = bimodal();
        let e = Exponential::with_mean(2.0).unwrap();
        let g = Gamma::new(9.0, 4.0).unwrap();
        for &x in &[0.5, 2.0, 10.0, 40.0] {
            let want = 0.7 * e.cdf(x) + 0.3 * g.cdf(x);
            assert!((m.cdf(x) - want).abs() < 1e-14, "x={x}");
        }
    }

    #[test]
    fn cdf_integral_matches_numeric() {
        let m = bimodal();
        for &y in &[1.0, 8.0, 30.0, 80.0] {
            let analytic = m.cdf_integral(y);
            let numeric = numeric_cdf_integral(&m, y);
            assert!(
                (analytic - numeric).abs() < 1e-6,
                "y={y}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn sample_mean_matches_analytic() {
        let m = bimodal();
        let mut rng = seeded(11);
        let n = 200_000;
        let s: f64 = (0..n).map(|_| m.sample(&mut rng)).sum();
        let mean = s / n as f64;
        assert!(
            (mean - m.mean()).abs() < 0.03 * m.mean(),
            "mean {mean} want {}",
            m.mean()
        );
    }

    #[test]
    fn total_variance_law() {
        let m = bimodal();
        let mut rng = seeded(12);
        let n = 300_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = m.sample(&mut rng);
            s += x;
            s2 += x * x;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(
            (var - m.variance()).abs() < 0.05 * m.variance(),
            "var {var} want {}",
            m.variance()
        );
    }
}
