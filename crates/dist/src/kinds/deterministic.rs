//! Deterministic (point-mass) distribution: every VCR operation sweeps the
//! same distance. Valuable as an analytic edge case — the hit probability
//! becomes a piecewise-linear function of the system geometry, so model
//! results can be verified by hand.

use rand::RngCore;

use crate::duration::{require_non_negative, DurationDist};
use crate::DistError;

/// Point mass at `value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Construct a point mass at `value ≥ 0`.
    pub fn new(value: f64) -> Result<Self, DistError> {
        Ok(Self {
            value: require_non_negative("value", value)?,
        })
    }

    /// The constant value.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl DurationDist for Deterministic {
    fn pdf(&self, _x: f64) -> f64 {
        // The law has an atom; it admits no density. Model code never
        // integrates pdf directly (it uses the cdf), so 0 is the honest
        // answer.
        0.0
    }

    fn cdf(&self, x: f64) -> f64 {
        if x >= self.value {
            1.0
        } else {
            0.0
        }
    }

    fn cdf_integral(&self, y: f64) -> f64 {
        (y - self.value).max(0.0)
    }

    fn mean(&self) -> f64 {
        self.value
    }

    fn variance(&self) -> f64 {
        0.0
    }

    fn sample(&self, _rng: &mut dyn RngCore) -> f64 {
        self.value
    }

    fn support_hint(&self) -> (f64, f64) {
        (0.0, self.value)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile domain: p in [0,1]");
        if crate::approx::exact_zero(p) {
            0.0
        } else {
            self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn step_cdf() {
        let d = Deterministic::new(3.0).unwrap();
        assert_eq!(d.cdf(2.999), 0.0);
        assert_eq!(d.cdf(3.0), 1.0);
        assert_eq!(d.cdf(4.0), 1.0);
    }

    #[test]
    fn ramp_cdf_integral() {
        let d = Deterministic::new(3.0).unwrap();
        assert_eq!(d.cdf_integral(2.0), 0.0);
        assert_eq!(d.cdf_integral(3.0), 0.0);
        assert_eq!(d.cdf_integral(5.0), 2.0);
    }

    #[test]
    fn sampling_is_constant() {
        let d = Deterministic::new(1.5).unwrap();
        let mut rng = seeded(0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 1.5);
        }
    }

    #[test]
    fn zero_point_mass_is_valid() {
        let d = Deterministic::new(0.0).unwrap();
        assert_eq!(d.cdf(0.0), 1.0);
        assert_eq!(d.cdf_integral(4.0), 4.0);
    }
}
