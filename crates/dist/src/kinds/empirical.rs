//! Empirical distribution fitted from observed VCR durations.
//!
//! The paper's model is explicitly designed for distributions "obtained by
//! statistics while the movie is displayed" (§2.1). This type closes that
//! loop: feed it measured durations (e.g. from `vod-sim` traces) and plug
//! it straight into the analytic model.
//!
//! Representation: a piecewise-*linear* cdf through the sample order
//! statistics (equivalently, a histogram density between consecutive order
//! statistics). The smoothing keeps `pdf` well-defined and makes
//! `cdf_integral` exactly integrable in closed form piece by piece.

use rand::RngCore;

use crate::duration::DurationDist;
use crate::rng::u01;
use crate::DistError;

/// Piecewise-linear empirical distribution built from samples.
#[derive(Debug, Clone)]
pub struct Empirical {
    /// Sorted breakpoints x₀ < x₁ < … < x_k (deduplicated).
    xs: Vec<f64>,
    /// cdf values at the breakpoints, `F(x₀) = 0 … F(x_k) = 1`.
    fs: Vec<f64>,
    /// `H(xᵢ) = ∫₀^{xᵢ} F(u) du`, precomputed per breakpoint.
    hs: Vec<f64>,
    mean: f64,
    variance: f64,
}

impl Empirical {
    /// Fit from raw observations (need at least 2 distinct non-negative
    /// finite values).
    pub fn from_samples(samples: &[f64]) -> Result<Self, DistError> {
        if samples.is_empty() {
            return Err(DistError::Empty("empirical samples"));
        }
        let mut xs: Vec<f64> = Vec::with_capacity(samples.len());
        for &s in samples {
            if !s.is_finite() || s < 0.0 {
                return Err(DistError::InvalidParameter {
                    name: "sample".into(),
                    value: s,
                    requirement: "finite and >= 0",
                });
            }
            xs.push(s);
        }
        xs.sort_by(|a, b| a.total_cmp(b));
        let n = xs.len();

        // Breakpoints: distinct order statistics, with plotting positions
        // i/(n-1) so the cdf spans [0, 1] across the observed range.
        let mut bx: Vec<f64> = Vec::with_capacity(n);
        let mut bf: Vec<f64> = Vec::with_capacity(n);
        for (i, &x) in xs.iter().enumerate() {
            let f = if n == 1 {
                1.0
            } else {
                i as f64 / (n - 1) as f64
            };
            if let (Some(&last), Some(last_f)) = (bx.last(), bf.last_mut()) {
                if crate::approx::exact_eq(x, last) {
                    // Duplicate x: keep the larger cdf value (a jump).
                    *last_f = f;
                    continue;
                }
            }
            bx.push(x);
            bf.push(f);
        }
        if bx.len() < 2 {
            // All samples identical: degenerate to a tiny ramp around the
            // point so the cdf is still piecewise linear and proper.
            let x = bx[0];
            let eps = (x.abs() * 1e-9).max(1e-9);
            bx = vec![(x - eps).max(0.0), x];
            bf = vec![0.0, 1.0];
        } else {
            bf[0] = 0.0;
            let last = bf.len() - 1;
            bf[last] = 1.0;
        }

        // Precompute H at breakpoints: on [xᵢ, xᵢ₊₁] the cdf is linear, so
        // the integral is the trapezoid area; before x₀ the cdf is 0.
        // Simultaneously accumulate the moments of the *smoothed* law —
        // mean() and sample() must describe the same distribution as cdf(),
        // which is the piecewise-linear one, not the raw point masses.
        let mut hs = Vec::with_capacity(bx.len());
        let mut acc = 0.0;
        let mut mean = 0.0;
        let mut ex2 = 0.0;
        hs.push(0.0);
        for i in 1..bx.len() {
            let (x0, x1) = (bx[i - 1], bx[i]);
            let df = bf[i] - bf[i - 1];
            acc += 0.5 * (bf[i] + bf[i - 1]) * (x1 - x0);
            hs.push(acc);
            // Uniform density df/(x1−x0) on the segment:
            mean += df * 0.5 * (x0 + x1);
            ex2 += df * (x0 * x0 + x0 * x1 + x1 * x1) / 3.0;
        }
        let variance = (ex2 - mean * mean).max(0.0);

        Ok(Self {
            xs: bx,
            fs: bf,
            hs,
            mean,
            variance,
        })
    }

    /// Number of cdf breakpoints retained.
    pub fn breakpoints(&self) -> usize {
        self.xs.len()
    }

    /// Largest observed value (upper edge of the support).
    pub fn max_value(&self) -> f64 {
        // vod-lint: allow(no-panic) — the constructor rejects empty sample
        // sets, so `xs` always has at least one breakpoint.
        *self.xs.last().expect("non-empty by construction")
    }

    /// Index of the segment containing `x`: largest `i` with `xs[i] <= x`.
    fn segment(&self, x: f64) -> usize {
        match self.xs.binary_search_by(|probe| probe.total_cmp(&x)) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        }
    }
}

impl DurationDist for Empirical {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.xs[0] || x >= self.max_value() {
            return 0.0;
        }
        let i = self.segment(x);
        let dx = self.xs[i + 1] - self.xs[i];
        (self.fs[i + 1] - self.fs[i]) / dx
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.xs[0] {
            return 0.0;
        }
        if x >= self.max_value() {
            return 1.0;
        }
        let i = self.segment(x);
        let t = (x - self.xs[i]) / (self.xs[i + 1] - self.xs[i]);
        self.fs[i] + t * (self.fs[i + 1] - self.fs[i])
    }

    fn cdf_integral(&self, y: f64) -> f64 {
        if y <= self.xs[0] {
            return 0.0;
        }
        if y >= self.max_value() {
            return self.hs[self.hs.len() - 1] + (y - self.max_value());
        }
        let i = self.segment(y);
        // Trapezoid from xs[i] to y on a linear cdf segment.
        self.hs[i] + 0.5 * (self.fs[i] + self.cdf(y)) * (y - self.xs[i])
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.variance
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Inverse-transform on the piecewise-linear cdf.
        self.quantile(u01(rng))
    }

    fn support_hint(&self) -> (f64, f64) {
        (self.xs[0], self.max_value())
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile domain: p in [0,1]");
        if p <= 0.0 {
            return self.xs[0];
        }
        if p >= 1.0 {
            return self.max_value();
        }
        let i = match self.fs.binary_search_by(|probe| probe.total_cmp(&p)) {
            Ok(i) => return self.xs[i],
            Err(i) => i - 1, // fs[0] = 0 < p, so i >= 1 here.
        };
        let df = self.fs[i + 1] - self.fs[i];
        if df <= 0.0 {
            return self.xs[i];
        }
        self.xs[i] + (p - self.fs[i]) / df * (self.xs[i + 1] - self.xs[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duration::numeric_cdf_integral;
    use crate::kinds::Gamma;
    use crate::rng::seeded;

    #[test]
    fn rejects_empty_and_bad() {
        assert!(Empirical::from_samples(&[]).is_err());
        assert!(Empirical::from_samples(&[1.0, -2.0]).is_err());
        assert!(Empirical::from_samples(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn single_value_degenerates_gracefully() {
        let d = Empirical::from_samples(&[3.0, 3.0, 3.0]).unwrap();
        assert_eq!(d.cdf(2.0), 0.0);
        assert_eq!(d.cdf(3.0), 1.0);
        assert!((d.mean() - 3.0).abs() < 1e-8);
    }

    #[test]
    fn cdf_monotone_and_proper() {
        let d = Empirical::from_samples(&[5.0, 1.0, 3.0, 9.0, 3.0, 7.0]).unwrap();
        let mut prev = -1.0;
        for i in 0..200 {
            let x = i as f64 * 0.06;
            let f = d.cdf(x);
            assert!((0.0..=1.0).contains(&f));
            assert!(f >= prev);
            prev = f;
        }
        assert_eq!(d.cdf(0.5), 0.0);
        assert_eq!(d.cdf(9.0), 1.0);
    }

    #[test]
    fn cdf_integral_consistent_with_numeric() {
        let d = Empirical::from_samples(&[2.0, 4.0, 4.5, 8.0, 16.0]).unwrap();
        for &y in &[1.0, 3.0, 4.2, 9.0, 20.0] {
            let analytic = d.cdf_integral(y);
            let numeric = numeric_cdf_integral(&d, y);
            assert!(
                (analytic - numeric).abs() < 1e-7,
                "y={y}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn fitted_to_gamma_approximates_gamma() {
        // Fit to 50k gamma draws; the empirical cdf should track the true
        // cdf within ~1% everywhere (Dvoretzky–Kiefer–Wolfowitz scale).
        let g = Gamma::paper_fig7();
        let mut rng = seeded(4);
        let samples: Vec<f64> = (0..50_000).map(|_| g.sample(&mut rng)).collect();
        let d = Empirical::from_samples(&samples).unwrap();
        for &x in &[2.0, 5.0, 8.0, 15.0, 30.0] {
            assert!(
                (d.cdf(x) - g.cdf(x)).abs() < 0.02,
                "x={x}: emp {} vs true {}",
                d.cdf(x),
                g.cdf(x)
            );
        }
        assert!((d.mean() - 8.0).abs() < 0.2);
    }

    #[test]
    fn quantile_round_trip() {
        let d = Empirical::from_samples(&[1.0, 2.0, 5.0, 9.0]).unwrap();
        for &p in &[0.1, 0.4, 0.7, 0.95] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-12, "p={p} x={x}");
        }
    }

    #[test]
    fn sampling_reproduces_cdf() {
        let d = Empirical::from_samples(&[1.0, 2.0, 3.0, 4.0, 10.0]).unwrap();
        let mut rng = seeded(6);
        let n = 100_000;
        let below3 = (0..n).filter(|_| d.sample(&mut rng) <= 3.0).count();
        let frac = below3 as f64 / n as f64;
        assert!(
            (frac - d.cdf(3.0)).abs() < 0.01,
            "frac {frac} vs cdf {}",
            d.cdf(3.0)
        );
    }
}
