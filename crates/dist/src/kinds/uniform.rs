//! Uniform distribution on an interval `[a, b]` — useful as a bounded,
//! maximally "spread" VCR-duration model and in tests where the closed
//! forms are trivial to check by hand.

use rand::RngCore;

use crate::duration::DurationDist;
use crate::rng::u01;
use crate::DistError;

/// Uniform distribution on `[lo, hi]`, `0 ≤ lo < hi`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Construct a uniform distribution on `[lo, hi]`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, DistError> {
        if !lo.is_finite() || lo < 0.0 {
            return Err(DistError::InvalidParameter {
                name: "lo".into(),
                value: lo,
                requirement: "finite and >= 0",
            });
        }
        if !hi.is_finite() || hi <= lo {
            return Err(DistError::InvalidParameter {
                name: "hi".into(),
                value: hi,
                requirement: "finite and > lo",
            });
        }
        Ok(Self { lo, hi })
    }

    /// Lower bound of the support.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the support.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

impl DurationDist for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            0.0
        } else {
            1.0 / self.width()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (x - self.lo) / self.width()
        }
    }

    fn cdf_integral(&self, y: f64) -> f64 {
        if y <= self.lo {
            0.0
        } else if y <= self.hi {
            let d = y - self.lo;
            d * d / (2.0 * self.width())
        } else {
            self.width() / 2.0 + (y - self.hi)
        }
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn variance(&self) -> f64 {
        let w = self.width();
        w * w / 12.0
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.lo + self.width() * u01(rng)
    }

    fn support_hint(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile domain: p in [0,1]");
        self.lo + p * self.width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duration::numeric_cdf_integral;
    use crate::rng::seeded;

    #[test]
    fn rejects_bad_bounds() {
        assert!(Uniform::new(-1.0, 2.0).is_err());
        assert!(Uniform::new(2.0, 2.0).is_err());
        assert!(Uniform::new(3.0, 2.0).is_err());
    }

    #[test]
    fn cdf_piecewise() {
        let d = Uniform::new(2.0, 6.0).unwrap();
        assert_eq!(d.cdf(1.0), 0.0);
        assert_eq!(d.cdf(2.0), 0.0);
        assert_eq!(d.cdf(4.0), 0.5);
        assert_eq!(d.cdf(6.0), 1.0);
        assert_eq!(d.cdf(9.0), 1.0);
    }

    #[test]
    fn cdf_integral_all_pieces() {
        let d = Uniform::new(2.0, 6.0).unwrap();
        for &y in &[0.0, 1.0, 2.0, 3.5, 6.0, 9.0] {
            let analytic = d.cdf_integral(y);
            let numeric = numeric_cdf_integral(&d, y);
            assert!(
                (analytic - numeric).abs() < 1e-8,
                "y={y}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn samples_in_range_with_right_mean() {
        let d = Uniform::new(1.0, 3.0).unwrap();
        let mut rng = seeded(5);
        let n = 100_000;
        let mut s = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!((1.0..=3.0).contains(&x));
            s += x;
        }
        assert!((s / n as f64 - 2.0).abs() < 0.01);
    }
}
