//! Pareto (Lomax-style, shifted to start at 0) distribution — a
//! heavy-tailed VCR-duration model. Long-tailed pauses ("went to bed with
//! the player running") are the stress case for the wrap rule of §2.1 and
//! for reserve sizing; a power tail exercises both far harder than the
//! paper's exponential/gamma choices.

use rand::RngCore;

use crate::duration::{require_positive, DurationDist};
use crate::rng::u01_open;
use crate::DistError;

/// Lomax distribution (Pareto type II anchored at 0):
/// `F(x) = 1 − (1 + x/σ)^{−α}` with shape `α > 0`, scale `σ > 0`.
///
/// Mean exists for `α > 1` (`σ/(α−1)`), variance for `α > 2`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    shape: f64,
    scale: f64,
}

impl Pareto {
    /// Construct from shape `α > 0` and scale `σ > 0`.
    pub fn new(shape: f64, scale: f64) -> Result<Self, DistError> {
        Ok(Self {
            shape: require_positive("shape", shape)?,
            scale: require_positive("scale", scale)?,
        })
    }

    /// Construct from a target mean (requires `shape > 1`).
    pub fn with_shape_mean(shape: f64, mean: f64) -> Result<Self, DistError> {
        let shape = require_positive("shape", shape)?;
        if shape <= 1.0 {
            return Err(DistError::InvalidParameter {
                name: "shape".into(),
                value: shape,
                requirement: "> 1 for a finite mean",
            });
        }
        let mean = require_positive("mean", mean)?;
        Self::new(shape, mean * (shape - 1.0))
    }

    /// Shape `α`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale `σ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl DurationDist for Pareto {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let a = self.shape;
        (a / self.scale) * (1.0 + x / self.scale).powf(-a - 1.0)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (1.0 + x / self.scale).powf(-self.shape)
        }
    }

    fn cdf_integral(&self, y: f64) -> f64 {
        if y <= 0.0 {
            return 0.0;
        }
        let a = self.shape;
        let s = self.scale;
        // ∫₀^y [1 − (1+u/σ)^{−α}] du
        //   = y − σ/(1−α) [(1+y/σ)^{1−α} − 1]      for α ≠ 1,
        //   = y − σ ln(1+y/σ)                      for α = 1.
        if (a - 1.0).abs() < 1e-12 {
            y - s * (1.0 + y / s).ln()
        } else {
            y - s / (1.0 - a) * ((1.0 + y / s).powf(1.0 - a) - 1.0)
        }
    }

    fn mean(&self) -> f64 {
        if self.shape > 1.0 {
            self.scale / (self.shape - 1.0)
        } else {
            f64::INFINITY
        }
    }

    fn variance(&self) -> f64 {
        let a = self.shape;
        if a > 2.0 {
            let s = self.scale;
            s * s * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        } else {
            f64::INFINITY
        }
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Inverse transform: x = σ [(1−u)^{−1/α} − 1].
        self.scale * (u01_open(rng).powf(-1.0 / self.shape) - 1.0)
    }

    fn support_hint(&self) -> (f64, f64) {
        // Quantile 1 − 1e-12: σ[(1e-12)^{−1/α} − 1].
        (0.0, self.scale * (1e-12f64.powf(-1.0 / self.shape) - 1.0))
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile domain: p in [0,1]");
        if p >= 1.0 {
            f64::INFINITY
        } else {
            self.scale * ((1.0 - p).powf(-1.0 / self.shape) - 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duration::numeric_cdf_integral;
    use crate::rng::seeded;

    #[test]
    fn construction() {
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Pareto::with_shape_mean(0.9, 5.0).is_err());
        let d = Pareto::with_shape_mean(2.5, 8.0).unwrap();
        assert!((d.mean() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_integral_matches_numeric_including_alpha_one() {
        for d in [
            Pareto::new(1.0, 4.0).unwrap(),
            Pareto::new(2.5, 12.0).unwrap(),
            Pareto::new(0.7, 3.0).unwrap(),
        ] {
            for &y in &[0.5, 3.0, 20.0, 150.0] {
                let analytic = d.cdf_integral(y);
                let numeric = numeric_cdf_integral(&d, y);
                assert!(
                    (analytic - numeric).abs() < 1e-6 * (1.0 + numeric),
                    "{d:?} y={y}: {analytic} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn heavy_tail_is_heavy() {
        // P[X > 10·mean] for Lomax(1.5) vs exponential of the same mean.
        let p = Pareto::with_shape_mean(1.5, 8.0).unwrap();
        let e = crate::kinds::Exponential::with_mean(8.0).unwrap();
        let x = 80.0;
        assert!(
            1.0 - p.cdf(x) > 10.0 * (1.0 - e.cdf(x)),
            "Pareto tail {} vs exp tail {}",
            1.0 - p.cdf(x),
            1.0 - e.cdf(x)
        );
    }

    #[test]
    fn sample_mean_converges_when_finite() {
        let d = Pareto::with_shape_mean(3.0, 5.0).unwrap();
        let mut rng = seeded(15);
        let n = 400_000;
        let s: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = s / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn quantile_round_trip() {
        let d = Pareto::new(2.0, 6.0).unwrap();
        for &p in &[0.1, 0.5, 0.95, 0.999] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn infinite_moments_signalled() {
        let d = Pareto::new(0.8, 1.0).unwrap();
        assert!(d.mean().is_infinite());
        let d2 = Pareto::new(1.5, 1.0).unwrap();
        assert!(d2.mean().is_finite());
        assert!(d2.variance().is_infinite());
    }
}
