//! Lognormal distribution — a right-skewed duration model often fitted to
//! human "dwell time" measurements; included to exercise the model's
//! generality claim with a distribution the paper never tried.

use rand::RngCore;

use crate::duration::{require_positive, DurationDist};
use crate::rng::std_normal;
use crate::special::std_normal_cdf;
use crate::DistError;

/// Lognormal distribution: `ln X ~ N(mu, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Construct from the log-space location `mu` (any finite value) and
    /// log-space scale `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        if !mu.is_finite() {
            return Err(DistError::InvalidParameter {
                name: "mu".into(),
                value: mu,
                requirement: "finite",
            });
        }
        Ok(Self {
            mu,
            sigma: require_positive("sigma", sigma)?,
        })
    }

    /// Construct from the *real-space* mean and coefficient of variation
    /// (`cv = σ_X / mean_X`), the parameterization workload configs use.
    pub fn with_mean_cv(mean: f64, cv: f64) -> Result<Self, DistError> {
        let mean = require_positive("mean", mean)?;
        let cv = require_positive("cv", cv)?;
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Self::new(mu, sigma2.sqrt())
    }

    /// Log-space location `mu`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-space scale `sigma`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl DurationDist for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-(z * z) / 2.0).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            std_normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn cdf_integral(&self, y: f64) -> f64 {
        if y <= 0.0 {
            return 0.0;
        }
        // ∫₀^y Φ((ln u − μ)/σ) du
        //   = y Φ(z) − e^{μ+σ²/2} Φ(z − σ),  z = (ln y − μ)/σ.
        // (Integration by parts; the second term is the partial expectation.)
        let z = (y.ln() - self.mu) / self.sigma;
        y * std_normal_cdf(z)
            - (self.mu + self.sigma * self.sigma / 2.0).exp() * std_normal_cdf(z - self.sigma)
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        ((s2).exp_m1()) * (2.0 * self.mu + s2).exp()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        (self.mu + self.sigma * std_normal(rng)).exp()
    }

    fn support_hint(&self) -> (f64, f64) {
        (0.0, (self.mu + 12.0 * self.sigma).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duration::numeric_cdf_integral;
    use crate::rng::seeded;

    #[test]
    fn mean_cv_parameterization_round_trips() {
        let d = LogNormal::with_mean_cv(8.0, 0.5).unwrap();
        assert!((d.mean() - 8.0).abs() < 1e-10);
        let cv = d.variance().sqrt() / d.mean();
        assert!((cv - 0.5).abs() < 1e-10);
    }

    #[test]
    fn median_is_exp_mu() {
        let d = LogNormal::new(1.2, 0.7).unwrap();
        assert!((d.cdf(1.2f64.exp()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_integral_matches_numeric() {
        let d = LogNormal::with_mean_cv(8.0, 0.8).unwrap();
        for &y in &[0.5, 3.0, 8.0, 30.0, 120.0] {
            let analytic = d.cdf_integral(y);
            let numeric = numeric_cdf_integral(&d, y);
            assert!(
                (analytic - numeric).abs() < 1e-6,
                "y={y}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn sample_mean() {
        let d = LogNormal::with_mean_cv(5.0, 0.4).unwrap();
        let mut rng = seeded(77);
        let n = 200_000;
        let s: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        assert!((s / n as f64 - 5.0).abs() < 0.05);
    }
}
