//! Weibull distribution — a flexible alternative duration model whose
//! shape parameter interpolates between heavy-tailed (`k < 1`) and
//! near-deterministic (`k ≫ 1`) VCR behavior.

use rand::RngCore;

use crate::duration::{require_positive, DurationDist};
use crate::rng::u01_open;
use crate::special::{gamma_p, ln_gamma};
use crate::DistError;

/// Weibull distribution with shape `k` and scale `λ`:
/// `F(x) = 1 − exp(−(x/λ)^k)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Construct from shape `k > 0` and scale `λ > 0`.
    pub fn new(shape: f64, scale: f64) -> Result<Self, DistError> {
        Ok(Self {
            shape: require_positive("shape", shape)?,
            scale: require_positive("scale", scale)?,
        })
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl DurationDist for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let k = self.shape;
        let t = x / self.scale;
        (k / self.scale) * t.powf(k - 1.0) * (-t.powf(k)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-(x / self.scale).powf(self.shape)).exp_m1()
        }
    }

    fn cdf_integral(&self, y: f64) -> f64 {
        if y <= 0.0 {
            return 0.0;
        }
        // ∫₀^y F = y − ∫₀^y exp(−(u/λ)^k) du; substituting t = (u/λ)^k gives
        // (λ/k) γ(1/k, (y/λ)^k) = (λ/k) Γ(1/k) P(1/k, (y/λ)^k).
        let k = self.shape;
        let t = (y / self.scale).powf(k);
        let survivor_integral = (self.scale / k) * ln_gamma(1.0 / k).exp() * gamma_p(1.0 / k, t);
        y - survivor_integral
    }

    fn mean(&self) -> f64 {
        self.scale * ln_gamma(1.0 + 1.0 / self.shape).exp()
    }

    fn variance(&self) -> f64 {
        let g1 = ln_gamma(1.0 + 1.0 / self.shape).exp();
        let g2 = ln_gamma(1.0 + 2.0 / self.shape).exp();
        self.scale * self.scale * (g2 - g1 * g1)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.scale * (-u01_open(rng).ln()).powf(1.0 / self.shape)
    }

    fn support_hint(&self) -> (f64, f64) {
        (0.0, self.scale * 60.0f64.powf(1.0 / self.shape))
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile domain: p in [0,1]");
        if p >= 1.0 {
            f64::INFINITY
        } else {
            self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duration::numeric_cdf_integral;
    use crate::rng::seeded;

    #[test]
    fn shape_one_is_exponential() {
        let w = Weibull::new(1.0, 5.0).unwrap();
        let e = crate::kinds::Exponential::with_mean(5.0).unwrap();
        for &x in &[0.5, 2.0, 5.0, 20.0] {
            assert!((w.cdf(x) - e.cdf(x)).abs() < 1e-12, "x={x}");
            assert!(
                (w.cdf_integral(x) - e.cdf_integral(x)).abs() < 1e-9,
                "H at x={x}"
            );
        }
        assert!((w.mean() - 5.0).abs() < 1e-10);
    }

    #[test]
    fn cdf_integral_matches_numeric() {
        for dist in [
            Weibull::new(0.8, 4.0).unwrap(),
            Weibull::new(2.5, 6.0).unwrap(),
        ] {
            for &y in &[0.5, 3.0, 10.0, 40.0] {
                let analytic = dist.cdf_integral(y);
                let numeric = numeric_cdf_integral(&dist, y);
                assert!(
                    (analytic - numeric).abs() < 1e-6,
                    "{dist:?} y={y}: {analytic} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn sample_mean() {
        let d = Weibull::new(2.0, 8.0).unwrap();
        let mut rng = seeded(13);
        let n = 100_000;
        let s: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = s / n as f64;
        assert!((mean - d.mean()).abs() < 0.05 * d.mean(), "mean {mean}");
    }

    #[test]
    fn quantile_inverts() {
        let d = Weibull::new(1.7, 3.0).unwrap();
        for &p in &[0.1, 0.5, 0.99] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-12);
        }
    }
}
