//! Gamma distribution — the paper's "skewed gamma" VCR-duration model.
//!
//! Figure 7 uses a gamma with mean 8 minutes and the parameter pair the
//! paper writes as `(α = 2, γ = 4)`, i.e. shape 2 and scale 4 in modern
//! notation ([`Gamma::paper_fig7`]).

use rand::RngCore;

use crate::duration::{require_positive, DurationDist};
use crate::rng::{std_normal, u01_open};
use crate::special::{gamma_p, ln_gamma};
use crate::DistError;

/// Gamma distribution with shape `k` and scale `θ` (mean `kθ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Construct from shape `k > 0` and scale `θ > 0`.
    pub fn new(shape: f64, scale: f64) -> Result<Self, DistError> {
        Ok(Self {
            shape: require_positive("shape", shape)?,
            scale: require_positive("scale", scale)?,
        })
    }

    /// Construct from shape and *mean* (`θ = mean / k`).
    pub fn with_shape_mean(shape: f64, mean: f64) -> Result<Self, DistError> {
        let shape = require_positive("shape", shape)?;
        let mean = require_positive("mean", mean)?;
        Self::new(shape, mean / shape)
    }

    /// The skewed gamma used throughout the paper's §4 experiments:
    /// shape 2, scale 4 — mean 8 minutes.
    pub fn paper_fig7() -> Self {
        // vod-lint: allow(no-panic) — shape 2, scale 4 are fixed in-domain constants.
        Self::new(2.0, 4.0).expect("constants are valid")
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl DurationDist for Gamma {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let k = self.shape;
        // f(x) = x^{k−1} e^{−x/θ} / (θ^k Γ(k)), evaluated in log space.
        let log_pdf = (k - 1.0) * x.ln() - x / self.scale - k * self.scale.ln() - ln_gamma(k);
        log_pdf.exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.shape, x / self.scale)
        }
    }

    fn cdf_integral(&self, y: f64) -> f64 {
        if y <= 0.0 {
            return 0.0;
        }
        // Integration by parts:
        //   ∫₀^y F(u) du = y·F(y) − ∫₀^y u f(u) du
        // and for Gamma(k, θ): ∫₀^y u f(u) du = kθ · P(k+1, y/θ).
        let t = y / self.scale;
        y * gamma_p(self.shape, t) - self.shape * self.scale * gamma_p(self.shape + 1.0, t)
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.scale * sample_standard_gamma(self.shape, rng)
    }

    fn support_hint(&self) -> (f64, f64) {
        (0.0, self.mean() + 40.0 * self.variance().sqrt())
    }
}

/// Marsaglia–Tsang sampling of a standard Gamma(shape, 1) variate.
///
/// For `shape < 1` the Johnk-style boost `Gamma(k) = Gamma(k+1) · U^{1/k}`
/// is applied.
fn sample_standard_gamma(shape: f64, rng: &mut dyn RngCore) -> f64 {
    if shape < 1.0 {
        let boost = u01_open(rng).powf(1.0 / shape);
        return boost * sample_standard_gamma(shape + 1.0, rng);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = std_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u = u01_open(rng);
        let x2 = x * x;
        // Squeeze test first (cheap), then the full log test.
        if u < 1.0 - 0.0331 * x2 * x2 {
            return d * v;
        }
        if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duration::numeric_cdf_integral;
    use crate::rng::seeded;

    #[test]
    fn paper_parameters() {
        let d = Gamma::paper_fig7();
        assert_eq!(d.shape(), 2.0);
        assert_eq!(d.scale(), 4.0);
        assert_eq!(d.mean(), 8.0);
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let d = Gamma::new(2.0, 4.0).unwrap();
        for &y in &[1.0, 4.0, 8.0, 20.0, 60.0] {
            let by_pdf = crate::quad::adaptive_simpson(|x| d.pdf(x), 0.0, y, 1e-11);
            assert!(
                (by_pdf - d.cdf(y)).abs() < 1e-8,
                "y={y}: ∫pdf={by_pdf} cdf={}",
                d.cdf(y)
            );
        }
    }

    #[test]
    fn erlang2_closed_form() {
        // Gamma(2, θ) cdf = 1 − (1 + x/θ) e^{−x/θ}.
        let d = Gamma::new(2.0, 4.0).unwrap();
        for &x in &[0.5, 2.0, 8.0, 25.0] {
            let t: f64 = x / 4.0;
            let want = 1.0 - (1.0 + t) * (-t).exp();
            assert!((d.cdf(x) - want).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn cdf_integral_matches_numeric() {
        for dist in [
            Gamma::new(2.0, 4.0).unwrap(),
            Gamma::new(0.7, 3.0).unwrap(),
            Gamma::new(5.0, 1.5).unwrap(),
        ] {
            for &y in &[0.5, 2.0, 8.0, 40.0, 120.0] {
                let analytic = dist.cdf_integral(y);
                let numeric = numeric_cdf_integral(&dist, y);
                assert!(
                    (analytic - numeric).abs() < 1e-6,
                    "{dist:?} y={y}: {analytic} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn sample_moments() {
        for (shape, scale) in [(2.0, 4.0), (0.5, 2.0), (9.0, 0.5)] {
            let d = Gamma::new(shape, scale).unwrap();
            let mut rng = seeded(2024);
            let n = 200_000;
            let (mut s, mut s2) = (0.0, 0.0);
            for _ in 0..n {
                let x = d.sample(&mut rng);
                assert!(x >= 0.0);
                s += x;
                s2 += x * x;
            }
            let mean = s / n as f64;
            let var = s2 / n as f64 - mean * mean;
            assert!(
                (mean - d.mean()).abs() < 0.05 * d.mean().max(1.0),
                "shape={shape} mean {mean} want {}",
                d.mean()
            );
            assert!(
                (var - d.variance()).abs() < 0.08 * d.variance().max(1.0),
                "shape={shape} var {var} want {}",
                d.variance()
            );
        }
    }

    #[test]
    fn quantile_round_trip() {
        let d = Gamma::paper_fig7();
        for &p in &[0.05, 0.5, 0.95] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-9, "p={p} x={x}");
        }
    }
}
