//! Exponential distribution — used by the paper (§4, §5 Example 1) for VCR
//! durations of movies 2 and 3 (means 5 and 2 minutes).

use rand::RngCore;

use crate::duration::{require_positive, DurationDist};
use crate::rng::u01_open;
use crate::DistError;

/// Exponential distribution with the given mean (`rate = 1/mean`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
    rate: f64,
}

impl Exponential {
    /// Construct from the mean duration in movie minutes.
    pub fn with_mean(mean: f64) -> Result<Self, DistError> {
        let mean = require_positive("mean", mean)?;
        Ok(Self {
            mean,
            rate: 1.0 / mean,
        })
    }

    /// Construct from the rate `λ` (events per minute).
    pub fn with_rate(rate: f64) -> Result<Self, DistError> {
        let rate = require_positive("rate", rate)?;
        Ok(Self {
            mean: 1.0 / rate,
            rate,
        })
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl DurationDist for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            // expm1 avoids cancellation for small rate*x.
            -(-self.rate * x).exp_m1()
        }
    }

    fn cdf_integral(&self, y: f64) -> f64 {
        if y <= 0.0 {
            return 0.0;
        }
        // ∫₀^y (1 − e^{−λu}) du = y − (1 − e^{−λy})/λ
        y - self.cdf(y) / self.rate
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.mean * self.mean
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        -self.mean * u01_open(rng).ln()
    }

    fn support_hint(&self) -> (f64, f64) {
        // 50 means cover 1 − e^{−50} ≈ 1 − 2e-22 of the mass.
        (0.0, 50.0 * self.mean)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile domain: p in [0,1]");
        if p >= 1.0 {
            f64::INFINITY
        } else {
            -self.mean * (1.0 - p).ln()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duration::numeric_cdf_integral;
    use crate::rng::seeded;

    #[test]
    fn rejects_bad_mean() {
        assert!(Exponential::with_mean(0.0).is_err());
        assert!(Exponential::with_mean(-1.0).is_err());
        assert!(Exponential::with_mean(f64::NAN).is_err());
    }

    #[test]
    fn cdf_basic_shape() {
        let d = Exponential::with_mean(5.0).unwrap();
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.cdf(0.0), 0.0);
        assert!((d.cdf(5.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-14);
        assert!(d.cdf(1e6) > 1.0 - 1e-12);
    }

    #[test]
    fn cdf_integral_matches_numeric() {
        let d = Exponential::with_mean(8.0).unwrap();
        for &y in &[0.5, 1.0, 7.7, 30.0, 120.0] {
            let analytic = d.cdf_integral(y);
            let numeric = numeric_cdf_integral(&d, y);
            assert!(
                (analytic - numeric).abs() < 1e-7,
                "y={y}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Exponential::with_mean(2.0).unwrap();
        for &p in &[0.01, 0.25, 0.5, 0.9, 0.999] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn sample_mean_and_variance() {
        let d = Exponential::with_mean(5.0).unwrap();
        let mut rng = seeded(99);
        let n = 100_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!(x >= 0.0);
            s += x;
            s2 += x * x;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 25.0).abs() < 1.0, "var {var}");
    }
}
