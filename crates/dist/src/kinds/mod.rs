//! Concrete duration-distribution implementations.

mod deterministic;
mod empirical;
mod exponential;
mod gamma;
mod lognormal;
mod mixture;
mod pareto;
mod truncated;
mod uniform;
mod weibull;

pub use deterministic::Deterministic;
pub use empirical::Empirical;
pub use exponential::Exponential;
pub use gamma::Gamma;
pub use lognormal::LogNormal;
pub use mixture::Mixture;
pub use pareto::Pareto;
pub use truncated::Truncated;
pub use uniform::Uniform;
pub use weibull::Weibull;
