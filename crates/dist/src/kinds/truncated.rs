//! Truncation adapter: restrict any duration distribution to `[lo, hi]`
//! and renormalize.
//!
//! The paper defines the VCR-duration pdf on `[0, l]` (a FF can sweep at
//! most the whole movie); `Truncated` makes that restriction explicit for
//! base distributions with unbounded support.

use rand::RngCore;

use crate::duration::DurationDist;
use crate::quad::adaptive_simpson;
use crate::rng::u01;
use crate::DistError;

/// `base` conditioned on the event `lo ≤ X ≤ hi`.
#[derive(Debug)]
pub struct Truncated<D> {
    base: D,
    lo: f64,
    hi: f64,
    /// F_base(lo)
    f_lo: f64,
    /// Mass retained: F_base(hi) − F_base(lo).
    mass: f64,
    mean: f64,
    variance: f64,
}

impl<D: DurationDist> Truncated<D> {
    /// Truncate `base` to `[lo, hi]`. Fails when the bounds are inverted,
    /// non-finite, negative, or capture (numerically) no mass.
    pub fn new(base: D, lo: f64, hi: f64) -> Result<Self, DistError> {
        if !(lo.is_finite() && hi.is_finite() && lo >= 0.0 && hi > lo) {
            return Err(DistError::BadTruncation { lo, hi });
        }
        let f_lo = base.cdf(lo);
        let mass = base.cdf(hi) - f_lo;
        if mass <= 1e-12 {
            return Err(DistError::BadTruncation { lo, hi });
        }
        // Mean and variance by numeric integration of the truncated tail
        // function: E[X] = lo + ∫_lo^hi (1 − F_T(u)) du for the shifted
        // variable; done directly on the truncated cdf below.
        let cdf_t = |x: f64| ((base.cdf(x) - f_lo) / mass).clamp(0.0, 1.0);
        let mean = lo + adaptive_simpson(|u| 1.0 - cdf_t(u), lo, hi, 1e-10);
        // E[X²] = lo² + 2 ∫_lo^hi u (1 − F_T(u)) du.
        let ex2 = lo * lo + 2.0 * adaptive_simpson(|u| u * (1.0 - cdf_t(u)), lo, hi, 1e-10);
        let variance = (ex2 - mean * mean).max(0.0);
        Ok(Self {
            base,
            lo,
            hi,
            f_lo,
            mass,
            mean,
            variance,
        })
    }

    /// The retained probability mass of the base distribution.
    pub fn retained_mass(&self) -> f64 {
        self.mass
    }

    /// Borrow the base distribution.
    pub fn base(&self) -> &D {
        &self.base
    }
}

impl<D: DurationDist> DurationDist for Truncated<D> {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            0.0
        } else {
            self.base.pdf(x) / self.mass
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            ((self.base.cdf(x) - self.f_lo) / self.mass).clamp(0.0, 1.0)
        }
    }

    fn cdf_integral(&self, y: f64) -> f64 {
        if y <= self.lo {
            return 0.0;
        }
        let y_in = y.min(self.hi);
        // ∫_lo^y F_T = (H_base(y) − H_base(lo) − (y − lo) F_base(lo)) / mass
        let inner = (self.base.cdf_integral(y_in)
            - self.base.cdf_integral(self.lo)
            - (y_in - self.lo) * self.f_lo)
            / self.mass;
        if y <= self.hi {
            inner
        } else {
            inner + (y - self.hi)
        }
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.variance
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Inverse transform through the base quantile: exact, no rejection
        // loop even for narrow windows.
        let u = self.f_lo + u01(rng) * self.mass;
        self.base.quantile(u.min(1.0)).clamp(self.lo, self.hi)
    }

    fn support_hint(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duration::numeric_cdf_integral;
    use crate::kinds::{Exponential, Gamma};
    use crate::rng::seeded;

    #[test]
    fn rejects_bad_windows() {
        let base = Exponential::with_mean(5.0).unwrap();
        assert!(Truncated::new(base, 3.0, 3.0).is_err());
        let base = Exponential::with_mean(5.0).unwrap();
        assert!(Truncated::new(base, -1.0, 3.0).is_err());
        let base = Exponential::with_mean(5.0).unwrap();
        // Window far in the tail holds no numerically measurable mass.
        assert!(Truncated::new(base, 400.0, 500.0).is_err());
    }

    #[test]
    fn cdf_spans_zero_to_one() {
        let t = Truncated::new(Gamma::paper_fig7(), 0.0, 120.0).unwrap();
        assert_eq!(t.cdf(0.0), 0.0);
        assert_eq!(t.cdf(120.0), 1.0);
        assert!(t.cdf(8.0) > 0.0 && t.cdf(8.0) < 1.0);
    }

    #[test]
    fn truncation_to_support_is_nearly_identity() {
        // Gamma(2,4) has mass ~1 − 3e-12 below 120; truncating changes
        // nothing measurable.
        let g = Gamma::paper_fig7();
        let t = Truncated::new(Gamma::paper_fig7(), 0.0, 120.0).unwrap();
        for &x in &[1.0, 8.0, 30.0, 100.0] {
            assert!((t.cdf(x) - g.cdf(x)).abs() < 1e-8, "x={x}");
            assert!((t.cdf_integral(x) - g.cdf_integral(x)).abs() < 1e-6);
        }
        assert!((t.mean() - 8.0).abs() < 1e-4);
    }

    #[test]
    fn cdf_integral_matches_numeric() {
        let t = Truncated::new(Exponential::with_mean(6.0).unwrap(), 2.0, 20.0).unwrap();
        for &y in &[1.0, 2.5, 10.0, 20.0, 35.0] {
            let analytic = t.cdf_integral(y);
            let numeric = numeric_cdf_integral(&t, y);
            assert!(
                (analytic - numeric).abs() < 1e-7,
                "y={y}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn samples_respect_window_and_law() {
        let t = Truncated::new(Exponential::with_mean(4.0).unwrap(), 1.0, 9.0).unwrap();
        let mut rng = seeded(21);
        let n = 100_000;
        let mut s = 0.0;
        let mut below4 = 0usize;
        for _ in 0..n {
            let x = t.sample(&mut rng);
            assert!((1.0..=9.0).contains(&x), "sample {x} out of window");
            s += x;
            if x <= 4.0 {
                below4 += 1;
            }
        }
        assert!((s / n as f64 - t.mean()).abs() < 0.03 * t.mean());
        assert!((below4 as f64 / n as f64 - t.cdf(4.0)).abs() < 0.01);
    }
}
