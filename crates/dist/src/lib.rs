//! # vod-dist — numerics and duration distributions
//!
//! Substrate crate for the VOD resource pre-allocation reproduction
//! (Leung, Lui & Golubchik, ICDE 1997). It provides everything the
//! analytic hit-probability model and the simulator need from
//! probability/numerics, implemented from scratch:
//!
//! * **Special functions** — [`special`]: `ln Γ`, regularized incomplete
//!   gamma `P(a,x)`/`Q(a,x)`, `erf`, the standard normal cdf.
//! * **Quadrature** — [`quad`]: adaptive Simpson, Gauss–Legendre, and
//!   breakpoint-aware integration for integrands with clamping kinks.
//! * **Root finding** — [`root`]: bisection and Brent.
//! * **Randomness** — [`rng`]: seeded reproducible RNG, uniform/normal/
//!   exponential primitives over `&mut dyn RngCore`.
//! * **Duration distributions** — [`DurationDist`] and the implementations
//!   in [`kinds`]: Exponential, Gamma, Uniform, Deterministic, Weibull,
//!   LogNormal, Mixture, Empirical (trace-fitted), and a Truncated
//!   adapter. Each exposes the cdf `F` **and** its running integral
//!   `H(y) = ∫₀^y F(u) du` in closed form — the two quantities the ICDE'97
//!   model is built from.
//! * **Specs** — [`spec`]: compact textual descriptions
//!   (`"gamma:shape=2,scale=4"`) used by experiment configs.
//!
//! ## Quick example
//!
//! ```
//! use vod_dist::{parse_spec, DurationDist};
//!
//! // The paper's Figure-7 VCR-duration law: skewed gamma, mean 8 minutes.
//! let d = parse_spec("gamma:shape=2,scale=4").unwrap();
//! assert!((d.mean() - 8.0).abs() < 1e-12);
//! // Probability a fast-forward sweeps at most 10 movie minutes:
//! let p = d.cdf(10.0);
//! assert!(p > 0.7 && p < 0.8);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

pub mod approx;
mod duration;
mod error;
pub mod fit;
pub mod kinds;
pub mod quad;
pub mod rng;
pub mod root;
pub mod spec;
pub mod special;

pub use approx::{approx_eq, approx_zero, exact_eq, exact_zero};
pub use duration::{numeric_cdf_integral, DurationDist};
pub use error::DistError;
pub use spec::{parse_spec, DistSpec};

#[cfg(test)]
mod trait_tests {
    //! Cross-cutting checks applied uniformly to every built-in kind.
    use super::*;
    use crate::rng::seeded;

    fn all_kinds() -> Vec<Box<dyn DurationDist>> {
        vec![
            Box::new(kinds::Exponential::with_mean(5.0).unwrap()),
            Box::new(kinds::Gamma::paper_fig7()),
            Box::new(kinds::Uniform::new(1.0, 9.0).unwrap()),
            Box::new(kinds::Deterministic::new(4.0).unwrap()),
            Box::new(kinds::Weibull::new(1.8, 6.0).unwrap()),
            Box::new(kinds::LogNormal::with_mean_cv(8.0, 0.6).unwrap()),
            Box::new(kinds::Truncated::new(kinds::Gamma::paper_fig7(), 0.0, 120.0).unwrap()),
            Box::new(
                kinds::Mixture::new(vec![
                    (
                        0.5,
                        Box::new(kinds::Exponential::with_mean(2.0).unwrap())
                            as Box<dyn DurationDist>,
                    ),
                    (0.5, Box::new(kinds::Gamma::new(4.0, 3.0).unwrap())),
                ])
                .unwrap(),
            ),
            Box::new(kinds::Empirical::from_samples(&[1.0, 2.0, 2.5, 4.0, 8.0, 16.0]).unwrap()),
        ]
    }

    #[test]
    fn cdf_monotone_in_unit_interval_everywhere() {
        for d in all_kinds() {
            let mut prev = 0.0;
            for i in 0..=600 {
                let x = i as f64 * 0.25;
                let f = d.cdf(x);
                assert!((0.0..=1.0).contains(&f), "{d:?} cdf({x}) = {f}");
                assert!(f + 1e-12 >= prev, "{d:?} cdf not monotone at {x}");
                prev = f;
            }
        }
    }

    #[test]
    fn cdf_integral_is_nondecreasing_and_lipschitz() {
        // H' = F ∈ [0,1] so H(y+δ) − H(y) ∈ [0, δ].
        for d in all_kinds() {
            let mut prev = 0.0;
            for i in 1..=400 {
                let y = i as f64 * 0.5;
                let h = d.cdf_integral(y);
                let dh = h - prev;
                assert!(
                    (-1e-9..=0.5 + 1e-9).contains(&dh),
                    "{d:?} H increment {dh} at y={y}"
                );
                prev = h;
            }
        }
    }

    #[test]
    fn cdf_integral_consistent_with_numeric_everywhere() {
        for d in all_kinds() {
            for &y in &[0.5, 2.0, 7.0, 30.0, 150.0] {
                let a = d.cdf_integral(y);
                let n = numeric_cdf_integral(d.as_ref(), y);
                assert!(
                    (a - n).abs() < 1e-5 * (1.0 + n.abs()),
                    "{d:?} y={y}: analytic {a} vs numeric {n}"
                );
            }
        }
    }

    #[test]
    fn samples_nonnegative_and_mean_consistent() {
        for d in all_kinds() {
            let mut rng = seeded(3);
            let n = 60_000;
            let mut s = 0.0;
            for _ in 0..n {
                let x = d.sample(&mut rng);
                assert!(x >= 0.0, "{d:?} sampled negative {x}");
                s += x;
            }
            let mean = s / n as f64;
            let want = d.mean();
            assert!(
                (mean - want).abs() < 0.05 * want.max(1.0),
                "{d:?}: sample mean {mean} vs analytic {want}"
            );
        }
    }

    #[test]
    fn quantile_median_consistent() {
        for d in all_kinds() {
            let m = d.quantile(0.5);
            let f = d.cdf(m);
            // Atomic laws can overshoot; allow cdf(median) >= 0.5 only.
            assert!(f >= 0.5 - 1e-9, "{d:?}: cdf(quantile(0.5)) = {f} < 0.5");
        }
    }
}
