//! Numerical quadrature.
//!
//! The analytic hit model reduces every probability to one-dimensional
//! integrals of smooth (piecewise-C¹) integrands built from a distribution's
//! cdf. Two integrators are provided:
//!
//! * [`adaptive_simpson`] — recursive adaptive Simpson with error control;
//!   the workhorse for model evaluation (integrands may have a few kinks
//!   from `min`/`max` clamping, which adaptivity handles well).
//! * [`gauss_legendre`] — fixed-order Gauss–Legendre panels; used where a
//!   predictable, allocation-free cost matters (benchmarks, inner loops).

/// Default relative/absolute tolerance used by the model.
pub const DEFAULT_TOL: f64 = 1e-10;

/// Default maximum recursion depth for adaptive Simpson. 2^40 subdivisions
/// is unreachable in practice; the depth cap guards against adversarial
/// integrands rather than normal use.
pub const DEFAULT_MAX_DEPTH: u32 = 40;

/// Minimum forced recursion depth. Piecewise-linear integrands (empirical
/// cdfs, clamped model integrands) can alias: the 5-point Richardson test
/// sees collinear samples around a kink and accepts a wrong panel. Forcing
/// the first levels to always subdivide bounds any single kink's error by
/// the width of a 1/2^MIN_DEPTH panel.
const MIN_DEPTH: u32 = 6;

/// Adaptive Simpson quadrature of `f` over `[a, b]`.
///
/// `tol` is an absolute error target for the whole interval; each recursion
/// halves the interval and splits the budget. Returns 0 for empty or
/// inverted intervals (`b <= a`), which is the convention the model relies
/// on when integration ranges are clamped empty.
pub fn adaptive_simpson<F: FnMut(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> f64 {
    adaptive_simpson_with_depth(f, a, b, tol, DEFAULT_MAX_DEPTH)
}

/// [`adaptive_simpson`] with an explicit recursion-depth cap.
///
/// The forced-subdivision guard (see [`MIN_DEPTH`](self)) counts levels
/// *elapsed from this entry point*, so it behaves identically at any
/// `max_depth` — including caps below [`DEFAULT_MAX_DEPTH`] (cheap bounded
/// integration) and above it.
pub fn adaptive_simpson_with_depth<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_depth: u32,
) -> f64 {
    if !interval_is_forward(a, b) {
        return 0.0;
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson_rule(a, b, fa, fm, fb);
    adaptive_step(
        &mut f,
        a,
        b,
        fa,
        fm,
        fb,
        whole,
        tol.max(f64::EPSILON),
        0,
        max_depth,
    )
}

/// True iff `[a, b]` is a non-empty forward interval (NaN endpoints and
/// empty/inverted ranges integrate to 0 by convention).
#[inline]
fn interval_is_forward(a: f64, b: f64) -> bool {
    matches!(b.partial_cmp(&a), Some(std::cmp::Ordering::Greater))
}

/// One Simpson's-rule panel over `[a, b]` given endpoint and midpoint values.
#[inline]
fn simpson_rule(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive_step<F: FnMut(f64) -> f64>(
    f: &mut F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    elapsed: u32,
    remaining: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson_rule(a, m, fa, flm, fm);
    let right = simpson_rule(m, b, fm, frm, fb);
    let delta = left + right - whole;
    // Richardson criterion: Simpson error shrinks ~15x per halving. The
    // MIN_DEPTH guard forces early levels to subdivide regardless, so a
    // kink cannot masquerade as convergence (see MIN_DEPTH docs). Forcing
    // is keyed on levels elapsed since the entry call, not on distance
    // from DEFAULT_MAX_DEPTH, so custom depth caps keep the guard.
    let forced = elapsed < MIN_DEPTH;
    if remaining == 0 || (!forced && delta.abs() <= 15.0 * tol) {
        left + right + delta / 15.0
    } else {
        let half_tol = 0.5 * tol;
        adaptive_step(
            f,
            a,
            m,
            fa,
            flm,
            fm,
            left,
            half_tol,
            elapsed + 1,
            remaining - 1,
        ) + adaptive_step(
            f,
            m,
            b,
            fm,
            frm,
            fb,
            right,
            half_tol,
            elapsed + 1,
            remaining - 1,
        )
    }
}

/// 16-point Gauss–Legendre: the 8 nodes below 1/2 on `[0, 1]` and their
/// weights (the other 8 nodes are the mirror images `1 − x` with the same
/// weights). Mapped from the standard symmetric nodes on `[-1, 1]` via
/// `x₀₁ = (1 + x)/2`, `w₀₁ = w/2`; the 16 weights sum to 1.
const GL16_X: [f64; 8] = [
    0.005_299_532_504_175_03,
    0.027_712_488_463_383_7,
    0.067_184_398_806_084_1,
    0.122_297_795_822_498_5,
    0.191_061_877_798_678_1,
    0.270_991_611_171_386_3,
    0.359_198_224_610_370_55,
    0.452_493_745_081_181_3,
];
const GL16_W: [f64; 8] = [
    0.013_576_229_705_877_05,
    0.031_126_761_969_323_95,
    0.047_579_255_841_246_4,
    0.062_314_485_627_766_95,
    0.074_797_994_408_288_35,
    0.084_578_259_697_501_25,
    0.091_301_707_522_461_8,
    0.094_725_305_227_534_25,
];

/// Fixed 16-point Gauss–Legendre quadrature of `f` over `[a, b]`.
///
/// Exact for polynomials of degree ≤ 31; for smooth integrands it reaches
/// near machine precision on moderate intervals. For integrands with kinks
/// use [`gauss_legendre_panels`] or [`adaptive_simpson`].
pub fn gauss_legendre<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64) -> f64 {
    if !interval_is_forward(a, b) {
        return 0.0;
    }
    let h = b - a;
    let mut acc = 0.0;
    // Symmetric nodes: x and 1-x share a weight.
    for i in 0..8 {
        let x = GL16_X[i];
        let w = GL16_W[i];
        acc += w * (f(a + h * x) + f(a + h * (1.0 - x)));
    }
    acc * h
}

/// Composite Gauss–Legendre over `panels` equal sub-intervals of `[a, b]`.
///
/// Useful when the integrand has a bounded number of kinks: with enough
/// panels each kink affects only one panel and convergence is restored.
pub fn gauss_legendre_panels<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, panels: usize) -> f64 {
    if !interval_is_forward(a, b) || panels == 0 {
        return 0.0;
    }
    let h = (b - a) / panels as f64;
    let mut acc = 0.0;
    for k in 0..panels {
        let lo = a + k as f64 * h;
        acc += gauss_legendre(&mut f, lo, lo + h);
    }
    acc
}

/// Integrate `f` over `[a, b]` splitting at the supplied interior
/// breakpoints (kink locations), using adaptive Simpson on each piece.
///
/// Breakpoints outside `(a, b)` are ignored; they need not be sorted.
pub fn integrate_with_breakpoints<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    breakpoints: &[f64],
    tol: f64,
) -> f64 {
    if !interval_is_forward(a, b) {
        return 0.0;
    }
    let mut cuts: Vec<f64> = breakpoints
        .iter()
        .copied()
        .filter(|&x| x > a && x < b)
        .collect();
    cuts.sort_by(|p, q| p.total_cmp(q));
    cuts.dedup();
    let mut lo = a;
    let mut acc = 0.0;
    let piece_tol = tol / (cuts.len() + 1) as f64;
    for &c in &cuts {
        acc += adaptive_simpson(&mut f, lo, c, piece_tol);
        lo = c;
    }
    acc + adaptive_simpson(&mut f, lo, b, piece_tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simpson_polynomial_exact() {
        // Simpson is exact for cubics even without adaptivity.
        let got = adaptive_simpson(|x| 3.0 * x * x, 0.0, 2.0, 1e-12);
        assert!((got - 8.0).abs() < 1e-12, "got {got}");
        let got = adaptive_simpson(|x| x * x * x - x, -1.0, 3.0, 1e-12);
        // ∫ x^3 - x over [-1,3] = [x^4/4 - x^2/2] = (81/4 - 9/2) - (1/4 - 1/2)
        let want = (81.0 / 4.0 - 4.5) - (0.25 - 0.5);
        assert!((got - want).abs() < 1e-10, "got {got} want {want}");
    }

    #[test]
    fn simpson_transcendental() {
        let got = adaptive_simpson(|x| x.exp(), 0.0, 1.0, 1e-12);
        assert!((got - (std::f64::consts::E - 1.0)).abs() < 1e-10);
        let got = adaptive_simpson(|x| x.sin(), 0.0, std::f64::consts::PI, 1e-12);
        assert!((got - 2.0).abs() < 1e-10);
    }

    #[test]
    fn simpson_empty_interval_is_zero() {
        assert_eq!(adaptive_simpson(|x| x, 1.0, 1.0, 1e-9), 0.0);
        assert_eq!(adaptive_simpson(|x| x, 2.0, 1.0, 1e-9), 0.0);
    }

    #[test]
    fn simpson_handles_kink() {
        // ∫₀² |x-1| dx = 1
        let got = adaptive_simpson(|x| (x - 1.0f64).abs(), 0.0, 2.0, 1e-11);
        assert!((got - 1.0).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn forced_subdivision_works_at_non_default_depth() {
        // A narrow spike (support [0.27, 0.33]) that every top-level
        // Simpson sample point misses: the Richardson test sees zeros
        // everywhere and would accept 0 unless the first MIN_DEPTH levels
        // are forced to subdivide. Keying forcing on
        // `DEFAULT_MAX_DEPTH - depth` (the old formula) disabled the guard
        // entirely for any entry depth ≤ DEFAULT_MAX_DEPTH − MIN_DEPTH.
        let spike = |x: f64| (1.0 - (x - 0.3f64).abs() / 0.03).max(0.0);
        let want = 0.03; // triangle area: ½ · 0.06 · 1
        for max_depth in [12u32, DEFAULT_MAX_DEPTH, 48] {
            let got = adaptive_simpson_with_depth(spike, 0.0, 1.0, 1e-10, max_depth);
            assert!(
                (got - want).abs() < 1e-6,
                "max_depth {max_depth}: got {got} want {want}"
            );
        }
    }

    #[test]
    fn depth_cap_bounds_work() {
        // With the cap below MIN_DEPTH the integrator still terminates and
        // degrades gracefully (coarse but finite answer).
        let got = adaptive_simpson_with_depth(|x: f64| x.exp(), 0.0, 1.0, 1e-12, 2);
        assert!(
            (got - (std::f64::consts::E - 1.0)).abs() < 1e-4,
            "got {got}"
        );
        // Depth 0: single Richardson-corrected panel, no recursion.
        let got = adaptive_simpson_with_depth(|x| 3.0 * x * x, 0.0, 2.0, 1e-12, 0);
        assert!((got - 8.0).abs() < 1e-12, "got {got}");
    }

    #[test]
    fn gauss_legendre_polynomial_exact() {
        // Degree-8 polynomial: 16-point GL is exact to machine precision.
        let got = gauss_legendre(|x| x.powi(8), 0.0, 1.0);
        assert!((got - 1.0 / 9.0).abs() < 1e-14, "got {got}");
    }

    #[test]
    fn gauss_legendre_matches_simpson_on_smooth() {
        let f = |x: f64| (1.0 + x * x).recip();
        let gl = gauss_legendre(f, 0.0, 1.0);
        let si = adaptive_simpson(f, 0.0, 1.0, 1e-12);
        let want = std::f64::consts::FRAC_PI_4; // arctan(1)
        assert!((gl - want).abs() < 1e-12);
        assert!((si - want).abs() < 1e-10);
    }

    #[test]
    fn panels_beat_single_on_kinky_integrand() {
        let f = |x: f64| (x - 0.37f64).abs();
        let want = 0.37f64.powi(2) / 2.0 + 0.63f64.powi(2) / 2.0;
        let many = gauss_legendre_panels(f, 0.0, 1.0, 64);
        assert!((many - want).abs() < 1e-6);
    }

    #[test]
    fn breakpoints_restore_accuracy() {
        let f = |x: f64| (x - 0.37f64).abs();
        let want = 0.37f64.powi(2) / 2.0 + 0.63f64.powi(2) / 2.0;
        let got = integrate_with_breakpoints(f, 0.0, 1.0, &[0.37], 1e-12);
        assert!((got - want).abs() < 1e-12, "got {got} want {want}");
    }

    #[test]
    fn breakpoints_outside_range_ignored() {
        let got = integrate_with_breakpoints(|x| x, 0.0, 1.0, &[-3.0, 5.0], 1e-12);
        assert!((got - 0.5).abs() < 1e-12);
    }
}
