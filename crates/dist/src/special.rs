//! Special functions needed by the analytic model: log-gamma, the
//! regularized incomplete gamma functions, and the error function family.
//!
//! All routines are implemented from scratch (Lanczos approximation, series
//! expansion, and modified Lentz continued fractions) with absolute accuracy
//! around `1e-13` on the parameter ranges the model exercises (shape
//! parameters well below 1e3, arguments below 1e6).

/// Machine-level floor used to keep continued-fraction denominators away
/// from zero (modified Lentz algorithm).
const TINY: f64 = 1e-300;

/// Relative tolerance for the incomplete-gamma series / continued fraction.
const EPS: f64 = 1e-15;

/// Maximum iterations for iterative expansions. The expansions converge in
/// tens of iterations for all sane inputs; hitting this cap indicates a
/// pathological argument and the best current estimate is returned.
const MAX_ITER: usize = 500;

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with `g = 7` and 9 coefficients, giving
/// close to machine precision over the positive real axis.
///
/// # Panics
/// Panics in debug builds if `x` is not finite and positive.
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x.is_finite() && x > 0.0, "ln_gamma domain: x > 0, got {x}");
    // Lanczos (g = 7, n = 9) coefficients.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function
/// `P(a, x) = γ(a, x) / Γ(a)` for `a > 0`, `x ≥ 0`.
///
/// `P(a, ·)` is the cdf of a Gamma(shape `a`, scale 1) random variable.
/// Chooses between the power series (fast for `x < a + 1`) and the
/// continued-fraction complement (for `x ≥ a + 1`).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0, "gamma_p domain: a > 0, got {a}");
    debug_assert!(x >= 0.0, "gamma_p domain: x >= 0, got {x}");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_contfrac(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0, "gamma_q domain: a > 0, got {a}");
    debug_assert!(x >= 0.0, "gamma_q domain: x >= 0, got {x}");
    if x <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_contfrac(a, x)
    }
}

/// Series expansion of P(a, x): `γ(a,x) = x^a e^{-x} Σ_{n≥0} x^n Γ(a)/Γ(a+1+n)`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    let log_prefix = a * x.ln() - x - ln_gamma(a);
    (sum * log_prefix.exp()).clamp(0.0, 1.0)
}

/// Continued fraction for Q(a, x) via the modified Lentz algorithm.
fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b.max(TINY);
    let mut h = d;
    for i in 1..MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    let log_prefix = a * x.ln() - x - ln_gamma(a);
    (h * log_prefix.exp()).clamp(0.0, 1.0)
}

/// Error function `erf(x)`, accurate to ~1e-13, via the incomplete gamma
/// identity `erf(x) = sgn(x) · P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if crate::approx::exact_zero(x) {
        0.0
    } else if x > 0.0 {
        gamma_p(0.5, x * x)
    } else {
        -gamma_p(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, computed without
/// cancellation for large positive `x`.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Standard normal probability density function `φ(x)`.
pub fn std_normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn ln_gamma_integers_match_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..=20u32 {
            assert!(
                close(ln_gamma(n as f64), fact.ln(), 1e-12),
                "ln_gamma({n}) = {} want {}",
                ln_gamma(n as f64),
                fact.ln()
            );
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-13
        ));
        // Γ(3/2) = √π / 2
        assert!(close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-13
        ));
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x)
        for &x in &[0.1, 0.7, 1.3, 2.9, 7.5, 33.3, 101.25] {
            assert!(
                close(ln_gamma(x + 1.0), x.ln() + ln_gamma(x), 1e-12),
                "recurrence failed at x={x}"
            );
        }
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x} (exponential cdf).
        for &x in &[0.0f64, 0.1, 1.0, 2.5, 10.0, 50.0] {
            let want = 1.0 - (-x).exp();
            assert!(close(gamma_p(1.0, x), want, 1e-13), "P(1,{x})");
        }
        // P(2, x) = 1 - (1+x) e^{-x} (Erlang-2 cdf).
        for &x in &[0.5f64, 1.0, 4.0, 12.0] {
            let want = 1.0 - (1.0 + x) * (-x).exp();
            assert!(close(gamma_p(2.0, x), want, 1e-12), "P(2,{x})");
        }
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &a in &[0.3, 1.0, 2.0, 5.5, 40.0] {
            for &x in &[0.01, 0.5, 1.0, 3.0, 10.0, 80.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!(close(s, 1.0, 1e-12), "P+Q != 1 at a={a}, x={x}: {s}");
            }
        }
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        for &a in &[0.5, 2.0, 8.0] {
            let mut prev = 0.0;
            for i in 0..200 {
                let x = i as f64 * 0.25;
                let p = gamma_p(a, x);
                assert!(p >= prev - 1e-14, "P({a},·) not monotone at x={x}");
                assert!((0.0..=1.0).contains(&p));
                prev = p;
            }
        }
    }

    #[test]
    fn erf_known_values() {
        // Abramowitz & Stegun reference values.
        assert!(close(erf(0.5), 0.520_499_877_813_046_5, 1e-10));
        assert!(close(erf(1.0), 0.842_700_792_949_714_9, 1e-10));
        assert!(close(erf(2.0), 0.995_322_265_018_952_7, 1e-10));
        assert!(close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10));
    }

    #[test]
    fn normal_cdf_symmetry_and_tails() {
        assert!(close(std_normal_cdf(0.0), 0.5, 1e-14));
        for &x in &[0.5, 1.0, 2.0, 5.0] {
            let s = std_normal_cdf(x) + std_normal_cdf(-x);
            assert!(close(s, 1.0, 1e-12));
        }
        assert!(std_normal_cdf(-10.0) < 1e-20);
        // 1 − Φ(10) ≈ 7.6e-24 underflows against 1.0 in f64; equality with
        // 1.0 (not an approach to it) is the correct double-precision
        // answer here.
        assert_eq!(std_normal_cdf(10.0), 1.0);
        // Φ(1.96) ≈ 0.975 (the classic 95% two-sided z).
        assert!((std_normal_cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-9);
    }
}
