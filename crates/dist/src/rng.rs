//! Randomness helpers.
//!
//! Distribution sampling takes a `&mut dyn RngCore` so that trait objects of
//! [`crate::DurationDist`] stay object-safe; these helpers derive uniform
//! and normal variates from the raw 64-bit stream.

use rand::RngCore;
use rand::SeedableRng;

/// Deterministic RNG used across the workspace for reproducible
/// experiments. A thin re-export keeps callers independent of the exact
/// generator choice.
pub type SeededRng = rand::rngs::StdRng;

/// Construct the workspace's deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> SeededRng {
    SeededRng::seed_from_u64(seed)
}

/// Uniform variate on `[0, 1)` with 53 bits of precision.
#[inline]
pub fn u01(rng: &mut dyn RngCore) -> f64 {
    // Take the top 53 bits; this yields every representable multiple of
    // 2^-53 in [0, 1) with equal probability.
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform variate on the *open* interval `(0, 1)`; safe to pass to `ln`.
#[inline]
pub fn u01_open(rng: &mut dyn RngCore) -> f64 {
    loop {
        let u = u01(rng);
        if u > 0.0 {
            return u;
        }
    }
}

/// Standard normal variate via the Marsaglia polar method.
pub fn std_normal(rng: &mut dyn RngCore) -> f64 {
    loop {
        let u = 2.0 * u01(rng) - 1.0;
        let v = 2.0 * u01(rng) - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Exponential variate with the given mean, by inversion.
pub fn exponential(rng: &mut dyn RngCore, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    -mean * u01_open(rng).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u01_in_range_and_varied() {
        let mut rng = seeded(7);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..10_000 {
            let u = u01(&mut rng);
            assert!((0.0..1.0).contains(&u));
            min = min.min(u);
            max = max.max(u);
        }
        assert!(min < 0.01 && max > 0.99, "poor spread: [{min}, {max}]");
    }

    #[test]
    fn std_normal_moments() {
        let mut rng = seeded(42);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let z = std_normal(&mut rng);
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = seeded(1);
        let n = 200_000;
        let mean_target = 8.0;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, mean_target)).sum();
        let mean = sum / n as f64;
        assert!((mean - mean_target).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn seeded_is_reproducible() {
        let mut a = seeded(123);
        let mut b = seeded(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
