//! Error type for distribution construction and spec parsing.

/// Errors produced when constructing or parsing a distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A numeric parameter violated its domain requirement.
    InvalidParameter {
        /// Parameter name as it appears in the constructor/spec.
        name: String,
        /// The offending value.
        value: f64,
        /// Human-readable domain requirement, e.g. `"finite and > 0"`.
        requirement: &'static str,
    },
    /// A mixture or empirical distribution was given no components/samples.
    Empty(&'static str),
    /// Mixture weights do not form a usable probability vector.
    BadWeights(String),
    /// A textual distribution spec could not be parsed.
    ParseError(String),
    /// Truncation bounds are inverted or capture no probability mass.
    BadTruncation {
        /// Requested lower bound.
        lo: f64,
        /// Requested upper bound.
        hi: f64,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(f, "parameter `{name}` = {value} must be {requirement}"),
            DistError::Empty(what) => write!(f, "{what} must not be empty"),
            DistError::BadWeights(msg) => write!(f, "bad mixture weights: {msg}"),
            DistError::ParseError(msg) => write!(f, "cannot parse distribution spec: {msg}"),
            DistError::BadTruncation { lo, hi } => {
                write!(f, "bad truncation bounds [{lo}, {hi}]")
            }
        }
    }
}

impl std::error::Error for DistError {}
