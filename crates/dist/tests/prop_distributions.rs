//! Property-based tests of the distribution substrate: every kind must
//! satisfy the `DurationDist` contract for arbitrary valid parameters.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use proptest::prelude::*;

use vod_dist::kinds::{Deterministic, Exponential, Gamma, LogNormal, Truncated, Uniform, Weibull};
use vod_dist::rng::seeded;
use vod_dist::{numeric_cdf_integral, DurationDist};

/// Strategy producing an arbitrary valid distribution (boxed).
fn any_dist() -> impl Strategy<Value = Box<dyn DurationDist>> {
    prop_oneof![
        (0.1f64..50.0)
            .prop_map(|m| Box::new(Exponential::with_mean(m).unwrap()) as Box<dyn DurationDist>),
        ((0.2f64..10.0), (0.2f64..20.0))
            .prop_map(|(k, s)| Box::new(Gamma::new(k, s).unwrap()) as Box<dyn DurationDist>),
        ((0.0f64..20.0), (0.1f64..30.0)).prop_map(|(lo, w)| Box::new(
            Uniform::new(lo, lo + w).unwrap()
        ) as Box<dyn DurationDist>),
        (0.0f64..40.0)
            .prop_map(|v| Box::new(Deterministic::new(v).unwrap()) as Box<dyn DurationDist>),
        ((0.3f64..5.0), (0.5f64..20.0))
            .prop_map(|(k, s)| Box::new(Weibull::new(k, s).unwrap()) as Box<dyn DurationDist>),
        ((0.5f64..30.0), (0.1f64..1.5))
            .prop_map(|(m, cv)| Box::new(LogNormal::with_mean_cv(m, cv).unwrap())
                as Box<dyn DurationDist>),
        ((0.2f64..10.0), (0.5f64..40.0), (5.0f64..200.0)).prop_map(|(k, s, hi)| {
            Box::new(Truncated::new(Gamma::new(k, s).unwrap(), 0.0, hi).unwrap())
                as Box<dyn DurationDist>
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cdf_is_a_cdf(d in any_dist(), xs in proptest::collection::vec(0.0f64..300.0, 8)) {
        let mut xs = xs;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &x in &xs {
            let f = d.cdf(x);
            prop_assert!((0.0..=1.0).contains(&f), "{d:?} cdf({x}) = {f}");
            prop_assert!(f >= prev - 1e-12, "{d:?} cdf not monotone at {x}");
            prev = f;
        }
        prop_assert_eq!(d.cdf(-1.0), 0.0);
    }

    #[test]
    fn cdf_integral_is_lipschitz_primitive(d in any_dist(), y in 0.0f64..200.0, dy in 0.0f64..20.0) {
        // H' = F ∈ [0, 1]: increments bounded by interval length.
        let a = d.cdf_integral(y);
        let b = d.cdf_integral(y + dy);
        prop_assert!(a >= -1e-12);
        prop_assert!(b - a >= -1e-9, "{d:?}: H decreasing");
        prop_assert!(b - a <= dy + 1e-9, "{d:?}: H slope above 1");
    }

    #[test]
    fn cdf_integral_matches_numeric(d in any_dist(), y in 0.1f64..150.0) {
        let analytic = d.cdf_integral(y);
        let numeric = numeric_cdf_integral(d.as_ref(), y);
        prop_assert!(
            (analytic - numeric).abs() < 2e-5 * (1.0 + numeric.abs()),
            "{d:?} y={y}: analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn quantile_is_generalized_inverse(d in any_dist(), p in 0.01f64..0.99) {
        let x = d.quantile(p);
        prop_assert!(x >= 0.0);
        // cdf(quantile(p)) >= p, with equality for continuous laws.
        prop_assert!(d.cdf(x) >= p - 1e-6, "{d:?} p={p} x={x} cdf={}", d.cdf(x));
        // And quantile is the *smallest* such point (allow atoms slack).
        if x > 1e-9 {
            prop_assert!(
                d.cdf(x * (1.0 - 1e-6) - 1e-9) <= p + 1e-6,
                "{d:?}: quantile overshoots"
            );
        }
    }

    #[test]
    fn samples_lie_in_support_and_respect_median(d in any_dist(), seed in 0u64..1000) {
        let mut rng = seeded(seed);
        let median = d.quantile(0.5);
        let n = 400;
        let below = (0..n)
            .map(|_| d.sample(&mut rng))
            .filter(|&x| {
                assert!(x >= 0.0, "{d:?} sampled negative");
                x <= median
            })
            .count();
        // Crude binomial bound: 400 draws, p=0.5 → k within [120, 280]
        // except with probability < 1e-15 (atoms can push one-sided).
        let frac = below as f64 / n as f64;
        prop_assert!(
            (0.3..=1.0).contains(&frac) || d.variance() == 0.0,
            "{d:?}: {below}/{n} below median {median}"
        );
    }
}
