//! Per-backend resource envelopes for the Eq. 23 cost model.
//!
//! The paper prices a provisioning as `C = C_n(φ·ΣB + Σn)` — buffer
//! minutes at `φ` stream-equivalents each, plus streams. That formula is
//! scheme-agnostic; what each delivery backend changes is *which* `ΣB`
//! and `Σn` it needs for the same catalog and startup-wait promise:
//!
//! * **Batching + buffering** — the plan's `Σn` restart streams plus the
//!   VCR reserve, and the full partition budget `ΣB`.
//! * **Pyramid broadcast** — per movie, `k` permanent channel streams
//!   (smallest `k` whose segment-1 period meets the movie's wait
//!   target) plus the VCR reserve; server buffer is one staging segment
//!   per channel. Client-side buffer (up to
//!   [`PyramidGeometry::client_buffer_bound`]) is *not* priced — the
//!   paper's cost model prices the server, and that asymmetry is the
//!   scheme's entire appeal.
//! * **Dedicated streams** — the same stream pool with zero buffer; the
//!   pool bounds concurrent viewers instead of restarts.

use vod_runtime::{BackendKind, PyramidGeometry};

use crate::cost::ResourceCost;

/// One backend's provisioning envelope, ready to price with
/// [`ResourceCost::total`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendResources {
    /// Which scheme this envelope provisions.
    pub backend: BackendKind,
    /// Server buffer `ΣB` in movie-minutes (= segments).
    pub buffer_minutes: f64,
    /// I/O streams `Σn` (restart/channel/unicast streams + any reserve).
    pub streams: u32,
    /// Worst-case client buffer demand in movie-minutes (0 for the
    /// server-buffered schemes; informational — not priced by Eq. 23).
    pub client_buffer_minutes: u32,
}

impl BackendResources {
    /// The batching + buffering envelope: `streams` restart streams plus
    /// `vcr_reserve`, and the full partition budget.
    pub fn batching_buffering(buffer_minutes: f64, streams: u32, vcr_reserve: u32) -> Self {
        Self {
            backend: BackendKind::BatchingBuffering,
            buffer_minutes,
            streams: streams.saturating_add(vcr_reserve),
            client_buffer_minutes: 0,
        }
    }

    /// The pyramid envelope for a catalog of `(length, max_wait)` movie
    /// targets: per movie, the smallest channel count whose segment-1
    /// period is ≤ its wait target; one staging segment per channel;
    /// the shared `vcr_reserve` on top for FF-beyond-front service.
    pub fn pyramid_broadcast(movies: &[(u32, f64)], vcr_reserve: u32) -> Self {
        let mut channels: u32 = 0;
        let mut client_bound: u32 = 0;
        for &(length, max_wait) in movies {
            let g = PyramidGeometry::from_continuous(f64::from(length), max_wait);
            channels = channels.saturating_add(g.channels());
            client_bound = client_bound.max(g.client_buffer_bound());
        }
        Self {
            backend: BackendKind::PyramidBroadcast,
            buffer_minutes: f64::from(channels),
            streams: channels.saturating_add(vcr_reserve),
            client_buffer_minutes: client_bound,
        }
    }

    /// The pure-unicast envelope: `streams` private streams, no buffer.
    pub fn dedicated_stream(streams: u32) -> Self {
        Self {
            backend: BackendKind::DedicatedStream,
            buffer_minutes: 0.0,
            streams,
            client_buffer_minutes: 0,
        }
    }

    /// Price this envelope under Eq. 23.
    pub fn cost(&self, prices: &ResourceCost) -> f64 {
        prices.total(self.buffer_minutes, self.streams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prices() -> ResourceCost {
        ResourceCost::from_phi(10.7).unwrap()
    }

    #[test]
    fn batching_envelope_prices_buffer_and_reserve() {
        let r = BackendResources::batching_buffering(100.0, 20, 8);
        assert_eq!(r.streams, 28);
        assert_eq!(r.client_buffer_minutes, 0);
        let c = r.cost(&prices());
        assert!((c - (10.7 * 100.0 + 28.0)).abs() < 1e-9);
    }

    #[test]
    fn pyramid_envelope_is_channel_counted() {
        // l = 120, wait ≤ 8 ⇒ k = 4 (d = 8); two identical movies.
        let r = BackendResources::pyramid_broadcast(&[(120, 8.0), (120, 8.0)], 5);
        assert_eq!(r.buffer_minutes, 8.0, "one staging segment per channel");
        assert_eq!(r.streams, 13);
        // Client bound: start of the last segment = d(2^{k−1} − 1) = 56.
        assert_eq!(r.client_buffer_minutes, 56);
    }

    #[test]
    fn dedicated_envelope_has_no_buffer_term() {
        let r = BackendResources::dedicated_stream(60);
        let c = r.cost(&prices());
        assert!((c - 60.0).abs() < 1e-9, "pure stream cost, got {c}");
    }

    #[test]
    fn pyramid_beats_unicast_on_big_audiences() {
        // One 120-minute movie, wait target 8: pyramid needs 4 channels
        // forever; unicast needs one stream per concurrent viewer — at 60
        // viewers the broadcast envelope is already an order cheaper.
        let p = BackendResources::pyramid_broadcast(&[(120, 8.0)], 4);
        let d = BackendResources::dedicated_stream(60);
        assert!(p.cost(&prices()) < d.cost(&prices()));
    }
}
