//! Per-movie sizing specification.

use std::sync::Arc;

use vod_dist::DurationDist;
use vod_model::{p_hit, ModelError, ModelOptions, Rates, SystemParams, VcrDists, VcrMix};

/// Everything the sizing machinery needs to know about one popular movie:
/// its length, the quality-of-service targets (`w_i`, `P_i*`), and the VCR
/// behavior of its audience.
#[derive(Clone)]
pub struct MovieSpec {
    /// Display name used in reports.
    pub name: String,
    /// Movie length `l_i` in minutes.
    pub length: f64,
    /// Maximum batching wait `w_i` in minutes (QoS requirement).
    pub max_wait: f64,
    /// Minimum acceptable hit probability `P_i*` (QoS requirement).
    pub target_hit: f64,
    /// VCR request type mix.
    pub mix: VcrMix,
    /// VCR duration distribution (applied to all three VCR types; see
    /// [`MovieSpec::with_dists`] for per-type laws).
    pub dist: Arc<dyn DurationDist>,
    /// Optional per-type overrides `(ff, rw, pause)`.
    per_type: Option<[Arc<dyn DurationDist>; 3]>,
    /// Display rates.
    pub rates: Rates,
}

impl std::fmt::Debug for MovieSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MovieSpec")
            .field("name", &self.name)
            .field("length", &self.length)
            .field("max_wait", &self.max_wait)
            .field("target_hit", &self.target_hit)
            .field("mix", &self.mix)
            .field("dist", &self.dist)
            .finish_non_exhaustive()
    }
}

impl MovieSpec {
    /// Construct a spec with a single duration law for all VCR types.
    pub fn new(
        name: impl Into<String>,
        length: f64,
        max_wait: f64,
        target_hit: f64,
        mix: VcrMix,
        dist: Arc<dyn DurationDist>,
        rates: Rates,
    ) -> Result<Self, ModelError> {
        if !(length.is_finite() && length > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "length",
                value: length,
                requirement: "finite and > 0",
            });
        }
        if !(max_wait.is_finite() && max_wait > 0.0 && max_wait <= length) {
            return Err(ModelError::InvalidParameter {
                name: "max_wait",
                value: max_wait,
                requirement: "finite, > 0 and <= length",
            });
        }
        if !(target_hit.is_finite() && (0.0..=1.0).contains(&target_hit)) {
            return Err(ModelError::InvalidParameter {
                name: "target_hit",
                value: target_hit,
                requirement: "in [0, 1]",
            });
        }
        Ok(Self {
            name: name.into(),
            length,
            max_wait,
            target_hit,
            mix,
            dist,
            per_type: None,
            rates,
        })
    }

    /// Override the duration law per VCR type.
    pub fn with_dists(
        mut self,
        ff: Arc<dyn DurationDist>,
        rw: Arc<dyn DurationDist>,
        pause: Arc<dyn DurationDist>,
    ) -> Self {
        self.per_type = Some([ff, rw, pause]);
        self
    }

    /// Streams needed under *pure batching* (`B = 0`): `⌈l/w⌉` restarts to
    /// meet the wait bound (paper §5: movie set of Example 1 needs 1230).
    pub fn pure_batching_streams(&self) -> u32 {
        (self.length / self.max_wait).ceil() as u32
    }

    /// Largest stream count for which the buffer is still non-negative
    /// (`n ≤ l/w`, Eq. 2); equals the pure-batching stream count when l/w
    /// is integral.
    pub fn max_streams(&self) -> u32 {
        (self.length / self.max_wait).floor().max(1.0) as u32
    }

    /// Buffer minutes implied by `n` streams at this movie's wait bound
    /// (Eq. 2): `B = l − n·w`.
    pub fn buffer_for_streams(&self, n: u32) -> f64 {
        (self.length - n as f64 * self.max_wait).max(0.0)
    }

    /// Build the model parameters for a given stream count.
    pub fn params_for_streams(&self, n: u32) -> Result<SystemParams, ModelError> {
        SystemParams::new(self.length, self.buffer_for_streams(n), n, self.rates)
    }

    /// Evaluate `P(hit)` at `n` streams (Eq. 22 with this movie's mix).
    pub fn hit_probability(&self, n: u32, opts: &ModelOptions) -> Result<f64, ModelError> {
        let params = self.params_for_streams(n)?;
        let dists = match &self.per_type {
            Some([ff, rw, pa]) => VcrDists {
                ff: ff.as_ref(),
                rw: rw.as_ref(),
                pause: pa.as_ref(),
            },
            None => VcrDists::uniform(self.dist.as_ref()),
        };
        Ok(p_hit(&params, &dists, &self.mix, opts).total)
    }
}

/// The three-movie configuration of the paper's Example 1 / Figures 8–9.
///
/// * movie 1: l=75,  w=0.1,  durations ~ Gamma(2, 4)  (mean 8)
/// * movie 2: l=60,  w=0.5,  durations ~ Exp(mean 5)
/// * movie 3: l=90,  w=0.25, durations ~ Exp(mean 2)
///
/// all with `P* = 0.5`. The paper does not state the VCR mix used for the
/// example; `mix` parameterizes it (EXPERIMENTS.md uses the Figure-7d mix).
pub fn example1_movies(mix: VcrMix) -> Vec<MovieSpec> {
    use vod_dist::kinds::{Exponential, Gamma};
    let rates = Rates::paper();
    vec![
        MovieSpec::new(
            "movie-1",
            75.0,
            0.1,
            0.5,
            mix,
            // vod-lint: allow(no-panic) — fixed Example 1 paper constants.
            Arc::new(Gamma::new(2.0, 4.0).expect("valid constants")),
            rates,
        )
        // vod-lint: allow(no-panic) — fixed Example 1 paper constants.
        .expect("valid constants"),
        MovieSpec::new(
            "movie-2",
            60.0,
            0.5,
            0.5,
            mix,
            // vod-lint: allow(no-panic) — fixed Example 1 paper constants.
            Arc::new(Exponential::with_mean(5.0).expect("valid constants")),
            rates,
        )
        // vod-lint: allow(no-panic) — fixed Example 1 paper constants.
        .expect("valid constants"),
        MovieSpec::new(
            "movie-3",
            90.0,
            0.25,
            0.5,
            mix,
            // vod-lint: allow(no-panic) — fixed Example 1 paper constants.
            Arc::new(Exponential::with_mean(2.0).expect("valid constants")),
            rates,
        )
        // vod-lint: allow(no-panic) — fixed Example 1 paper constants.
        .expect("valid constants"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_dist::kinds::Exponential;

    #[test]
    fn example1_pure_batching_totals_1230() {
        // Paper §5: 75/0.1 + 60/0.5 + 90/0.25 = 750 + 120 + 360 = 1230.
        let movies = example1_movies(VcrMix::ff_only());
        let total: u32 = movies.iter().map(|m| m.pure_batching_streams()).sum();
        assert_eq!(total, 1230);
    }

    #[test]
    fn buffer_stream_tradeoff() {
        let movies = example1_movies(VcrMix::ff_only());
        let m1 = &movies[0];
        // Example 1's reported optimum for movie 1: (B, n) = (39, 360).
        assert!((m1.buffer_for_streams(360) - 39.0).abs() < 1e-9);
        // And movie 3: (44.5, 182).
        assert!((movies[2].buffer_for_streams(182) - 44.5).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        let d: Arc<dyn DurationDist> = Arc::new(Exponential::with_mean(5.0).unwrap());
        let mk = |l, w, p| {
            MovieSpec::new(
                "x",
                l,
                w,
                p,
                VcrMix::ff_only(),
                Arc::clone(&d),
                Rates::paper(),
            )
        };
        assert!(mk(0.0, 0.5, 0.5).is_err());
        assert!(mk(60.0, 0.0, 0.5).is_err());
        assert!(mk(60.0, 61.0, 0.5).is_err());
        assert!(mk(60.0, 0.5, 1.5).is_err());
        assert!(mk(60.0, 0.5, 0.5).is_ok());
    }

    #[test]
    fn hit_probability_decreases_with_streams_at_fixed_wait() {
        // At fixed w the window fraction (1 − wn/l) shrinks with n, so
        // P(hit) should fall; the sizing solver relies on this shape.
        let d: Arc<dyn DurationDist> = Arc::new(Exponential::with_mean(5.0).unwrap());
        let m = MovieSpec::new(
            "x",
            60.0,
            0.5,
            0.5,
            VcrMix::paper_fig7d(),
            d,
            Rates::paper(),
        )
        .unwrap();
        let opts = ModelOptions::default();
        let p20 = m.hit_probability(20, &opts).unwrap();
        let p60 = m.hit_probability(60, &opts).unwrap();
        let p110 = m.hit_probability(110, &opts).unwrap();
        assert!(p20 > p60 && p60 > p110, "{p20} {p60} {p110}");
    }
}
