//! Error type for sizing and allocation.

use vod_model::ModelError;

/// Errors produced by the sizing machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum SizingError {
    /// An underlying model-parameter error.
    Model(ModelError),
    /// The allocation problem contains no movies.
    NoMovies,
    /// A movie cannot reach its target hit probability even with maximum
    /// buffer (`n = 1`).
    UnsatisfiableMovie {
        /// Name of the offending movie.
        movie: String,
    },
    /// Fewer streams than movies: every movie needs at least one stream.
    StreamBudgetTooSmall {
        /// Minimum streams needed (the movie count).
        needed: u32,
        /// Streams available.
        available: u32,
    },
    /// The minimum feasible total buffer exceeds the buffer budget.
    BufferBudgetTooSmall {
        /// Minimum buffer minutes needed.
        needed: f64,
        /// Buffer minutes available.
        available: f64,
    },
    /// A cost parameter violated its domain.
    InvalidCost {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A federation split asked for zero shards, or more shards than
    /// movies (every shard must host at least one movie).
    ShardCountInvalid {
        /// Requested shard count.
        shards: u32,
        /// Movies available to place.
        movies: u32,
    },
}

impl std::fmt::Display for SizingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SizingError::Model(e) => write!(f, "model error: {e}"),
            SizingError::NoMovies => write!(f, "allocation problem has no movies"),
            SizingError::UnsatisfiableMovie { movie } => write!(
                f,
                "movie `{movie}` cannot meet its hit-probability target at any stream count"
            ),
            SizingError::StreamBudgetTooSmall { needed, available } => write!(
                f,
                "stream budget {available} below minimum {needed} (one per movie)"
            ),
            SizingError::BufferBudgetTooSmall { needed, available } => write!(
                f,
                "buffer budget {available} min below minimum feasible {needed} min"
            ),
            SizingError::InvalidCost { name, value } => {
                write!(
                    f,
                    "cost parameter `{name}` = {value} must be finite and > 0"
                )
            }
            SizingError::ShardCountInvalid { shards, movies } => write!(
                f,
                "shard count {shards} invalid for {movies} movies (need 1 ≤ shards ≤ movies)"
            ),
        }
    }
}

impl std::error::Error for SizingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SizingError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SizingError {
    fn from(e: ModelError) -> Self {
        SizingError::Model(e)
    }
}
