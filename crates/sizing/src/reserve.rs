//! VCR reserve sizing — an extension the paper motivates but leaves to
//! its reference [8] (Dey-Sircar et al., "Providing VCR Capabilities in
//! Large-Scale Video Servers"): how many I/O streams must be *reserved*
//! for VCR service so that interactive requests are rarely denied?
//!
//! Dedicated-stream holds form an Erlang loss system: requests arrive at
//! rate `λ_vcr`, hold a stream for phase 1 plus — after a miss — the
//! residual playback, and are denied when all `c` reserved streams are
//! busy. The hit probability from the analytic model enters through the
//! expected hold time:
//!
//! ```text
//! E[hold] = E[phase1] + (1 − P(hit)) · E[residual]
//! offered load a = λ_vcr · E[hold]        (Erlangs)
//! P[deny] = ErlangB(c, a)
//! ```
//!
//! This closes the paper's resource loop quantitatively: raising `P(hit)`
//! (more buffer) directly shrinks the reserve needed for a given denial
//! target — the mechanism behind §5's cost-effectiveness argument.

use crate::SizingError;

/// Erlang-B blocking probability for `servers` servers at `offered_load`
/// Erlangs, via the numerically stable recurrence
/// `B(0) = 1`, `B(k) = a·B(k−1) / (k + a·B(k−1))`.
pub fn erlang_b(servers: u32, offered_load: f64) -> f64 {
    assert!(
        offered_load.is_finite() && offered_load >= 0.0,
        "offered load must be non-negative"
    );
    if vod_dist::exact_zero(offered_load) {
        return if servers == 0 { 1.0 } else { 0.0 };
    }
    let mut b = 1.0;
    for k in 1..=servers {
        b = offered_load * b / (k as f64 + offered_load * b);
    }
    b
}

/// Ingredients of the VCR offered load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VcrLoad {
    /// VCR operations per minute across the movie's viewers (`λ_vcr`).
    pub ops_per_minute: f64,
    /// Mean dedicated-stream minutes during the operation itself
    /// (phase 1; pauses contribute 0).
    pub mean_phase1: f64,
    /// Mean minutes a *missed* resume holds its stream afterwards (until
    /// movie end or a later hit/piggyback merge).
    pub mean_miss_hold: f64,
    /// The modelled resume hit probability.
    pub p_hit: f64,
}

impl VcrLoad {
    /// Offered load in Erlangs.
    pub fn offered_erlangs(&self) -> f64 {
        self.ops_per_minute * (self.mean_phase1 + (1.0 - self.p_hit) * self.mean_miss_hold)
    }
}

/// Smallest reserve size whose Erlang-B blocking is at most
/// `target_denial`. Errors on a non-probability target.
pub fn size_vcr_reserve(load: &VcrLoad, target_denial: f64) -> Result<u32, SizingError> {
    if !(target_denial.is_finite() && 0.0 < target_denial && target_denial < 1.0) {
        return Err(SizingError::InvalidCost {
            name: "target_denial",
            value: target_denial,
        });
    }
    let a = load.offered_erlangs();
    let mut c = 0u32;
    // Erlang-B decreases monotonically in c and → 0; the loop terminates
    // near a + O(√a) for any sane target.
    while erlang_b(c, a) > target_denial {
        c += 1;
        if c > 1_000_000 {
            break; // unreachable for finite loads; guards against NaN creep
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_b_known_values() {
        // Classic table entries.
        assert!((erlang_b(1, 1.0) - 0.5).abs() < 1e-12);
        assert!((erlang_b(2, 1.0) - 0.2).abs() < 1e-12);
        assert!((erlang_b(3, 1.0) - 1.0 / 16.0).abs() < 1e-12);
        // B(c, a) for c = 0 is 1 (no servers: always blocked).
        assert_eq!(erlang_b(0, 5.0), 1.0);
        assert_eq!(erlang_b(0, 0.0), 1.0);
        assert_eq!(erlang_b(4, 0.0), 0.0);
    }

    #[test]
    fn erlang_b_monotone() {
        // Decreasing in servers, increasing in load.
        for &a in &[0.5, 2.0, 10.0] {
            let mut prev = 1.0;
            for c in 0..40 {
                let b = erlang_b(c, a);
                assert!(b <= prev + 1e-15, "a={a} c={c}");
                assert!((0.0..=1.0).contains(&b));
                prev = b;
            }
        }
        assert!(erlang_b(5, 2.0) < erlang_b(5, 4.0));
    }

    #[test]
    fn offered_load_shrinks_with_hit_probability() {
        let lo_hit = VcrLoad {
            ops_per_minute: 2.0,
            mean_phase1: 2.0,
            mean_miss_hold: 30.0,
            p_hit: 0.2,
        };
        let hi_hit = VcrLoad {
            p_hit: 0.9,
            ..lo_hit
        };
        assert!(hi_hit.offered_erlangs() < lo_hit.offered_erlangs());
        // Exact: 2·(2 + 0.8·30) = 52 vs 2·(2 + 0.1·30) = 10.
        assert!((lo_hit.offered_erlangs() - 52.0).abs() < 1e-12);
        assert!((hi_hit.offered_erlangs() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn reserve_sizing_meets_target() {
        let load = VcrLoad {
            ops_per_minute: 1.0,
            mean_phase1: 3.0,
            mean_miss_hold: 40.0,
            p_hit: 0.6,
        };
        let c = size_vcr_reserve(&load, 0.01).unwrap();
        assert!(erlang_b(c, load.offered_erlangs()) <= 0.01);
        if c > 0 {
            assert!(
                erlang_b(c - 1, load.offered_erlangs()) > 0.01,
                "not minimal"
            );
        }
        // Better hit probability ⇒ smaller reserve.
        let better = VcrLoad { p_hit: 0.9, ..load };
        assert!(size_vcr_reserve(&better, 0.01).unwrap() < c);
    }

    #[test]
    fn bad_targets_rejected() {
        let load = VcrLoad {
            ops_per_minute: 1.0,
            mean_phase1: 1.0,
            mean_miss_hold: 1.0,
            p_hit: 0.5,
        };
        assert!(size_vcr_reserve(&load, 0.0).is_err());
        assert!(size_vcr_reserve(&load, 1.0).is_err());
        assert!(size_vcr_reserve(&load, f64::NAN).is_err());
    }
}
