//! # vod-sizing — resource pre-allocation and system sizing
//!
//! Applies the analytic hit model (`vod-model`) to the paper's §5
//! questions: *given stream and buffer budgets, how should they be split
//! across a catalog of popular movies so that every movie meets its
//! maximum-wait and minimum-hit-probability targets at minimum cost?*
//!
//! * [`MovieSpec`] — one movie's length, QoS targets, and VCR behavior.
//! * [`feasible`](scan_by_streams) — feasible `(B, n)` sets (Figure 8).
//! * [`allocate_min_buffer`] / [`allocate_min_cost`] — the §5 Step-3
//!   optimizer (Example 1).
//! * [`ResourceCost`] / [`HardwareSpec`] — Eq. 23 and Example 2's price
//!   derivation.
//! * [`cost_curve`] — Figure 9's cost-vs-streams curves and their optima.
//!
//! ```no_run
//! use vod_model::{ModelOptions, VcrMix};
//! use vod_sizing::{allocate_min_buffer, example1_movies, Budgets};
//!
//! let movies = example1_movies(VcrMix::paper_fig7d());
//! let plan = allocate_min_buffer(
//!     &movies,
//!     Budgets { streams: 1230, buffer: None },
//!     &ModelOptions::default(),
//! )
//! .unwrap();
//! println!(
//!     "{} streams + {:.1} buffer minutes (pure batching: 1230 streams)",
//!     plan.total_streams(),
//!     plan.total_buffer()
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

mod allocate;
mod backend_cost;
mod cost;
mod curve;
mod error;
mod feasible;
mod movie;
mod procurement;
mod reserve;
mod shard;

pub use allocate::{
    allocate_min_buffer, allocate_min_buffer_with, allocate_min_cost, allocate_min_cost_with,
    min_buffer_at_stream_total, Budgets, Catalog, MovieAllocation, ResourcePlan,
};
pub use backend_cost::BackendResources;
pub use cost::{HardwareSpec, ResourceCost};
pub use curve::{cost_curve, cost_curve_with_catalog, CostCurve, CostPoint};
pub use error::SizingError;
pub use feasible::{
    max_feasible_streams, max_feasible_streams_memo, scan_by_buffer_step, scan_by_buffer_step_with,
    scan_by_streams, scan_by_streams_with, FeasiblePoint,
};
pub use movie::{example1_movies, MovieSpec};
pub use procurement::{procurement, Procurement};
pub use reserve::{erlang_b, size_vcr_reserve, VcrLoad};
pub use shard::{split_budget, ShardPlan};
