//! Procurement: turn a resource plan into hardware to buy.
//!
//! §5's purpose is "system sizing decisions" — ultimately a purchase
//! order. Given a plan (playback streams + buffer minutes), a VCR
//! reserve, and the hardware price list of Example 2, compute how many
//! disks and how much memory the server needs, respecting *both* disk
//! constraints:
//!
//! * **bandwidth** — each disk sustains `streams_per_disk` concurrent
//!   streams;
//! * **capacity** — the catalog's bytes must fit (Example 2's disk holds
//!   2 GB ≈ 66 movie minutes of 4 Mb/s video, so long movies span disks).

use crate::{HardwareSpec, ResourcePlan, SizingError};

/// A hardware shopping list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Procurement {
    /// Disks needed (max of the bandwidth and capacity requirements).
    pub disks: u32,
    /// Disks needed for stream bandwidth alone.
    pub disks_for_bandwidth: u32,
    /// Disks needed for storage capacity alone.
    pub disks_for_capacity: u32,
    /// Buffer memory in MB.
    pub memory_mb: f64,
    /// Disk cost in dollars.
    pub disk_dollars: f64,
    /// Memory cost in dollars.
    pub memory_dollars: f64,
}

impl Procurement {
    /// Total dollars.
    pub fn total_dollars(&self) -> f64 {
        self.disk_dollars + self.memory_dollars
    }
}

/// Compute the shopping list for `plan` plus `vcr_reserve` streams, with
/// `catalog_minutes` of stored video (Σ lᵢ, possibly with replicas).
pub fn procurement(
    plan: &ResourcePlan,
    vcr_reserve: u32,
    catalog_minutes: f64,
    hw: &HardwareSpec,
) -> Result<Procurement, SizingError> {
    if !(catalog_minutes.is_finite() && catalog_minutes >= 0.0) {
        return Err(SizingError::InvalidCost {
            name: "catalog_minutes",
            value: catalog_minutes,
        });
    }
    let streams = plan.total_streams() + vcr_reserve;
    let per_disk = hw.streams_per_disk();
    if per_disk <= 0.0 {
        return Err(SizingError::InvalidCost {
            name: "streams_per_disk",
            value: per_disk,
        });
    }
    let disks_for_bandwidth = (streams as f64 / per_disk).ceil() as u32;
    let storage_mb = catalog_minutes * hw.mb_per_movie_minute();
    let disk_mb = hw.disk_capacity_gb * 1024.0;
    if disk_mb <= 0.0 {
        return Err(SizingError::InvalidCost {
            name: "disk_capacity_gb",
            value: hw.disk_capacity_gb,
        });
    }
    let disks_for_capacity = (storage_mb / disk_mb).ceil() as u32;
    let disks = disks_for_bandwidth.max(disks_for_capacity);
    let memory_mb = plan.total_buffer() * hw.mb_per_movie_minute();
    Ok(Procurement {
        disks,
        disks_for_bandwidth,
        disks_for_capacity,
        memory_mb,
        disk_dollars: disks as f64 * hw.disk_cost,
        memory_dollars: memory_mb * hw.memory_cost_per_mb,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MovieAllocation;

    fn plan() -> ResourcePlan {
        ResourcePlan {
            allocations: vec![
                MovieAllocation {
                    movie: "a".into(),
                    n_streams: 95,
                    buffer: 60.0,
                    p_hit: 0.6,
                },
                MovieAllocation {
                    movie: "b".into(),
                    n_streams: 45,
                    buffer: 53.5,
                    p_hit: 0.55,
                },
            ],
        }
    }

    #[test]
    fn example2_arithmetic() {
        let hw = HardwareSpec::paper_example2();
        // 140 playback + 20 reserve = 160 streams at 10/disk → 16 disks
        // for bandwidth; 210 catalog minutes × 30 MB = 6300 MB at 2048 MB
        // per disk → 4 disks for capacity.
        let p = procurement(&plan(), 20, 210.0, &hw).unwrap();
        assert_eq!(p.disks_for_bandwidth, 16);
        assert_eq!(p.disks_for_capacity, 4);
        assert_eq!(p.disks, 16);
        assert!((p.memory_mb - 113.5 * 30.0).abs() < 1e-9);
        assert!((p.disk_dollars - 16.0 * 700.0).abs() < 1e-9);
        assert!((p.memory_dollars - 113.5 * 30.0 * 25.0).abs() < 1e-9);
        assert!((p.total_dollars() - (p.disk_dollars + p.memory_dollars)).abs() < 1e-9);
    }

    #[test]
    fn capacity_can_dominate() {
        // A huge archival catalog with light load: capacity binds.
        let hw = HardwareSpec::paper_example2();
        let p = procurement(&plan(), 0, 50_000.0, &hw).unwrap();
        assert!(p.disks_for_capacity > p.disks_for_bandwidth);
        assert_eq!(p.disks, p.disks_for_capacity);
    }

    #[test]
    fn bad_inputs() {
        let hw = HardwareSpec::paper_example2();
        assert!(procurement(&plan(), 0, f64::NAN, &hw).is_err());
        assert!(procurement(&plan(), 0, -1.0, &hw).is_err());
    }
}
