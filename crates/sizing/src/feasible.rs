//! Feasible `(B, n)` sets per movie — the paper's §5 Steps 1–2 and
//! Figure 8.
//!
//! For a movie with wait bound `w`, every stream count `n ∈ [1, l/w]`
//! implies a buffer `B = l − n·w` (Eq. 2); the pair is *feasible* when the
//! model's `P(hit) ≥ P*`. Because the buffered fraction `B/l = 1 − wn/l`
//! falls with `n`, `P(hit)` is decreasing in `n` along the wait-bound line
//! and the feasible set is (numerically verified in tests) a prefix
//! `n ≤ n_max`; [`max_feasible_streams`] finds the boundary by bisection.

use vod_model::{ModelError, ModelOptions};

use crate::MovieSpec;

/// One point of a feasible-set scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeasiblePoint {
    /// Stream count `n`.
    pub n_streams: u32,
    /// Buffer minutes `B = l − n·w`.
    pub buffer: f64,
    /// Modelled hit probability at this point.
    pub p_hit: f64,
    /// Whether `p_hit ≥ P*`.
    pub feasible: bool,
}

/// Scan the feasible frontier in steps of `buffer_step` minutes of buffer
/// (Figure 8 uses 5-minute steps). Points whose implied `n` is not a
/// positive integer are snapped to the nearest integer `n` (the paper's
/// `w` values are chosen so 5-minute steps give integral `n`).
pub fn scan_by_buffer_step(
    movie: &MovieSpec,
    buffer_step: f64,
    opts: &ModelOptions,
) -> Result<Vec<FeasiblePoint>, ModelError> {
    assert!(buffer_step > 0.0, "buffer_step must be positive");
    let mut out = Vec::new();
    let mut buffer = 0.0;
    while buffer < movie.length {
        let n_exact = (movie.length - buffer) / movie.max_wait;
        let n = n_exact.round().max(1.0) as u32;
        out.push(evaluate(movie, n, opts)?);
        buffer += buffer_step;
    }
    // Always include the n = 1 endpoint (maximum buffer).
    if out.last().map(|p| p.n_streams) != Some(1) {
        out.push(evaluate(movie, 1, opts)?);
    }
    Ok(out)
}

/// Scan every integer `n` in `[n_lo, n_hi]`.
pub fn scan_by_streams(
    movie: &MovieSpec,
    n_lo: u32,
    n_hi: u32,
    opts: &ModelOptions,
) -> Result<Vec<FeasiblePoint>, ModelError> {
    (n_lo.max(1)..=n_hi.min(movie.max_streams()))
        .map(|n| evaluate(movie, n, opts))
        .collect()
}

fn evaluate(movie: &MovieSpec, n: u32, opts: &ModelOptions) -> Result<FeasiblePoint, ModelError> {
    let p = movie.hit_probability(n, opts)?;
    Ok(FeasiblePoint {
        n_streams: n,
        buffer: movie.buffer_for_streams(n),
        p_hit: p,
        feasible: p >= movie.target_hit,
    })
}

/// Largest `n` with `P(hit) ≥ P*` (the minimum-buffer feasible point),
/// found by bisection over the integer range `[1, l/w]`.
///
/// Returns `None` when even `n = 1` (maximum buffer) misses the target —
/// the movie's QoS pair `(w, P*)` is unsatisfiable with this behavior.
pub fn max_feasible_streams(
    movie: &MovieSpec,
    opts: &ModelOptions,
) -> Result<Option<u32>, ModelError> {
    let mut lo = 1u32;
    let mut hi = movie.max_streams();
    if movie.hit_probability(lo, opts)? < movie.target_hit {
        return Ok(None);
    }
    if movie.hit_probability(hi, opts)? >= movie.target_hit {
        return Ok(Some(hi));
    }
    // Invariant: P(lo) ≥ P*, P(hi) < P*.
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if movie.hit_probability(mid, opts)? >= movie.target_hit {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movie::example1_movies;
    use std::sync::Arc;
    use vod_dist::kinds::Exponential;
    use vod_model::{Rates, VcrMix};

    fn small_movie() -> MovieSpec {
        MovieSpec::new(
            "m",
            60.0,
            0.5,
            0.5,
            VcrMix::paper_fig7d(),
            Arc::new(Exponential::with_mean(5.0).unwrap()),
            Rates::paper(),
        )
        .unwrap()
    }

    #[test]
    fn feasible_set_is_a_prefix_in_n() {
        // Validates the monotonicity the bisection relies on.
        let m = small_movie();
        let pts = scan_by_streams(&m, 1, m.max_streams(), &ModelOptions::default()).unwrap();
        let mut seen_infeasible = false;
        for p in &pts {
            if !p.feasible {
                seen_infeasible = true;
            } else {
                assert!(
                    !seen_infeasible,
                    "feasibility regained at n={} after losing it",
                    p.n_streams
                );
            }
        }
        assert!(seen_infeasible, "target never binds — test is vacuous");
    }

    #[test]
    fn bisection_matches_scan() {
        let m = small_movie();
        let opts = ModelOptions::default();
        let scan_max = scan_by_streams(&m, 1, m.max_streams(), &opts)
            .unwrap()
            .iter()
            .filter(|p| p.feasible)
            .map(|p| p.n_streams)
            .max()
            .unwrap();
        let bisect_max = max_feasible_streams(&m, &opts).unwrap().unwrap();
        assert_eq!(scan_max, bisect_max);
    }

    #[test]
    fn unsatisfiable_target_detected() {
        let mut m = small_movie();
        m.target_hit = 0.9999;
        assert_eq!(max_feasible_streams(&m, &ModelOptions::default()).unwrap(), None);
    }

    #[test]
    fn buffer_step_scan_covers_range() {
        let m = small_movie();
        let pts = scan_by_buffer_step(&m, 5.0, &ModelOptions::default()).unwrap();
        // 60/5 = 12 steps plus the n=1 endpoint.
        assert!(pts.len() >= 12);
        assert_eq!(pts[0].buffer, 0.0);
        assert_eq!(pts.last().unwrap().n_streams, 1);
        // Buffer increases along the scan, n decreases.
        for w in pts.windows(2) {
            assert!(w[1].buffer >= w[0].buffer);
            assert!(w[1].n_streams <= w[0].n_streams);
        }
    }

    #[test]
    fn example1_movie2_has_sizable_feasible_range() {
        // Movie 2 (l=60, w=0.5, exp mean 5): the paper reports (30, 60) as
        // its optimum, i.e. its feasible range should extend to dozens of
        // streams with P* = 0.5.
        let movies = example1_movies(VcrMix::paper_fig7d());
        let n_max = max_feasible_streams(&movies[1], &ModelOptions::default())
            .unwrap()
            .expect("movie 2 must be satisfiable");
        assert!(
            (20..=119).contains(&n_max),
            "movie-2 max feasible n = {n_max}"
        );
    }
}
