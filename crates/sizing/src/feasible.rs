//! Feasible `(B, n)` sets per movie — the paper's §5 Steps 1–2 and
//! Figure 8.
//!
//! For a movie with wait bound `w`, every stream count `n ∈ [1, l/w]`
//! implies a buffer `B = l − n·w` (Eq. 2); the pair is *feasible* when the
//! model's `P(hit) ≥ P*`. Because the buffered fraction `B/l = 1 − wn/l`
//! falls with `n`, `P(hit)` is decreasing in `n` along the wait-bound line
//! and the feasible set is (numerically verified in tests) a prefix
//! `n ≤ n_max`; [`max_feasible_streams`] finds the boundary by bisection.

use vod_model::{HitMemo, ModelError, ModelOptions, SweepExecutor};

use crate::MovieSpec;

/// One point of a feasible-set scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeasiblePoint {
    /// Stream count `n`.
    pub n_streams: u32,
    /// Buffer minutes `B = l − n·w`.
    pub buffer: f64,
    /// Modelled hit probability at this point.
    pub p_hit: f64,
    /// Whether `p_hit ≥ P*`.
    pub feasible: bool,
}

/// Scan the feasible frontier in steps of `buffer_step` minutes of buffer
/// (Figure 8 uses 5-minute steps). Points whose implied `n` is not a
/// positive integer are snapped to the nearest integer `n` (the paper's
/// `w` values are chosen so 5-minute steps give integral `n`).
pub fn scan_by_buffer_step(
    movie: &MovieSpec,
    buffer_step: f64,
    opts: &ModelOptions,
) -> Result<Vec<FeasiblePoint>, ModelError> {
    scan_by_buffer_step_with(movie, buffer_step, opts, &SweepExecutor::serial())
}

/// [`scan_by_buffer_step`] fanning the per-point model evaluations across
/// `exec`. Results are bitwise identical to the serial scan.
pub fn scan_by_buffer_step_with(
    movie: &MovieSpec,
    buffer_step: f64,
    opts: &ModelOptions,
    exec: &SweepExecutor,
) -> Result<Vec<FeasiblePoint>, ModelError> {
    assert!(buffer_step > 0.0, "buffer_step must be positive");
    // Generate the grid as k·step rather than by repeated addition:
    // accumulating `buffer += step` drifts (e.g. 0.1-minute steps reach
    // 59.999999999999f at k = 600, yielding a spurious extra point), and
    // the drifted values snap `n` inconsistently near grid boundaries.
    let mut grid: Vec<u32> = Vec::new();
    let mut k = 0u32;
    loop {
        let buffer = k as f64 * buffer_step;
        if buffer >= movie.length {
            break;
        }
        let n_exact = (movie.length - buffer) / movie.max_wait;
        let n = n_exact.round().max(1.0) as u32;
        // Coarse wait bounds can snap adjacent grid points to the same n;
        // keep the first occurrence only so the scan is strictly
        // decreasing in n.
        if grid.last() != Some(&n) {
            grid.push(n);
        }
        k += 1;
    }
    // Always include the n = 1 endpoint (maximum buffer).
    if grid.last() != Some(&1) {
        grid.push(1);
    }
    exec.try_map(&grid, |&n| evaluate(movie, n, opts))
}

/// Scan every integer `n` in `[n_lo, n_hi]`.
pub fn scan_by_streams(
    movie: &MovieSpec,
    n_lo: u32,
    n_hi: u32,
    opts: &ModelOptions,
) -> Result<Vec<FeasiblePoint>, ModelError> {
    scan_by_streams_with(movie, n_lo, n_hi, opts, &SweepExecutor::serial())
}

/// [`scan_by_streams`] fanning the per-`n` model evaluations across
/// `exec`. Results are bitwise identical to the serial scan.
pub fn scan_by_streams_with(
    movie: &MovieSpec,
    n_lo: u32,
    n_hi: u32,
    opts: &ModelOptions,
    exec: &SweepExecutor,
) -> Result<Vec<FeasiblePoint>, ModelError> {
    let ns: Vec<u32> = (n_lo.max(1)..=n_hi.min(movie.max_streams())).collect();
    exec.try_map(&ns, |&n| evaluate(movie, n, opts))
}

fn evaluate(movie: &MovieSpec, n: u32, opts: &ModelOptions) -> Result<FeasiblePoint, ModelError> {
    let p = movie.hit_probability(n, opts)?;
    Ok(FeasiblePoint {
        n_streams: n,
        buffer: movie.buffer_for_streams(n),
        p_hit: p,
        feasible: p >= movie.target_hit,
    })
}

/// Largest `n` with `P(hit) ≥ P*` (the minimum-buffer feasible point),
/// found by bisection over the integer range `[1, l/w]`.
///
/// Returns `None` when even `n = 1` (maximum buffer) misses the target —
/// the movie's QoS pair `(w, P*)` is unsatisfiable with this behavior.
pub fn max_feasible_streams(
    movie: &MovieSpec,
    opts: &ModelOptions,
) -> Result<Option<u32>, ModelError> {
    max_feasible_streams_memo(movie, opts, &HitMemo::new())
}

/// [`max_feasible_streams`] drawing every `hit_probability(n)` evaluation
/// through `memo`, so later phases of an allocation (greedy water-fill,
/// plan building, repeated sweeps over the same catalog) never recompute
/// an `n` the bisection already visited. The memo must belong to this
/// `(movie, opts)` context.
pub fn max_feasible_streams_memo(
    movie: &MovieSpec,
    opts: &ModelOptions,
    memo: &HitMemo,
) -> Result<Option<u32>, ModelError> {
    let p_at = |n: u32| memo.get_or_try_insert(n, || movie.hit_probability(n, opts));
    let mut lo = 1u32;
    let mut hi = movie.max_streams();
    if p_at(lo)? < movie.target_hit {
        return Ok(None);
    }
    if p_at(hi)? >= movie.target_hit {
        return Ok(Some(hi));
    }
    // Invariant: P(lo) ≥ P*, P(hi) < P*.
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if p_at(mid)? >= movie.target_hit {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movie::example1_movies;
    use std::sync::Arc;
    use vod_dist::kinds::Exponential;
    use vod_model::{Rates, VcrMix};

    fn small_movie() -> MovieSpec {
        MovieSpec::new(
            "m",
            60.0,
            0.5,
            0.5,
            VcrMix::paper_fig7d(),
            Arc::new(Exponential::with_mean(5.0).unwrap()),
            Rates::paper(),
        )
        .unwrap()
    }

    #[test]
    fn feasible_set_is_a_prefix_in_n() {
        // Validates the monotonicity the bisection relies on.
        let m = small_movie();
        let pts = scan_by_streams(&m, 1, m.max_streams(), &ModelOptions::default()).unwrap();
        let mut seen_infeasible = false;
        for p in &pts {
            if !p.feasible {
                seen_infeasible = true;
            } else {
                assert!(
                    !seen_infeasible,
                    "feasibility regained at n={} after losing it",
                    p.n_streams
                );
            }
        }
        assert!(seen_infeasible, "target never binds — test is vacuous");
    }

    #[test]
    fn bisection_matches_scan() {
        let m = small_movie();
        let opts = ModelOptions::default();
        let scan_max = scan_by_streams(&m, 1, m.max_streams(), &opts)
            .unwrap()
            .iter()
            .filter(|p| p.feasible)
            .map(|p| p.n_streams)
            .max()
            .unwrap();
        let bisect_max = max_feasible_streams(&m, &opts).unwrap().unwrap();
        assert_eq!(scan_max, bisect_max);
    }

    #[test]
    fn unsatisfiable_target_detected() {
        let mut m = small_movie();
        m.target_hit = 0.9999;
        assert_eq!(
            max_feasible_streams(&m, &ModelOptions::default()).unwrap(),
            None
        );
    }

    #[test]
    fn buffer_step_scan_covers_range() {
        let m = small_movie();
        let pts = scan_by_buffer_step(&m, 5.0, &ModelOptions::default()).unwrap();
        // 60/5 = 12 steps plus the n=1 endpoint.
        assert!(pts.len() >= 12);
        assert_eq!(pts[0].buffer, 0.0);
        assert_eq!(pts.last().unwrap().n_streams, 1);
        // Buffer increases along the scan, n decreases.
        for w in pts.windows(2) {
            assert!(w[1].buffer >= w[0].buffer);
            assert!(w[1].n_streams <= w[0].n_streams);
        }
    }

    #[test]
    fn parallel_scans_match_serial_bitwise() {
        let m = small_movie();
        let o = ModelOptions::default();
        let serial = scan_by_streams(&m, 1, 40, &o).unwrap();
        for threads in [2usize, 4] {
            let exec = SweepExecutor::new(threads);
            let par = scan_by_streams_with(&m, 1, 40, &o, &exec).unwrap();
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.n_streams, b.n_streams);
                assert_eq!(a.buffer.to_bits(), b.buffer.to_bits());
                assert_eq!(a.p_hit.to_bits(), b.p_hit.to_bits(), "n={}", a.n_streams);
                assert_eq!(a.feasible, b.feasible);
            }
        }
        let exec = SweepExecutor::new(4);
        let s1 = scan_by_buffer_step(&m, 5.0, &o).unwrap();
        let s4 = scan_by_buffer_step_with(&m, 5.0, &o, &exec).unwrap();
        assert_eq!(s1.len(), s4.len());
        for (a, b) in s1.iter().zip(&s4) {
            assert_eq!(a.p_hit.to_bits(), b.p_hit.to_bits());
        }
        // Determinism: two runs at the same thread count agree exactly.
        let again = scan_by_buffer_step_with(&m, 5.0, &o, &exec).unwrap();
        for (a, b) in s4.iter().zip(&again) {
            assert_eq!(a.p_hit.to_bits(), b.p_hit.to_bits());
        }
    }

    #[test]
    fn bisection_memo_absorbs_repeat_queries() {
        let m = small_movie();
        let o = ModelOptions::default();
        let memo = HitMemo::new();
        let first = max_feasible_streams_memo(&m, &o, &memo).unwrap();
        let evals = memo.stats().1;
        assert!(evals > 0);
        let second = max_feasible_streams_memo(&m, &o, &memo).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            memo.stats().1,
            evals,
            "repeat bisection must be served from the memo"
        );
        assert_eq!(first, max_feasible_streams(&m, &o).unwrap());
    }

    #[test]
    fn buffer_step_scan_dedups_snapped_points_and_resists_drift() {
        // A coarse wait bound (w = 10, so only n ∈ 1..=6) with a fine,
        // non-representable step: 0.1-minute increments snap hundreds of
        // grid points onto the same handful of integer n. The scan must
        // emit each n once, strictly decreasing, and repeated-addition
        // drift (0.1 × 600 ≈ 59.999…) must not smuggle in an extra
        // trailing point past the movie length.
        let m = MovieSpec::new(
            "coarse",
            60.0,
            10.0,
            0.5,
            VcrMix::paper_fig7d(),
            Arc::new(Exponential::with_mean(5.0).unwrap()),
            Rates::paper(),
        )
        .unwrap();
        let pts = scan_by_buffer_step(&m, 0.1, &ModelOptions::default()).unwrap();
        assert!(
            pts.len() <= 7,
            "expected ≤ 7 deduped points, got {}",
            pts.len()
        );
        for w in pts.windows(2) {
            assert!(
                w[1].n_streams < w[0].n_streams,
                "duplicate or non-decreasing n: {} then {}",
                w[0].n_streams,
                w[1].n_streams
            );
        }
        assert_eq!(pts[0].n_streams, m.max_streams());
        assert_eq!(pts.last().unwrap().n_streams, 1);
    }

    #[test]
    fn example1_movie2_has_sizable_feasible_range() {
        // Movie 2 (l=60, w=0.5, exp mean 5): the paper reports (30, 60) as
        // its optimum, i.e. its feasible range should extend to dozens of
        // streams with P* = 0.5.
        let movies = example1_movies(VcrMix::paper_fig7d());
        let n_max = max_feasible_streams(&movies[1], &ModelOptions::default())
            .unwrap()
            .expect("movie 2 must be satisfiable");
        assert!(
            (20..=119).contains(&n_max),
            "movie-2 max feasible n = {n_max}"
        );
    }
}
