//! System cost model — the paper's §5 Eq. 23 and Example 2.
//!
//! `C = C_b Σ B_i + C_n Σ n_i = C_n (φ Σ B_i + Σ n_i)` with `φ = C_b/C_n`,
//! where `C_b` prices one movie-minute of buffer memory and `C_n` one I/O
//! stream. Example 2 derives the 1997 prices `C_b = $750/min`,
//! `C_n = $70/stream` (`φ ≈ 11`) from a $700 2 GB SCSI disk at 5 MB/s,
//! 4 Mb/s MPEG-2 video, and $25/MB DRAM.

use crate::SizingError;

/// Prices for the two resources the model trades against each other.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceCost {
    buffer_per_minute: f64,
    per_stream: f64,
}

impl ResourceCost {
    /// Construct from explicit prices (both must be positive and finite).
    pub fn new(buffer_per_minute: f64, per_stream: f64) -> Result<Self, SizingError> {
        for (name, v) in [
            ("buffer_per_minute", buffer_per_minute),
            ("per_stream", per_stream),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(SizingError::InvalidCost { name, value: v });
            }
        }
        Ok(Self {
            buffer_per_minute,
            per_stream,
        })
    }

    /// Construct from a cost *ratio* `φ = C_b/C_n`, normalizing
    /// `C_n = 1` — Figure 9 sweeps φ ∈ {3, 4, 6, 10, 11, 16}.
    pub fn from_phi(phi: f64) -> Result<Self, SizingError> {
        Self::new(phi, 1.0)
    }

    /// `C_b`: cost of buffering one movie minute.
    pub fn buffer_per_minute(&self) -> f64 {
        self.buffer_per_minute
    }

    /// `C_n`: cost of one I/O stream.
    pub fn per_stream(&self) -> f64 {
        self.per_stream
    }

    /// `φ = C_b / C_n` (Eq. 23).
    pub fn phi(&self) -> f64 {
        self.buffer_per_minute / self.per_stream
    }

    /// Total system cost `C_b·B + C_n·n` for `B` buffer minutes and `n`
    /// streams.
    pub fn total(&self, buffer_minutes: f64, streams: u32) -> f64 {
        self.buffer_per_minute * buffer_minutes + self.per_stream * streams as f64
    }
}

/// Hardware price list from which [`ResourceCost`] is derived the way the
/// paper's Example 2 does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareSpec {
    /// Cost of one disk in dollars (Example 2: $700 for a 2 GB SCSI disk).
    pub disk_cost: f64,
    /// Disk storage capacity in GB (Example 2: 2 GB).
    pub disk_capacity_gb: f64,
    /// Sustained disk transfer rate in MB/s (Example 2: 5 MB/s).
    pub disk_bandwidth_mb_s: f64,
    /// Video bit rate in Mb/s (Example 2: 4 Mb/s MPEG-2).
    pub video_rate_mbit_s: f64,
    /// Memory price in dollars per MB (Example 2: $25/MB).
    pub memory_cost_per_mb: f64,
}

impl HardwareSpec {
    /// The paper's Example 2 price list (1997 hardware).
    pub fn paper_example2() -> Self {
        Self {
            disk_cost: 700.0,
            disk_capacity_gb: 2.0,
            disk_bandwidth_mb_s: 5.0,
            video_rate_mbit_s: 4.0,
            memory_cost_per_mb: 25.0,
        }
    }

    /// Megabytes needed to buffer one minute of video:
    /// `60 s · rate/8` MB (Example 2: 30 MB/min).
    pub fn mb_per_movie_minute(&self) -> f64 {
        60.0 * self.video_rate_mbit_s / 8.0
    }

    /// Concurrent streams one disk sustains: `bandwidth / (rate/8)`
    /// (Example 2: 10 streams/disk).
    pub fn streams_per_disk(&self) -> f64 {
        self.disk_bandwidth_mb_s / (self.video_rate_mbit_s / 8.0)
    }

    /// Derive `(C_b, C_n)` as in Example 2:
    /// `C_b = mb_per_minute · $/MB`, `C_n = disk_cost / streams_per_disk`.
    pub fn resource_cost(&self) -> Result<ResourceCost, SizingError> {
        ResourceCost::new(
            self.mb_per_movie_minute() * self.memory_cost_per_mb,
            self.disk_cost / self.streams_per_disk(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example2_prices() {
        // The paper: C_b = $750, C_n = $70, φ ≈ 11.
        let hw = HardwareSpec::paper_example2();
        assert!((hw.mb_per_movie_minute() - 30.0).abs() < 1e-12);
        assert!((hw.streams_per_disk() - 10.0).abs() < 1e-12);
        let rc = hw.resource_cost().unwrap();
        assert!((rc.buffer_per_minute() - 750.0).abs() < 1e-9);
        assert!((rc.per_stream() - 70.0).abs() < 1e-9);
        assert!((rc.phi() - 750.0 / 70.0).abs() < 1e-12);
        assert!(rc.phi() > 10.0 && rc.phi() < 11.0, "φ ≈ 10.7 (paper: ~11)");
    }

    #[test]
    fn total_cost_linear() {
        let rc = ResourceCost::new(750.0, 70.0).unwrap();
        assert!((rc.total(113.5, 602) - (750.0 * 113.5 + 70.0 * 602.0)).abs() < 1e-9);
        assert_eq!(rc.total(0.0, 0), 0.0);
    }

    #[test]
    fn phi_constructor() {
        let rc = ResourceCost::from_phi(11.0).unwrap();
        assert_eq!(rc.phi(), 11.0);
        assert_eq!(rc.per_stream(), 1.0);
    }

    #[test]
    fn invalid_prices_rejected() {
        assert!(ResourceCost::new(0.0, 1.0).is_err());
        assert!(ResourceCost::new(1.0, -2.0).is_err());
        assert!(ResourceCost::new(f64::NAN, 1.0).is_err());
    }
}
