//! Cost curves — Figure 9: system cost versus the total number of I/O
//! streams dedicated to normal playback, for a sweep of cost ratios `φ`.
//!
//! Each point fixes a total stream count `N`, lets the allocator find the
//! minimum total buffer that still meets every movie's `(w_i, P_i*)`
//! targets (see [`crate::min_buffer_at_stream_total`]), and prices the
//! result with Eq. 23. The curve's minimum is the optimal system sizing
//! for that price regime.

use vod_model::ModelOptions;

use crate::{Catalog, MovieSpec, ResourceCost, SizingError};

/// One point on a cost curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPoint {
    /// Total streams `Σ n_i` at this point.
    pub total_streams: u32,
    /// Minimum feasible total buffer at this stream count (movie minutes).
    pub total_buffer: f64,
    /// System cost `C_n (φ Σ B + Σ n)`.
    pub cost: f64,
}

/// A full curve for one `φ`.
#[derive(Debug, Clone, PartialEq)]
pub struct CostCurve {
    /// The price pair used.
    pub prices: ResourceCost,
    /// Points in increasing stream-count order.
    pub points: Vec<CostPoint>,
}

impl CostCurve {
    /// The minimum-cost point — the paper's "optimal system sizing choice".
    pub fn optimum(&self) -> Option<&CostPoint> {
        self.points.iter().min_by(|a, b| a.cost.total_cmp(&b.cost))
    }
}

/// Trace the cost curve over total stream counts `[n_lo, n_hi]` with the
/// given stride. Points where `n_total` is outside the feasible range are
/// skipped.
pub fn cost_curve(
    movies: &[MovieSpec],
    prices: ResourceCost,
    n_lo: u32,
    n_hi: u32,
    stride: u32,
    opts: &ModelOptions,
) -> Result<CostCurve, SizingError> {
    let catalog = Catalog::new(movies, opts)?;
    Ok(cost_curve_with_catalog(
        &catalog, prices, n_lo, n_hi, stride,
    ))
}

/// [`cost_curve`] against a prebuilt [`Catalog`], so a φ-sweep (Figure 9's
/// six panels) pays for the feasibility bisections once.
pub fn cost_curve_with_catalog(
    catalog: &Catalog<'_>,
    prices: ResourceCost,
    n_lo: u32,
    n_hi: u32,
    stride: u32,
) -> CostCurve {
    assert!(stride >= 1, "stride must be at least 1");
    let mut points = Vec::new();
    let mut n = n_lo;
    while n <= n_hi {
        if let Some(ns) = catalog.min_buffer_split(n) {
            let total_buffer = catalog.total_buffer_of(&ns);
            points.push(CostPoint {
                total_streams: n,
                total_buffer,
                cost: prices.total(total_buffer, n),
            });
        }
        n = n.saturating_add(stride);
    }
    CostCurve { prices, points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vod_dist::kinds::Exponential;
    use vod_model::{Rates, VcrMix};

    fn toy_movies() -> Vec<MovieSpec> {
        let mk = |name: &str, l: f64, w: f64, mean: f64| {
            MovieSpec::new(
                name,
                l,
                w,
                0.5,
                VcrMix::paper_fig7d(),
                Arc::new(Exponential::with_mean(mean).unwrap()),
                Rates::paper(),
            )
            .unwrap()
        };
        vec![mk("a", 30.0, 1.0, 4.0), mk("b", 45.0, 1.5, 6.0)]
    }

    #[test]
    fn curve_buffer_decreases_with_streams() {
        let movies = toy_movies();
        let prices = ResourceCost::from_phi(6.0).unwrap();
        let curve = cost_curve(&movies, prices, 2, 60, 3, &ModelOptions::default()).unwrap();
        assert!(curve.points.len() > 3);
        for w in curve.points.windows(2) {
            assert!(w[1].total_buffer <= w[0].total_buffer + 1e-9);
        }
    }

    #[test]
    fn expensive_memory_pushes_optimum_to_many_streams() {
        // φ large ⇒ buffer dominates cost ⇒ optimum at max streams
        // (the paper's Example 2 observation for φ ≈ 11).
        let movies = toy_movies();
        let o = ModelOptions::default();
        let hi = cost_curve(&movies, ResourceCost::from_phi(16.0).unwrap(), 2, 60, 1, &o).unwrap();
        let hi_opt = hi.optimum().unwrap().total_streams;
        let max_point = hi.points.last().unwrap().total_streams;
        assert_eq!(hi_opt, max_point, "φ=16 optimum should sit at max n");

        // φ small ⇒ streams dominate ⇒ optimum strictly inside the range.
        let lo = cost_curve(&movies, ResourceCost::from_phi(0.3).unwrap(), 2, 60, 1, &o).unwrap();
        let lo_opt = lo.optimum().unwrap().total_streams;
        assert!(
            lo_opt < max_point,
            "φ=0.3 optimum {lo_opt} should move below {max_point}"
        );
    }

    #[test]
    fn cost_equals_eq23() {
        let movies = toy_movies();
        let prices = ResourceCost::new(750.0, 70.0).unwrap();
        let curve = cost_curve(&movies, prices, 10, 10, 1, &ModelOptions::default()).unwrap();
        let p = curve.points[0];
        assert!((p.cost - (750.0 * p.total_buffer + 70.0 * p.total_streams as f64)).abs() < 1e-9);
    }
}
