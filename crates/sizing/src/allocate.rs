//! Multi-movie resource allocation — the paper's §5 Step 3 optimization:
//!
//! ```text
//! minimize   Σ B_i        (equivalently Σ (φ B_i + n_i) for min-cost)
//! subject to Σ n_i ≤ n_s,  Σ B_i ≤ B_s,  P_i(B_i, n_i) ≥ P_i*
//! ```
//!
//! Along each movie's wait-bound line `B_i = l_i − n_i w_i` (Eq. 2), both
//! objectives are *linear* in the integer stream counts `n_i`, the
//! feasibility constraint is a per-movie box `1 ≤ n_i ≤ n_max,i`
//! (the feasible set is a prefix in `n`, see [`crate::feasible`]), and the
//! only coupling is the shared stream budget. The exact optimum is
//! therefore a greedy water-fill: hand streams to movies in decreasing
//! order of per-stream benefit (`w_i` for min-buffer, `φ·w_i − 1` stream
//! units for min-cost). A brute-force test verifies optimality on small
//! instances.

use vod_model::{HitMemo, ModelOptions, SweepExecutor};

use crate::{feasible::max_feasible_streams_memo, MovieSpec, ResourceCost, SizingError};

/// Final allocation for one movie.
#[derive(Debug, Clone, PartialEq)]
pub struct MovieAllocation {
    /// Movie name (from [`MovieSpec::name`]).
    pub movie: String,
    /// Streams assigned (`n_i*`).
    pub n_streams: u32,
    /// Buffer minutes implied by Eq. 2 (`B_i*`).
    pub buffer: f64,
    /// Modelled hit probability at the chosen point.
    pub p_hit: f64,
}

/// A complete allocation across the catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourcePlan {
    /// Per-movie assignments, in input order.
    pub allocations: Vec<MovieAllocation>,
}

impl ResourcePlan {
    /// Total streams `Σ n_i`.
    pub fn total_streams(&self) -> u32 {
        self.allocations.iter().map(|a| a.n_streams).sum()
    }

    /// Total buffer minutes `Σ B_i`.
    pub fn total_buffer(&self) -> f64 {
        self.allocations.iter().map(|a| a.buffer).sum()
    }

    /// System cost under a resource price pair (Eq. 23).
    pub fn cost(&self, prices: &ResourceCost) -> f64 {
        prices.total(self.total_buffer(), self.total_streams())
    }
}

/// Budgets for an allocation problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budgets {
    /// Stream budget `n_s` (I/O bandwidth available for normal playback).
    pub streams: u32,
    /// Optional buffer budget `B_s` in movie minutes.
    pub buffer: Option<f64>,
}

/// Per-movie candidate ranges computed once per problem, with the memo of
/// every `hit_probability(n)` the feasibility bisection evaluated — later
/// plan builds draw from it instead of recomputing.
struct Candidate<'a> {
    movie: &'a MovieSpec,
    n_max: u32,
    memo: HitMemo,
}

#[cfg(test)]
fn candidates<'a>(
    movies: &'a [MovieSpec],
    opts: &ModelOptions,
) -> Result<Vec<Candidate<'a>>, SizingError> {
    candidates_with(movies, opts, &SweepExecutor::serial())
}

fn candidates_with<'a>(
    movies: &'a [MovieSpec],
    opts: &ModelOptions,
    exec: &SweepExecutor,
) -> Result<Vec<Candidate<'a>>, SizingError> {
    // Per-movie bisections are independent; fan them across the executor.
    // Each candidate owns its memo (one (movie, opts) context each).
    exec.try_map(movies, |movie| {
        let memo = HitMemo::new();
        let n_max = max_feasible_streams_memo(movie, opts, &memo)
            .map_err(SizingError::Model)?
            .ok_or_else(|| SizingError::UnsatisfiableMovie {
                movie: movie.name.clone(),
            })?;
        Ok(Candidate { movie, n_max, memo })
    })
}

/// Precomputed feasibility frontier for a catalog: the expensive
/// per-movie `n_max` bisections are done once, after which allocation
/// queries (e.g. every point of a Figure-9 cost curve) are pure
/// arithmetic.
pub struct Catalog<'a> {
    cands: Vec<Candidate<'a>>,
}

impl<'a> Catalog<'a> {
    /// Compute the feasibility frontier of `movies`.
    pub fn new(movies: &'a [MovieSpec], opts: &ModelOptions) -> Result<Self, SizingError> {
        Self::new_with(movies, opts, &SweepExecutor::serial())
    }

    /// [`Catalog::new`] with the per-movie feasibility bisections fanned
    /// across `exec`. The frontier is bitwise identical to the serial one.
    pub fn new_with(
        movies: &'a [MovieSpec],
        opts: &ModelOptions,
        exec: &SweepExecutor,
    ) -> Result<Self, SizingError> {
        if movies.is_empty() {
            return Err(SizingError::NoMovies);
        }
        Ok(Self {
            cands: candidates_with(movies, opts, exec)?,
        })
    }

    /// Total `hit_probability(n)` model evaluations performed for this
    /// catalog so far (memo misses summed over movies). Exposed so tests
    /// and benchmarks can demonstrate the memoization.
    pub fn model_evaluations(&self) -> usize {
        self.cands.iter().map(|c| c.memo.stats().1).sum()
    }

    /// Number of movies.
    pub fn len(&self) -> usize {
        self.cands.len()
    }

    /// Always false (construction requires at least one movie).
    pub fn is_empty(&self) -> bool {
        self.cands.is_empty()
    }

    /// Maximum feasible stream count per movie (`P(hit) ≥ P*` boundary).
    pub fn n_max(&self, movie_idx: usize) -> u32 {
        self.cands[movie_idx].n_max
    }

    /// `Σ n_max,i` — the largest total stream count with any effect.
    pub fn max_total_streams(&self) -> u32 {
        self.cands.iter().map(|c| c.n_max).sum()
    }

    /// Stream split minimizing total buffer at exactly `n_total` streams;
    /// `None` when `n_total` is outside `[movie count, Σ n_max]`. No model
    /// evaluations are performed.
    pub fn min_buffer_split(&self, n_total: u32) -> Option<Vec<u32>> {
        if n_total < self.cands.len() as u32 || n_total > self.max_total_streams() {
            return None;
        }
        Some(water_fill(&self.cands, n_total, |m| m.max_wait, true))
    }

    /// Total buffer implied by a per-movie stream split (Eq. 2).
    pub fn total_buffer_of(&self, ns: &[u32]) -> f64 {
        self.cands
            .iter()
            .zip(ns)
            .map(|(c, &n)| c.movie.buffer_for_streams(n))
            .sum()
    }

    /// Full [`ResourcePlan`] at exactly `n_total` streams (minimum-buffer
    /// split), or `None` outside the feasible range. Repeated calls reuse
    /// this catalog's memo, so each `(movie, n)` hit probability is
    /// computed at most once across the catalog's lifetime.
    pub fn plan_at_stream_total(
        &self,
        n_total: u32,
        opts: &ModelOptions,
    ) -> Result<Option<ResourcePlan>, SizingError> {
        match self.min_buffer_split(n_total) {
            None => Ok(None),
            Some(ns) => Ok(Some(build_plan(&self.cands, &ns, opts)?)),
        }
    }
}

/// Greedy water-fill: start every movie at `n_i = 1` and hand out the
/// remaining stream budget in decreasing order of `benefit(movie)` (the
/// objective improvement per extra stream), never exceeding `n_max,i`.
/// Movies with non-positive benefit keep `n_i = 1`.
fn water_fill(
    cands: &[Candidate<'_>],
    stream_budget: u32,
    benefit: impl Fn(&MovieSpec) -> f64,
    fill_exactly: bool,
) -> Vec<u32> {
    let m = cands.len() as u32;
    let mut ns: Vec<u32> = vec![1; cands.len()];
    let mut remaining = stream_budget.saturating_sub(m);
    let mut order: Vec<usize> = (0..cands.len()).collect();
    order.sort_by(|&a, &b| benefit(cands[b].movie).total_cmp(&benefit(cands[a].movie)));
    for &idx in &order {
        if remaining == 0 {
            break;
        }
        if !fill_exactly && benefit(cands[idx].movie) <= 0.0 {
            break; // sorted: everything after is also non-positive
        }
        let room = cands[idx].n_max - ns[idx];
        let take = room.min(remaining);
        ns[idx] += take;
        remaining -= take;
    }
    ns
}

fn build_plan(
    cands: &[Candidate<'_>],
    ns: &[u32],
    opts: &ModelOptions,
) -> Result<ResourcePlan, SizingError> {
    let allocations = cands
        .iter()
        .zip(ns)
        .map(|(c, &n)| {
            let p_hit = c
                .memo
                .get_or_try_insert(n, || c.movie.hit_probability(n, opts))
                .map_err(SizingError::Model)?;
            Ok(MovieAllocation {
                movie: c.movie.name.clone(),
                n_streams: n,
                buffer: c.movie.buffer_for_streams(n),
                p_hit,
            })
        })
        .collect::<Result<Vec<_>, SizingError>>()?;
    Ok(ResourcePlan { allocations })
}

/// §5 Step 3 with the paper's stated objective: minimize total buffer
/// `Σ B_i*` subject to the stream budget (and optional buffer budget).
pub fn allocate_min_buffer(
    movies: &[MovieSpec],
    budgets: Budgets,
    opts: &ModelOptions,
) -> Result<ResourcePlan, SizingError> {
    allocate_min_buffer_with(movies, budgets, opts, &SweepExecutor::serial())
}

/// [`allocate_min_buffer`] with the per-movie feasibility work fanned
/// across `exec`; the plan is bitwise identical to the serial one.
pub fn allocate_min_buffer_with(
    movies: &[MovieSpec],
    budgets: Budgets,
    opts: &ModelOptions,
    exec: &SweepExecutor,
) -> Result<ResourcePlan, SizingError> {
    if movies.is_empty() {
        return Err(SizingError::NoMovies);
    }
    if budgets.streams < movies.len() as u32 {
        return Err(SizingError::StreamBudgetTooSmall {
            needed: movies.len() as u32,
            available: budgets.streams,
        });
    }
    let cands = candidates_with(movies, opts, exec)?;
    // Minimizing Σ B = Σ l_i − Σ n_i w_i ⇒ maximize Σ n_i w_i: benefit per
    // stream is w_i (always positive, so fill the budget).
    let ns = water_fill(&cands, budgets.streams, |m| m.max_wait, true);
    let plan = build_plan(&cands, &ns, opts)?;
    if let Some(bs) = budgets.buffer {
        let total = plan.total_buffer();
        if total > bs + 1e-9 {
            return Err(SizingError::BufferBudgetTooSmall {
                needed: total,
                available: bs,
            });
        }
    }
    Ok(plan)
}

/// Cost-aware variant: minimize `C_b Σ B_i + C_n Σ n_i` (Eq. 23). A stream
/// granted to movie `i` saves `w_i` buffer minutes, so its net benefit is
/// `C_b w_i − C_n`; streams are only spent where that is positive.
pub fn allocate_min_cost(
    movies: &[MovieSpec],
    budgets: Budgets,
    prices: &ResourceCost,
    opts: &ModelOptions,
) -> Result<ResourcePlan, SizingError> {
    allocate_min_cost_with(movies, budgets, prices, opts, &SweepExecutor::serial())
}

/// [`allocate_min_cost`] with the per-movie feasibility work fanned
/// across `exec`; the plan is bitwise identical to the serial one.
pub fn allocate_min_cost_with(
    movies: &[MovieSpec],
    budgets: Budgets,
    prices: &ResourceCost,
    opts: &ModelOptions,
    exec: &SweepExecutor,
) -> Result<ResourcePlan, SizingError> {
    if movies.is_empty() {
        return Err(SizingError::NoMovies);
    }
    if budgets.streams < movies.len() as u32 {
        return Err(SizingError::StreamBudgetTooSmall {
            needed: movies.len() as u32,
            available: budgets.streams,
        });
    }
    let cands = candidates_with(movies, opts, exec)?;
    let ns = water_fill(
        &cands,
        budgets.streams,
        |m| prices.buffer_per_minute() * m.max_wait - prices.per_stream(),
        false,
    );
    let plan = build_plan(&cands, &ns, opts)?;
    if let Some(bs) = budgets.buffer {
        let total = plan.total_buffer();
        if total > bs + 1e-9 {
            return Err(SizingError::BufferBudgetTooSmall {
                needed: total,
                available: bs,
            });
        }
    }
    Ok(plan)
}

/// Minimum total buffer achievable with *exactly* `n_total` streams spread
/// over the catalog (used to trace the Figure-9 cost curves). Returns
/// `None` when `n_total` is below the movie count or above `Σ n_max,i`.
pub fn min_buffer_at_stream_total(
    movies: &[MovieSpec],
    n_total: u32,
    opts: &ModelOptions,
) -> Result<Option<ResourcePlan>, SizingError> {
    if movies.is_empty() {
        return Err(SizingError::NoMovies);
    }
    let catalog = Catalog::new(movies, opts)?;
    // fill_exactly fills the whole budget unless boxes bind first; the
    // range was checked against Σ n_max inside min_buffer_split, so the
    // fill is exact.
    catalog.plan_at_stream_total(n_total, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movie::example1_movies;
    use std::sync::Arc;
    use vod_dist::kinds::Exponential;
    use vod_model::{Rates, VcrMix};

    fn opts() -> ModelOptions {
        ModelOptions::default()
    }

    fn toy_movies() -> Vec<MovieSpec> {
        // Short movies with coarse waits keep n_max small so brute force
        // stays cheap.
        let mk = |name: &str, l: f64, w: f64, mean: f64| {
            MovieSpec::new(
                name,
                l,
                w,
                0.5,
                VcrMix::paper_fig7d(),
                Arc::new(Exponential::with_mean(mean).unwrap()),
                Rates::paper(),
            )
            .unwrap()
        };
        vec![
            mk("a", 30.0, 1.0, 4.0),
            mk("b", 45.0, 1.5, 6.0),
            mk("c", 24.0, 0.5, 2.0),
        ]
    }

    fn assert_plans_bitwise_equal(a: &ResourcePlan, b: &ResourcePlan) {
        assert_eq!(a.allocations.len(), b.allocations.len());
        for (x, y) in a.allocations.iter().zip(&b.allocations) {
            assert_eq!(x.movie, y.movie);
            assert_eq!(x.n_streams, y.n_streams);
            assert_eq!(x.buffer.to_bits(), y.buffer.to_bits());
            assert_eq!(x.p_hit.to_bits(), y.p_hit.to_bits());
        }
    }

    #[test]
    fn parallel_allocation_matches_serial_bitwise() {
        let movies = toy_movies();
        let o = opts();
        let budgets = Budgets {
            streams: 40,
            buffer: None,
        };
        let serial = allocate_min_buffer(&movies, budgets, &o).unwrap();
        let exec = SweepExecutor::new(4);
        let par = allocate_min_buffer_with(&movies, budgets, &o, &exec).unwrap();
        assert_plans_bitwise_equal(&serial, &par);
        // Determinism: a second parallel run agrees exactly.
        let again = allocate_min_buffer_with(&movies, budgets, &o, &exec).unwrap();
        assert_plans_bitwise_equal(&par, &again);

        let prices = ResourceCost::new(3.0, 1.0).unwrap();
        let serial = allocate_min_cost(&movies, budgets, &prices, &o).unwrap();
        let par = allocate_min_cost_with(&movies, budgets, &prices, &o, &exec).unwrap();
        assert_plans_bitwise_equal(&serial, &par);
    }

    #[test]
    fn catalog_memo_absorbs_repeat_plan_queries() {
        let movies = toy_movies();
        let o = opts();
        let catalog = Catalog::new(&movies, &o).unwrap();
        let after_frontier = catalog.model_evaluations();
        assert!(after_frontier > 0);
        let p1 = catalog.plan_at_stream_total(12, &o).unwrap().unwrap();
        let after_first = catalog.model_evaluations();
        let p2 = catalog.plan_at_stream_total(12, &o).unwrap().unwrap();
        assert_plans_bitwise_equal(&p1, &p2);
        assert_eq!(
            catalog.model_evaluations(),
            after_first,
            "repeat plan query must be served entirely from the memo"
        );
    }

    #[test]
    fn greedy_matches_brute_force_min_buffer() {
        let movies = toy_movies();
        let o = opts();
        let cands = candidates(&movies, &o).unwrap();
        let maxes: Vec<u32> = cands.iter().map(|c| c.n_max).collect();
        for budget in [3u32, 10, 25, 60, 200] {
            let Ok(plan) = allocate_min_buffer(
                &movies,
                Budgets {
                    streams: budget,
                    buffer: None,
                },
                &o,
            ) else {
                continue;
            };
            // Brute force over all (n_a, n_b, n_c) within boxes and budget.
            let mut best = f64::INFINITY;
            for na in 1..=maxes[0] {
                for nb in 1..=maxes[1] {
                    for nc in 1..=maxes[2] {
                        if na + nb + nc > budget {
                            continue;
                        }
                        let total = movies[0].buffer_for_streams(na)
                            + movies[1].buffer_for_streams(nb)
                            + movies[2].buffer_for_streams(nc);
                        best = best.min(total);
                    }
                }
            }
            assert!(
                (plan.total_buffer() - best).abs() < 1e-9,
                "budget {budget}: greedy {} vs brute {best}",
                plan.total_buffer()
            );
        }
    }

    #[test]
    fn greedy_matches_brute_force_min_cost() {
        let movies = toy_movies();
        let o = opts();
        let cands = candidates(&movies, &o).unwrap();
        let maxes: Vec<u32> = cands.iter().map(|c| c.n_max).collect();
        for phi in [0.2, 0.9, 2.0, 11.0] {
            let prices = ResourceCost::new(phi, 1.0).unwrap();
            let budget = 60u32;
            let plan = allocate_min_cost(
                &movies,
                Budgets {
                    streams: budget,
                    buffer: None,
                },
                &prices,
                &o,
            )
            .unwrap();
            let mut best = f64::INFINITY;
            for na in 1..=maxes[0] {
                for nb in 1..=maxes[1] {
                    for nc in 1..=maxes[2] {
                        if na + nb + nc > budget {
                            continue;
                        }
                        let buf = movies[0].buffer_for_streams(na)
                            + movies[1].buffer_for_streams(nb)
                            + movies[2].buffer_for_streams(nc);
                        best = best.min(prices.total(buf, na + nb + nc));
                    }
                }
            }
            assert!(
                (plan.cost(&prices) - best).abs() < 1e-9,
                "phi {phi}: greedy {} vs brute {best}",
                plan.cost(&prices)
            );
        }
    }

    #[test]
    fn plans_respect_constraints() {
        let movies = toy_movies();
        let o = opts();
        let plan = allocate_min_buffer(
            &movies,
            Budgets {
                streams: 40,
                buffer: None,
            },
            &o,
        )
        .unwrap();
        assert!(plan.total_streams() <= 40);
        for a in &plan.allocations {
            assert!(a.p_hit >= 0.5 - 1e-9, "{}: p_hit {}", a.movie, a.p_hit);
            assert!(a.n_streams >= 1);
        }
    }

    #[test]
    fn budget_errors() {
        let movies = toy_movies();
        let o = opts();
        assert!(matches!(
            allocate_min_buffer(
                &movies,
                Budgets {
                    streams: 2,
                    buffer: None
                },
                &o
            ),
            Err(SizingError::StreamBudgetTooSmall { .. })
        ));
        assert!(matches!(
            allocate_min_buffer(
                &movies,
                Budgets {
                    streams: 40,
                    buffer: Some(1.0)
                },
                &o
            ),
            Err(SizingError::BufferBudgetTooSmall { .. })
        ));
    }

    #[test]
    fn stream_total_sweep_monotone_in_buffer() {
        // More streams ⇒ no more buffer needed: minΣB is non-increasing.
        let movies = toy_movies();
        let o = opts();
        let mut prev = f64::INFINITY;
        for n in (3..=60).step_by(7) {
            if let Some(plan) = min_buffer_at_stream_total(&movies, n, &o).unwrap() {
                let b = plan.total_buffer();
                assert!(b <= prev + 1e-9, "n={n}: {b} > {prev}");
                assert_eq!(plan.total_streams(), n);
                prev = b;
            }
        }
    }

    #[test]
    fn example1_saves_hundreds_of_streams() {
        // The paper's headline: pure batching needs 1230 streams; with
        // buffering the same QoS needs far fewer (the paper reports 602
        // streams + 113.5 buffer minutes; exact numbers depend on the
        // unpublished RW/PAU derivations, the qualitative claim must hold).
        let movies = example1_movies(VcrMix::paper_fig7d());
        let o = opts();
        let plan = allocate_min_buffer(
            &movies,
            Budgets {
                streams: 1230,
                buffer: None,
            },
            &o,
        )
        .unwrap();
        let pure: u32 = movies.iter().map(|m| m.pure_batching_streams()).sum();
        assert_eq!(pure, 1230);
        assert!(
            plan.total_streams() < 900,
            "expected large stream savings, used {}",
            plan.total_streams()
        );
        assert!(
            plan.total_buffer() < 250.0,
            "buffer cost should stay modest: {}",
            plan.total_buffer()
        );
        for a in &plan.allocations {
            assert!(a.p_hit >= 0.5 - 1e-9);
        }
    }
}
