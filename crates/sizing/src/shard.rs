//! Federation budget splitting: partition one §5 Step-3 allocation
//! across independent catalog shards.
//!
//! The federation front tier (crate `vod-federation`) runs N independent
//! servers, each hosting a disjoint slice of the catalog. The sizing
//! question is unchanged — *how should the global `(B_s, n_s)` budget be
//! split so every movie meets its QoS targets?* — so the split reuses
//! the single-server optimizer verbatim: [`split_budget`] first solves
//! the global problem with [`allocate_min_buffer`], then partitions the
//! *movies* (each carrying its optimal `(B_i*, n_i*)`) across shards
//! with a deterministic greedy balance (heaviest movie by `n_i*` onto
//! the least-loaded shard, ties broken by input order and shard index).
//! Splitting after optimizing keeps the global allocation exactly
//! optimal — per-shard budgets are derived from the assignment, not the
//! other way round — and makes conservation trivially auditable:
//! per-shard budgets sum to the global plan's totals, exactly for
//! streams and to the f64 sum for buffer.

use crate::{allocate_min_buffer, Budgets, MovieSpec, ResourcePlan, SizingError};
use vod_model::ModelOptions;

/// A global [`ResourcePlan`] partitioned across federation shards.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// The global allocation (movies in input order) the split preserves.
    pub plan: ResourcePlan,
    /// Per shard: indices into `plan.allocations` of the movies it
    /// hosts, ascending. Every movie appears on exactly one shard, and
    /// every shard hosts at least one movie.
    pub shard_movies: Vec<Vec<usize>>,
    /// Per shard: the derived `(streams, buffer)` budget — the sums of
    /// its movies' `n_i*` and `B_i*`. `buffer` is always `Some`.
    pub shard_budgets: Vec<Budgets>,
}

impl ShardPlan {
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shard_movies.len()
    }

    /// The sub-plan hosted by shard `s` (allocations in the shard's
    /// local movie order — local movie id = position in the returned
    /// plan, matching `config_from_plan` downstream).
    pub fn shard_plan(&self, s: usize) -> ResourcePlan {
        ResourcePlan {
            allocations: self.shard_movies[s]
                .iter()
                .map(|&i| self.plan.allocations[i].clone())
                .collect(),
        }
    }

    /// Which shard hosts global movie index `i`.
    pub fn shard_of(&self, i: usize) -> usize {
        self.shard_movies
            .iter()
            .position(|ms| ms.contains(&i))
            // vod-lint: allow(no-panic) — every global index is placed
            // on exactly one shard by construction.
            .expect("movie placed on a shard")
    }
}

/// Solve the global allocation and split it across `shards` catalog
/// shards. Deterministic: same inputs ⇒ bitwise-identical plan and
/// assignment. Errors propagate from [`allocate_min_buffer`];
/// additionally `shards` must satisfy `1 ≤ shards ≤ movies.len()`
/// ([`SizingError::ShardCountInvalid`]).
pub fn split_budget(
    movies: &[MovieSpec],
    budgets: Budgets,
    shards: u32,
    opts: &ModelOptions,
) -> Result<ShardPlan, SizingError> {
    if shards == 0 || shards as usize > movies.len() {
        return Err(SizingError::ShardCountInvalid {
            shards,
            movies: movies.len() as u32,
        });
    }
    let plan = allocate_min_buffer(movies, budgets, opts)?;
    // Greedy balance (LPT): heaviest movie first onto the least-loaded
    // shard. Ordering ties break toward the lower input index, shard
    // ties toward the lower shard index — both fixed, so the assignment
    // is a pure function of the plan.
    let mut order: Vec<usize> = (0..plan.allocations.len()).collect();
    order.sort_by(|&a, &b| {
        plan.allocations[b]
            .n_streams
            .cmp(&plan.allocations[a].n_streams)
            .then(a.cmp(&b))
    });
    let mut shard_movies: Vec<Vec<usize>> = vec![Vec::new(); shards as usize];
    let mut load: Vec<u64> = vec![0; shards as usize];
    for &i in &order {
        let s = (0..load.len())
            .min_by_key(|&s| (load[s], s))
            // vod-lint: allow(no-panic) — shards ≥ 1 was checked above.
            .expect("at least one shard");
        shard_movies[s].push(i);
        load[s] += u64::from(plan.allocations[i].n_streams);
    }
    for ms in &mut shard_movies {
        ms.sort_unstable();
    }
    let shard_budgets = shard_movies
        .iter()
        .map(|ms| Budgets {
            streams: ms.iter().map(|&i| plan.allocations[i].n_streams).sum(),
            buffer: Some(ms.iter().map(|&i| plan.allocations[i].buffer).sum()),
        })
        .collect();
    Ok(ShardPlan {
        plan,
        shard_movies,
        shard_budgets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movie::example1_movies;
    use vod_model::VcrMix;

    fn split(shards: u32) -> ShardPlan {
        let movies = example1_movies(VcrMix::paper_fig7d());
        split_budget(
            &movies,
            Budgets {
                streams: 1230,
                buffer: None,
            },
            shards,
            &ModelOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn split_conserves_the_global_budget() {
        for shards in [1u32, 2, 3] {
            let sp = split(shards);
            assert_eq!(sp.shards(), shards as usize);
            // Every movie on exactly one shard.
            let mut seen = vec![0u32; sp.plan.allocations.len()];
            for ms in &sp.shard_movies {
                assert!(!ms.is_empty(), "every shard hosts at least one movie");
                for &i in ms {
                    seen[i] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "partition, not a cover");
            // Budgets derived from the assignment sum back exactly.
            let streams: u32 = sp.shard_budgets.iter().map(|b| b.streams).sum();
            assert_eq!(streams, sp.plan.total_streams());
            let buffer: f64 = sp.shard_budgets.iter().map(|b| b.buffer.unwrap()).sum();
            assert!((buffer - sp.plan.total_buffer()).abs() < 1e-6);
            // shard_of agrees with the assignment lists.
            for (s, ms) in sp.shard_movies.iter().enumerate() {
                for &i in ms {
                    assert_eq!(sp.shard_of(i), s);
                }
            }
        }
    }

    #[test]
    fn split_is_deterministic_and_balanced() {
        let a = split(2);
        let b = split(2);
        assert_eq!(a, b, "same inputs must reproduce the split bitwise");
        // LPT balance: no shard holds more than ~2/3 of the streams on
        // Example 1's five-movie catalog (a loose sanity bound — the
        // greedy is exact on its own objective, not a heuristic test).
        let total = a.plan.total_streams();
        for b in &a.shard_budgets {
            assert!(
                b.streams * 3 <= total * 2,
                "shard holds {} of {total} streams",
                b.streams
            );
        }
    }

    #[test]
    fn shard_plan_preserves_local_order() {
        let sp = split(3);
        for s in 0..sp.shards() {
            let local = sp.shard_plan(s);
            assert_eq!(local.allocations.len(), sp.shard_movies[s].len());
            for (pos, &i) in sp.shard_movies[s].iter().enumerate() {
                assert_eq!(local.allocations[pos], sp.plan.allocations[i]);
            }
        }
    }

    #[test]
    fn shard_count_bounds_are_errors() {
        let movies = example1_movies(VcrMix::paper_fig7d());
        let budgets = Budgets {
            streams: 1230,
            buffer: None,
        };
        let o = ModelOptions::default();
        assert!(matches!(
            split_budget(&movies, budgets, 0, &o),
            Err(SizingError::ShardCountInvalid { .. })
        ));
        assert!(matches!(
            split_budget(&movies, budgets, movies.len() as u32 + 1, &o),
            Err(SizingError::ShardCountInvalid { .. })
        ));
    }
}
