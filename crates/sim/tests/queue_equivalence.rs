//! The event-queue equivalence gate: the timer-wheel-bucketed queue must
//! be **bitwise identical** to the historical single global heap it
//! replaced — same seeds, same pop order, same full [`CatalogReport`]
//! (traces included) — across single-movie, catalog, capped-reserve, and
//! fault-plan configurations. The heap survives in the engine behind
//! `run_catalog_seeded_reference` exactly so this suite can hold that
//! line.

#![allow(clippy::unwrap_used)]

use std::sync::Arc;

use vod_dist::kinds::Gamma;
use vod_model::{Rates, SystemParams};
use vod_runtime::{FaultEvent, FaultKind, FaultPlan};
use vod_sim::{
    run_catalog_seeded, run_catalog_seeded_reference, CatalogConfig, MovieLoad, SimConfig,
};
use vod_workload::BehaviorModel;

fn behavior(mix: (f64, f64, f64), mean_play_between: f64) -> BehaviorModel {
    BehaviorModel::uniform_dist(mix, mean_play_between, Arc::new(Gamma::paper_fig7()))
}

fn movie(len: f64, buffer: f64, n: u32, interarrival: f64) -> MovieLoad {
    MovieLoad {
        params: SystemParams::new(len, buffer, n, Rates::paper()).unwrap(),
        mean_interarrival: interarrival,
        behavior: behavior((0.2, 0.2, 0.6), 20.0),
    }
}

fn single_movie() -> CatalogConfig {
    let params = SystemParams::new(120.0, 60.0, 20, Rates::paper()).unwrap();
    SimConfig::new(params, behavior((0.2, 0.2, 0.6), 30.0)).into()
}

/// Three movies of different geometry sharing a finite reserve, with
/// traces on so the comparison covers per-operation event order, not
/// just aggregate counters.
fn catalog() -> CatalogConfig {
    CatalogConfig {
        movies: vec![
            movie(120.0, 60.0, 20, 2.0),
            movie(90.0, 30.0, 10, 3.0),
            movie(150.0, 50.0, 25, 5.0),
        ],
        horizon: 2400.0,
        warmup: 300.0,
        count_ff_end_as_hit: true,
        collect_trace: true,
        dedicated_capacity: Some(12),
        faults: FaultPlan::empty(),
        backend: vod_runtime::BackendKind::BatchingBuffering,
    }
}

#[test]
fn wheel_matches_heap_fault_free() {
    for (name, cfg) in [("single", single_movie()), ("catalog", catalog())] {
        for seed in [1u64, 7, 23, 1901] {
            let wheel = run_catalog_seeded(&cfg, seed);
            let heap = run_catalog_seeded_reference(&cfg, seed);
            assert_eq!(wheel, heap, "queues diverged (config {name}, seed {seed})");
        }
    }
}

#[test]
fn wheel_matches_heap_under_faults() {
    let plans = [
        (
            "loss+squeeze",
            FaultPlan::new(vec![
                FaultEvent {
                    at: 500,
                    kind: FaultKind::DiskStreamLoss { count: 4 },
                },
                FaultEvent {
                    at: 700,
                    kind: FaultKind::BufferShrink { segments: 30 },
                },
                FaultEvent {
                    at: 1100,
                    kind: FaultKind::BufferRestore { segments: 30 },
                },
            ]),
        ),
        (
            "outage",
            FaultPlan::new(vec![FaultEvent {
                at: 600,
                kind: FaultKind::DiskOutage {
                    count: 8,
                    recover_after: 150,
                },
            }]),
        ),
        ("storm", FaultPlan::generate(9, 2400, 8)),
    ];
    for (name, plan) in plans {
        let cfg = CatalogConfig {
            faults: plan,
            ..catalog()
        };
        for seed in [7u64, 23] {
            let wheel = run_catalog_seeded(&cfg, seed);
            let heap = run_catalog_seeded_reference(&cfg, seed);
            assert_eq!(wheel, heap, "queues diverged (plan {name}, seed {seed})");
            assert!(
                wheel.runtime.faults_injected > 0,
                "plan {name} never fired — the fault leg tested nothing"
            );
        }
    }
}
