//! Validate the Erlang-loss view of the VCR reserve (the extension
//! described in EXPERIMENTS.md): measure the offered load with an
//! infinite reserve, then check that a finite reserve's denial rate
//! tracks the Erlang-B prediction.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use std::sync::Arc;

use vod_dist::kinds::Gamma;
use vod_model::{Rates, SystemParams};
use vod_sim::{run_seeded, SimConfig};
use vod_sizing::erlang_b;
use vod_workload::BehaviorModel;

fn base_config() -> SimConfig {
    // Small buffer → low hit probability → long dedicated holds: a
    // regime where the reserve actually matters.
    let params = SystemParams::new(120.0, 24.0, 12, Rates::paper()).expect("valid");
    let behavior =
        BehaviorModel::uniform_dist((0.45, 0.45, 0.1), 25.0, Arc::new(Gamma::paper_fig7()));
    let mut cfg = SimConfig::new(params, behavior);
    cfg.mean_interarrival = 1.5;
    cfg.horizon = 60.0 * 120.0;
    cfg.warmup = 5.0 * 120.0;
    cfg
}

#[test]
fn denial_rate_tracks_erlang_b() {
    // 1. Offered load from the uncapped system (carried == offered).
    let free = run_seeded(&base_config(), 77);
    let offered = free.runtime.dedicated_avg;
    assert!(offered > 3.0, "load too light to test blocking: {offered}");
    assert_eq!(free.runtime.vcr_denied, 0);
    assert_eq!(free.runtime.resume_starved, 0);

    // 2. Cap the reserve at/above the offered load — the regime a sized
    //    system operates in. Denials must appear and match Erlang-B
    //    within simulation noise. (Erlang-B's insensitivity covers our
    //    non-exponential holds; its Poisson-attempt assumption holds
    //    approximately for a large independent viewer population.)
    for cap_factor in [1.0, 1.25] {
        let cap = ((offered * cap_factor).round() as u32).max(1);
        let mut cfg = base_config();
        cfg.dedicated_capacity = Some(cap);
        let run = run_seeded(&cfg, 78);
        let denials = run.runtime.vcr_denied + run.runtime.resume_starved;
        assert!(run.runtime.acquisition_attempts > 500, "too few attempts");
        let measured = denials as f64 / run.runtime.acquisition_attempts as f64;
        let predicted = erlang_b(cap, offered);
        assert!(
            (measured - predicted).abs() < 0.06,
            "cap {cap} (offered {offered:.2}): measured {measured:.3} vs Erlang-B {predicted:.3}"
        );
        // Carried load cannot exceed the cap.
        assert!(run.runtime.dedicated_avg <= cap as f64 + 1e-9);
        assert!(run.runtime.dedicated_peak <= cap as f64 + 1e-9);
    }

    // 3. Deep overload (cap = 0.6·offered): denied viewers stay batched
    //    and *retry* later, so the loss system becomes a retrial queue
    //    and Erlang-B systematically underpredicts. Assert the direction
    //    and rough scale rather than equality.
    let cap = (offered * 0.6).round() as u32;
    let mut cfg = base_config();
    cfg.dedicated_capacity = Some(cap);
    let run = run_seeded(&cfg, 78);
    let measured = (run.runtime.vcr_denied + run.runtime.resume_starved) as f64
        / run.runtime.acquisition_attempts as f64;
    let predicted = erlang_b(cap, offered);
    assert!(
        measured >= predicted - 0.02 && measured < predicted + 0.3,
        "overload: measured {measured:.3}, Erlang-B {predicted:.3}"
    );
}

#[test]
fn generous_reserve_never_denies() {
    let mut cfg = base_config();
    let free = run_seeded(&cfg, 79);
    cfg.dedicated_capacity = Some((free.runtime.dedicated_peak as u32) + 5);
    let run = run_seeded(&cfg, 79);
    assert_eq!(run.runtime.vcr_denied, 0);
    assert_eq!(run.runtime.resume_starved, 0);
    // Identical seed and effectively-uncapped reserve: statistics match
    // the free run exactly.
    assert_eq!(run.runtime.resumes.trials(), free.runtime.resumes.trials());
    assert_eq!(run.runtime.resumes.hits(), free.runtime.resumes.hits());
}

#[test]
fn tighter_reserve_more_denials() {
    let mut prev = u64::MAX;
    for cap in [2u32, 5, 12, 40] {
        let mut cfg = base_config();
        cfg.dedicated_capacity = Some(cap);
        let run = run_seeded(&cfg, 80);
        let denials = run.runtime.vcr_denied + run.runtime.resume_starved;
        assert!(
            denials <= prev,
            "cap {cap}: denials {denials} did not decrease (prev {prev})"
        );
        prev = denials;
    }
    assert!(prev < u64::MAX);
}
