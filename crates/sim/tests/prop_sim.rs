//! Property-based tests of the simulator: conservation laws and geometry
//! under arbitrary valid configurations.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use std::sync::Arc;

use proptest::prelude::*;

use vod_dist::kinds::Exponential;
use vod_model::{Rates, SystemParams};
use vod_sim::{partition_hit_for_tests, run_seeded, SimConfig};
use vod_workload::BehaviorModel;

fn any_config() -> impl Strategy<Value = SimConfig> {
    (
        60.0f64..150.0, // movie length
        0.05f64..0.95,  // buffer fraction
        2u32..40,       // streams
        1.0f64..20.0,   // VCR duration mean
        0.0f64..1.0,    // ff weight
        0.0f64..1.0,    // rw fraction of remainder
        5.0f64..60.0,   // think time
    )
        .prop_map(|(l, bfrac, n, mean, ffw, rwf, think)| {
            let params = SystemParams::new(l, bfrac * l, n, Rates::paper()).unwrap();
            let rww = (1.0 - ffw) * rwf;
            let behavior = BehaviorModel::uniform_dist(
                (ffw, rww, 1.0 - ffw - rww),
                think,
                Arc::new(Exponential::with_mean(mean).unwrap()),
            );
            let mut cfg = SimConfig::new(params, behavior);
            cfg.horizon = 10.0 * l;
            cfg.warmup = 2.0 * l;
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reports_are_internally_consistent(cfg in any_config(), seed in 0u64..500) {
        let r = run_seeded(&cfg, seed);
        // Ratios are probabilities.
        prop_assert!((0.0..=1.0).contains(&r.runtime.resumes.value()));
        // Per-kind trials sum to the overall count.
        let per: u64 = r.runtime.resumes_by_kind.iter().map(|k| k.trials()).sum();
        prop_assert_eq!(per, r.runtime.resumes.trials());
        let hits: u64 = r.runtime.resumes_by_kind.iter().map(|k| k.hits()).sum();
        prop_assert_eq!(hits, r.runtime.resumes.hits());
        // Waits bounded by w; type-2 viewers wait zero.
        prop_assert!(r.wait.mean() <= cfg.params.max_wait() + 1e-9);
        // Resource usage sane.
        prop_assert!(r.runtime.dedicated_avg >= 0.0);
        prop_assert!(r.runtime.dedicated_peak >= r.runtime.dedicated_avg - 1e-9);
        // Population sanity: completions never exceed arrivals plus the
        // pre-warmup backlog. (A *tight* conservation bound is impossible
        // for arbitrary behavior: a mix dominated by long rewinds gives
        // viewers no net forward progress, so they legitimately stay in
        // the system for the whole horizon — see
        // engine_behavior::conservation_of_viewers for the tight check
        // under the paper's workload.)
        let backlog = (cfg.warmup / cfg.mean_interarrival).ceil() as u64 + 10;
        prop_assert!(
            r.viewers_completed <= r.viewers_arrived + backlog,
            "completed {} exceeds arrivals {} + backlog {backlog}",
            r.viewers_completed,
            r.viewers_arrived
        );
    }

    #[test]
    fn determinism(cfg in any_config(), seed in 0u64..500) {
        let a = run_seeded(&cfg, seed);
        let b = run_seeded(&cfg, seed);
        prop_assert_eq!(a.runtime.resumes.trials(), b.runtime.resumes.trials());
        prop_assert_eq!(a.runtime.resumes.hits(), b.runtime.resumes.hits());
        prop_assert!((a.runtime.dedicated_avg - b.runtime.dedicated_avg).abs() < 1e-12);
    }

    #[test]
    fn partition_membership_matches_brute_force(
        cfg in any_config(),
        t in 200.0f64..2000.0,
        p_frac in 0.0f64..1.0,
    ) {
        // O(1) window arithmetic vs explicit enumeration of streams.
        let l = cfg.params.movie_len();
        let tt = cfg.params.restart_interval();
        let b = cfg.params.partition_len();
        let p = p_frac * l;
        let fast = partition_hit_for_tests(&cfg, t, p);
        let mut slow = false;
        let mut k = 0.0f64;
        while k * tt <= t {
            let age = t - k * tt;
            if age <= l && p <= age + 1e-9 && p >= age - b - 1e-9 && p >= (age - b).max(0.0) - 1e-9
            {
                // inside [max(0, age−b), age]
                if p <= age && p >= age - b {
                    slow = true;
                    break;
                }
            }
            k += 1.0;
        }
        // Tolerate boundary-epsilon disagreement by re-checking with a
        // nudged position when the verdicts differ.
        if fast != slow {
            let nudged = partition_hit_for_tests(&cfg, t, p + 1e-6)
                || partition_hit_for_tests(&cfg, t, (p - 1e-6).max(0.0));
            prop_assert!(
                nudged == slow || (p % tt).abs() < 1e-6,
                "fast {fast} vs slow {slow} at t={t} p={p}"
            );
        }
    }
}
