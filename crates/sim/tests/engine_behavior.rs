//! Behavioral tests of the discrete-event engine: determinism,
//! conservation laws, geometry, and agreement with the analytic model
//! (the paper's §4 claim).

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use std::sync::Arc;

use vod_dist::kinds::{Exponential, Gamma};
use vod_model::{p_hit_single_dist, ModelOptions, Rates, SystemParams, VcrMix};
use vod_sim::{partition_hit_for_tests, run_replications, run_seeded, SimConfig};
use vod_workload::{BehaviorModel, VcrKind};

fn behavior(mix: (f64, f64, f64)) -> BehaviorModel {
    BehaviorModel::uniform_dist(mix, 30.0, Arc::new(Gamma::paper_fig7()))
}

fn config(buffer: f64, n: u32, mix: (f64, f64, f64)) -> SimConfig {
    let params = SystemParams::new(120.0, buffer, n, Rates::paper()).unwrap();
    SimConfig::new(params, behavior(mix))
}

#[test]
fn identical_seeds_identical_reports() {
    let cfg = config(60.0, 20, (0.2, 0.2, 0.6));
    let a = run_seeded(&cfg, 7);
    let b = run_seeded(&cfg, 7);
    assert_eq!(a.runtime.resumes.trials(), b.runtime.resumes.trials());
    assert_eq!(a.runtime.resumes.hits(), b.runtime.resumes.hits());
    assert_eq!(a.viewers_completed, b.viewers_completed);
    assert!((a.runtime.dedicated_avg - b.runtime.dedicated_avg).abs() < 1e-12);
}

#[test]
fn different_seeds_differ() {
    let cfg = config(60.0, 20, (0.2, 0.2, 0.6));
    let a = run_seeded(&cfg, 1);
    let b = run_seeded(&cfg, 2);
    assert_ne!(
        (a.runtime.resumes.trials(), a.runtime.resumes.hits()),
        (b.runtime.resumes.trials(), b.runtime.resumes.hits())
    );
}

#[test]
fn waits_bounded_by_w() {
    // Eq. (2): the maximum batching wait is w = (l − B)/n.
    let cfg = config(60.0, 20, (0.2, 0.2, 0.6));
    let w = cfg.params.max_wait();
    let report = run_seeded(&cfg, 3);
    assert!(report.wait.count() > 100);
    // Mean wait of a mix of type-2 (0) and type-1 (≤ w) viewers.
    assert!(report.wait.mean() <= w + 1e-9);
    // Enrollment fraction should approximate b/T = B/l.
    let expect_type2 = cfg.params.buffer() / cfg.params.movie_len();
    let got = report.type2_fraction.value();
    assert!(
        (got - expect_type2).abs() < 0.05,
        "type-2 fraction {got} vs geometric {expect_type2}"
    );
}

#[test]
fn pure_batching_never_hits_rw_pau() {
    let cfg = config(0.0, 20, (0.2, 0.2, 0.6));
    let report = run_seeded(&cfg, 5);
    assert_eq!(report.hit_ratio(VcrKind::Rewind).hits(), 0);
    assert_eq!(report.hit_ratio(VcrKind::Pause).hits(), 0);
    // FF can still "hit" by running off the end of the movie.
    assert_eq!(
        report.hit_ratio(VcrKind::FastForward).hits(),
        report.runtime.ff_end
    );
}

#[test]
fn full_buffer_geometry_covers_all_but_end_sliver() {
    // B = l ⇒ windows tile the whole movie — except near the end, where
    // the stream that displayed those frames may have already terminated.
    // At t = 500 (age offset 8 within the 12-minute period) the oldest
    // live stream has age 116, so [0, 116] is covered and (116, 120] is
    // not; at an exact restart instant (t = 504) everything is covered.
    let cfg = config(120.0, 10, (1.0, 0.0, 0.0));
    for i in 0..=100 {
        let p = i as f64 * 1.16;
        assert!(
            partition_hit_for_tests(&cfg, 500.0, p),
            "position {p} uncovered at t=500"
        );
    }
    assert!(!partition_hit_for_tests(&cfg, 500.0, 118.0));
    for i in 0..=100 {
        let p = i as f64 * 1.2;
        assert!(
            partition_hit_for_tests(&cfg, 504.0, p),
            "position {p} uncovered at t=504"
        );
    }
}

#[test]
fn partition_geometry_matches_window_arithmetic() {
    // b = 6, T = 12: at time t = 600 (multiple of T), stream ages are
    // 0, 12, 24, …; windows are [max(0,a−6), a]. Position p is covered
    // iff p mod 12 ∈ [6, 12] ∪ {0-ish}.
    let cfg = config(60.0, 10, (1.0, 0.0, 0.0));
    assert_eq!(cfg.params.partition_len(), 6.0);
    assert_eq!(cfg.params.restart_interval(), 12.0);
    let t = 600.0;
    for (p, want) in [
        (0.0, true),   // age-0 stream front
        (3.0, false),  // gap: ages 0 and 12 windows are [0,0] and [6,12]
        (7.0, true),   // inside [6,12]
        (12.0, true),  // front of the age-12 stream
        (17.0, false), // gap of the next period
        (20.0, true),
        (118.5, true), // inside [114,120] of the age-120 stream
    ] {
        assert_eq!(
            partition_hit_for_tests(&cfg, t, p),
            want,
            "position {p} at t={t}"
        );
    }
}

#[test]
fn dedicated_streams_tracked() {
    let cfg = config(30.0, 10, (0.4, 0.4, 0.2));
    let report = run_seeded(&cfg, 11);
    assert!(
        report.runtime.dedicated_avg > 0.0,
        "avg {}",
        report.runtime.dedicated_avg
    );
    assert!(report.runtime.dedicated_peak >= report.runtime.dedicated_avg);
    // With ~60 concurrent viewers and sporadic VCR ops, dedicated use
    // must stay well below the viewer population.
    assert!(
        report.runtime.dedicated_peak < 80.0,
        "peak {}",
        report.runtime.dedicated_peak
    );
}

#[test]
fn conservation_of_viewers() {
    let cfg = config(60.0, 20, (0.2, 0.2, 0.6));
    let report = run_seeded(&cfg, 13);
    // Steady state: arrivals ≈ completions within the active-population
    // slack (λ·l ≈ 60 viewers in flight).
    let arrived = report.viewers_arrived as f64;
    let completed = report.viewers_completed as f64;
    assert!(arrived > 0.0);
    assert!(
        (arrived - completed).abs() < 120.0,
        "arrived {arrived} vs completed {completed}"
    );
}

#[test]
fn more_buffer_more_hits_in_simulation() {
    let mix = (0.2, 0.2, 0.6);
    let lo = run_replications(&config(12.0, 12, mix), 100, 3);
    let hi = run_replications(&config(90.0, 12, mix), 100, 3);
    assert!(
        hi.overall.mean() > lo.overall.mean() + 0.05,
        "B=90 ({}) should clearly beat B=12 ({})",
        hi.overall.mean(),
        lo.overall.mean()
    );
}

#[test]
fn simulation_matches_model_ff_only() {
    let cfg = config(60.0, 20, (1.0, 0.0, 0.0));
    let agg = run_replications(&cfg, 1000, 4);
    let model = p_hit_single_dist(
        &cfg.params,
        &Gamma::paper_fig7(),
        &VcrMix::ff_only(),
        &ModelOptions::default(),
    )
    .total;
    let sim = agg.overall.mean();
    assert!(
        (sim - model).abs() < 0.04,
        "FF: sim {sim:.4} vs model {model:.4}"
    );
}

#[test]
fn simulation_matches_model_mixed() {
    let cfg = config(60.0, 20, (0.2, 0.2, 0.6));
    let agg = run_replications(&cfg, 2000, 4);
    let model = p_hit_single_dist(
        &cfg.params,
        &Gamma::paper_fig7(),
        &VcrMix::paper_fig7d(),
        &ModelOptions::default(),
    )
    .total;
    let sim = agg.overall.mean();
    assert!(
        (sim - model).abs() < 0.05,
        "mixed: sim {sim:.4} vs model {model:.4}"
    );
}

#[test]
fn model_underestimates_rw_as_paper_describes() {
    // §4: "our model underestimates the probability of a hit for the RW
    // and PAU cases" (position-0 resumes count as misses in the model but
    // can hit the enrollment window in the real system). With a duration
    // law that rewinds to the start often, the bias direction must show.
    let params = SystemParams::new(120.0, 60.0, 10, Rates::paper()).unwrap();
    let b = BehaviorModel::uniform_dist(
        (0.0, 1.0, 0.0),
        30.0,
        Arc::new(Exponential::with_mean(40.0).unwrap()),
    );
    let cfg = SimConfig::new(params, b);
    let agg = run_replications(&cfg, 3000, 4);
    let model = p_hit_single_dist(
        &cfg.params,
        &Exponential::with_mean(40.0).unwrap(),
        &VcrMix::rw_only(),
        &ModelOptions::default(),
    )
    .total;
    let sim = agg.overall.mean();
    assert!(
        sim + 0.02 > model,
        "simulated RW hits ({sim:.4}) should not fall below the model ({model:.4})"
    );
}

#[test]
fn trace_collection_works() {
    let mut cfg = config(60.0, 20, (0.2, 0.2, 0.6));
    cfg.collect_trace = true;
    cfg.horizon = 10.0 * 120.0;
    let report = run_seeded(&cfg, 17);
    assert_eq!(report.trace.len() as u64, report.runtime.resumes.trials());
    for r in &report.trace {
        // Ops issued shortly before warmup can resume (and be recorded)
        // after it; only the resume instant is inside the window.
        assert!(r.issued_at >= 0.0 && r.issued_at <= cfg.horizon);
        assert!((0.0..=120.0).contains(&r.position));
        assert!(r.magnitude >= 0.0);
    }
    // Mix frequencies in the trace roughly match the behavior model.
    let ff = report
        .trace
        .iter()
        .filter(|r| r.kind == VcrKind::FastForward)
        .count() as f64;
    let frac = ff / report.trace.len() as f64;
    assert!((frac - 0.2).abs() < 0.06, "FF fraction {frac}");
}
