//! The continuous engine under the non-batching delivery backends:
//! pyramid boundary joins / prefix resumes, and the pure-unicast
//! baseline's all-miss accounting.

#![allow(clippy::unwrap_used, clippy::float_cmp)]

use std::sync::Arc;

use vod_dist::kinds::Exponential;
use vod_model::{Rates, SystemParams};
use vod_runtime::{BackendKind, PartitionWindows, PyramidGeometry};
use vod_sim::{run_catalog_seeded, CatalogConfig, MovieLoad, SimConfig};
use vod_workload::BehaviorModel;

fn base_config(backend: BackendKind) -> CatalogConfig {
    let params = SystemParams::new(120.0, 60.0, 20, Rates::paper()).unwrap();
    let behavior = BehaviorModel::uniform_dist(
        (0.2, 0.2, 0.6),
        30.0,
        Arc::new(Exponential::with_mean(5.0).unwrap()),
    );
    let mut cfg: CatalogConfig = SimConfig::new(params, behavior).into();
    cfg.backend = backend;
    cfg
}

#[test]
fn pyramid_backend_bounds_startup_wait_by_one_unit() {
    let cfg = base_config(BackendKind::PyramidBroadcast);
    let report = run_catalog_seeded(&cfg, 11);
    // Same promise the batching config makes: T − b = 6 − 3 = 3 minutes
    // worst case, so the pyramid's segment-1 period is ≤ 3.
    let w = PartitionWindows::from_params(&cfg.movies[0].params);
    let geometry =
        PyramidGeometry::from_continuous(w.movie_len(), w.restart_interval() - w.window_len());
    let movie = &report.per_movie[0];
    assert!(movie.wait.count() > 100, "enough arrivals measured");
    assert!(
        movie.wait.mean() <= f64::from(geometry.unit()),
        "mean startup wait {} exceeds one segment-1 period {}",
        movie.wait.mean(),
        geometry.unit()
    );
    assert!(
        movie.runtime.resumes.trials() > 50,
        "workload exercised VCR"
    );
    // RW and Pause resume inside the received prefix; only FF beyond the
    // front can miss — the overall hit ratio reflects that.
    assert!(report.runtime.hit_ratio() > 0.5);
}

#[test]
fn dedicated_backend_misses_every_resume_except_ff_end() {
    let mut cfg = base_config(BackendKind::DedicatedStream);
    cfg.count_ff_end_as_hit = true;
    let report = run_catalog_seeded(&cfg, 11);
    let rt = &report.runtime;
    assert!(rt.resumes.trials() > 50);
    assert_eq!(
        rt.resumes.hits(),
        rt.ff_end,
        "unicast hits come only from the FF-to-end release convention"
    );
    assert_eq!(
        rt.buffer_minutes, 0.0,
        "no server buffer exists to serve from"
    );
    assert!(rt.disk_minutes > 0.0, "all delivery is private-stream disk");
}

#[test]
fn dedicated_backend_queues_on_a_capped_reserve() {
    let params = SystemParams::new(120.0, 60.0, 20, Rates::paper()).unwrap();
    let behavior = BehaviorModel::uniform_dist(
        (0.2, 0.2, 0.6),
        30.0,
        Arc::new(Exponential::with_mean(5.0).unwrap()),
    );
    let cfg = CatalogConfig {
        movies: vec![MovieLoad {
            params,
            mean_interarrival: 2.0,
            behavior,
        }],
        horizon: 2400.0,
        warmup: 240.0,
        count_ff_end_as_hit: true,
        collect_trace: false,
        // Offered load ≈ l/λ = 60 concurrent viewers against 40 streams:
        // queueing is guaranteed.
        dedicated_capacity: Some(40),
        faults: vod_runtime::FaultPlan::empty(),
        backend: BackendKind::DedicatedStream,
    };
    let report = run_catalog_seeded(&cfg, 7);
    let movie = &report.per_movie[0];
    assert!(
        movie.wait.mean() > 0.0,
        "a saturated unicast pool must produce startup waits"
    );
    assert!(
        movie.type2_fraction.value() < 1.0,
        "some arrivals were queued"
    );
}

#[test]
fn backend_runs_are_deterministic() {
    for backend in BackendKind::ALL {
        let cfg = base_config(backend);
        let a = run_catalog_seeded(&cfg, 42);
        let b = run_catalog_seeded(&cfg, 42);
        assert_eq!(a, b, "{backend} replay diverged");
    }
}
