//! # vod-sim — discrete-event validation simulator
//!
//! Simulates the *actual* static-partitioning VOD system of the paper's
//! §2 (periodic stream restarts, enrollment windows, type-1/type-2
//! viewers, VCR phase-1/phase-2 resource lifecycle, movie start/end
//! boundary behavior) and measures the hit probability the analytic model
//! (`vod-model`) predicts — reproducing the paper's §4 model-verification
//! methodology (Figure 7).
//!
//! ```no_run
//! use std::sync::Arc;
//! use vod_dist::kinds::Gamma;
//! use vod_model::{Rates, SystemParams};
//! use vod_sim::{run_seeded, SimConfig};
//! use vod_workload::BehaviorModel;
//!
//! let params = SystemParams::new(120.0, 60.0, 20, Rates::paper()).unwrap();
//! let behavior = BehaviorModel::uniform_dist(
//!     (0.2, 0.2, 0.6),
//!     30.0,
//!     Arc::new(Gamma::paper_fig7()),
//! );
//! let report = run_seeded(&SimConfig::new(params, behavior), 42);
//! println!("simulated P(hit) = {:.3}", report.runtime.hit_ratio());
//! ```
//!
//! The mechanism semantics (window membership, VCR sweep rules, reserve
//! accounting, metric vocabulary) live in `vod-runtime`; this crate is
//! the event-driven driver over them.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

mod config;
mod engine;
mod federation;
mod report;

pub use config::{CatalogConfig, MovieLoad, SimConfig};
#[doc(hidden)]
pub use engine::run_catalog_seeded_reference;
pub use engine::{
    hit_ratio_over_replications, partition_hit_for_tests, run, run_catalog_seeded,
    run_replications, run_seeded,
};
pub use federation::{run_federation_seeded, FederationSimReport};
pub use report::{CatalogReport, ReplicatedReport, SimReport};
