//! Simulation output.

use vod_workload::{Ratio, VcrKind, VcrTraceRecord, Welford};

/// Everything one simulation run measured (after warm-up).
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Hit ratio across all VCR resumes.
    pub overall: Ratio,
    /// Hit ratio per VCR type, indexed as `[FF, RW, PAU]`.
    pub per_kind: [Ratio; 3],
    /// Fast-forwards that ran off the end of the movie (released via the
    /// model's `P(end)` path).
    pub ff_end_count: u64,
    /// Rewinds truncated at the movie start.
    pub rw_start_count: u64,
    /// Time-averaged number of dedicated I/O streams in use (phase-1 VCR
    /// service plus post-miss holds).
    pub dedicated_avg: f64,
    /// Peak dedicated streams in use.
    pub dedicated_peak: f64,
    /// Viewers that finished the movie during the measured window.
    pub viewers_completed: u64,
    /// Viewers that arrived during the measured window.
    pub viewers_arrived: u64,
    /// Batching wait of type-1 viewers (minutes).
    pub wait: Welford,
    /// Fraction of arrivals that found the enrollment window open (type-2
    /// viewers).
    pub type2_fraction: Ratio,
    /// Dedicated-stream acquisition attempts (grants + denials).
    pub acquisition_attempts: u64,
    /// FF/RW requests denied because the reserve was exhausted.
    pub vcr_denied: u64,
    /// Paused viewers cleared because no stream was free at resume.
    pub abandoned: u64,
    /// Per-operation trace (empty unless `collect_trace`).
    pub trace: Vec<VcrTraceRecord>,
    /// Simulated minutes measured (horizon − warmup).
    pub measured_minutes: f64,
}

impl SimReport {
    /// Hit ratio for one VCR kind.
    pub fn hit_ratio(&self, kind: VcrKind) -> &Ratio {
        &self.per_kind[kind_index(kind)]
    }

    /// Mutable access used by the engine.
    pub(crate) fn hit_ratio_mut(&mut self, kind: VcrKind) -> &mut Ratio {
        &mut self.per_kind[kind_index(kind)]
    }
}

pub(crate) fn kind_index(kind: VcrKind) -> usize {
    match kind {
        VcrKind::FastForward => 0,
        VcrKind::Rewind => 1,
        VcrKind::Pause => 2,
    }
}

/// Output of a catalog simulation: per-movie statistics plus the shared
/// reserve's counters.
#[derive(Debug, Clone, Default)]
pub struct CatalogReport {
    /// Per-movie reports, in catalog order (their dedicated/denial fields
    /// are unused — the reserve is shared and reported here).
    pub per_movie: Vec<SimReport>,
    /// Time-averaged dedicated streams in use across the catalog.
    pub dedicated_avg: f64,
    /// Peak dedicated streams in use.
    pub dedicated_peak: f64,
    /// Dedicated-stream acquisition attempts (grants + denials).
    pub acquisition_attempts: u64,
    /// FF/RW requests denied by the shared reserve.
    pub vcr_denied: u64,
    /// Paused viewers cleared for lack of a stream.
    pub abandoned: u64,
}

impl CatalogReport {
    pub(crate) fn with_movies(n: usize) -> Self {
        Self {
            per_movie: (0..n).map(|_| SimReport::default()).collect(),
            ..Self::default()
        }
    }

    /// Combined hit ratio across all movies.
    pub fn overall_hit_ratio(&self) -> f64 {
        let (hits, trials) = self.per_movie.iter().fold((0u64, 0u64), |(h, t), m| {
            (h + m.overall.hits(), t + m.overall.trials())
        });
        if trials == 0 {
            0.0
        } else {
            hits as f64 / trials as f64
        }
    }
}

/// Aggregate over independent replications (different seeds).
#[derive(Debug, Clone, Default)]
pub struct ReplicatedReport {
    /// Per-replication overall hit ratios.
    pub overall: Welford,
    /// Per-replication hit ratios per kind, `[FF, RW, PAU]`.
    pub per_kind: [Welford; 3],
    /// Per-replication dedicated-stream time averages.
    pub dedicated_avg: Welford,
    /// Total VCR operations observed across replications.
    pub total_ops: u64,
}

impl ReplicatedReport {
    /// Fold one run into the aggregate.
    pub fn push(&mut self, run: &SimReport) {
        self.overall.push(run.overall.value());
        for k in VcrKind::ALL {
            let r = run.hit_ratio(k);
            if r.trials() > 0 {
                self.per_kind[kind_index(k)].push(r.value());
            }
        }
        self.dedicated_avg.push(run.dedicated_avg);
        self.total_ops += run.overall.trials();
    }

    /// Mean hit ratio for one kind across replications.
    pub fn kind_mean(&self, kind: VcrKind) -> f64 {
        self.per_kind[kind_index(kind)].mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_overall_ratio_combines_movies() {
        let mut cat = CatalogReport::with_movies(2);
        for _ in 0..3 {
            cat.per_movie[0].overall.push(true);
        }
        cat.per_movie[0].overall.push(false);
        for _ in 0..4 {
            cat.per_movie[1].overall.push(false);
        }
        // 3 hits of 8 trials.
        assert!((cat.overall_hit_ratio() - 3.0 / 8.0).abs() < 1e-12);
        let empty = CatalogReport::with_movies(1);
        assert_eq!(empty.overall_hit_ratio(), 0.0);
    }

    #[test]
    fn replicated_report_aggregates() {
        let mut run = SimReport::default();
        run.overall.push(true);
        run.overall.push(false);
        run.hit_ratio_mut(VcrKind::FastForward).push(true);
        run.hit_ratio_mut(VcrKind::FastForward).push(false);
        run.dedicated_avg = 2.0;
        let mut agg = ReplicatedReport::default();
        agg.push(&run);
        agg.push(&run);
        assert_eq!(agg.total_ops, 4);
        assert!((agg.overall.mean() - 0.5).abs() < 1e-12);
        assert!((agg.kind_mean(VcrKind::FastForward) - 0.5).abs() < 1e-12);
        // RW never observed: its Welford stays empty.
        assert_eq!(agg.per_kind[1].count(), 0);
    }
}
