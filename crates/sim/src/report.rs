//! Simulation output.

use vod_runtime::{kind_index, RuntimeMetrics};
use vod_workload::{Ratio, VcrKind, VcrTraceRecord, Welford};

/// Everything one simulation run measured (after warm-up).
///
/// The mechanism-level counters live in [`RuntimeMetrics`] — the same
/// vocabulary `vod-server` reports — so a simulator run and a server run
/// of the same configuration can be diffed field by field. Simulation-
/// specific observables (waits, arrival counts, traces) sit alongside.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    /// Shared mechanism counters (resume classifications, denials,
    /// starvation, service minutes, reserve occupancy).
    pub runtime: RuntimeMetrics,
    /// Viewers that finished the movie during the measured window.
    pub viewers_completed: u64,
    /// Viewers that arrived during the measured window.
    pub viewers_arrived: u64,
    /// Batching wait of type-1 viewers (minutes).
    pub wait: Welford,
    /// Fraction of arrivals that found the enrollment window open (type-2
    /// viewers).
    pub type2_fraction: Ratio,
    /// Per-operation trace (empty unless `collect_trace`).
    pub trace: Vec<VcrTraceRecord>,
    /// Simulated minutes measured (horizon − warmup).
    pub measured_minutes: f64,
}

impl SimReport {
    /// Hit ratio for one VCR kind.
    pub fn hit_ratio(&self, kind: VcrKind) -> &Ratio {
        self.runtime.resume_ratio(kind)
    }
}

/// Output of a catalog simulation: per-movie statistics plus the
/// catalog-wide aggregate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CatalogReport {
    /// Per-movie reports, in catalog order. Their runtime metrics carry
    /// the *per-movie* resume/sweep counters; the shared-reserve counters
    /// (denials, starvation, acquisition attempts, occupancy) belong to
    /// the catalog-wide [`CatalogReport::runtime`], because the reserve
    /// is shared.
    pub per_movie: Vec<SimReport>,
    /// Catalog-wide runtime metrics: resume classifications aggregated
    /// over every movie, plus the shared reserve's counters.
    pub runtime: RuntimeMetrics,
}

impl CatalogReport {
    pub(crate) fn with_movies(n: usize) -> Self {
        Self {
            per_movie: (0..n).map(|_| SimReport::default()).collect(),
            ..Self::default()
        }
    }

    /// Combined hit ratio across all movies.
    pub fn overall_hit_ratio(&self) -> f64 {
        self.runtime.hit_ratio()
    }
}

/// Aggregate over independent replications (different seeds).
#[derive(Debug, Clone, Default)]
pub struct ReplicatedReport {
    /// Per-replication overall hit ratios.
    pub overall: Welford,
    /// Per-replication hit ratios per kind, `[FF, RW, PAU]`.
    pub per_kind: [Welford; 3],
    /// Per-replication dedicated-stream time averages.
    pub dedicated_avg: Welford,
    /// Total VCR operations observed across replications.
    pub total_ops: u64,
}

impl ReplicatedReport {
    /// Fold one run into the aggregate.
    pub fn push(&mut self, run: &SimReport) {
        self.overall.push(run.runtime.hit_ratio());
        for k in VcrKind::ALL {
            let r = run.hit_ratio(k);
            if r.trials() > 0 {
                self.per_kind[kind_index(k)].push(r.value());
            }
        }
        self.dedicated_avg.push(run.runtime.dedicated_avg);
        self.total_ops += run.runtime.resumes.trials();
    }

    /// Mean hit ratio for one kind across replications.
    pub fn kind_mean(&self, kind: VcrKind) -> f64 {
        self.per_kind[kind_index(kind)].mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_overall_ratio_combines_movies() {
        let mut cat = CatalogReport::with_movies(2);
        for _ in 0..3 {
            cat.runtime.record_resume(VcrKind::Pause, true);
        }
        for _ in 0..5 {
            cat.runtime.record_resume(VcrKind::Pause, false);
        }
        // 3 hits of 8 trials.
        assert!((cat.overall_hit_ratio() - 3.0 / 8.0).abs() < 1e-12);
        let empty = CatalogReport::with_movies(1);
        assert_eq!(empty.overall_hit_ratio(), 0.0);
    }

    #[test]
    fn replicated_report_aggregates() {
        let mut run = SimReport::default();
        run.runtime.record_resume(VcrKind::FastForward, true);
        run.runtime.record_resume(VcrKind::FastForward, false);
        run.runtime.dedicated_avg = 2.0;
        let mut agg = ReplicatedReport::default();
        agg.push(&run);
        agg.push(&run);
        assert_eq!(agg.total_ops, 4);
        assert!((agg.overall.mean() - 0.5).abs() < 1e-12);
        assert!((agg.kind_mean(VcrKind::FastForward) - 0.5).abs() < 1e-12);
        // RW never observed: its Welford stays empty.
        assert_eq!(agg.per_kind[1].count(), 0);
        assert!((agg.dedicated_avg.mean() - 2.0).abs() < 1e-12);
    }
}
