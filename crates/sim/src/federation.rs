//! Continuous-time federation mirror: the event simulator's view of a
//! sharded catalog under whole-shard chaos.
//!
//! The tick-grid front tier (`vod-federation`) owns the authoritative
//! failover semantics; this mirror answers the cross-validation
//! question — *does the analytic/simulated hit behavior of a federation
//! degrade the way the server says it does?* — without re-implementing
//! the ledger in continuous time. Each shard runs an independent
//! [`run_seeded`] simulation; the global fault plan is projected onto
//! shard-local plans the same way the front tier does it:
//!
//! * [`FaultKind::ShardOutage`]`{s}` becomes a [`FaultKind::DiskOutage`]
//!   that removes *every* stream of shard `s` (a dark shard serves
//!   nothing), recovering when the next [`FaultKind::ShardRecovery`]
//!   for `s` is scheduled — or a permanent
//!   [`FaultKind::DiskStreamLoss`] when none is.
//! * Every other (capacity) fault routes to shard `at % shards`,
//!   matching the front tier's distribution rule.
//!
//! Per-shard seeds derive from the run seed by the same splitmix step
//! the fault generator uses, so the mirror is deterministic end to end.

use vod_runtime::{FaultEvent, FaultKind, FaultPlan};

use crate::{run_seeded, SimConfig, SimReport};

/// Aggregate of one federated simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct FederationSimReport {
    /// Per-shard single-shard reports, in shard order.
    pub per_shard: Vec<SimReport>,
    /// Resume hits summed over shards (trial-weighted aggregate).
    pub hits: u64,
    /// Resume trials summed over shards.
    pub trials: u64,
}

impl FederationSimReport {
    /// Trial-weighted overall hit ratio across the federation (0 when
    /// no shard recorded a resume).
    pub fn overall_hit_ratio(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.hits as f64 / self.trials as f64
        }
    }
}

/// Splitmix64 step — the same mixer `FaultPlan::generate` seeds with,
/// reused to derive independent per-shard seeds from one run seed.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Project the global plan onto shard `s`'s local plan (see the module
/// docs for the mapping).
fn shard_plan(global: &FaultPlan, s: u32, shards: u32, all_streams: u32) -> FaultPlan {
    let mut events = Vec::new();
    for (i, e) in global.events().iter().enumerate() {
        match e.kind {
            FaultKind::ShardOutage { shard } if shard == s => {
                // Dark until the next scheduled recovery of this shard.
                let recover_at = global.events()[i + 1..]
                    .iter()
                    .find(|r| matches!(r.kind, FaultKind::ShardRecovery { shard: rs } if rs == s))
                    .map(|r| r.at);
                let kind = match recover_at {
                    Some(at) if at > e.at => FaultKind::DiskOutage {
                        count: all_streams,
                        recover_after: at - e.at,
                    },
                    _ => FaultKind::DiskStreamLoss { count: all_streams },
                };
                events.push(FaultEvent { at: e.at, kind });
            }
            FaultKind::ShardOutage { .. } | FaultKind::ShardRecovery { .. } => {}
            FaultKind::DiskStreamLoss { .. }
            | FaultKind::DiskOutage { .. }
            | FaultKind::DiskSlowdown { .. }
            | FaultKind::BufferShrink { .. }
            | FaultKind::BufferRestore { .. } => {
                if e.at % u64::from(shards) == u64::from(s) {
                    events.push(FaultEvent {
                        at: e.at,
                        kind: e.kind,
                    });
                }
            }
        }
    }
    FaultPlan::new(events)
}

/// Run every shard's simulation under the projected global `plan` and
/// aggregate. `shards[s]` is shard `s`'s own configuration (its slice
/// of the catalog/budget); each runs with seed `splitmix(seed ^ s)`.
///
/// # Panics
///
/// Panics if `shards` is empty or a shard's configuration fails
/// validation (same contract as [`run_seeded`]).
pub fn run_federation_seeded(
    shards: &[SimConfig],
    plan: &FaultPlan,
    seed: u64,
) -> FederationSimReport {
    // vod-lint: allow(no-panic) — a shardless federation is a caller bug.
    assert!(!shards.is_empty(), "federation needs at least one shard");
    let n = shards.len() as u32;
    let mut per_shard = Vec::with_capacity(shards.len());
    let mut hits = 0u64;
    let mut trials = 0u64;
    for (s, cfg) in shards.iter().enumerate() {
        let mut local = cfg.clone();
        // The shard serves nothing while dark: take every provisioned
        // stream plus the whole dedicated reserve off the air.
        let all_streams = local
            .params
            .n_streams()
            .saturating_add(local.dedicated_capacity.unwrap_or(0));
        local.faults = shard_plan(plan, s as u32, n, all_streams);
        let report = run_seeded(&local, splitmix(seed ^ s as u64));
        hits += report.runtime.resumes.hits();
        trials += report.runtime.resumes.trials();
        per_shard.push(report);
    }
    FederationSimReport {
        per_shard,
        hits,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use std::sync::Arc;
    use vod_dist::kinds::Gamma;
    use vod_model::{Rates, SystemParams};
    use vod_workload::BehaviorModel;

    fn shard_cfg() -> SimConfig {
        let params = SystemParams::new(60.0, 30.0, 10, Rates::paper()).unwrap();
        let behavior =
            BehaviorModel::uniform_dist((0.2, 0.2, 0.6), 30.0, Arc::new(Gamma::paper_fig7()));
        SimConfig {
            horizon: 400.0,
            warmup: 40.0,
            dedicated_capacity: Some(6),
            ..SimConfig::new(params, behavior)
        }
    }

    #[test]
    fn shard_plan_projects_outage_and_routes_capacity_faults() {
        let global = FaultPlan::new(vec![
            FaultEvent {
                at: 10,
                kind: FaultKind::ShardOutage { shard: 1 },
            },
            FaultEvent {
                at: 20,
                kind: FaultKind::DiskStreamLoss { count: 2 },
            },
            FaultEvent {
                at: 21,
                kind: FaultKind::DiskSlowdown {
                    period: 2,
                    duration: 5,
                },
            },
            FaultEvent {
                at: 40,
                kind: FaultKind::ShardRecovery { shard: 1 },
            },
        ]);
        // Shard 1: outage becomes a full-width DiskOutage recovering in
        // 30 ticks; the at=21 slowdown routes here (21 % 2 == 1).
        let p1 = shard_plan(&global, 1, 2, 16);
        assert_eq!(p1.len(), 2);
        assert!(matches!(
            p1.events()[0].kind,
            FaultKind::DiskOutage {
                count: 16,
                recover_after: 30
            }
        ));
        assert!(matches!(
            p1.events()[1].kind,
            FaultKind::DiskSlowdown { .. }
        ));
        // Shard 0: only the at=20 stream loss routes there.
        let p0 = shard_plan(&global, 0, 2, 16);
        assert_eq!(p0.len(), 1);
        assert!(matches!(
            p0.events()[0].kind,
            FaultKind::DiskStreamLoss { count: 2 }
        ));
        // Without a scheduled recovery the outage is permanent.
        let no_recovery = FaultPlan::new(vec![FaultEvent {
            at: 10,
            kind: FaultKind::ShardOutage { shard: 0 },
        }]);
        let p = shard_plan(&no_recovery, 0, 2, 16);
        assert!(matches!(
            p.events()[0].kind,
            FaultKind::DiskStreamLoss { count: 16 }
        ));
    }

    #[test]
    fn federation_mirror_is_deterministic_and_degrades_under_outage() {
        let shards = vec![shard_cfg(), shard_cfg()];
        let healthy = run_federation_seeded(&shards, &FaultPlan::empty(), 7);
        let again = run_federation_seeded(&shards, &FaultPlan::empty(), 7);
        assert_eq!(healthy, again, "same seed must reproduce bitwise");
        assert!(healthy.trials > 0, "workload exercised VCR resumes");

        let plan = FaultPlan::new(vec![FaultEvent {
            at: 60,
            kind: FaultKind::ShardOutage { shard: 0 },
        }]);
        let dark = run_federation_seeded(&shards, &plan, 7);
        // Shard 1 never sees the fault: bitwise-identical report.
        assert_eq!(dark.per_shard[1], healthy.per_shard[1]);
        // Shard 0 lost every stream: its hit ratio cannot improve.
        assert!(dark.overall_hit_ratio() <= healthy.overall_hit_ratio() + 1e-12);
    }
}
