//! Simulation configuration.

use vod_model::SystemParams;
use vod_runtime::{BackendKind, FaultPlan};
use vod_workload::BehaviorModel;

/// One movie's load within a catalog simulation.
#[derive(Debug, Clone)]
pub struct MovieLoad {
    /// System geometry and rates for this movie.
    pub params: SystemParams,
    /// Mean inter-arrival time of its viewers (minutes, Poisson).
    pub mean_interarrival: f64,
    /// Its viewers' interaction behavior.
    pub behavior: BehaviorModel,
}

/// Configuration of a catalog simulation: several movies, one shared
/// dedicated-stream reserve — the coupling the §5 multi-movie sizing
/// creates.
#[derive(Debug, Clone)]
pub struct CatalogConfig {
    /// The hosted movies and their loads.
    pub movies: Vec<MovieLoad>,
    /// Total simulated minutes (including warm-up).
    pub horizon: f64,
    /// Warm-up minutes excluded from statistics.
    pub warmup: f64,
    /// Whether an FF reaching the end of the movie counts as a hit.
    pub count_ff_end_as_hit: bool,
    /// Collect per-operation trace records.
    pub collect_trace: bool,
    /// Shared cap on concurrently held dedicated streams; `None` =
    /// infinite reserve.
    pub dedicated_capacity: Option<u32>,
    /// Deterministic fault schedule mirrored from the server's chaos
    /// harness (event times are virtual-minute marks). The continuous
    /// engine applies stream loss/outage to the shared reserve and
    /// buffer shrink/restore to the window geometry; disk slowdowns have
    /// no tick grid to stretch and are counted but otherwise ignored.
    pub faults: FaultPlan,
    /// Delivery scheme the engine models. The default,
    /// [`BackendKind::BatchingBuffering`], is the paper's batching +
    /// static-partition system and keeps the historical RNG stream
    /// bitwise intact. `PyramidBroadcast` replaces restart enrollment
    /// with segment-1 boundary joins and classifies resumes against the
    /// client's reception front; `DedicatedStream` gives every viewer a
    /// private stream from the shared reserve (FIFO queue when capped).
    /// Buffer shrink faults only deform batching windows; the other
    /// schemes count them and move on.
    pub backend: BackendKind,
}

impl CatalogConfig {
    /// Validate cross-field invariants. Called by the engine.
    pub fn validate(&self) -> Result<(), String> {
        if self.movies.is_empty() {
            return Err("catalog must host at least one movie".into());
        }
        for (i, m) in self.movies.iter().enumerate() {
            if !(m.mean_interarrival.is_finite() && m.mean_interarrival > 0.0) {
                return Err(format!(
                    "movie {i}: mean_interarrival must be positive, got {}",
                    m.mean_interarrival
                ));
            }
        }
        if !(self.horizon.is_finite() && self.horizon > 0.0) {
            return Err(format!("horizon must be positive, got {}", self.horizon));
        }
        if !(self.warmup.is_finite() && self.warmup >= 0.0 && self.warmup < self.horizon) {
            return Err(format!(
                "warmup must be in [0, horizon), got {} (horizon {})",
                self.warmup, self.horizon
            ));
        }
        Ok(())
    }
}

impl From<SimConfig> for CatalogConfig {
    fn from(cfg: SimConfig) -> Self {
        CatalogConfig {
            movies: vec![MovieLoad {
                params: cfg.params,
                mean_interarrival: cfg.mean_interarrival,
                behavior: cfg.behavior,
            }],
            horizon: cfg.horizon,
            warmup: cfg.warmup,
            count_ff_end_as_hit: cfg.count_ff_end_as_hit,
            collect_trace: cfg.collect_trace,
            dedicated_capacity: cfg.dedicated_capacity,
            faults: cfg.faults,
            backend: cfg.backend,
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// System geometry and rates (`l`, `B`, `n`, `R_*`).
    pub params: SystemParams,
    /// Mean inter-arrival time of new viewers in minutes (Poisson
    /// arrivals; the paper's §4 uses `1/λ = 2`).
    pub mean_interarrival: f64,
    /// Per-viewer interaction behavior (mix, duration laws, think time).
    pub behavior: BehaviorModel,
    /// Total simulated minutes (including warm-up).
    pub horizon: f64,
    /// Minutes of warm-up during which no statistics are recorded; should
    /// cover at least one full movie length so the stream pattern and the
    /// viewer population reach steady state.
    pub warmup: f64,
    /// Whether a fast-forward that reaches the end of the movie counts as
    /// a hit (the model's Eq. 20 `P(end)` term counts it as a release;
    /// `true` matches the model's accounting).
    pub count_ff_end_as_hit: bool,
    /// Collect per-operation trace records (costs memory on long runs).
    pub collect_trace: bool,
    /// Cap on concurrently held dedicated I/O streams (the VCR reserve).
    /// `None` models an infinite reserve (the paper's §4 measurement
    /// setting); `Some(c)` turns the reserve into an Erlang loss system:
    /// FF/RW issued when all `c` streams are busy are *denied* (the
    /// viewer stays in his batch) and a paused viewer whose miss-resume
    /// finds no stream *abandons* (blocked customers cleared).
    pub dedicated_capacity: Option<u32>,
    /// Deterministic fault schedule (see [`CatalogConfig::faults`]).
    pub faults: FaultPlan,
    /// Delivery scheme (see [`CatalogConfig::backend`]).
    pub backend: BackendKind,
}

impl SimConfig {
    /// Reasonable defaults around the paper's §4 experiment: Poisson
    /// arrivals every 2 minutes, statistics after one movie length of
    /// warm-up, a horizon of 40 movie lengths.
    pub fn new(params: SystemParams, behavior: BehaviorModel) -> Self {
        let l = params.movie_len();
        Self {
            params,
            mean_interarrival: 2.0,
            behavior,
            horizon: 40.0 * l,
            warmup: 2.0 * l,
            count_ff_end_as_hit: true,
            collect_trace: false,
            dedicated_capacity: None,
            faults: FaultPlan::empty(),
            backend: BackendKind::BatchingBuffering,
        }
    }

    /// Validate cross-field invariants. Called by the engine.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.mean_interarrival.is_finite() && self.mean_interarrival > 0.0) {
            return Err(format!(
                "mean_interarrival must be positive, got {}",
                self.mean_interarrival
            ));
        }
        if !(self.horizon.is_finite() && self.horizon > 0.0) {
            return Err(format!("horizon must be positive, got {}", self.horizon));
        }
        if !(self.warmup.is_finite() && self.warmup >= 0.0 && self.warmup < self.horizon) {
            return Err(format!(
                "warmup must be in [0, horizon), got {} (horizon {})",
                self.warmup, self.horizon
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vod_dist::kinds::Exponential;
    use vod_model::Rates;

    fn movie() -> MovieLoad {
        MovieLoad {
            params: SystemParams::new(60.0, 30.0, 5, Rates::paper()).unwrap(),
            mean_interarrival: 2.0,
            behavior: BehaviorModel::uniform_dist(
                (0.2, 0.2, 0.6),
                20.0,
                Arc::new(Exponential::with_mean(5.0).unwrap()),
            ),
        }
    }

    #[test]
    fn sim_config_validation() {
        let params = SystemParams::new(60.0, 30.0, 5, Rates::paper()).unwrap();
        let behavior = BehaviorModel::uniform_dist(
            (0.2, 0.2, 0.6),
            20.0,
            Arc::new(Exponential::with_mean(5.0).unwrap()),
        );
        let mut cfg = SimConfig::new(params, behavior);
        assert!(cfg.validate().is_ok());
        cfg.mean_interarrival = 0.0;
        assert!(cfg.validate().is_err());
        cfg.mean_interarrival = 2.0;
        cfg.warmup = cfg.horizon;
        assert!(cfg.validate().is_err());
        cfg.warmup = -1.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn catalog_validation() {
        let cfg = CatalogConfig {
            movies: vec![],
            horizon: 100.0,
            warmup: 0.0,
            count_ff_end_as_hit: true,
            collect_trace: false,
            dedicated_capacity: None,
            faults: FaultPlan::empty(),
            backend: BackendKind::BatchingBuffering,
        };
        assert!(cfg.validate().is_err(), "empty catalog rejected");
        let mut cfg = CatalogConfig {
            movies: vec![movie()],
            ..cfg
        };
        assert!(cfg.validate().is_ok());
        cfg.movies[0].mean_interarrival = f64::NAN;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn single_movie_conversion_preserves_fields() {
        let params = SystemParams::new(60.0, 30.0, 5, Rates::paper()).unwrap();
        let behavior = BehaviorModel::uniform_dist(
            (0.2, 0.2, 0.6),
            20.0,
            Arc::new(Exponential::with_mean(5.0).unwrap()),
        );
        let mut cfg = SimConfig::new(params, behavior);
        cfg.dedicated_capacity = Some(7);
        cfg.collect_trace = true;
        let cat: CatalogConfig = cfg.clone().into();
        assert_eq!(cat.movies.len(), 1);
        assert_eq!(cat.dedicated_capacity, Some(7));
        assert!(cat.collect_trace);
        assert_eq!(cat.horizon, cfg.horizon);
    }
}
