//! The discrete-event engine.
//!
//! Models the *real* static-partitioning system of the paper's §2 —
//! including the boundary behaviors §4 lists as the sources of
//! model-vs-simulation discrepancy:
//!
//! * arrivals after the enrollment window closes coalesce into the "first
//!   viewer" of the next restart (type-1 viewers);
//! * a rewind truncated at the movie start *may* still hit (the latest
//!   stream's enrollment window), whereas the model counts it as a miss;
//! * viewer positions are whatever the dynamics produce — the model's
//!   uniformity assumptions are not imposed.
//!
//! The mechanism semantics — window membership, VCR sweep rules, the
//! dedicated reserve, the metric vocabulary — live in `vod-runtime`;
//! this engine is a thin event-loop driver over them: it owns the clock,
//! the heap, and the viewer population, never the rules.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use vod_dist::rng::{exponential, seeded, SeededRng};
use vod_runtime::{
    plan_vcr, Arena, ArenaId, BackendKind, FaultKind, PartitionWindows, PyramidGeometry,
    StreamReserve, TimerWheel,
};
use vod_workload::{VcrKind, VcrTraceRecord, Welford};

use crate::{CatalogConfig, CatalogReport, SimConfig, SimReport};

/// Scheduled event. Ordered by time then sequence number (FIFO ties).
struct Ev {
    time: f64,
    seq: u64,
    kind: EvKind,
}

enum EvKind {
    /// A new viewer for `movie` arrives (the next arrival of that movie
    /// is scheduled on pop).
    Arrival { movie: usize },
    /// A queued (type-1) viewer starts at a restart instant.
    Start { viewer: ArenaId },
    /// A playing viewer issues a VCR operation.
    Vcr { viewer: ArenaId },
    /// A VCR operation completes; the viewer resumes at `end_pos`.
    VcrEnd {
        viewer: ArenaId,
        kind: VcrKind,
        magnitude: f64,
        issued_at: f64,
        issued_pos: f64,
        end_pos: f64,
        /// FF ran off the end of the movie.
        reached_end: bool,
        /// RW was truncated at the movie start.
        truncated_start: bool,
    },
    /// A viewer reaches the end of the movie in normal playback.
    Finish { viewer: ArenaId },
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so earliest time pops first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Per-viewer playback state. While playing, the position at time `t` is
/// `pos_base + (t − t_base)`.
struct Viewer {
    movie: usize,
    pos_base: f64,
    t_base: f64,
    holds_dedicated: bool,
    /// When reception/playback first started. The pyramid backend
    /// measures its client's reception front from this instant; the
    /// dedicated backend uses it (pre-start) to measure queueing wait.
    joined_at: f64,
    /// Snapshot of the catalog stall integral at `joined_at`: a pyramid
    /// client's effective reception time is wall time minus the stall
    /// accrued since it joined (stall before the join is not its loss).
    stall_at_join: f64,
}

/// The engine's pending-event set.
///
/// Both variants pop events in exactly the same order — ascending
/// `(time, seq)` — so the engine's behavior is bitwise independent of
/// which one drives it (pinned by `tests/queue_equivalence.rs`).
///
/// The wheel variant buckets events by `floor(time)` minute: only the
/// minute the cursor is on lives in a small [`BinaryHeap`]; everything
/// later waits in a [`TimerWheel`] slot. Pushes into future minutes are
/// O(1) instead of O(log pending), and an idle stretch fast-forwards
/// through the wheel's occupancy bitmaps instead of popping through a
/// million-entry heap. Ordering is preserved because every event in
/// `current` has `floor(time) ≤ minute` while every event still in the
/// wheel has `floor(time) > minute` — so `current`'s minimum is the
/// global minimum — and within a minute the heap restores the global
/// `(time, seq)` order over the wheel's FIFO drain.
enum EventQueue {
    /// The historical single global heap (reference scheduler).
    Heap(BinaryHeap<Ev>),
    /// Minute-bucketed wheel + current-minute heap (the default).
    Wheel {
        wheel: TimerWheel<Ev>,
        current: BinaryHeap<Ev>,
        /// The minute bucket `current` is drawn from.
        minute: u64,
    },
}

impl EventQueue {
    fn new(reference_heap: bool) -> Self {
        if reference_heap {
            EventQueue::Heap(BinaryHeap::new())
        } else {
            EventQueue::Wheel {
                wheel: TimerWheel::new(),
                current: BinaryHeap::new(),
                minute: 0,
            }
        }
    }

    fn push(&mut self, ev: Ev) {
        match self {
            EventQueue::Heap(heap) => heap.push(ev),
            EventQueue::Wheel {
                wheel,
                current,
                minute,
            } => {
                let tick = TimerWheel::<Ev>::tick_of(ev.time);
                if tick <= *minute {
                    current.push(ev);
                } else {
                    wheel.schedule(tick, ev);
                }
            }
        }
    }

    fn pop(&mut self) -> Option<Ev> {
        match self {
            EventQueue::Heap(heap) => heap.pop(),
            EventQueue::Wheel {
                wheel,
                current,
                minute,
            } => loop {
                if let Some(ev) = current.pop() {
                    return Some(ev);
                }
                let due = wheel.next_due()?;
                *minute = due;
                for ev in wheel.drain_tick(due) {
                    current.push(ev);
                }
            },
        }
    }
}

struct Engine<'a> {
    cfg: &'a CatalogConfig,
    rng: SeededRng,
    queue: EventQueue,
    seq: u64,
    /// Viewer population. A viewer referenced by a scheduled event is
    /// always live: viewers are removed only in `on_finish`/`on_vcr_end`,
    /// which also stop scheduling events for them — so handlers go
    /// through the arena's panicking `live`/`live_mut` seam. Generational
    /// ids make slot reuse safe: a stale id from a departed viewer can
    /// never alias whoever took the slot.
    viewers: Arena<Viewer>,
    /// One window geometry per movie, in catalog order — the *live*
    /// geometry, reshaped by buffer faults.
    windows: Vec<PartitionWindows>,
    /// The configured (fault-free) geometry buffer faults deform.
    base_windows: Vec<PartitionWindows>,
    /// The shared dedicated-stream reserve.
    reserve: StreamReserve,
    /// Next unapplied event in `cfg.faults` (events are time-sorted).
    fault_cursor: usize,
    /// Pending outage recoveries: (due time, reserve streams to restore,
    /// pyramid channels to bring back up).
    recoveries: Vec<(f64, u32, u32)>,
    /// Buffer segments currently removed by shrink faults.
    buffer_delta: f64,
    /// Pyramid mirror of the server's per-channel degradation: total
    /// broadcast channels across the catalog, how many are currently
    /// down (stream faults spilling past the free reserve), the
    /// catalog-wide stall integral `∫ (1 − up·serve) dt` with its last
    /// advance instant, and the active slowdown window
    /// `(end, serve_fraction)`. All zero/idle unless the backend is
    /// `PyramidBroadcast`, so the other legs stay bitwise identical.
    pyr_channels_total: u32,
    pyr_channels_down: u32,
    pyr_stall_accum: f64,
    pyr_stall_at: f64,
    pyr_slow: Option<(f64, f64)>,
    /// Pyramid reception geometry per movie (empty unless the backend is
    /// `PyramidBroadcast`); segment-1 period matches the batching
    /// scheme's worst-case wait `T − b` for the same movie.
    geometries: Vec<PyramidGeometry>,
    /// Dedicated backend: viewers queued (FIFO) for a free stream.
    stream_queue: VecDeque<ArenaId>,
    warmed: bool,
    report: CatalogReport,
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a CatalogConfig, seed: u64, reference_heap: bool) -> Self {
        let windows: Vec<PartitionWindows> = cfg
            .movies
            .iter()
            .map(|m| PartitionWindows::from_params(&m.params))
            .collect();
        let geometries = if cfg.backend == BackendKind::PyramidBroadcast {
            windows
                .iter()
                .map(|w| {
                    PyramidGeometry::from_continuous(
                        w.movie_len(),
                        w.restart_interval() - w.window_len(),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        let pyr_channels_total = geometries.iter().map(PyramidGeometry::channels).sum();
        Self {
            cfg,
            rng: seeded(seed),
            queue: EventQueue::new(reference_heap),
            seq: 0,
            viewers: Arena::new(),
            base_windows: windows.clone(),
            windows,
            reserve: StreamReserve::new(cfg.dedicated_capacity),
            fault_cursor: 0,
            recoveries: Vec::new(),
            buffer_delta: 0.0,
            pyr_channels_total,
            pyr_channels_down: 0,
            pyr_stall_accum: 0.0,
            pyr_stall_at: 0.0,
            pyr_slow: None,
            geometries,
            stream_queue: VecDeque::new(),
            warmed: false,
            report: CatalogReport::with_movies(cfg.movies.len()),
        }
    }

    fn push(&mut self, time: f64, kind: EvKind) {
        self.seq += 1;
        self.queue.push(Ev {
            time,
            seq: self.seq,
            kind,
        });
    }

    fn run(mut self) -> CatalogReport {
        let horizon = self.cfg.horizon;
        for movie in 0..self.cfg.movies.len() {
            self.push(0.0, EvKind::Arrival { movie });
        }
        while let Some(ev) = self.queue.pop() {
            if ev.time > horizon {
                break;
            }
            self.ensure_warm(ev.time);
            self.apply_faults_until(ev.time);
            match ev.kind {
                EvKind::Arrival { movie } => self.on_arrival(ev.time, movie),
                EvKind::Start { viewer } => self.on_start(ev.time, viewer),
                EvKind::Vcr { viewer } => self.on_vcr(ev.time, viewer),
                EvKind::VcrEnd {
                    viewer,
                    kind,
                    magnitude,
                    issued_at,
                    issued_pos,
                    end_pos,
                    reached_end,
                    truncated_start,
                } => self.on_vcr_end(
                    ev.time,
                    viewer,
                    kind,
                    magnitude,
                    issued_at,
                    issued_pos,
                    end_pos,
                    reached_end,
                    truncated_start,
                ),
                EvKind::Finish { viewer } => self.on_finish(ev.time, viewer),
            }
        }
        self.report.runtime.dedicated_avg = self.reserve.average(horizon);
        self.report.runtime.dedicated_peak = self.reserve.peak();
        self.report.runtime.denied_transient = self.reserve.denied_transient();
        self.report.runtime.denied_permanent = self.reserve.denied_permanent();
        let measured = horizon - self.cfg.warmup;
        for m in &mut self.report.per_movie {
            m.measured_minutes = measured;
        }
        self.report
    }

    /// Reset measurement baselines the first time the clock passes warmup.
    fn ensure_warm(&mut self, t: f64) {
        if !self.warmed && t >= self.cfg.warmup {
            self.warmed = true;
            self.reserve.rebaseline(self.cfg.warmup);
        }
    }

    fn measuring(&self) -> bool {
        self.warmed
    }

    // ---- fault mirror -------------------------------------------------------

    /// Apply every scheduled fault (and due outage recovery) with event
    /// time ≤ `t`. Faults only matter when something observes them — a
    /// resume classification or a stream acquisition — and those happen
    /// only at events, so applying lazily at each event pop is exact.
    /// Recoveries apply before new faults at the same instant, the same
    /// ordering the server's tick uses.
    fn apply_faults_until(&mut self, t: f64) {
        let mut i = 0;
        while i < self.recoveries.len() {
            if self.recoveries[i].0 <= t {
                let (due, count, channels) = self.recoveries.swap_remove(i);
                if channels > 0 {
                    self.pyr_advance(due);
                    self.pyr_channels_down = self.pyr_channels_down.saturating_sub(channels);
                }
                self.reserve.recover_streams(count);
                if self.cfg.backend == BackendKind::DedicatedStream {
                    // Each recovered stream can admit one queued viewer,
                    // at the recovery instant — the continuous-time twin
                    // of the server's drain-after-recover tick.
                    for _ in 0..count {
                        self.grant_queued(due);
                    }
                }
            } else {
                i += 1;
            }
        }
        while let Some(ev) = self.cfg.faults.events().get(self.fault_cursor) {
            let at = ev.at as f64;
            if at > t {
                break;
            }
            self.fault_cursor += 1;
            let shard_event = matches!(
                ev.kind,
                FaultKind::ShardOutage { .. } | FaultKind::ShardRecovery { .. }
            );
            if self.measuring() && !shard_event {
                self.report.runtime.faults_injected += 1;
            }
            match ev.kind {
                FaultKind::DiskStreamLoss { count } => {
                    let failed = self.reserve.fail_streams(count);
                    self.take_channels_down(at, count.saturating_sub(failed));
                }
                FaultKind::DiskOutage {
                    count,
                    recover_after,
                } => {
                    let failed = self.reserve.fail_streams(count);
                    let spilled = self.take_channels_down(at, count.saturating_sub(failed));
                    if failed > 0 || spilled > 0 {
                        self.recoveries
                            .push((at + recover_after.max(1) as f64, failed, spilled));
                    }
                }
                FaultKind::DiskSlowdown { period, duration } => {
                    // Continuous time has no tick grid to stretch; under
                    // the pyramid backend the window instead scales the
                    // delivery rate (one tick in `period` unserved), and
                    // elsewhere the event is counted and a no-op.
                    if self.cfg.backend == BackendKind::PyramidBroadcast && period > 1 {
                        self.pyr_advance(at);
                        let serve = 1.0 - 1.0 / period as f64;
                        self.pyr_slow = Some((at + duration as f64, serve));
                    }
                }
                FaultKind::BufferShrink { segments } => {
                    self.pyr_advance(at);
                    self.buffer_delta += segments as f64;
                    self.reshape_windows();
                }
                FaultKind::BufferRestore { segments } => {
                    self.pyr_advance(at);
                    self.buffer_delta = (self.buffer_delta - segments as f64).max(0.0);
                    self.reshape_windows();
                }
                // Whole-shard events are interpreted by the federation
                // mirror (`run_federation_seeded` strips them into
                // per-shard capacity faults); inside a single-shard
                // engine they are inert and uncounted.
                FaultKind::ShardOutage { .. } | FaultKind::ShardRecovery { .. } => {}
            }
        }
        self.pyr_advance(t);
        debug_assert!(self.check_invariants(), "sim fault-ledger audit failed");
    }

    /// Ledger audit, the continuous-time twin of the server's per-tick
    /// `check_invariants`: the channel-outage ledger stays within the
    /// catalog's channel population and the fault cursor within the
    /// schedule. Pure reads, consumed by `debug_assert!` at the end of
    /// every fault application — free in release builds and incapable of
    /// perturbing the simulation.
    fn check_invariants(&self) -> bool {
        self.pyr_channels_down <= self.pyr_channels_total
            && self.fault_cursor <= self.cfg.faults.events().len()
    }

    /// Pyramid only: route the part of a stream fault that spilled past
    /// the free reserve into broadcast channels, mirroring the server's
    /// lease revocation. Returns how many channels actually went down.
    fn take_channels_down(&mut self, at: f64, spill: u32) -> u32 {
        if self.cfg.backend != BackendKind::PyramidBroadcast || spill == 0 {
            return 0;
        }
        self.pyr_advance(at);
        let headroom = self
            .pyr_channels_total
            .saturating_sub(self.pyr_channels_down);
        let taken = spill.min(headroom);
        self.pyr_channels_down += taken;
        taken
    }

    /// Advance the catalog-wide pyramid stall integral to `t` at the
    /// current channel-health rate `1 − up_frac · serve_frac`, splitting
    /// at the slowdown window's edge. Buffer shrink defunds staging
    /// slots, so removed segments count against `up_frac` exactly like
    /// downed channels. No-op for the other backends.
    fn pyr_advance(&mut self, t: f64) {
        if self.cfg.backend != BackendKind::PyramidBroadcast {
            return;
        }
        let mut from = self.pyr_stall_at;
        if t <= from {
            return;
        }
        let total = f64::from(self.pyr_channels_total);
        let down = f64::from(self.pyr_channels_down) + self.buffer_delta;
        let up_frac = if total > 0.0 {
            ((total - down) / total).clamp(0.0, 1.0)
        } else {
            1.0
        };
        if let Some((end, serve_frac)) = self.pyr_slow {
            if from < end {
                let upto = t.min(end);
                self.pyr_stall_accum += (upto - from) * (1.0 - up_frac * serve_frac);
                from = upto;
            }
            if t >= end {
                self.pyr_slow = None;
            }
        }
        self.pyr_stall_accum += (t - from) * (1.0 - up_frac);
        self.pyr_stall_at = t;
    }

    /// A pyramid client's effective reception time at `t`: wall time
    /// since its join boundary minus the stall integral accrued since.
    /// Reception geometry is phase-locked to the channel wheel, so a
    /// stalled stretch shifts the front back rather than punching holes —
    /// the continuous twin of the server's exact per-session bitmap.
    fn pyr_elapsed(&self, t: f64, viewer: ArenaId) -> f64 {
        let v = self.viewers.live(viewer);
        ((t - v.joined_at) - (self.pyr_stall_accum - v.stall_at_join)).max(0.0)
    }

    /// Re-derive the live window geometry from the base geometry and the
    /// current shrink. The paper's mapping is `b = B/n`, so removing `s`
    /// segments from a movie's pool shortens each of its `n` windows by
    /// `s/n` minutes (clamped at pure batching, `b = 0`).
    fn reshape_windows(&mut self) {
        for (w, base) in self.windows.iter_mut().zip(&self.base_windows) {
            let n = base.movie_len() / base.restart_interval();
            *w = base.with_window_len(base.window_len() - self.buffer_delta / n);
        }
    }

    // ---- dedicated stream accounting ---------------------------------------

    /// Try to take a dedicated stream for `viewer` from the shared
    /// reserve. Returns `false` when the configured reserve is exhausted
    /// (the caller decides whether the operation is denied or the viewer
    /// abandons). Viewers already holding a stream always succeed.
    fn acquire_dedicated(&mut self, t: f64, viewer: ArenaId) -> bool {
        let holds = self.viewers.live(viewer).holds_dedicated;
        if holds {
            return true;
        }
        if self.measuring() {
            self.report.runtime.acquisition_attempts += 1;
        }
        if !self.reserve.try_acquire(t) {
            return false;
        }
        let v = self.viewers.live_mut(viewer);
        v.holds_dedicated = true;
        true
    }

    fn release_dedicated(&mut self, t: f64, viewer: ArenaId) {
        let v = self.viewers.live_mut(viewer);
        if v.holds_dedicated {
            v.holds_dedicated = false;
            self.reserve.release(t);
            self.grant_queued(t);
        }
    }

    /// Dedicated backend only: hand a just-freed stream to the head of
    /// the FIFO start queue.
    fn grant_queued(&mut self, t: f64) {
        if self.cfg.backend != BackendKind::DedicatedStream {
            return;
        }
        if let Some(id) = self.stream_queue.pop_front() {
            if self.acquire_dedicated(t, id) {
                if self.measuring() {
                    let (movie, arrived) = {
                        let v = self.viewers.live(id);
                        (v.movie, v.joined_at)
                    };
                    let r = self.movie_report(movie);
                    r.type2_fraction.push(false);
                    r.wait.push(t - arrived);
                }
                self.push(t, EvKind::Start { viewer: id });
            } else {
                // The freed stream vanished (a concurrent fault): keep
                // the viewer at the head of the queue.
                self.stream_queue.push_front(id);
            }
        }
    }

    // ---- measurement helpers -----------------------------------------------

    /// Record one resume classification, per-movie and catalog-wide.
    fn record_resume(&mut self, movie: usize, kind: VcrKind, hit: bool) {
        self.report.runtime.record_resume(kind, hit);
        self.report.per_movie[movie]
            .runtime
            .record_resume(kind, hit);
    }

    /// Account the playback interval `[t_base, now]` to buffer or disk
    /// service, clipped to the measured window. Intervals still open at
    /// the horizon are dropped (a bounded-horizon approximation; the
    /// server counts delivered segments exactly).
    fn account_playback(&mut self, movie: usize, t_base: f64, now: f64, dedicated: bool) {
        let start = t_base.max(self.cfg.warmup);
        if !self.warmed || now <= start {
            return;
        }
        let minutes = now - start;
        if dedicated {
            self.report.runtime.disk_minutes += minutes;
            self.report.per_movie[movie].runtime.disk_minutes += minutes;
        } else {
            self.report.runtime.buffer_minutes += minutes;
            self.report.per_movie[movie].runtime.buffer_minutes += minutes;
        }
    }

    /// Account a completed FF/RW sweep's display: `swept` movie-minutes
    /// read through the dedicated stream.
    fn account_sweep(&mut self, movie: usize, swept: f64) {
        if self.measuring() && swept > 0.0 {
            self.report.runtime.disk_minutes += swept;
            self.report.per_movie[movie].runtime.disk_minutes += swept;
        }
    }

    // ---- event handlers ----------------------------------------------------

    fn movie_report(&mut self, movie: usize) -> &mut SimReport {
        &mut self.report.per_movie[movie]
    }

    fn on_arrival(&mut self, t: f64, movie: usize) {
        // Schedule the next arrival first (Poisson process).
        let next = t + exponential(&mut self.rng, self.cfg.movies[movie].mean_interarrival);
        self.push(next, EvKind::Arrival { movie });

        if self.measuring() {
            self.movie_report(movie).viewers_arrived += 1;
        }
        let id = self.viewers.insert(Viewer {
            movie,
            pos_base: 0.0,
            t_base: t,
            holds_dedicated: false,
            joined_at: t,
            stall_at_join: self.pyr_stall_accum,
        });

        match self.cfg.backend {
            BackendKind::BatchingBuffering => {
                let windows = self.windows[movie];
                if windows.enrollment_open(t) {
                    // Type-2: the enrollment window is open; start
                    // immediately, reading position 0 from the buffer
                    // partition.
                    if self.measuring() {
                        let r = self.movie_report(movie);
                        r.type2_fraction.push(true);
                        r.wait.push(0.0);
                    }
                    self.begin_playback(t, id, 0.0);
                } else {
                    // Type-1: queue for the next restart.
                    let start = windows.next_restart_at(t);
                    if self.measuring() {
                        let r = self.movie_report(movie);
                        r.type2_fraction.push(false);
                        r.wait.push(start - t);
                    }
                    self.push(start, EvKind::Start { viewer: id });
                }
            }
            BackendKind::PyramidBroadcast => {
                // Reception starts at the next segment-1 boundary; wait
                // is bounded by one segment-1 period by construction.
                let start = self.geometries[movie].next_boundary_continuous(t);
                let wait = (start - t).max(0.0);
                let immediate = vod_dist::approx::exact_zero(wait);
                if self.measuring() {
                    let r = self.movie_report(movie);
                    r.type2_fraction.push(immediate);
                    r.wait.push(wait);
                }
                if immediate {
                    self.begin_playback(t, id, 0.0);
                } else {
                    self.push(start, EvKind::Start { viewer: id });
                }
            }
            BackendKind::DedicatedStream => {
                // Pure unicast: playback needs a private stream now; a
                // full reserve queues the viewer FIFO behind releases.
                if self.acquire_dedicated(t, id) {
                    if self.measuring() {
                        let r = self.movie_report(movie);
                        r.type2_fraction.push(true);
                        r.wait.push(0.0);
                    }
                    self.begin_playback(t, id, 0.0);
                } else {
                    self.reserve.record_denials(1, true);
                    self.stream_queue.push_back(id);
                }
            }
        }
    }

    fn on_start(&mut self, t: f64, viewer: ArenaId) {
        // Pyramid reception (and queued dedicated playback) begins here,
        // not at arrival: re-anchor the reception clock and its stall
        // baseline.
        let stall = self.pyr_stall_accum;
        let v = self.viewers.live_mut(viewer);
        v.joined_at = t;
        v.stall_at_join = stall;
        self.begin_playback(t, viewer, 0.0);
    }

    /// (Re)enter normal playback at position `p`, scheduling the next
    /// interaction or the finish, whichever comes first.
    fn begin_playback(&mut self, t: f64, viewer: ArenaId, p: f64) {
        let movie = {
            let v = self.viewers.live_mut(viewer);
            v.pos_base = p;
            v.t_base = t;
            v.movie
        };
        let spec = &self.cfg.movies[movie];
        let remaining = spec.params.movie_len() - p;
        let gap = spec.behavior.next_interaction_gap(&mut self.rng);
        if gap < remaining {
            self.push(t + gap, EvKind::Vcr { viewer });
        } else {
            self.push(t + remaining, EvKind::Finish { viewer });
        }
    }

    fn on_vcr(&mut self, t: f64, viewer: ArenaId) {
        let (movie, p, t_base, was_dedicated) = {
            let v = self.viewers.live(viewer);
            (
                v.movie,
                v.pos_base + (t - v.t_base),
                v.t_base,
                v.holds_dedicated,
            )
        };
        // The playback interval ends here; bill it to its source.
        self.account_playback(movie, t_base, t, was_dedicated);
        let spec = &self.cfg.movies[movie];
        let req = spec.behavior.sample_request(&mut self.rng);
        let plan = plan_vcr(
            req.kind,
            req.magnitude,
            p,
            spec.params.movie_len(),
            spec.params.rates(),
        );
        // Who pays for phase 1 depends on the scheme: batching and the
        // unicast baseline sweep FF/RW on a dedicated stream (the
        // baseline already holds one); pyramid sweeps inside the
        // client's reception prefix for free and only an FF *beyond the
        // front* takes a stream. A paused viewer consumes nothing until
        // resume — and under pure unicast even frees its stream.
        if self.cfg.backend == BackendKind::DedicatedStream && matches!(req.kind, VcrKind::Pause) {
            self.release_dedicated(t, viewer);
        }
        let needs_stream = match self.cfg.backend {
            BackendKind::BatchingBuffering | BackendKind::DedicatedStream => {
                matches!(req.kind, VcrKind::FastForward | VcrKind::Rewind)
            }
            BackendKind::PyramidBroadcast => {
                matches!(req.kind, VcrKind::FastForward) && !plan.reached_end && {
                    let elapsed = self.pyr_elapsed(t, viewer);
                    !self.geometries[movie].received_by_continuous(elapsed, plan.end_pos)
                }
            }
        };
        if needs_stream && !self.acquire_dedicated(t, viewer) {
            // Reserve exhausted: the request is denied and the viewer
            // stays in his batch (Erlang loss semantics). Issue-time
            // denials are never retried, so they classify as permanent
            // (the reserve's tallies rebaseline with the warm-up).
            self.reserve.record_denials(1, false);
            if self.measuring() {
                self.report.runtime.vcr_denied += 1;
            }
            self.begin_playback(t, viewer, p);
            return;
        }
        self.push(
            t + plan.duration,
            EvKind::VcrEnd {
                viewer,
                kind: req.kind,
                magnitude: req.magnitude,
                issued_at: t,
                issued_pos: p,
                end_pos: plan.end_pos,
                reached_end: plan.reached_end,
                truncated_start: plan.truncated_start,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn on_vcr_end(
        &mut self,
        t: f64,
        viewer: ArenaId,
        kind: VcrKind,
        magnitude: f64,
        issued_at: f64,
        issued_pos: f64,
        end_pos: f64,
        reached_end: bool,
        truncated_start: bool,
    ) {
        let movie = self.viewers.live(viewer).movie;
        // A sweep is disk traffic only when a dedicated stream served it;
        // pyramid sweeps inside the reception prefix are client-local.
        if self.viewers.live(viewer).holds_dedicated
            || self.cfg.backend != BackendKind::PyramidBroadcast
        {
            self.account_sweep(movie, (end_pos - issued_pos).abs());
        }
        if reached_end {
            // FF ran to the end: the viewing is over and phase-1 resources
            // are released (the model's P(end) path).
            self.release_dedicated(t, viewer);
            if self.measuring() {
                let hit = self.cfg.count_ff_end_as_hit;
                self.report.runtime.ff_end += 1;
                self.movie_report(movie).runtime.ff_end += 1;
                self.record_resume(movie, kind, hit);
                self.movie_report(movie).viewers_completed += 1;
                self.record_trace(movie, issued_at, issued_pos, kind, magnitude, hit);
            }
            self.viewers.remove(viewer);
            return;
        }

        // Real-system resume classification, per scheme: batching — a hit
        // iff the resume position is inside any live window, including
        // position 0 after a truncated rewind, where the latest stream's
        // enrollment window may still be open (the model counts those as
        // misses; see §4 of the paper). Pyramid — a hit iff the client's
        // reception front has passed the resume position. Unicast — every
        // resume re-seeks the private stream: always a miss.
        let hit = match self.cfg.backend {
            BackendKind::BatchingBuffering => {
                self.windows[movie].classify_resume(t, end_pos).is_hit()
            }
            BackendKind::PyramidBroadcast => {
                let elapsed = self.pyr_elapsed(t, viewer);
                self.geometries[movie].received_by_continuous(elapsed, end_pos)
            }
            BackendKind::DedicatedStream => false,
        };
        if truncated_start && self.measuring() {
            self.report.runtime.rw_truncated += 1;
            self.movie_report(movie).runtime.rw_truncated += 1;
        }
        if hit {
            self.release_dedicated(t, viewer);
        } else if !self.acquire_dedicated(t, viewer) {
            // A missed pause-resume with no free stream: the viewer is
            // cleared from the system (blocked customers cleared).
            if self.measuring() {
                self.record_resume(movie, kind, false);
                self.report.runtime.resume_starved += 1;
                self.record_trace(movie, issued_at, issued_pos, kind, magnitude, false);
            }
            self.viewers.remove(viewer);
            return;
        }
        if self.measuring() {
            self.record_resume(movie, kind, hit);
            self.record_trace(movie, issued_at, issued_pos, kind, magnitude, hit);
        }
        self.begin_playback(t, viewer, end_pos);
    }

    fn on_finish(&mut self, t: f64, viewer: ArenaId) {
        let (movie, t_base, was_dedicated) = {
            let v = self.viewers.live(viewer);
            (v.movie, v.t_base, v.holds_dedicated)
        };
        if self.cfg.backend == BackendKind::PyramidBroadcast && self.measuring() {
            // The stall integral a finished client lived through — the
            // continuous twin of the server's per-session stall_minutes.
            let stalled = self.pyr_stall_accum - self.viewers.live(viewer).stall_at_join;
            self.report.runtime.stall_minutes += stalled;
            self.report.per_movie[movie].runtime.stall_minutes += stalled;
        }
        self.account_playback(movie, t_base, t, was_dedicated);
        self.release_dedicated(t, viewer);
        if self.measuring() {
            self.movie_report(movie).viewers_completed += 1;
        }
        self.viewers.remove(viewer);
    }

    fn record_trace(
        &mut self,
        movie: usize,
        issued_at: f64,
        position: f64,
        kind: VcrKind,
        magnitude: f64,
        hit: bool,
    ) {
        if self.cfg.collect_trace {
            self.report.per_movie[movie].trace.push(VcrTraceRecord {
                issued_at,
                position,
                kind,
                magnitude,
                hit,
            });
        }
    }
}

/// Run a catalog simulation with an explicit seed.
///
/// # Panics
///
/// Panics if `cfg.validate()` rejects the configuration; call
/// `validate()` first to handle configuration errors gracefully.
pub fn run_catalog_seeded(cfg: &CatalogConfig, seed: u64) -> CatalogReport {
    // vod-lint: allow(no-panic) — documented panic: an invalid config is a
    // caller bug, and callers can pre-check with `cfg.validate()`.
    cfg.validate().expect("invalid simulation configuration");
    Engine::new(cfg, seed, false).run()
}

/// [`run_catalog_seeded`] with the historical single-global-heap event
/// queue instead of the timer wheel. Exists solely so the equivalence
/// suite can pin the two queues against each other.
///
/// # Panics
///
/// Panics if `cfg.validate()` rejects the configuration, like
/// [`run_catalog_seeded`].
#[doc(hidden)]
pub fn run_catalog_seeded_reference(cfg: &CatalogConfig, seed: u64) -> CatalogReport {
    // vod-lint: allow(no-panic) — same documented panic as `run_catalog_seeded`.
    cfg.validate().expect("invalid simulation configuration");
    Engine::new(cfg, seed, true).run()
}

/// Run one single-movie simulation (deterministic default seed 0).
pub fn run(cfg: &SimConfig) -> SimReport {
    run_seeded(cfg, 0)
}

/// Run one single-movie simulation with an explicit seed.
pub fn run_seeded(cfg: &SimConfig, seed: u64) -> SimReport {
    let catalog: CatalogConfig = cfg.clone().into();
    let mut report = run_catalog_seeded(&catalog, seed);
    // vod-lint: allow(no-panic) — the SimConfig→CatalogConfig conversion
    // above builds a catalog with exactly one movie.
    let mut movie = report.per_movie.pop().expect("one movie");
    // With one movie the catalog-wide aggregate *is* the movie's view,
    // and it additionally carries the shared-reserve counters.
    movie.runtime = report.runtime;
    movie
}

/// Run `replications` independent simulations (seeds `base_seed..`) and
/// aggregate.
pub fn run_replications(
    cfg: &SimConfig,
    base_seed: u64,
    replications: u32,
) -> crate::ReplicatedReport {
    let mut agg = crate::ReplicatedReport::default();
    for r in 0..replications {
        let report = run_seeded(cfg, base_seed.wrapping_add(r as u64));
        agg.push(&report);
    }
    agg
}

/// Convenience: a [`Welford`] of per-replication overall hit ratios.
pub fn hit_ratio_over_replications(cfg: &SimConfig, base_seed: u64, replications: u32) -> Welford {
    run_replications(cfg, base_seed, replications).overall
}

/// Expose the O(1) membership test for property tests (the semantics
/// live in [`vod_runtime::PartitionWindows`]).
#[doc(hidden)]
pub fn partition_hit_for_tests(cfg: &SimConfig, t: f64, p: f64) -> bool {
    PartitionWindows::from_params(&cfg.params).covers(t, p)
}
