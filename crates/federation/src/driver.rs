//! Seeded federation workload driver.
//!
//! [`run_federation`] replicates the `vod-server` harness `drive` loop
//! — same RNG construction, same arrival process, same interaction
//! dispatch, same per-tick invariant checks — on top of a
//! [`Federation`] instead of a single backend. With one shard, an empty
//! fault plan, and the [`WorkloadShape::RoundRobin`] shape, the RNG
//! consumption sequence is *identical* to `run_harness`, so shard 0's
//! measured [`RuntimeMetrics`] are bitwise equal to the plain harness
//! on the same config/seed (pinned by the `federation_identity` test
//! and asserted again by the bench gate).

use rand::RngCore;
use vod_dist::rng::{exponential, seeded};
use vod_runtime::{FaultPlan, FederationMetrics, RuntimeMetrics};
use vod_workload::BehaviorModel;

use crate::front::{FedSessionId, Federation, FederationConfig};
use vod_server::SessionStatus;

/// How arrivals pick movies (and how the arrival rate moves) over the
/// run. [`RoundRobin`](WorkloadShape::RoundRobin) consumes no extra
/// randomness and is the bitwise-identity shape; the other two draw one
/// extra `u64` per arrival (Zipf) or modulate the arrival mean (flash
/// crowd), deliberately diverging from the plain harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadShape {
    /// Cycle through the catalog in arrival order (the harness shape).
    RoundRobin,
    /// Zipf-distributed movie popularity whose skew drifts linearly
    /// from `start_skew` to `end_skew` across the horizon: the hot set
    /// migrates, stressing placement maps sized for the initial skew.
    ZipfDrift {
        /// Skew exponent at tick 0.
        start_skew: f64,
        /// Skew exponent at the final tick.
        end_skew: f64,
    },
    /// A flash crowd: inside `[at, at + duration)` every arrival
    /// requests `movie` and the arrival mean divides by `factor`.
    FlashCrowd {
        /// First tick of the crowd window.
        at: u64,
        /// Window length in ticks.
        duration: u64,
        /// Arrival-rate multiplier (mean interarrival ÷ `factor`).
        factor: f64,
        /// Global movie index the crowd requests.
        movie: usize,
    },
}

/// Workload configuration for [`run_federation`] (the federation
/// analogue of the harness config: same fields, global movie indices
/// instead of `MovieId`s, plus a [`WorkloadShape`]).
#[derive(Clone)]
pub struct FederationHarnessConfig {
    /// Primary movie (global index) every arrival requests first.
    pub movie: usize,
    /// Further movies arrivals cycle through after
    /// [`movie`](Self::movie); empty keeps a single-movie workload.
    pub extra_movies: Vec<usize>,
    /// Viewer interaction behavior (same model the harness consumes).
    pub behavior: BehaviorModel,
    /// Mean minutes between viewer arrivals (Poisson process).
    pub mean_interarrival: f64,
    /// Warm-up ticks excluded from measurement.
    pub warmup: u64,
    /// Measured ticks after warm-up.
    pub measure: u64,
    /// Movie-selection / arrival-rate shape.
    pub workload: WorkloadShape,
}

/// Result of one [`run_federation`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct FederationOutcome {
    /// Federation-level ledger counters (measured window).
    pub fed: FederationMetrics,
    /// Per-shard runtime metrics (`None` for shards dark at the end).
    pub per_shard: Vec<Option<RuntimeMetrics>>,
    /// Total invariant + monotonicity violations observed.
    pub violation_count: u64,
    /// First few violation descriptions, `"t=<tick>: <what>"`.
    pub violations: Vec<String>,
    /// Sessions admitted over the whole run.
    pub sessions_opened: u64,
    /// Arrivals denied admission (every replica dark).
    pub sessions_denied_admission: u64,
    /// Sessions finished federation-wide by the end.
    pub sessions_done: u64,
    /// Degraded population (in-shard + displaced ledger) at the end.
    pub degraded_at_end: u64,
    /// Displaced sessions still in the ledger at the end.
    pub displaced_in_flight: u64,
    /// Ticks driven (warm-up + measured).
    pub ticks: u64,
}

/// Cap on stored violation strings (mirrors the harness cap).
const MAX_VIOLATION_REPORTS: usize = 16;

/// Pick the movie for arrival number `arrivals` at tick `minute`.
fn select_movie(
    cfg: &FederationHarnessConfig,
    arrivals: u64,
    minute: u64,
    horizon: u64,
    rng: &mut dyn RngCore,
) -> usize {
    let catalog_len = 1 + cfg.extra_movies.len();
    let round_robin = |arrivals: u64| {
        // Same arithmetic as the harness driver: slot 0 is the primary.
        let slot = (arrivals % catalog_len as u64) as usize;
        if slot == 0 {
            cfg.movie
        } else {
            cfg.extra_movies[slot - 1]
        }
    };
    match cfg.workload {
        WorkloadShape::RoundRobin => round_robin(arrivals),
        WorkloadShape::ZipfDrift {
            start_skew,
            end_skew,
        } => {
            let frac = if horizon == 0 {
                0.0
            } else {
                minute as f64 / horizon as f64
            };
            let skew = start_skew + (end_skew - start_skew) * frac;
            let weights: Vec<f64> = (0..catalog_len)
                .map(|r| 1.0 / ((r + 1) as f64).powf(skew))
                .collect();
            let total: f64 = weights.iter().sum();
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * total;
            let mut acc = 0.0;
            for (r, w) in weights.iter().enumerate() {
                acc += w;
                if u < acc {
                    return if r == 0 {
                        cfg.movie
                    } else {
                        cfg.extra_movies[r - 1]
                    };
                }
            }
            round_robin(arrivals)
        }
        WorkloadShape::FlashCrowd {
            at,
            duration,
            movie,
            ..
        } => {
            if minute >= at && minute < at.saturating_add(duration) {
                movie
            } else {
                round_robin(arrivals)
            }
        }
    }
}

/// Effective mean interarrival at `minute` under the workload shape.
fn effective_mean(cfg: &FederationHarnessConfig, minute: u64) -> f64 {
    match cfg.workload {
        WorkloadShape::FlashCrowd {
            at,
            duration,
            factor,
            ..
        } if minute >= at && minute < at.saturating_add(duration) => {
            cfg.mean_interarrival / factor.max(1.0)
        }
        _ => cfg.mean_interarrival,
    }
}

/// Drive a federation built from `config` with the seeded workload,
/// injecting the global `plan` and auditing
/// [`Federation::check_invariants`] plus [`FederationMetrics`]
/// monotonicity after every tick. Same `(config, plan, cfg, seed)` ⇒
/// bitwise-identical outcome.
pub fn run_federation(
    config: FederationConfig,
    plan: &FaultPlan,
    cfg: &FederationHarnessConfig,
    seed: u64,
) -> FederationOutcome {
    let mut fed = Federation::new(config, plan.clone());
    let mut rng = seeded(seed);
    let mut next_arrival = exponential(&mut rng, cfg.mean_interarrival);
    // (session, tick at which its next interaction is due)
    let mut pending: Vec<(FedSessionId, u64)> = Vec::new();
    let horizon = cfg.warmup + cfg.measure;
    let mut arrivals: u64 = 0;
    let mut sessions_opened: u64 = 0;
    let mut sessions_denied_admission: u64 = 0;
    let mut violation_count: u64 = 0;
    let mut violations: Vec<String> = Vec::new();
    let mut prev_fed: Option<FederationMetrics> = None;
    for minute in 0..horizon {
        if minute == cfg.warmup {
            fed.reset_metrics();
            prev_fed = None;
        }
        while next_arrival < (minute + 1) as f64 {
            let movie = select_movie(cfg, arrivals, minute, horizon, &mut rng);
            let opened = fed.open_session(movie);
            arrivals += 1;
            // The gap draw happens whether or not admission succeeded, so
            // the RNG stream stays aligned with the plain harness.
            let gap = cfg.behavior.next_interaction_gap(&mut rng);
            match opened {
                Some(id) => {
                    sessions_opened += 1;
                    pending.push((id, minute + (gap.ceil() as u64).max(1)));
                }
                None => sessions_denied_admission += 1,
            }
            next_arrival += exponential(&mut rng, effective_mean(cfg, minute));
        }
        let mut i = 0;
        while i < pending.len() {
            let (id, due) = pending[i];
            if due > minute {
                i += 1;
                continue;
            }
            match fed.session_status(id) {
                SessionStatus::Done => {
                    pending.swap_remove(i);
                    continue;
                }
                SessionStatus::Shared | SessionStatus::Dedicated => {
                    let req = cfg.behavior.sample_request(&mut rng);
                    let magnitude = (req.magnitude.round() as u32).max(1);
                    let _ = fed.request_vcr(id, req.kind, magnitude);
                    let gap = cfg.behavior.next_interaction_gap(&mut rng);
                    pending[i].1 = minute + (gap.ceil() as u64).max(1);
                }
                SessionStatus::Waiting(_) | SessionStatus::InVcr | SessionStatus::Degraded => {
                    pending[i].1 = minute + 1;
                }
            }
            i += 1;
        }
        fed.tick();
        let mut record = |what: String| {
            violation_count += 1;
            if violations.len() < MAX_VIOLATION_REPORTS {
                violations.push(format!("t={minute}: {what}"));
            }
        };
        for what in fed.check_invariants() {
            record(what);
        }
        let fm = fed.federation_metrics();
        if let Some(prev) = &prev_fed {
            for field in prev.monotone_violations(&fm) {
                record(format!("federation counter `{field}` went backwards"));
            }
        }
        prev_fed = Some(fm);
    }
    FederationOutcome {
        fed: fed.federation_metrics(),
        per_shard: fed.per_shard_metrics(),
        violation_count,
        violations,
        sessions_opened,
        sessions_denied_admission,
        sessions_done: fed.sessions_finished(),
        degraded_at_end: fed.degraded_sessions(),
        displaced_in_flight: fed.displaced_in_flight(),
        ticks: horizon,
    }
}
