//! The federation front tier: N independent delivery shards behind one
//! admission door.
//!
//! [`Federation`] owns a vector of [`DeliveryBackend`] shards (any
//! [`BackendKind`] per shard), routes admissions by a model-driven
//! placement map, and drives every shard on the shared integer-minute
//! tick grid. Whole-shard faults ([`FaultKind::ShardOutage`] /
//! [`FaultKind::ShardRecovery`]) are applied *here* — below the front
//! tier they are inert by contract — while every other fault kind is
//! distributed into per-shard local plans at construction (and again,
//! time-shifted, when a shard is cold-restarted after recovery).
//!
//! # Failover
//!
//! Taking a shard down drains its live sessions through a displaced
//! ledger that follows the same [`DegradePolicy`] vocabulary the
//! in-shard degradation machinery uses: each displaced session retries
//! re-admission on the surviving replicas of its movie (in placement
//! order) under exponential backoff — joining an in-window batch cohort
//! where one covers its position ([`Adoption::CohortJoin`]), falling
//! back to borrowing a surviving shard's dedicated-stream reserve
//! ([`Adoption::DedicatedStream`]) — until the retry timeout resolves it
//! to a transient denial (the movie is still recoverable: a replica up,
//! or a shard recovery still scheduled) or a permanent one. The front
//! tier arms [`DegradePolicy::recovery_wins`] for itself and its shards:
//! after a whole-shard recovery the recovery-vs-timeout race is the
//! norm, and recovery wins it.
//!
//! # Conservation
//!
//! Every displaced session ends in exactly one of {re-admitted,
//! re-waiting, denied-transient, denied-permanent};
//! [`Federation::check_invariants`] audits
//! [`FederationMetrics::conserved`] against the in-flight ledger after
//! every tick, alongside each live shard's own conservation laws.

use vod_runtime::{
    BackendKind, DegradePolicy, FaultEvent, FaultKind, FaultPlan, FederationMetrics, RuntimeMetrics,
};
use vod_server::{
    config_from_plan, make_backend, Adoption, DeliveryBackend, MovieId, ServerConfig, ServerError,
    SessionId, SessionStatus,
};
use vod_sizing::ShardPlan;
use vod_workload::VcrKind;

/// One shard's construction recipe: the delivery scheme and the server
/// configuration (catalog slice, stream pool, buffer budget) it runs.
#[derive(Clone)]
pub struct ShardSpec {
    /// Delivery scheme this shard runs.
    pub backend: BackendKind,
    /// The shard's provisioning (its slice of the global budget).
    pub server: ServerConfig,
}

/// Federation construction parameters.
#[derive(Clone)]
pub struct FederationConfig {
    /// The shards, index = shard id.
    pub shards: Vec<ShardSpec>,
    /// Placement map: global movie index → `(shard, local movie id)`
    /// replicas in failover-preference order (first entry is the
    /// primary). Every movie needs at least one replica.
    pub placement: Vec<Vec<(usize, MovieId)>>,
    /// Degradation vocabulary for the displaced ledger and the shards.
    /// [`DegradePolicy::recovery_wins`] is forced on by the front tier.
    pub policy: DegradePolicy,
}

/// Handle to a federated session (stable across displacement and
/// re-admission — the shard-local [`SessionId`] behind it changes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FedSessionId(pub u32);

/// Where a federated session currently lives.
#[derive(Debug, Clone, Copy)]
enum FedState {
    /// Playing (or queued) on an up shard.
    Live { shard: usize, local: SessionId },
    /// Finished before (or observed finished at) its shard's outage; the
    /// shard-local handle is gone but the completion was accounted.
    Finished,
    /// In the displaced ledger, waiting for re-admission.
    Displaced {
        /// Playback position snapshotted when the shard went dark.
        position: u32,
        /// Tick the session entered the ledger.
        since: u64,
        /// Next tick a re-admission attempt is due.
        next_retry: u64,
        /// Current backoff (doubles per refused round, capped).
        backoff: u64,
    },
    /// Timed out while the movie was still recoverable.
    DeniedTransient,
    /// Timed out with every hosting replica dark and no recovery ahead.
    DeniedPermanent,
}

struct FedSession {
    /// Global movie index (into the placement map).
    movie: usize,
    state: FedState,
}

/// The front tier itself. See the module docs for the failover story.
pub struct Federation {
    specs: Vec<ShardSpec>,
    placement: Vec<Vec<(usize, MovieId)>>,
    policy: DegradePolicy,
    shards: Vec<Option<Box<dyn DeliveryBackend>>>,
    /// Global tick each live shard incarnation was constructed at (local
    /// shard time = global − this).
    started_at: Vec<u64>,
    plan: FaultPlan,
    fault_mode: bool,
    sessions: Vec<FedSession>,
    /// Fed ids currently displaced, in ledger (insertion) order.
    displaced: Vec<u32>,
    /// Finished-session counts retired from dead shard incarnations.
    retired_done: u64,
    /// Down shards at the last metrics reset (baseline for the
    /// outage/recovery population invariant).
    baseline_down: u64,
    metrics: FederationMetrics,
    now: u64,
}

impl Federation {
    /// Build the front tier: construct every shard via
    /// [`make_backend`] and arm it with its slice of `plan` (non-shard
    /// events routed by `at % shards`) under the federation's policy.
    ///
    /// # Panics
    ///
    /// Panics when the config is malformed: no shards, an empty or
    /// out-of-range placement entry, or a placement pointing at a movie
    /// its shard does not host.
    pub fn new(config: FederationConfig, plan: FaultPlan) -> Self {
        // vod-lint: allow(no-panic) — construction-time config validation;
        // a malformed federation is a harness bug, not a runtime state.
        assert!(!config.shards.is_empty(), "federation needs shards");
        for (m, replicas) in config.placement.iter().enumerate() {
            assert!(!replicas.is_empty(), "movie {m} has no replica");
            for &(s, local) in replicas {
                let spec = config
                    .shards
                    .get(s)
                    // vod-lint: allow(no-panic) — construction-time validation
                    .unwrap_or_else(|| panic!("movie {m} placed on missing shard {s}"));
                assert!(
                    spec.server.movies.iter().any(|hm| hm.movie == local),
                    "movie {m}: shard {s} does not host local id {}",
                    local.0
                );
            }
        }
        let mut policy = config.policy;
        policy.recovery_wins = true;
        let fault_mode = !plan.is_empty();
        let n = config.shards.len();
        let mut fed = Self {
            shards: Vec::with_capacity(n),
            started_at: vec![0; n],
            specs: config.shards,
            placement: config.placement,
            policy,
            plan,
            fault_mode,
            sessions: Vec::new(),
            displaced: Vec::new(),
            retired_done: 0,
            baseline_down: 0,
            metrics: FederationMetrics::new(),
            now: 0,
        };
        for s in 0..n {
            let mut shard = make_backend(fed.specs[s].backend, &fed.specs[s].server);
            shard.inject_faults(fed.local_plan(s, 0), fed.policy);
            fed.shards.push(Some(shard));
        }
        fed
    }

    /// The shard-local fault plan for shard `s` rebuilt at global tick
    /// `from`: every non-shard event with `at % shards == s` and
    /// `at ≥ from`, shifted onto the incarnation's local clock.
    fn local_plan(&self, s: usize, from: u64) -> FaultPlan {
        let n = self.specs.len() as u64;
        FaultPlan::new(
            self.plan
                .events()
                .iter()
                .filter(|e| {
                    !matches!(
                        e.kind,
                        FaultKind::ShardOutage { .. } | FaultKind::ShardRecovery { .. }
                    ) && e.at % n == s as u64
                        && e.at >= from
                })
                .map(|e| FaultEvent {
                    at: e.at - from,
                    kind: e.kind,
                })
                .collect(),
        )
    }

    /// Number of shards (up or down).
    pub fn shard_count(&self) -> usize {
        self.specs.len()
    }

    /// Whether shard `s` is currently up.
    pub fn shard_up(&self, s: usize) -> bool {
        self.shards[s].is_some()
    }

    /// Current global tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Route an admission for global movie `movie` through the placement
    /// map: the first up replica takes it. `None` means every replica is
    /// dark and the admission was denied (counted, no session tracked).
    pub fn open_session(&mut self, movie: usize) -> Option<FedSessionId> {
        let mut skipped_dead = false;
        for &(s, local) in &self.placement[movie] {
            let Some(shard) = self.shards[s].as_mut() else {
                skipped_dead = true;
                continue;
            };
            // vod-lint: allow(no-panic) — placement was validated against
            // the shard's hosted catalog at construction.
            let id = shard.open_session(local).expect("placement hosts movie");
            self.metrics.admissions_routed += 1;
            if skipped_dead {
                self.metrics.admissions_rerouted += 1;
            }
            let fed = FedSessionId(self.sessions.len() as u32);
            self.sessions.push(FedSession {
                movie,
                state: FedState::Live {
                    shard: s,
                    local: id,
                },
            });
            return Some(fed);
        }
        self.metrics.admissions_denied += 1;
        None
    }

    /// Session status in the shared vocabulary: live sessions report
    /// their shard's status, displaced sessions report
    /// [`SessionStatus::Degraded`], and resolved (finished or denied)
    /// sessions report [`SessionStatus::Done`].
    pub fn session_status(&self, id: FedSessionId) -> SessionStatus {
        match self.sessions[id.0 as usize].state {
            FedState::Live { shard, local } => {
                // vod-lint: allow(no-panic) — a Live state always points at
                // an up shard (audited by check_invariants every tick).
                self.shards[shard]
                    .as_ref()
                    // vod-lint: allow(no-panic) — Live ⇒ shard up, audited
                    .expect("live session on up shard")
                    .session_status(local)
                    // vod-lint: allow(no-panic) — Live ⇒ shard owns the id
                    .expect("shard knows its session")
            }
            FedState::Displaced { .. } => SessionStatus::Degraded,
            FedState::Finished | FedState::DeniedTransient | FedState::DeniedPermanent => {
                SessionStatus::Done
            }
        }
    }

    /// Forward a VCR request to the session's shard. Displaced or
    /// resolved sessions refuse with [`ServerError::VcrDenied`] (the
    /// front tier has no stream to serve it from).
    pub fn request_vcr(
        &mut self,
        id: FedSessionId,
        kind: VcrKind,
        magnitude: u32,
    ) -> Result<(), ServerError> {
        match self.sessions[id.0 as usize].state {
            FedState::Live { shard, local } => {
                // vod-lint: allow(no-panic) — Live ⇒ shard up (see above).
                self.shards[shard]
                    .as_mut()
                    // vod-lint: allow(no-panic) — Live ⇒ shard up, audited
                    .expect("live session on up shard")
                    .request_vcr(local, kind, magnitude)
            }
            _ => Err(ServerError::VcrDenied),
        }
    }

    /// Advance one virtual minute: apply whole-shard fault events due at
    /// the current tick (recoveries restart shards *before* the ledger
    /// runs, so a same-tick timeout loses the race to recovery), process
    /// the displaced ledger, then tick every up shard.
    pub fn tick(&mut self) {
        if self.fault_mode {
            let events: Vec<FaultKind> = self
                .plan
                .events_at(self.now)
                .iter()
                .map(|e| e.kind)
                .collect();
            for kind in events {
                match kind {
                    FaultKind::ShardOutage { shard } => self.shard_outage(shard as usize),
                    FaultKind::ShardRecovery { shard } => self.shard_recovery(shard as usize),
                    // Capacity faults were distributed into per-shard
                    // local plans at construction/rebuild.
                    FaultKind::DiskStreamLoss { .. }
                    | FaultKind::DiskOutage { .. }
                    | FaultKind::DiskSlowdown { .. }
                    | FaultKind::BufferShrink { .. }
                    | FaultKind::BufferRestore { .. } => {}
                }
            }
        }
        self.drain_ledger();
        for shard in self.shards.iter_mut().flatten() {
            shard.tick();
        }
        self.now += 1;
    }

    /// Take shard `s` down: retire its finished-session count, displace
    /// every live session into the ledger, and drop the backend. A
    /// second outage on an already-dark shard is a no-op (uncounted).
    fn shard_outage(&mut self, s: usize) {
        let Some(shard) = self.shards[s].take() else {
            return;
        };
        self.metrics.shard_outages += 1;
        self.retired_done += shard.sessions_finished();
        let now = self.now;
        for i in 0..self.sessions.len() {
            let FedState::Live { shard: home, local } = self.sessions[i].state else {
                continue;
            };
            if home != s {
                continue;
            }
            let finished = matches!(shard.session_status(local), Ok(SessionStatus::Done));
            if finished {
                self.sessions[i].state = FedState::Finished;
                continue;
            }
            // vod-lint: allow(no-panic) — a non-Done live session always
            // has a queryable position on its (still-held) backend.
            let position = shard.session_position(local).expect("live session");
            self.sessions[i].state = FedState::Displaced {
                position,
                since: now,
                next_retry: now,
                backoff: self.policy.retry_backoff.max(1),
            };
            self.displaced.push(i as u32);
            self.metrics.displaced_total += 1;
        }
    }

    /// Cold-restart shard `s` after an outage: a fresh backend armed
    /// with the remaining slice of the global plan, time-shifted onto
    /// the new incarnation's local clock. Recovery of an up shard is a
    /// no-op (uncounted).
    fn shard_recovery(&mut self, s: usize) {
        if self.shards[s].is_some() {
            return;
        }
        let mut shard = make_backend(self.specs[s].backend, &self.specs[s].server);
        shard.inject_faults(self.local_plan(s, self.now), self.policy);
        self.shards[s] = Some(shard);
        self.started_at[s] = self.now;
        self.metrics.shard_recoveries += 1;
    }

    /// One ledger pass: due sessions attempt re-admission on the up
    /// replicas of their movie in placement order; refused rounds back
    /// off exponentially; the retry timeout resolves survivors into
    /// transient or permanent denials (with the recovery-wins last
    /// chance on a same-tick shard recovery).
    fn drain_ledger(&mut self) {
        let now = self.now;
        let mut keep: Vec<u32> = Vec::with_capacity(self.displaced.len());
        for k in 0..self.displaced.len() {
            let i = self.displaced[k] as usize;
            let movie = self.sessions[i].movie;
            let FedState::Displaced {
                position,
                since,
                next_retry,
                backoff,
            } = self.sessions[i].state
            else {
                // vod-lint: allow(no-panic) — the ledger only lists
                // Displaced sessions (audited by check_invariants).
                unreachable!("ledger entry not displaced");
            };
            let timed_out = now.saturating_sub(since) >= self.policy.retry_timeout;
            // Recovery wins a same-tick race: a recovery applied this
            // tick re-opens the attempt even past the timeout.
            let last_chance = timed_out
                && self.policy.recovery_wins
                && self.placement[movie]
                    .iter()
                    .any(|&(s, _)| self.started_at[s] == now && self.shards[s].is_some());
            if now >= next_retry || last_chance {
                let mut adopted = false;
                for r in 0..self.placement[movie].len() {
                    let (s, local) = self.placement[movie][r];
                    let Some(shard) = self.shards[s].as_mut() else {
                        continue;
                    };
                    match shard.adopt_session(local, position) {
                        Ok((sid, how)) => {
                            self.sessions[i].state = FedState::Live {
                                shard: s,
                                local: sid,
                            };
                            match how {
                                Adoption::CohortJoin => self.metrics.readmitted_cohort += 1,
                                Adoption::DedicatedStream => self.metrics.readmitted_dedicated += 1,
                            }
                            adopted = true;
                            break;
                        }
                        Err(_) => self.metrics.readmit_refusals += 1,
                    }
                }
                if adopted {
                    continue;
                }
            }
            if timed_out {
                if self.movie_recoverable(movie) {
                    self.sessions[i].state = FedState::DeniedTransient;
                    self.metrics.denied_transient += 1;
                } else {
                    self.sessions[i].state = FedState::DeniedPermanent;
                    self.metrics.denied_permanent += 1;
                }
                continue;
            }
            self.metrics.rewait_ticks += 1;
            if now >= next_retry {
                self.sessions[i].state = FedState::Displaced {
                    position,
                    since,
                    next_retry: now + backoff,
                    backoff: (backoff * 2).min(self.policy.retry_backoff_cap.max(1)),
                };
            }
            keep.push(i as u32);
        }
        self.displaced = keep;
    }

    /// Whether a timed-out displaced session's movie could still be
    /// served later: some hosting replica is up, or a shard recovery for
    /// one is still ahead in the plan.
    fn movie_recoverable(&self, movie: usize) -> bool {
        let hosted_up = self.placement[movie]
            .iter()
            .any(|&(s, _)| self.shards[s].is_some());
        if hosted_up {
            return true;
        }
        self.plan.events().iter().any(|e| {
            e.at > self.now
                && matches!(
                    e.kind,
                    FaultKind::ShardRecovery { shard }
                        if self.placement[movie].iter().any(|&(s, _)| s == shard as usize)
                )
        })
    }

    /// Reset every up shard's counters and re-baseline the federation
    /// ledger metrics (end of warm-up). In-flight displaced sessions
    /// carry over as the new `displaced_total` baseline so conservation
    /// keeps holding.
    pub fn reset_metrics(&mut self) {
        for shard in self.shards.iter_mut().flatten() {
            shard.reset_metrics();
        }
        self.retired_done = 0;
        self.baseline_down = self.shards.iter().filter(|s| s.is_none()).count() as u64;
        self.metrics = FederationMetrics {
            displaced_total: self.displaced.len() as u64,
            ..FederationMetrics::new()
        };
    }

    /// Snapshot of the federation-level ledger counters.
    pub fn federation_metrics(&self) -> FederationMetrics {
        self.metrics
    }

    /// Per-shard [`RuntimeMetrics`] snapshots (`None` for dark shards).
    pub fn per_shard_metrics(&self) -> Vec<Option<RuntimeMetrics>> {
        self.shards
            .iter()
            .map(|s| s.as_ref().map(|b| b.runtime_metrics()))
            .collect()
    }

    /// Sessions in a degraded state anywhere: in-shard degraded plus the
    /// displaced ledger population.
    pub fn degraded_sessions(&self) -> u64 {
        let in_shard: u64 = self
            .shards
            .iter()
            .flatten()
            .map(|s| u64::from(s.degraded_sessions()))
            .sum();
        in_shard + self.displaced.len() as u64
    }

    /// Sessions finished federation-wide: live shards' counts plus the
    /// totals retired from dead incarnations.
    pub fn sessions_finished(&self) -> u64 {
        let live: u64 = self
            .shards
            .iter()
            .flatten()
            .map(|s| s.sessions_finished())
            .sum();
        live + self.retired_done
    }

    /// Displaced sessions currently in the ledger.
    pub fn displaced_in_flight(&self) -> u64 {
        self.displaced.len() as u64
    }

    /// Conservation audit, run by the driver after every tick:
    ///
    /// 1. every live shard's own invariants (tagged `shard <s>:`),
    /// 2. the displaced-session ledger balances
    ///    ([`FederationMetrics::conserved`] against in-flight),
    /// 3. every `Live` session points at an up shard, and the ledger
    ///    lists exactly the `Displaced` sessions,
    /// 4. the outage/recovery counters explain the dark-shard population.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut v = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            if let Some(shard) = shard {
                for what in shard.check_invariants() {
                    v.push(format!("shard {s}: {what}"));
                }
            }
        }
        if !self.metrics.conserved(self.displaced.len() as u64) {
            v.push(format!(
                "displaced ledger out of balance: {} displaced vs {} resolved + {} in flight",
                self.metrics.displaced_total,
                self.metrics.readmitted_cohort
                    + self.metrics.readmitted_dedicated
                    + self.metrics.denied_transient
                    + self.metrics.denied_permanent,
                self.displaced.len()
            ));
        }
        let mut displaced_states = 0u64;
        for (i, sess) in self.sessions.iter().enumerate() {
            match sess.state {
                FedState::Live { shard, .. } if self.shards[shard].is_none() => {
                    v.push(format!("session {i} live on dark shard {shard}"));
                }
                FedState::Displaced { .. } => {
                    displaced_states += 1;
                    if !self.displaced.contains(&(i as u32)) {
                        v.push(format!("displaced session {i} missing from ledger"));
                    }
                }
                _ => {}
            }
        }
        if displaced_states != self.displaced.len() as u64 {
            v.push(format!(
                "ledger lists {} sessions but {} are displaced",
                self.displaced.len(),
                displaced_states
            ));
        }
        let down = self.shards.iter().filter(|s| s.is_none()).count() as u64;
        if self.metrics.shard_outages + self.baseline_down != self.metrics.shard_recoveries + down {
            v.push(format!(
                "outage accounting: {} outages + {} baseline ≠ {} recoveries + {} down",
                self.metrics.shard_outages, self.baseline_down, self.metrics.shard_recoveries, down
            ));
        }
        v
    }
}

/// Build shard specs and a placement map from a [`split_budget`]
/// result: shard `s` hosts the movies [`ShardPlan`] assigned it (local
/// ids in shard-local order, matching [`config_from_plan`]), each with a
/// single replica. `lengths[i]` is global movie `i`'s length in minutes
/// and `vcr_reserve` the per-shard dedicated-stream reserve.
///
/// [`split_budget`]: vod_sizing::split_budget
pub fn shards_from_split(
    split: &ShardPlan,
    lengths: &[u32],
    vcr_reserve: u32,
    backend: BackendKind,
) -> (Vec<ShardSpec>, Vec<Vec<(usize, MovieId)>>) {
    let mut placement: Vec<Vec<(usize, MovieId)>> = vec![Vec::new(); split.plan.allocations.len()];
    let specs = (0..split.shards())
        .map(|s| {
            let local = split.shard_plan(s);
            let local_lengths: Vec<u32> =
                split.shard_movies[s].iter().map(|&i| lengths[i]).collect();
            for (pos, &i) in split.shard_movies[s].iter().enumerate() {
                placement[i].push((s, MovieId(pos as u32)));
            }
            ShardSpec {
                backend,
                server: config_from_plan(&local, &local_lengths, vcr_reserve),
            }
        })
        .collect();
    (specs, placement)
}
