//! # vod-federation — sharded catalog federation front tier
//!
//! Scales the single-server batching/buffering design of the paper out
//! to N independent catalog shards behind one admission door, without
//! changing any per-shard machinery: each shard is a stock
//! [`DeliveryBackend`](vod_server::DeliveryBackend) (any
//! [`BackendKind`](vod_runtime::BackendKind)), provisioned with its
//! slice of the global `(B_s, n_s)` budget by
//! [`split_budget`](vod_sizing::split_budget), and driven on the shared
//! integer-minute tick grid.
//!
//! What the front tier adds:
//!
//! * **Placement routing** — admissions go to the first live replica of
//!   the requested movie ([`Federation::open_session`]).
//! * **Whole-shard chaos** — `ShardOutage`/`ShardRecovery` fault events
//!   (inert below the front tier) take entire shards dark and
//!   cold-restart them mid-run.
//! * **Failover with conserved accounting** — live sessions displaced
//!   by an outage drain through a [`DegradePolicy`]-shaped ledger:
//!   cohort re-join on a surviving replica, dedicated-stream borrowing,
//!   bounded backoff-and-retry, and timeout into transient/permanent
//!   denial. Every displaced session ends in exactly one bucket;
//!   [`Federation::check_invariants`] audits the balance each tick.
//!
//! The [`run_federation`] driver replicates the single-server harness
//! loop bit-for-bit, so a one-shard federation with an empty plan is
//! bitwise-identical to `run_harness` — the federation layer provably
//! adds zero behavior until shards or faults are added.
//!
//! [`DegradePolicy`]: vod_runtime::DegradePolicy

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

mod driver;
mod front;

pub use driver::{run_federation, FederationHarnessConfig, FederationOutcome, WorkloadShape};
pub use front::{shards_from_split, FedSessionId, Federation, FederationConfig, ShardSpec};
