//! Federation integration suite: the bitwise identity with the plain
//! harness, whole-shard outage failover, displaced-session conservation,
//! the recovery-wins timeline, and the `split_budget` wiring.

#![allow(clippy::unwrap_used, clippy::float_cmp)]

use std::sync::Arc;

use vod_dist::kinds::Gamma;
use vod_federation::{
    run_federation, shards_from_split, Federation, FederationConfig, FederationHarnessConfig,
    ShardSpec, WorkloadShape,
};
use vod_runtime::{BackendKind, DegradePolicy, FaultEvent, FaultKind, FaultPlan};
use vod_server::{run_harness, HarnessConfig, HostedMovie, MovieId, ServerConfig};
use vod_workload::BehaviorModel;

fn behavior() -> BehaviorModel {
    BehaviorModel::uniform_dist((0.2, 0.2, 0.6), 30.0, Arc::new(Gamma::paper_fig7()))
}

fn single_movie_server() -> ServerConfig {
    single_movie_server_with_reserve(40)
}

fn single_movie_server_with_reserve(vcr_reserve: u32) -> ServerConfig {
    let movie = HostedMovie::from_allocation(MovieId(0), 120, 20, 100.0);
    ServerConfig {
        piggyback: None,
        ..ServerConfig::provisioned(vec![movie], vcr_reserve)
    }
}

/// A federation whose every shard hosts the same single movie.
fn replicated_config(shards: usize) -> FederationConfig {
    replicated_config_with_reserve(shards, 40)
}

fn replicated_config_with_reserve(shards: usize, vcr_reserve: u32) -> FederationConfig {
    let specs: Vec<ShardSpec> = (0..shards)
        .map(|_| ShardSpec {
            backend: BackendKind::BatchingBuffering,
            server: single_movie_server_with_reserve(vcr_reserve),
        })
        .collect();
    let placement = vec![(0..shards).map(|s| (s, MovieId(0))).collect()];
    FederationConfig {
        shards: specs,
        placement,
        policy: DegradePolicy::default(),
    }
}

fn harness_cfg(warmup: u64, measure: u64) -> FederationHarnessConfig {
    FederationHarnessConfig {
        movie: 0,
        extra_movies: vec![],
        behavior: behavior(),
        mean_interarrival: 2.0,
        warmup,
        measure,
        workload: WorkloadShape::RoundRobin,
    }
}

#[test]
fn single_shard_empty_plan_is_bitwise_identical_to_harness() {
    let plain = HarnessConfig {
        server: single_movie_server(),
        movie: MovieId(0),
        extra_movies: vec![],
        behavior: behavior(),
        mean_interarrival: 2.0,
        warmup: 240,
        measure: 1200,
    };
    for seed in [7u64, 11, 2026] {
        let reference = run_harness(&plain, seed);
        let outcome = run_federation(
            replicated_config(1),
            &FaultPlan::empty(),
            &harness_cfg(240, 1200),
            seed,
        );
        assert_eq!(outcome.violation_count, 0, "{:?}", outcome.violations);
        let shard0 = outcome.per_shard[0]
            .as_ref()
            .expect("single shard stays up");
        assert_eq!(
            shard0, &reference,
            "seed {seed}: federation layer must add zero behavior"
        );
        assert_eq!(outcome.sessions_denied_admission, 0);
        assert_eq!(
            outcome.fed.admissions_routed,
            outcome_routed_measured(&outcome)
        );
    }
}

/// Routed admissions in the measured window (metrics reset at warm-up,
/// so the counter only covers post-warmup arrivals).
fn outcome_routed_measured(outcome: &vod_federation::FederationOutcome) -> u64 {
    outcome.fed.admissions_routed
}

#[test]
fn run_federation_is_deterministic() {
    let plan = FaultPlan::generate_federation(99, 400, 10, 2);
    let a = run_federation(replicated_config(2), &plan, &harness_cfg(60, 340), 5);
    let b = run_federation(replicated_config(2), &plan, &harness_cfg(60, 340), 5);
    assert_eq!(a, b, "same seed/config/plan must reproduce bitwise");
}

#[test]
fn outage_displaces_and_surviving_replica_readmits() {
    // Two replicas of the movie; shard 0 goes dark mid-run and never
    // comes back. Every displaced session must re-admit on shard 1 or
    // resolve as a denial — and with a live replica up the whole run,
    // no denial may be classified permanent.
    let plan = FaultPlan::new(vec![FaultEvent {
        at: 100,
        kind: FaultKind::ShardOutage { shard: 0 },
    }]);
    let outcome = run_federation(replicated_config(2), &plan, &harness_cfg(0, 400), 13);
    assert_eq!(outcome.violation_count, 0, "{:?}", outcome.violations);
    assert_eq!(outcome.fed.shard_outages, 1);
    assert!(outcome.fed.displaced_total > 0, "outage displaced nobody");
    assert!(
        outcome.fed.readmitted_cohort + outcome.fed.readmitted_dedicated > 0,
        "no displaced session found the surviving replica: {:?}",
        outcome.fed
    );
    assert_eq!(
        outcome.fed.denied_permanent, 0,
        "a live replica makes every timeout transient"
    );
    assert_eq!(
        outcome.fed.displaced_total,
        outcome.fed.readmitted_cohort
            + outcome.fed.readmitted_dedicated
            + outcome.fed.denied_transient
            + outcome.fed.denied_permanent
            + outcome.displaced_in_flight,
        "displaced ledger must balance"
    );
    assert!(outcome.per_shard[0].is_none(), "shard 0 stays dark");
    assert!(outcome.per_shard[1].is_some());
}

#[test]
fn outage_without_replica_or_recovery_denies_permanently() {
    // One shard, one movie, outage with no recovery: every displaced
    // session times out permanent, and post-outage arrivals are denied
    // admission.
    let plan = FaultPlan::new(vec![FaultEvent {
        at: 100,
        kind: FaultKind::ShardOutage { shard: 0 },
    }]);
    let outcome = run_federation(replicated_config(1), &plan, &harness_cfg(0, 300), 13);
    assert_eq!(outcome.violation_count, 0, "{:?}", outcome.violations);
    assert!(outcome.fed.displaced_total > 0);
    assert_eq!(
        outcome.fed.readmitted_cohort + outcome.fed.readmitted_dedicated,
        0
    );
    assert_eq!(outcome.fed.denied_transient, 0, "nothing is recoverable");
    assert_eq!(
        outcome.fed.denied_permanent, outcome.fed.displaced_total,
        "every displaced session must resolve permanent"
    );
    assert!(
        outcome.sessions_denied_admission > 0,
        "arrivals after the outage had nowhere to go"
    );
    assert_eq!(outcome.displaced_in_flight, 0);
}

#[test]
fn recovery_wins_the_same_tick_timeout_race() {
    // Hand-worked timeline (satellite: recovery-vs-timeout order pin).
    // Outage at t=100 displaces sessions with `since = 100`; the ledger
    // timeout (default retry_timeout = 32) expires at t = 132 — the
    // exact tick the shard recovery lands. The front tier arms
    // `recovery_wins`, recoveries are applied before the ledger drains,
    // so the displaced sessions get a last-chance adoption against the
    // just-recovered shard instead of resolving denied.
    let timeout = DegradePolicy::default().retry_timeout;
    let plan = FaultPlan::new(vec![
        FaultEvent {
            at: 100,
            kind: FaultKind::ShardOutage { shard: 0 },
        },
        FaultEvent {
            at: 100 + timeout,
            kind: FaultKind::ShardRecovery { shard: 0 },
        },
    ]);
    // An oversized dedicated reserve so every last-chance adoption can
    // land — the test pins resolution *order*, not capacity pressure.
    let outcome = run_federation(
        replicated_config_with_reserve(1, 400),
        &plan,
        &harness_cfg(0, 300),
        13,
    );
    assert_eq!(outcome.violation_count, 0, "{:?}", outcome.violations);
    assert_eq!(outcome.fed.shard_recoveries, 1);
    assert!(outcome.fed.displaced_total > 0);
    assert_eq!(
        outcome.fed.readmitted_cohort + outcome.fed.readmitted_dedicated,
        outcome.fed.displaced_total,
        "recovery at the timeout tick must win the race for every session: {:?}",
        outcome.fed
    );
    assert_eq!(
        outcome.fed.denied_transient + outcome.fed.denied_permanent,
        0
    );
    // The recovered shard keeps serving: fresh arrivals land on it.
    assert!(outcome.per_shard[0].is_some());
}

#[test]
fn recovery_one_tick_late_loses_the_race() {
    // Same timeline shifted by one tick: the timeout resolves first and
    // the denials are transient (a recovery is still scheduled).
    let timeout = DegradePolicy::default().retry_timeout;
    let plan = FaultPlan::new(vec![
        FaultEvent {
            at: 100,
            kind: FaultKind::ShardOutage { shard: 0 },
        },
        FaultEvent {
            at: 100 + timeout + 1,
            kind: FaultKind::ShardRecovery { shard: 0 },
        },
    ]);
    let outcome = run_federation(replicated_config(1), &plan, &harness_cfg(0, 300), 13);
    assert_eq!(outcome.violation_count, 0, "{:?}", outcome.violations);
    assert!(outcome.fed.denied_transient > 0, "{:?}", outcome.fed);
    assert_eq!(
        outcome.fed.denied_permanent, 0,
        "scheduled recovery keeps the movie recoverable"
    );
}

#[test]
fn federation_chaos_storm_conserves_across_backends() {
    // A generate_federation storm (shard events + capacity faults) over
    // heterogeneous backends: zero invariant violations, balanced
    // ledger.
    for backend in [
        BackendKind::BatchingBuffering,
        BackendKind::PyramidBroadcast,
        BackendKind::DedicatedStream,
    ] {
        let specs: Vec<ShardSpec> = (0..2)
            .map(|_| ShardSpec {
                backend,
                server: single_movie_server(),
            })
            .collect();
        let config = FederationConfig {
            shards: specs,
            placement: vec![vec![(0, MovieId(0)), (1, MovieId(0))]],
            policy: DegradePolicy::default(),
        };
        let plan = FaultPlan::generate_federation(41, 380, 12, 2);
        let outcome = run_federation(config, &plan, &harness_cfg(0, 400), 23);
        assert_eq!(
            outcome.violation_count, 0,
            "{backend:?}: {:?}",
            outcome.violations
        );
        assert_eq!(
            outcome.fed.displaced_total,
            outcome.fed.readmitted_cohort
                + outcome.fed.readmitted_dedicated
                + outcome.fed.denied_transient
                + outcome.fed.denied_permanent
                + outcome.displaced_in_flight,
            "{backend:?}: ledger out of balance: {:?}",
            outcome.fed
        );
    }
}

#[test]
fn zipf_and_flash_crowd_shapes_stay_conserved() {
    let mut cfg = harness_cfg(0, 300);
    cfg.extra_movies = vec![0]; // two slots over the same replicated movie
    let plan = FaultPlan::new(vec![
        FaultEvent {
            at: 80,
            kind: FaultKind::ShardOutage { shard: 1 },
        },
        FaultEvent {
            at: 160,
            kind: FaultKind::ShardRecovery { shard: 1 },
        },
    ]);
    for shape in [
        WorkloadShape::ZipfDrift {
            start_skew: 0.2,
            end_skew: 1.6,
        },
        WorkloadShape::FlashCrowd {
            at: 90,
            duration: 60,
            factor: 4.0,
            movie: 0,
        },
    ] {
        cfg.workload = shape;
        let config = FederationConfig {
            shards: (0..2)
                .map(|_| ShardSpec {
                    backend: BackendKind::BatchingBuffering,
                    server: single_movie_server(),
                })
                .collect(),
            placement: vec![vec![(0, MovieId(0)), (1, MovieId(0))]],
            policy: DegradePolicy::default(),
        };
        let a = run_federation(config.clone(), &plan, &cfg, 31);
        let b = run_federation(config, &plan, &cfg, 31);
        assert_eq!(a, b, "{shape:?}: workload shape must stay deterministic");
        assert_eq!(a.violation_count, 0, "{shape:?}: {:?}", a.violations);
    }
}

#[test]
fn split_budget_wires_a_multi_movie_federation() {
    use vod_model::{ModelOptions, VcrMix};
    use vod_sizing::{example1_movies, split_budget, Budgets};

    let movies = example1_movies(VcrMix::paper_fig7d());
    let split = split_budget(
        &movies,
        Budgets {
            streams: 1230,
            buffer: None,
        },
        2,
        &ModelOptions::default(),
    )
    .unwrap();
    let lengths: Vec<u32> = movies.iter().map(|m| m.length.round() as u32).collect();
    let (specs, placement) =
        shards_from_split(&split, &lengths, 16, BackendKind::BatchingBuffering);
    assert_eq!(specs.len(), 2);
    assert_eq!(placement.len(), movies.len());
    for (m, replicas) in placement.iter().enumerate() {
        assert_eq!(replicas.len(), 1, "split places each movie once");
        let (s, local) = replicas[0];
        assert_eq!(s, split.shard_of(m));
        assert!(specs[s].server.movies.iter().any(|hm| hm.movie == local));
    }
    // A federation built from the split runs clean and serves the whole
    // catalog round-robin.
    let config = FederationConfig {
        shards: specs,
        placement,
        policy: DegradePolicy::default(),
    };
    let fed = Federation::new(config.clone(), FaultPlan::empty());
    assert_eq!(fed.shard_count(), 2);
    let cfg = FederationHarnessConfig {
        movie: 0,
        extra_movies: (1..movies.len()).collect(),
        behavior: behavior(),
        mean_interarrival: 2.0,
        warmup: 0,
        measure: 200,
        workload: WorkloadShape::RoundRobin,
    };
    let outcome = run_federation(config, &FaultPlan::empty(), &cfg, 3);
    assert_eq!(outcome.violation_count, 0, "{:?}", outcome.violations);
    assert!(outcome.sessions_opened > 0);
    assert_eq!(outcome.sessions_denied_admission, 0);
}
