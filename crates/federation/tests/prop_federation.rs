//! Property-based tests of the federation front tier: under arbitrary
//! seeded outage storms — random shard counts, backend mixes, degrade
//! policies, and fault plans — session conservation holds at every tick
//! (audited inside `run_federation`) and the displaced ledger always
//! balances at the end of the run.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use std::sync::Arc;

use proptest::prelude::*;

use vod_dist::kinds::Gamma;
use vod_federation::{
    run_federation, FederationConfig, FederationHarnessConfig, ShardSpec, WorkloadShape,
};
use vod_model::{Rates, SystemParams};
use vod_runtime::{BackendKind, DegradePolicy, FaultPlan};
use vod_server::{HostedMovie, MovieId, ServerConfig};
use vod_workload::BehaviorModel;

/// A small single-movie shard server (fast enough for many cases).
fn shard_server() -> ServerConfig {
    let params = SystemParams::from_wait(30.0, 1.0, 6, Rates::paper()).unwrap();
    let movie = HostedMovie::from_allocation(MovieId(0), 30, 6, params.buffer());
    ServerConfig {
        piggyback: None,
        ..ServerConfig::provisioned(vec![movie], 8)
    }
}

/// Decode a backend from an integer draw (the offline proptest stand-in
/// has no `any::<enum>()`).
fn backend_of(tag: u32) -> BackendKind {
    match tag % 3 {
        0 => BackendKind::BatchingBuffering,
        1 => BackendKind::PyramidBroadcast,
        _ => BackendKind::DedicatedStream,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary seeded outage storms over arbitrary federations never
    /// break conservation: `run_federation` audits `check_invariants`
    /// and ledger/metric monotonicity every tick, and at the end every
    /// displaced session is exactly one of re-admitted, denied, or
    /// still in flight.
    #[test]
    fn outage_storms_conserve_sessions(
        shards in 1usize..5,
        backends in proptest::collection::vec(0u32..3, 4),
        plan_seed in 0u64..u64::MAX,
        run_seed in 0u64..u64::MAX,
        events in 0u32..10,
        retry_timeout in 4u64..40,
        retry_backoff in 1u64..4,
        recovery_tag in 0u32..2,
    ) {
        let config = FederationConfig {
            shards: (0..shards)
                .map(|s| ShardSpec {
                    backend: backend_of(backends[s]),
                    server: shard_server(),
                })
                .collect(),
            placement: vec![(0..shards).map(|s| (s, MovieId(0))).collect()],
            policy: DegradePolicy {
                retry_timeout,
                retry_backoff,
                recovery_wins: recovery_tag == 1,
                ..DegradePolicy::default()
            },
        };
        let cfg = FederationHarnessConfig {
            movie: 0,
            extra_movies: vec![],
            behavior: BehaviorModel::uniform_dist(
                (0.2, 0.2, 0.6),
                10.0,
                Arc::new(Gamma::paper_fig7()),
            ),
            mean_interarrival: 2.0,
            warmup: 40,
            measure: 200,
            workload: WorkloadShape::RoundRobin,
        };
        let plan = FaultPlan::generate_federation(plan_seed, 240, events, shards as u32);
        let out = run_federation(config, &plan, &cfg, run_seed);
        prop_assert_eq!(
            out.violation_count, 0,
            "per-tick invariant violations: {:?}", out.violations
        );
        let resolved = out.fed.readmitted_cohort
            + out.fed.readmitted_dedicated
            + out.fed.denied_transient
            + out.fed.denied_permanent;
        prop_assert_eq!(
            out.fed.displaced_total, resolved + out.displaced_in_flight,
            "displaced ledger must balance: {:?}", out.fed
        );
        // Every readmission retried at least once; outages are the only
        // source of displacement, so no outages means an empty ledger.
        if out.fed.shard_outages == 0 {
            prop_assert_eq!(out.fed.displaced_total, 0);
        }
        prop_assert!(out.fed.shard_recoveries <= out.fed.shard_outages);
        prop_assert!(out.fed.conserved(out.displaced_in_flight));
        prop_assert!(out.fed.monotone_violations(&out.fed).is_empty());
    }
}
