//! Viewer VCR behavior model.
//!
//! The paper treats VCR behavior as "inherently nondeterministic" [8] and
//! characterizes it by (a) the probability that an interaction is FF, RW,
//! or PAU and (b) a general duration distribution per type. This module
//! adds the missing operational piece a simulator needs: *when* viewers
//! interact. Viewers alternate normal-playback intervals (exponentially
//! distributed "think time") with VCR operations.

use std::sync::Arc;

use rand::RngCore;
use vod_dist::rng::{exponential, u01};
use vod_dist::DurationDist;

/// The three interactive operations (paper §2: FF, RW, PAU with viewing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VcrKind {
    /// Fast-forward with viewing.
    FastForward,
    /// Rewind with viewing.
    Rewind,
    /// Pause.
    Pause,
}

impl VcrKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [VcrKind; 3] = [VcrKind::FastForward, VcrKind::Rewind, VcrKind::Pause];

    /// Short label used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            VcrKind::FastForward => "FF",
            VcrKind::Rewind => "RW",
            VcrKind::Pause => "PAU",
        }
    }
}

/// A sampled VCR interaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VcrRequest {
    /// Which operation.
    pub kind: VcrKind,
    /// Sampled magnitude: movie minutes swept for FF/RW, pause duration in
    /// time units for PAU (see DESIGN.md §3 on units).
    pub magnitude: f64,
}

/// Generative model of one viewer's interaction behavior.
#[derive(Clone)]
pub struct BehaviorModel {
    /// Probability a given interaction is FF / RW / PAU (sums to 1).
    p_ff: f64,
    p_rw: f64,
    /// Mean normal-playback minutes between interactions.
    mean_play_between: f64,
    /// Expected number of interactions per viewing is governed by
    /// `mean_play_between` relative to the movie length.
    dist_ff: Arc<dyn DurationDist>,
    dist_rw: Arc<dyn DurationDist>,
    dist_pause: Arc<dyn DurationDist>,
}

impl std::fmt::Debug for BehaviorModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BehaviorModel")
            .field("p_ff", &self.p_ff)
            .field("p_rw", &self.p_rw)
            .field("p_pause", &(1.0 - self.p_ff - self.p_rw))
            .field("mean_play_between", &self.mean_play_between)
            .finish_non_exhaustive()
    }
}

impl BehaviorModel {
    /// Build a behavior model.
    ///
    /// * `mix = (p_ff, p_rw, p_pau)` must sum to 1.
    /// * `mean_play_between` — mean playback minutes between interactions
    ///   (exponentially distributed), must be positive.
    /// * one duration distribution per type.
    ///
    /// # Panics
    /// Panics on invalid mixes or non-positive think time; behavior
    /// construction happens at configuration time where failing fast is
    /// appropriate.
    pub fn new(
        mix: (f64, f64, f64),
        mean_play_between: f64,
        dist_ff: Arc<dyn DurationDist>,
        dist_rw: Arc<dyn DurationDist>,
        dist_pause: Arc<dyn DurationDist>,
    ) -> Self {
        let (p_ff, p_rw, p_pau) = mix;
        assert!(
            p_ff >= 0.0 && p_rw >= 0.0 && p_pau >= 0.0 && (p_ff + p_rw + p_pau - 1.0).abs() < 1e-9,
            "mix must be a probability vector, got {mix:?}"
        );
        assert!(
            mean_play_between.is_finite() && mean_play_between > 0.0,
            "mean_play_between must be positive"
        );
        Self {
            p_ff,
            p_rw,
            mean_play_between,
            dist_ff,
            dist_rw,
            dist_pause,
        }
    }

    /// Same duration law for all three types — the paper's §4 setting.
    pub fn uniform_dist(
        mix: (f64, f64, f64),
        mean_play_between: f64,
        dist: Arc<dyn DurationDist>,
    ) -> Self {
        Self::new(
            mix,
            mean_play_between,
            Arc::clone(&dist),
            Arc::clone(&dist),
            dist,
        )
    }

    /// Mean playback minutes between interactions.
    pub fn mean_play_between(&self) -> f64 {
        self.mean_play_between
    }

    /// The duration distribution for a given kind.
    pub fn dist(&self, kind: VcrKind) -> &dyn DurationDist {
        match kind {
            VcrKind::FastForward => self.dist_ff.as_ref(),
            VcrKind::Rewind => self.dist_rw.as_ref(),
            VcrKind::Pause => self.dist_pause.as_ref(),
        }
    }

    /// Sample the playback time until this viewer's next interaction.
    pub fn next_interaction_gap(&self, rng: &mut dyn RngCore) -> f64 {
        exponential(rng, self.mean_play_between)
    }

    /// Sample an interaction (kind + magnitude).
    pub fn sample_request(&self, rng: &mut dyn RngCore) -> VcrRequest {
        let u = u01(rng);
        let kind = if u < self.p_ff {
            VcrKind::FastForward
        } else if u < self.p_ff + self.p_rw {
            VcrKind::Rewind
        } else {
            VcrKind::Pause
        };
        VcrRequest {
            kind,
            magnitude: self.dist(kind).sample(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_dist::kinds::{Exponential, Gamma};
    use vod_dist::rng::seeded;

    fn model(mix: (f64, f64, f64)) -> BehaviorModel {
        BehaviorModel::uniform_dist(mix, 20.0, Arc::new(Gamma::paper_fig7()))
    }

    #[test]
    #[should_panic(expected = "probability vector")]
    fn bad_mix_panics() {
        model((0.5, 0.5, 0.5));
    }

    #[test]
    fn mix_frequencies_respected() {
        let m = model((0.2, 0.2, 0.6));
        let mut rng = seeded(8);
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            match m.sample_request(&mut rng).kind {
                VcrKind::FastForward => counts[0] += 1,
                VcrKind::Rewind => counts[1] += 1,
                VcrKind::Pause => counts[2] += 1,
            }
        }
        let f = |c: usize| c as f64 / n as f64;
        assert!((f(counts[0]) - 0.2).abs() < 0.01);
        assert!((f(counts[1]) - 0.2).abs() < 0.01);
        assert!((f(counts[2]) - 0.6).abs() < 0.01);
    }

    #[test]
    fn magnitudes_follow_duration_law() {
        let m = model((1.0, 0.0, 0.0));
        let mut rng = seeded(5);
        let n = 50_000;
        let s: f64 = (0..n).map(|_| m.sample_request(&mut rng).magnitude).sum();
        assert!((s / n as f64 - 8.0).abs() < 0.2);
    }

    #[test]
    fn per_type_distributions() {
        let m = BehaviorModel::new(
            (0.5, 0.5, 0.0),
            10.0,
            Arc::new(Exponential::with_mean(1.0).unwrap()),
            Arc::new(Exponential::with_mean(20.0).unwrap()),
            Arc::new(Exponential::with_mean(5.0).unwrap()),
        );
        let mut rng = seeded(6);
        let (mut ff_sum, mut ff_n, mut rw_sum, mut rw_n) = (0.0, 0, 0.0, 0);
        for _ in 0..50_000 {
            let r = m.sample_request(&mut rng);
            match r.kind {
                VcrKind::FastForward => {
                    ff_sum += r.magnitude;
                    ff_n += 1;
                }
                VcrKind::Rewind => {
                    rw_sum += r.magnitude;
                    rw_n += 1;
                }
                VcrKind::Pause => unreachable!("mix has no pause mass"),
            }
        }
        assert!((ff_sum / ff_n as f64 - 1.0).abs() < 0.1);
        assert!((rw_sum / rw_n as f64 - 20.0).abs() < 1.0);
    }

    #[test]
    fn interaction_gaps_exponential() {
        let m = model((0.2, 0.2, 0.6));
        let mut rng = seeded(7);
        let n = 50_000;
        let s: f64 = (0..n).map(|_| m.next_interaction_gap(&mut rng)).sum();
        assert!((s / n as f64 - 20.0).abs() < 0.5);
    }

    #[test]
    fn labels_stable() {
        assert_eq!(VcrKind::FastForward.label(), "FF");
        assert_eq!(VcrKind::Rewind.label(), "RW");
        assert_eq!(VcrKind::Pause.label(), "PAU");
    }
}
