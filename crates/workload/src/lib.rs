//! # vod-workload — workload substrate
//!
//! Generates and summarizes the workloads the paper's §4 experiments run:
//! Poisson viewer arrivals, per-viewer VCR interaction behavior (type mix
//! plus general duration distributions), Zipf catalog popularity for the
//! server's admission experiments, CSV trace persistence (so measured VCR
//! durations can be fitted back into the model via
//! `vod_dist::kinds::Empirical`), and streaming statistics for replicated
//! simulation runs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

mod arrival;
mod behavior;
mod popularity;
mod script;
mod stats;
mod trace;

pub use arrival::{ArrivalProcess, Deterministic, Poisson, UniformJitter};
pub use behavior::{BehaviorModel, VcrKind, VcrRequest};
pub use popularity::Zipf;
pub use script::{generate_script, LoadAction, ScriptedEvent};
pub use stats::{Histogram, Ratio, TimeWeighted, Welford};
pub use trace::{read_csv, write_csv, TraceError, VcrTraceRecord, CSV_HEADER};
