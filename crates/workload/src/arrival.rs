//! Arrival processes.
//!
//! The paper models request arrivals for a popular movie as a Poisson
//! process (§2.1: "reasonable … since we expect the VOD system to have a
//! large user population"); §4 uses exponential inter-arrivals with
//! `1/λ = 2` minutes. Deterministic and uniform processes are provided for
//! stress tests and worst-case studies.

use rand::RngCore;
use vod_dist::rng::{exponential, u01};

/// A stream of arrival instants (minutes, strictly increasing).
pub trait ArrivalProcess: std::fmt::Debug + Send {
    /// The next arrival strictly after `now`.
    fn next_after(&mut self, now: f64, rng: &mut dyn RngCore) -> f64;

    /// Mean arrival rate (arrivals per minute), if defined.
    fn rate(&self) -> f64;
}

/// Poisson arrivals with rate `λ` per minute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    rate: f64,
}

impl Poisson {
    /// Construct with rate `λ > 0` (arrivals per minute).
    pub fn with_rate(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Self { rate }
    }

    /// Construct from the mean inter-arrival time `1/λ` (the paper's §4
    /// uses 2 minutes).
    pub fn with_mean_interarrival(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Self { rate: 1.0 / mean }
    }
}

impl ArrivalProcess for Poisson {
    fn next_after(&mut self, now: f64, rng: &mut dyn RngCore) -> f64 {
        now + exponential(rng, 1.0 / self.rate)
    }

    fn rate(&self) -> f64 {
        self.rate
    }
}

/// Evenly spaced arrivals (worst case for batching studies: one arrival
/// per slot, never bunched).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    interval: f64,
}

impl Deterministic {
    /// One arrival every `interval` minutes.
    pub fn every(interval: f64) -> Self {
        assert!(interval.is_finite() && interval > 0.0);
        Self { interval }
    }
}

impl ArrivalProcess for Deterministic {
    fn next_after(&mut self, now: f64, _rng: &mut dyn RngCore) -> f64 {
        now + self.interval
    }

    fn rate(&self) -> f64 {
        1.0 / self.interval
    }
}

/// Uniformly jittered arrivals: inter-arrival `U[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformJitter {
    lo: f64,
    hi: f64,
}

impl UniformJitter {
    /// Inter-arrival times uniform on `[lo, hi]`, `0 < lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo > 0.0 && hi > lo);
        Self { lo, hi }
    }
}

impl ArrivalProcess for UniformJitter {
    fn next_after(&mut self, now: f64, rng: &mut dyn RngCore) -> f64 {
        now + self.lo + (self.hi - self.lo) * u01(rng)
    }

    fn rate(&self) -> f64 {
        2.0 / (self.lo + self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_dist::rng::seeded;

    #[test]
    fn poisson_rate_recovered() {
        let mut p = Poisson::with_mean_interarrival(2.0);
        assert!((p.rate() - 0.5).abs() < 1e-12);
        let mut rng = seeded(9);
        let mut now = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let next = p.next_after(now, &mut rng);
            assert!(next > now);
            now = next;
        }
        let measured_rate = n as f64 / now;
        assert!((measured_rate - 0.5).abs() < 0.01, "rate {measured_rate}");
    }

    #[test]
    fn poisson_interarrival_cv_is_one() {
        // Coefficient of variation 1 distinguishes Poisson from the other
        // processes.
        let mut p = Poisson::with_rate(1.0);
        let mut rng = seeded(10);
        let mut now = 0.0;
        let (mut s, mut s2) = (0.0, 0.0);
        let n = 100_000;
        for _ in 0..n {
            let next = p.next_after(now, &mut rng);
            let dt = next - now;
            s += dt;
            s2 += dt * dt;
            now = next;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.02, "cv {cv}");
    }

    #[test]
    fn deterministic_is_exact() {
        let mut d = Deterministic::every(3.0);
        let mut rng = seeded(0);
        assert_eq!(d.next_after(1.0, &mut rng), 4.0);
        assert_eq!(d.next_after(4.0, &mut rng), 7.0);
    }

    #[test]
    fn uniform_jitter_in_bounds() {
        let mut u = UniformJitter::new(1.0, 3.0);
        let mut rng = seeded(3);
        let mut now = 0.0;
        for _ in 0..1000 {
            let next = u.next_after(now, &mut rng);
            let dt = next - now;
            assert!((1.0..=3.0).contains(&dt), "dt {dt}");
            now = next;
        }
        assert!((u.rate() - 0.5).abs() < 1e-12);
    }
}
