//! Scripted server load: a pre-generated, reproducible schedule of
//! arrivals and VCR requests.
//!
//! The simulator (`vod-sim`) closes viewers' control loops internally,
//! but the data-path server (`vod-server`) is driven from outside. This
//! module turns the same workload primitives (arrival process, behavior
//! model, catalog popularity) into an explicit event list, so server
//! experiments are driven by the *same* statistical assumptions as the
//! analytic model rather than ad-hoc randomness.

use rand::RngCore;

use crate::arrival::ArrivalProcess;
use crate::behavior::{BehaviorModel, VcrKind};
use crate::popularity::Zipf;

/// One scheduled action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadAction {
    /// Open a session for the movie with this catalog rank.
    OpenSession {
        /// Popularity rank (0-based) of the movie.
        movie_rank: usize,
    },
    /// Issue a VCR request on the `session_seq`-th opened session.
    Vcr {
        /// Index of the target session in open order.
        session_seq: usize,
        /// Operation kind.
        kind: VcrKind,
        /// Sweep distance / pause duration in movie minutes.
        magnitude: f64,
    },
}

/// A timestamped action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScriptedEvent {
    /// Minutes from the start of the experiment.
    pub at: f64,
    /// What happens.
    pub action: LoadAction,
}

/// Generate a load script up to `horizon` minutes.
///
/// Each arrival opens a session on a Zipf-sampled movie and schedules
/// VCR interactions at the behavior model's think-time cadence for up to
/// `movie_len(rank)` playback minutes. Interaction *positions* are left
/// to the receiving server (it knows the true session state and rejects
/// requests that arrive after a session finished — the script
/// intentionally over-approximates, mirroring real users pressing
/// buttons whenever they like).
pub fn generate_script(
    horizon: f64,
    arrivals: &mut dyn ArrivalProcess,
    behavior: &BehaviorModel,
    catalog: &Zipf,
    movie_len: impl Fn(usize) -> f64,
    rng: &mut dyn RngCore,
) -> Vec<ScriptedEvent> {
    assert!(horizon > 0.0, "horizon must be positive");
    let mut events = Vec::new();
    let mut t = 0.0;
    let mut session_seq = 0usize;
    loop {
        t = arrivals.next_after(t, rng);
        if t >= horizon {
            break;
        }
        let movie_rank = catalog.sample(rng);
        events.push(ScriptedEvent {
            at: t,
            action: LoadAction::OpenSession { movie_rank },
        });
        // Interactions over the nominal viewing span.
        let span = movie_len(movie_rank);
        let mut vt = t;
        loop {
            vt += behavior.next_interaction_gap(rng);
            if vt >= t + span || vt >= horizon {
                break;
            }
            let req = behavior.sample_request(rng);
            events.push(ScriptedEvent {
                at: vt,
                action: LoadAction::Vcr {
                    session_seq,
                    kind: req.kind,
                    magnitude: req.magnitude,
                },
            });
        }
        session_seq += 1;
    }
    events.sort_by(|a, b| a.at.total_cmp(&b.at));
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::Poisson;
    use crate::behavior::BehaviorModel;
    use std::sync::Arc;
    use vod_dist::kinds::Exponential;
    use vod_dist::rng::seeded;

    fn behavior() -> BehaviorModel {
        BehaviorModel::uniform_dist(
            (0.2, 0.2, 0.6),
            30.0,
            Arc::new(Exponential::with_mean(8.0).unwrap()),
        )
    }

    #[test]
    fn script_is_sorted_and_bounded() {
        let mut rng = seeded(1);
        let mut arr = Poisson::with_mean_interarrival(2.0);
        let catalog = Zipf::new(3, 0.8);
        let script = generate_script(600.0, &mut arr, &behavior(), &catalog, |_| 120.0, &mut rng);
        assert!(script.len() > 200, "got {}", script.len());
        for w in script.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(script.iter().all(|e| e.at < 600.0));
    }

    #[test]
    fn vcr_targets_reference_opened_sessions() {
        let mut rng = seeded(2);
        let mut arr = Poisson::with_mean_interarrival(3.0);
        let catalog = Zipf::new(2, 0.0);
        let script = generate_script(400.0, &mut arr, &behavior(), &catalog, |_| 90.0, &mut rng);
        let opens = script
            .iter()
            .filter(|e| matches!(e.action, LoadAction::OpenSession { .. }))
            .count();
        for e in &script {
            if let LoadAction::Vcr {
                session_seq,
                magnitude,
                ..
            } = e.action
            {
                assert!(session_seq < opens, "vcr for unopened session");
                assert!(magnitude >= 0.0);
            }
        }
    }

    #[test]
    fn vcr_events_follow_their_session_open() {
        let mut rng = seeded(3);
        let mut arr = Poisson::with_mean_interarrival(2.0);
        let catalog = Zipf::new(3, 1.0);
        let script = generate_script(300.0, &mut arr, &behavior(), &catalog, |_| 60.0, &mut rng);
        let mut open_times = Vec::new();
        for e in &script {
            match e.action {
                LoadAction::OpenSession { .. } => open_times.push(e.at),
                LoadAction::Vcr { session_seq, .. } => {
                    assert!(e.at >= open_times[session_seq]);
                    // And within the nominal viewing span.
                    assert!(e.at <= open_times[session_seq] + 60.0);
                }
            }
        }
    }

    #[test]
    fn determinism_by_seed() {
        let catalog = Zipf::new(3, 0.5);
        let make = |seed| {
            let mut rng = seeded(seed);
            let mut arr = Poisson::with_mean_interarrival(2.0);
            generate_script(200.0, &mut arr, &behavior(), &catalog, |_| 120.0, &mut rng)
        };
        assert_eq!(make(7), make(7));
        assert_ne!(make(7), make(8));
    }
}
