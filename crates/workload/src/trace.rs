//! VCR event traces and a minimal CSV codec.
//!
//! The paper assumes the VCR-duration pdf "can be obtained by statistics
//! while the movie is displayed" (§2.1). The simulator emits
//! [`VcrTraceRecord`]s; this module persists them as CSV so they can be
//! re-ingested (e.g. fitted into `vod_dist::kinds::Empirical`) without any
//! external serialization dependency — the format is a fixed, documented
//! five-column table.

use std::io::{BufRead, Write};

use crate::behavior::VcrKind;

/// One VCR interaction as observed by the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VcrTraceRecord {
    /// Simulation time at which the operation was issued (minutes).
    pub issued_at: f64,
    /// Viewer position when the operation was issued (movie minutes).
    pub position: f64,
    /// Operation kind.
    pub kind: VcrKind,
    /// Magnitude: movie minutes swept (FF/RW) or pause duration (PAU).
    pub magnitude: f64,
    /// Whether the resume was a hit (dedicated resources released).
    pub hit: bool,
}

/// CSV header line written by [`write_csv`].
pub const CSV_HEADER: &str = "issued_at,position,kind,magnitude,hit";

/// Errors from trace (de)serialization.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Write records as CSV (with header).
pub fn write_csv<W: Write>(mut w: W, records: &[VcrTraceRecord]) -> Result<(), TraceError> {
    writeln!(w, "{CSV_HEADER}")?;
    for r in records {
        writeln!(
            w,
            "{:.6},{:.6},{},{:.6},{}",
            r.issued_at,
            r.position,
            r.kind.label(),
            r.magnitude,
            if r.hit { 1 } else { 0 }
        )?;
    }
    Ok(())
}

/// Read records from CSV (header required).
pub fn read_csv<R: BufRead>(r: R) -> Result<Vec<VcrTraceRecord>, TraceError> {
    let mut out = Vec::new();
    let mut lines = r.lines().enumerate();
    match lines.next() {
        Some((_, Ok(h))) if h.trim() == CSV_HEADER => {}
        Some((_, Ok(h))) => {
            return Err(TraceError::Parse {
                line: 1,
                message: format!("bad header `{h}`, expected `{CSV_HEADER}`"),
            })
        }
        Some((_, Err(e))) => return Err(e.into()),
        None => return Ok(out),
    }
    for (idx, line) in lines {
        let line = line?;
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(TraceError::Parse {
                line: lineno,
                message: format!("expected 5 fields, got {}", fields.len()),
            });
        }
        let num = |s: &str, what: &str| -> Result<f64, TraceError> {
            s.trim().parse().map_err(|_| TraceError::Parse {
                line: lineno,
                message: format!("bad {what} `{s}`"),
            })
        };
        let kind = match fields[2].trim() {
            "FF" => VcrKind::FastForward,
            "RW" => VcrKind::Rewind,
            "PAU" => VcrKind::Pause,
            other => {
                return Err(TraceError::Parse {
                    line: lineno,
                    message: format!("unknown kind `{other}`"),
                })
            }
        };
        let hit = match fields[4].trim() {
            "1" => true,
            "0" => false,
            other => {
                return Err(TraceError::Parse {
                    line: lineno,
                    message: format!("bad hit flag `{other}`"),
                })
            }
        };
        out.push(VcrTraceRecord {
            issued_at: num(fields[0], "issued_at")?,
            position: num(fields[1], "position")?,
            kind,
            magnitude: num(fields[3], "magnitude")?,
            hit,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<VcrTraceRecord> {
        vec![
            VcrTraceRecord {
                issued_at: 12.5,
                position: 40.25,
                kind: VcrKind::FastForward,
                magnitude: 8.0,
                hit: true,
            },
            VcrTraceRecord {
                issued_at: 90.0,
                position: 3.0,
                kind: VcrKind::Rewind,
                magnitude: 2.125,
                hit: false,
            },
            VcrTraceRecord {
                issued_at: 100.0,
                position: 55.0,
                kind: VcrKind::Pause,
                magnitude: 30.0,
                hit: true,
            },
        ]
    }

    #[test]
    fn round_trip() {
        let recs = sample_records();
        let mut buf = Vec::new();
        write_csv(&mut buf, &recs).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(recs.len(), back.len());
        for (a, b) in recs.iter().zip(&back) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.hit, b.hit);
            assert!((a.issued_at - b.issued_at).abs() < 1e-6);
            assert!((a.magnitude - b.magnitude).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(read_csv(&b""[..]).unwrap().is_empty());
        let mut buf = Vec::new();
        write_csv(&mut buf, &[]).unwrap();
        assert!(read_csv(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn bad_inputs_rejected_with_line_numbers() {
        let bad_header = b"a,b,c\n1,2,FF,3,1\n";
        assert!(matches!(
            read_csv(&bad_header[..]),
            Err(TraceError::Parse { line: 1, .. })
        ));
        let bad_kind = format!("{CSV_HEADER}\n1,2,XX,3,1\n");
        assert!(matches!(
            read_csv(bad_kind.as_bytes()),
            Err(TraceError::Parse { line: 2, .. })
        ));
        let bad_fields = format!("{CSV_HEADER}\n1,2,FF\n");
        assert!(matches!(
            read_csv(bad_fields.as_bytes()),
            Err(TraceError::Parse { line: 2, .. })
        ));
        let bad_flag = format!("{CSV_HEADER}\n1,2,FF,3,maybe\n");
        assert!(matches!(
            read_csv(bad_flag.as_bytes()),
            Err(TraceError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn blank_lines_skipped() {
        let text = format!("{CSV_HEADER}\n\n1,2,FF,3,1\n\n");
        assert_eq!(read_csv(text.as_bytes()).unwrap().len(), 1);
    }
}
