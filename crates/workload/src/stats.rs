//! Streaming statistics: Welford accumulators, time-weighted averages,
//! fixed-width histograms, and normal-approximation confidence intervals.
//!
//! Used by the simulator and the benchmark harness to summarize
//! replications without storing raw samples.

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Normal-approximation confidence half-width at the given z value
    /// (1.96 ≈ 95%). Exact for large replication counts, which is how the
    /// harness uses it.
    pub fn ci_half_width(&self, z: f64) -> f64 {
        z * self.std_error()
    }

    /// Merge another accumulator (parallel Welford combination).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
    }
}

/// Binary ratio tracker (hits out of trials) with a Wald interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ratio {
    hits: u64,
    trials: u64,
}

impl Ratio {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one trial.
    pub fn push(&mut self, hit: bool) {
        self.trials += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Successes so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Trials so far.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Success fraction (0 when empty).
    pub fn value(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.hits as f64 / self.trials as f64
        }
    }

    /// Wald half-width `z·√(p(1−p)/n)`.
    pub fn ci_half_width(&self, z: f64) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        let p = self.value();
        z * (p * (1.0 - p) / self.trials as f64).sqrt()
    }

    /// Merge another tracker.
    pub fn merge(&mut self, other: &Ratio) {
        self.hits += other.hits;
        self.trials += other.trials;
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. "streams in
/// use"), advanced by `observe(now, value_until_now)` semantics: call
/// [`TimeWeighted::set`] whenever the value changes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeighted {
    last_t: f64,
    value: f64,
    weighted_sum: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Start tracking at time `t0` with initial `value`.
    pub fn new(t0: f64, value: f64) -> Self {
        Self {
            last_t: t0,
            value,
            weighted_sum: 0.0,
            peak: value,
        }
    }

    /// Record that the signal changed to `value` at time `now`.
    pub fn set(&mut self, now: f64, value: f64) {
        debug_assert!(now >= self.last_t, "time went backwards");
        self.weighted_sum += self.value * (now - self.last_t);
        self.last_t = now;
        self.value = value;
        self.peak = self.peak.max(value);
    }

    /// Adjust the signal by `delta` at time `now`.
    pub fn add(&mut self, now: f64, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Current value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Maximum value seen.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-average over `[t0, now]` (flushes the running segment).
    pub fn average(&self, now: f64, t0: f64) -> f64 {
        let total = self.weighted_sum + self.value * (now - self.last_t);
        let span = now - t0;
        if span <= 0.0 {
            self.value
        } else {
            total / span
        }
    }
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    width: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Histogram with `bins` equal-width buckets over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0, "invalid histogram domain");
        Self {
            lo,
            width: (hi - lo) / bins as f64,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.bins.len() {
            self.overflow += 1;
        } else {
            self.bins[idx] += 1;
        }
    }

    /// Total observations (including out-of-range).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bucket counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the domain.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the domain end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// `(bucket_midpoint, fraction)` pairs, for report rendering.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let total = self.count.max(1) as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * self.width, c as f64 / total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut all = Welford::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0;
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            all.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn ratio_ci() {
        let mut r = Ratio::new();
        for i in 0..1000 {
            r.push(i % 4 == 0);
        }
        assert!((r.value() - 0.25).abs() < 1e-12);
        let hw = r.ci_half_width(1.96);
        assert!(hw > 0.02 && hw < 0.035, "half width {hw}");
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.set(10.0, 5.0); // 0 for 10 min
        tw.set(20.0, 1.0); // 5 for 10 min
                           // 1 for 10 more min
        let avg = tw.average(30.0, 0.0);
        assert!((avg - (0.0 * 10.0 + 5.0 * 10.0 + 1.0 * 10.0) / 30.0).abs() < 1e-12);
        assert_eq!(tw.peak(), 5.0);
        assert_eq!(tw.current(), 1.0);
    }

    #[test]
    fn time_weighted_add() {
        let mut tw = TimeWeighted::new(0.0, 2.0);
        tw.add(5.0, 3.0);
        assert_eq!(tw.current(), 5.0);
        tw.add(10.0, -4.0);
        assert_eq!(tw.current(), 1.0);
        assert!((tw.average(10.0, 0.0) - (2.0 * 5.0 + 5.0 * 5.0) / 10.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.7, 9.9, -1.0, 10.0, 25.0] {
            h.push(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        let norm = h.normalized();
        assert!((norm[1].0 - 1.5).abs() < 1e-12);
        assert!((norm[1].1 - 2.0 / 7.0).abs() < 1e-12);
    }
}
