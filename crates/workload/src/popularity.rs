//! Catalog popularity: Zipf-distributed movie selection.
//!
//! The paper's techniques apply only to *popular* movies (§2: "batching
//! for non-popular movies will incur unnecessary latencies"); a server
//! must therefore split its catalog by popularity. VOD request skew is
//! conventionally modelled as Zipf-like, which this module provides for
//! the server crate's admission experiments.

use rand::RngCore;
use vod_dist::rng::u01;

/// Zipf(θ) popularity over `n` ranked items: `P[rank i] ∝ 1/i^θ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    /// Cumulative probabilities per rank (ascending).
    cumulative: Vec<f64>,
    theta: f64,
}

impl Zipf {
    /// Construct for `items ≥ 1` ranks with exponent `theta ≥ 0`
    /// (`theta = 0` is uniform; classic video-store fits use ≈ 0.271…1).
    pub fn new(items: usize, theta: f64) -> Self {
        assert!(items >= 1, "need at least one item");
        assert!(theta.is_finite() && theta >= 0.0, "theta must be >= 0");
        let mut cumulative = Vec::with_capacity(items);
        let mut acc = 0.0;
        for i in 1..=items {
            acc += (i as f64).powf(-theta);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Self { cumulative, theta }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false (constructor requires ≥ 1 item).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// The skew exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability of rank `i` (0-based).
    pub fn pmf(&self, i: usize) -> f64 {
        assert!(i < self.len());
        if i == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[i] - self.cumulative[i - 1]
        }
    }

    /// Sample a 0-based rank.
    pub fn sample(&self, rng: &mut dyn RngCore) -> usize {
        let u = u01(rng);
        match self.cumulative.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.len() - 1),
        }
    }

    /// Smallest set of top ranks capturing at least `fraction` of the
    /// mass — the "popular movies" the paper dedicates batching/buffering
    /// resources to.
    pub fn head_for_mass(&self, fraction: f64) -> usize {
        assert!((0.0..=1.0).contains(&fraction));
        match self.cumulative.binary_search_by(|c| c.total_cmp(&fraction)) {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_dist::rng::seeded;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one_and_decreases() {
        let z = Zipf::new(50, 0.8);
        let total: f64 = (0..50).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for i in 1..50 {
            assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-15);
        }
    }

    #[test]
    fn sampling_matches_pmf() {
        let z = Zipf::new(5, 1.0);
        let mut rng = seeded(17);
        let mut counts = [0usize; 5];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let f = c as f64 / n as f64;
            assert!(
                (f - z.pmf(i)).abs() < 0.005,
                "rank {i}: {f} vs {}",
                z.pmf(i)
            );
        }
    }

    #[test]
    fn head_for_mass() {
        let z = Zipf::new(100, 1.0);
        let head = z.head_for_mass(0.5);
        // Harmonic series: top ~10 of 100 carry half the mass at θ=1.
        assert!((5..20).contains(&head), "head {head}");
        assert_eq!(z.head_for_mass(1.0), 100);
        assert_eq!(z.head_for_mass(0.0), 1);
    }
}
