//! The `DeliveryBackend` refactor must be behavior-preserving for the
//! incumbent scheme: `run_harness` (now routed through the trait-generic
//! driver) is pinned bitwise against a frozen copy of the pre-refactor
//! workload loop, and `run_harness_backend(BatchingBuffering)` is pinned
//! bitwise against `run_harness`. The comparison backends get the same
//! determinism and accounting-sanity treatment.

#![allow(clippy::unwrap_used, clippy::float_cmp)]

use std::sync::Arc;

use vod_dist::kinds::Gamma;
use vod_dist::rng::{exponential, seeded};
use vod_runtime::{BackendKind, RuntimeMetrics};
use vod_server::{
    run_harness, run_harness_backend, HarnessConfig, HostedMovie, MovieId, ServerConfig, SessionId,
    SessionStatus, VodServer,
};
use vod_workload::BehaviorModel;

fn config() -> HarnessConfig {
    let movie = HostedMovie::from_allocation(MovieId(0), 120, 20, 100.0);
    HarnessConfig {
        server: ServerConfig {
            piggyback: None,
            ..ServerConfig::provisioned(vec![movie], 40)
        },
        movie: MovieId(0),
        extra_movies: vec![],
        behavior: BehaviorModel::uniform_dist((0.2, 0.2, 0.6), 30.0, Arc::new(Gamma::paper_fig7())),
        mean_interarrival: 2.0,
        warmup: 240,
        measure: 1200,
    }
}

/// A frozen, line-for-line copy of the workload loop as it was before
/// the `DeliveryBackend` extraction, driving `VodServer` through its
/// inherent API. This is the scan-equivalence oracle pattern: if the
/// refactor ever perturbs RNG order, tick order, or status handling,
/// this copy and `run_harness` diverge bitwise.
fn pre_refactor_harness(cfg: &HarnessConfig, seed: u64) -> RuntimeMetrics {
    let mut server = VodServer::new(cfg.server.clone());
    let mut rng = seeded(seed);
    let mut next_arrival = exponential(&mut rng, cfg.mean_interarrival);
    let mut pending: Vec<(SessionId, u64)> = Vec::new();
    let horizon = cfg.warmup + cfg.measure;
    for minute in 0..horizon {
        if minute == cfg.warmup {
            server.reset_metrics();
        }
        while next_arrival < (minute + 1) as f64 {
            let id = server.open_session(cfg.movie).unwrap();
            let gap = cfg.behavior.next_interaction_gap(&mut rng);
            pending.push((id, minute + (gap.ceil() as u64).max(1)));
            next_arrival += exponential(&mut rng, cfg.mean_interarrival);
        }
        let mut i = 0;
        while i < pending.len() {
            let (id, due) = pending[i];
            if due > minute {
                i += 1;
                continue;
            }
            match server.session_status(id).unwrap() {
                SessionStatus::Done => {
                    pending.swap_remove(i);
                    continue;
                }
                SessionStatus::Shared | SessionStatus::Dedicated => {
                    let req = cfg.behavior.sample_request(&mut rng);
                    let magnitude = (req.magnitude.round() as u32).max(1);
                    let _ = server.request_vcr(id, req.kind, magnitude);
                    let gap = cfg.behavior.next_interaction_gap(&mut rng);
                    pending[i].1 = minute + (gap.ceil() as u64).max(1);
                }
                SessionStatus::Waiting(_) | SessionStatus::InVcr | SessionStatus::Degraded => {
                    pending[i].1 = minute + 1;
                }
            }
            i += 1;
        }
        server.tick();
    }
    server.runtime_metrics()
}

#[test]
fn refactored_harness_matches_pre_refactor_loop_bitwise() {
    let cfg = config();
    for seed in [7u64, 2026] {
        let oracle = pre_refactor_harness(&cfg, seed);
        let current = run_harness(&cfg, seed);
        assert_eq!(
            oracle, current,
            "seed {seed}: trait-generic driver diverged from the frozen loop"
        );
    }
}

#[test]
fn batching_behind_the_trait_is_bitwise_identical() {
    let cfg = config();
    for seed in [7u64, 2026] {
        let direct = run_harness(&cfg, seed);
        let via_trait = run_harness_backend(&cfg, BackendKind::BatchingBuffering, seed);
        assert_eq!(
            direct, via_trait.outcome.metrics,
            "seed {seed}: make_backend(BatchingBuffering) changed the metrics"
        );
        assert_eq!(via_trait.outcome.violation_count, 0);
        assert_eq!(via_trait.kind, BackendKind::BatchingBuffering);
    }
}

#[test]
fn comparison_backends_are_deterministic_and_accounted() {
    let cfg = config();
    for backend in [BackendKind::PyramidBroadcast, BackendKind::DedicatedStream] {
        let a = run_harness_backend(&cfg, backend, 11);
        let b = run_harness_backend(&cfg, backend, 11);
        assert_eq!(a, b, "{backend}: same seed must replay bitwise");
        assert_eq!(
            a.outcome.violation_count, 0,
            "{backend}: fault-free run broke invariants: {:?}",
            a.outcome.violations
        );
        assert!(a.startup_wait_samples > 0, "{backend}: no waits sampled");
        assert!(
            a.outcome.sessions_done > 0,
            "{backend}: nobody finished a movie"
        );
    }
}

#[test]
fn dedicated_backend_has_no_buffer_and_pyramid_waits_are_bounded() {
    let cfg = config();
    let ded = run_harness_backend(&cfg, BackendKind::DedicatedStream, 11);
    assert_eq!(
        ded.buffer_segments, 0,
        "unicast provisions no server buffer"
    );
    assert_eq!(
        ded.outcome.metrics.buffer_minutes, 0.0,
        "unicast delivered from a buffer that does not exist"
    );
    assert!(ded.outcome.metrics.disk_minutes > 0.0);

    let pyr = run_harness_backend(&cfg, BackendKind::PyramidBroadcast, 11);
    // The harness movie promises max_wait = T − b = 1 minute; the
    // pyramid geometry must honor the same bound.
    assert!(
        pyr.startup_wait_mean < 1.0,
        "pyramid mean startup wait {} ≥ one segment-1 period",
        pyr.startup_wait_mean
    );
    assert_eq!(
        pyr.outcome.metrics.resume_starved, 0,
        "fault-free starvation"
    );
    // RW/Pause resumes are free hits in the broadcast prefix, so pyramid
    // cannot classify worse than the batching scheme on this workload.
    let bat = run_harness_backend(&cfg, BackendKind::BatchingBuffering, 11);
    assert!(
        pyr.outcome.metrics.hit_ratio() >= bat.outcome.metrics.hit_ratio(),
        "pyramid hit ratio {} below batching {}",
        pyr.outcome.metrics.hit_ratio(),
        bat.outcome.metrics.hit_ratio()
    );
}
