//! End-to-end data-path tests: byte-exact delivery under batching,
//! buffering, VCR operations, and piggybacking, with resource invariants
//! enforced throughout.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use rand::RngCore;
use vod_dist::rng::seeded;
use vod_server::{HostedMovie, MovieId, ServerConfig, ServerError, SessionStatus, VodServer};
use vod_workload::VcrKind;

fn one_movie_server() -> VodServer {
    // l = 120, n = 10 → T = 12; B = 60 → b = 6, w = 6.
    let movie = HostedMovie::from_allocation(MovieId(0), 120, 10, 60.0);
    assert_eq!(movie.geometry.restart_interval, 12);
    assert_eq!(movie.geometry.partition_capacity, 6);
    VodServer::new(ServerConfig::provisioned(vec![movie], 6))
}

#[test]
fn plain_viewing_is_byte_exact_and_buffer_served() {
    let mut server = one_movie_server();
    let s = server.open_session(MovieId(0)).unwrap();
    server.run(140);
    let stats = server.session_stats(s).unwrap();
    assert_eq!(server.session_status(s).unwrap(), SessionStatus::Done);
    assert_eq!(stats.total(), 120, "every minute delivered exactly once");
    assert_eq!(stats.verify_failures, 0);
    // A type-2 viewer rides the partition the whole way.
    assert_eq!(stats.from_buffer, 120);
    assert_eq!(stats.from_disk, 0);
}

#[test]
fn type1_viewer_waits_at_most_w() {
    let mut server = one_movie_server();
    // Advance to a point where the enrollment window (ages 0..=5) has
    // closed: age 7 at t = 7.
    server.run(7);
    let s = server.open_session(MovieId(0)).unwrap();
    match server.session_status(s).unwrap() {
        SessionStatus::Waiting(at) => {
            assert_eq!(at, 12, "queued for the next restart");
            assert!(at - server.now() <= 6, "wait bounded by w = T − b");
        }
        other => panic!("expected Waiting, got {other:?}"),
    }
    server.run(130);
    let stats = server.session_stats(s).unwrap();
    assert_eq!(stats.total(), 120);
    assert_eq!(stats.verify_failures, 0);
}

#[test]
fn ff_resume_hit_rejoins_partition() {
    let mut server = one_movie_server();
    let s = server.open_session(MovieId(0)).unwrap();
    server.run(30);
    // Sweep forward a full restart interval: lands one partition ahead
    // at the same relative offset — with b = 6 and a 12-minute phase the
    // hit outcome depends on geometry; just assert the invariants.
    server.request_vcr(s, VcrKind::FastForward, 12).unwrap();
    server.run(10);
    let status = server.session_status(s).unwrap();
    assert!(
        matches!(status, SessionStatus::Shared | SessionStatus::Dedicated),
        "resumed: {status:?}"
    );
    server.run(150);
    let stats = server.session_stats(s).unwrap();
    assert_eq!(server.session_status(s).unwrap(), SessionStatus::Done);
    assert_eq!(stats.verify_failures, 0);
    // 30 minutes watched + 12 swept (read at FF) + the rest: total reads
    // cover every position from 0..120 plus piggyback double-reads; at
    // minimum the sweep and the remainder were all delivered.
    assert!(stats.total() >= 120);
}

#[test]
fn pause_short_enough_hits_next_partition() {
    let mut server = one_movie_server();
    let s = server.open_session(MovieId(0)).unwrap();
    server.run(30);
    // Pause exactly one restart interval: the following stream's window
    // arrives at our position — a guaranteed hit (position 30, the next
    // stream is 12 minutes behind, after 12 paused minutes its front is
    // exactly at our position).
    server.request_vcr(s, VcrKind::Pause, 12).unwrap();
    server.run(13);
    assert_eq!(server.session_status(s).unwrap(), SessionStatus::Shared);
    let m = server.metrics();
    assert_eq!(m.runtime.resumes.hits(), 1);
    assert_eq!(m.runtime.resumes.trials(), 1);
    server.run(140);
    let stats = server.session_stats(s).unwrap();
    assert_eq!(stats.verify_failures, 0);
    assert_eq!(stats.total(), 120);
}

#[test]
fn long_pause_misses_and_piggyback_merges_back() {
    let mut server = one_movie_server();
    let s = server.open_session(MovieId(0)).unwrap();
    server.run(30);
    // Pause 15 minutes: (s + 15) mod 12 = 3 ∈ (0, 6]? offset logic aside,
    // choose a duration landing in the inter-partition gap: with b = 6,
    // w = 6, pausing 9 minutes from a front-of-window position lands mid-gap.
    server.request_vcr(s, VcrKind::Pause, 9).unwrap();
    server.run(10);
    let status = server.session_status(s).unwrap();
    assert_eq!(status, SessionStatus::Dedicated, "mid-gap resume must miss");
    assert_eq!(server.metrics().runtime.resumes.hits(), 0);
    // Piggyback at one catch-up segment per 20 ticks must eventually
    // merge the session back into a partition (gap ≤ 6 minutes to close).
    server.run(150);
    assert_eq!(server.metrics().piggyback_merges, 1);
    let stats = server.session_stats(s).unwrap();
    assert_eq!(server.session_status(s).unwrap(), SessionStatus::Done);
    assert_eq!(stats.verify_failures, 0);
}

#[test]
fn rewind_served_in_reverse_and_resumes() {
    let mut server = one_movie_server();
    let s = server.open_session(MovieId(0)).unwrap();
    server.run(40);
    let before = server.session_stats(s).unwrap();
    server.request_vcr(s, VcrKind::Rewind, 9).unwrap();
    server.run(3); // 9 segments at rate 3
    let after = server.session_stats(s).unwrap();
    assert_eq!(
        after.from_disk - before.from_disk,
        9,
        "rewind reads 9 segments"
    );
    assert!(server.session_position(s).unwrap() <= 31);
    server.run(200);
    assert_eq!(server.session_stats(s).unwrap().verify_failures, 0);
    assert_eq!(server.session_status(s).unwrap(), SessionStatus::Done);
}

/// Regression: a rewind whose magnitude exceeds the playback position
/// must clamp the sweep at the start of the movie (counted once in
/// `rw_truncated`), resume cleanly from position 0, and never wrap the
/// residual-sweep arithmetic into a multi-billion-segment sweep.
#[test]
fn rewind_past_start_clamps_to_zero_and_resumes() {
    let mut server = one_movie_server();
    let s = server.open_session(MovieId(0)).unwrap();
    server.run(20);
    assert_eq!(server.session_position(s).unwrap(), 20);
    let before = server.session_stats(s).unwrap();
    server.request_vcr(s, VcrKind::Rewind, 50).unwrap();
    assert_eq!(server.metrics().runtime.rw_truncated, 1);
    // 20 segments at rate 3: the sweep bottoms out on its 7th tick.
    server.run(7);
    assert_eq!(server.session_position(s).unwrap(), 0, "clamped at start");
    let after = server.session_stats(s).unwrap();
    assert_eq!(
        after.from_disk - before.from_disk,
        20,
        "sweep reads exactly the segments above position 0"
    );
    let status = server.session_status(s).unwrap();
    assert!(
        matches!(status, SessionStatus::Shared | SessionStatus::Dedicated),
        "resumed after bottoming out: {status:?}"
    );
    assert_eq!(server.metrics().runtime.resumes.trials(), 1);
    // Replays the whole movie from the top without further incident.
    server.run(140);
    let stats = server.session_stats(s).unwrap();
    assert_eq!(server.session_status(s).unwrap(), SessionStatus::Done);
    assert_eq!(stats.verify_failures, 0);
    assert!(stats.total() >= before.total() + 20 + 120);
}

#[test]
fn vcr_denied_when_reserve_exhausted() {
    // Provision zero VCR reserve: every playback stream is accounted for,
    // so the first FF cannot get a lease... except retired streams leave
    // slack; use a tiny reserve and saturate it.
    let movie = HostedMovie::from_allocation(MovieId(0), 120, 10, 60.0);
    let mut server = VodServer::new(ServerConfig {
        disk_streams: 11, // exactly the live playback streams at steady state
        ..ServerConfig::provisioned(vec![movie], 0)
    });
    // Reach steady state first: all 10 playback streams live.
    server.run(150);
    let mut sessions = Vec::new();
    for _ in 0..4 {
        sessions.push(server.open_session(MovieId(0)).unwrap());
    }
    server.run(20);
    let mut denied = 0;
    for &s in &sessions {
        match server.request_vcr(s, VcrKind::FastForward, 6) {
            Ok(()) => {}
            Err(ServerError::VcrDenied) => denied += 1,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(denied > 0, "with no reserve, some VCR must be denied");
    assert_eq!(server.metrics().runtime.vcr_denied as usize, denied);
}

#[test]
fn no_restart_failures_when_provisioned() {
    let mut server = one_movie_server();
    for _ in 0..8 {
        server.open_session(MovieId(0)).unwrap();
        server.run(17);
    }
    server.run(500);
    assert_eq!(server.metrics().runtime.restart_failures, 0);
    assert_eq!(server.metrics().verify_failures, 0);
}

#[test]
fn disk_capacity_never_exceeded_under_random_load() {
    let movie_a = HostedMovie::from_allocation(MovieId(0), 120, 10, 60.0);
    let movie_b = HostedMovie::from_allocation(MovieId(1), 60, 6, 24.0);
    let mut server = VodServer::new(ServerConfig::provisioned(vec![movie_a, movie_b], 10));
    let mut rng = seeded(99);
    let mut sessions = Vec::new();
    for step in 0..600u64 {
        if rng.next_u64().is_multiple_of(3) {
            let movie = MovieId((rng.next_u64() % 2) as u32);
            sessions.push(server.open_session(movie).unwrap());
        }
        if !sessions.is_empty() && rng.next_u64().is_multiple_of(5) {
            let s = sessions[(rng.next_u64() as usize) % sessions.len()];
            let kind = match rng.next_u64() % 3 {
                0 => VcrKind::FastForward,
                1 => VcrKind::Rewind,
                _ => VcrKind::Pause,
            };
            let mag = 1 + (rng.next_u64() % 20) as u32;
            let _ = server.request_vcr(s, kind, mag); // denial is fine
        }
        server.tick();
        assert!(
            server.disk().in_use() <= server.disk().capacity(),
            "capacity violated at step {step}"
        );
        assert!(server.buffer_pool().used() <= server.buffer_pool().budget());
    }
    assert_eq!(server.metrics().verify_failures, 0);
    // The server actually did work.
    assert!(server.metrics().runtime.buffer_minutes > 1000.0);
}

#[test]
fn multi_movie_isolation() {
    // Sessions of different movies must receive their own movie's bytes
    // (verify_segment checks movie identity, not just index).
    let movie_a = HostedMovie::from_allocation(MovieId(0), 60, 6, 30.0);
    let movie_b = HostedMovie::from_allocation(MovieId(1), 60, 6, 30.0);
    let mut server = VodServer::new(ServerConfig::provisioned(vec![movie_a, movie_b], 4));
    let sa = server.open_session(MovieId(0)).unwrap();
    let sb = server.open_session(MovieId(1)).unwrap();
    server.run(70);
    for s in [sa, sb] {
        let st = server.session_stats(s).unwrap();
        assert_eq!(st.total(), 60);
        assert_eq!(st.verify_failures, 0);
    }
}

#[test]
fn unknown_ids_rejected() {
    let mut server = one_movie_server();
    assert!(matches!(
        server.open_session(MovieId(42)),
        Err(ServerError::UnknownMovie(_))
    ));
    assert!(matches!(
        server.request_vcr(
            vod_server::SessionId(vod_runtime::ArenaId::from_parts(9, 0)),
            VcrKind::Pause,
            1
        ),
        Err(ServerError::UnknownSession(_))
    ));
}

#[test]
fn vcr_on_waiting_session_rejected() {
    let mut server = one_movie_server();
    server.run(8); // window closed
    let s = server.open_session(MovieId(0)).unwrap();
    assert!(matches!(
        server.request_vcr(s, VcrKind::FastForward, 5),
        Err(ServerError::InvalidState { .. })
    ));
}

#[test]
fn close_session_releases_resources() {
    let mut server = one_movie_server();
    let s = server.open_session(MovieId(0)).unwrap();
    server.run(20);
    // Put the session on a dedicated stream via a mid-gap pause miss.
    server.request_vcr(s, VcrKind::Pause, 9).unwrap();
    server.run(12);
    assert_eq!(server.session_status(s).unwrap(), SessionStatus::Dedicated);
    let in_use_before = server.disk().in_use();
    let stats = server.close_session(s).unwrap();
    assert!(stats.total() >= 20);
    assert_eq!(server.session_status(s).unwrap(), SessionStatus::Done);
    assert_eq!(server.disk().in_use(), in_use_before - 1, "lease released");
    assert_eq!(server.metrics().sessions_closed_early, 1);
    // Idempotent: closing again is a no-op and stats remain queryable.
    let again = server.close_session(s).unwrap();
    assert_eq!(again.total(), stats.total());
    assert_eq!(server.metrics().sessions_closed_early, 1);
    // The server keeps running cleanly afterwards.
    server.run(200);
    assert_eq!(server.metrics().verify_failures, 0);
    assert_eq!(server.metrics().runtime.restart_failures, 0);
}

#[test]
fn close_enrolled_session_frees_partition_eventually() {
    let mut server = one_movie_server();
    let s = server.open_session(MovieId(0)).unwrap();
    server.run(5);
    assert_eq!(server.session_status(s).unwrap(), SessionStatus::Shared);
    server.close_session(s).unwrap();
    // The stream it was enrolled in must retire on schedule (no stuck
    // enrolled-count), so long runs keep the pool bounded.
    server.run(400);
    assert_eq!(server.metrics().runtime.restart_failures, 0);
    assert!(server.buffer_pool().used() <= server.buffer_pool().budget());
    assert!(matches!(
        server.close_session(vod_server::SessionId(vod_runtime::ArenaId::from_parts(
            99, 0
        ))),
        Err(ServerError::UnknownSession(_))
    ));
}
