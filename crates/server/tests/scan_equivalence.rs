//! The wheel-scheduler equivalence gate: the timer-wheel + active-list
//! session loop must be **bitwise identical** to the historical full
//! `0..n` scan it replaced — same seeded workload, same metrics, same
//! chaos outcome (violations included) — fault-free and under every
//! fault family. The reference scan survives in the server behind
//! `set_reference_scan` exactly so this suite can hold that line.

use std::sync::Arc;

use vod_dist::kinds::Gamma;
use vod_runtime::{DegradePolicy, FaultEvent, FaultKind, FaultPlan};
use vod_server::{
    run_chaos, run_chaos_reference, run_harness, run_harness_reference, HarnessConfig, HostedMovie,
    MovieId, ServerConfig,
};
use vod_workload::BehaviorModel;

fn config(piggyback: bool) -> HarnessConfig {
    let movie = HostedMovie::from_allocation(MovieId(0), 120, 20, 100.0);
    let base = ServerConfig::provisioned(vec![movie], 40);
    HarnessConfig {
        server: ServerConfig {
            piggyback: base.piggyback.filter(|_| piggyback),
            ..base
        },
        movie: MovieId(0),
        extra_movies: vec![],
        behavior: BehaviorModel::uniform_dist((0.2, 0.2, 0.6), 30.0, Arc::new(Gamma::paper_fig7())),
        mean_interarrival: 2.0,
        warmup: 240,
        measure: 1200,
    }
}

#[test]
fn wheel_matches_reference_scan_fault_free() {
    for piggyback in [false, true] {
        let cfg = config(piggyback);
        for seed in [1u64, 7, 23, 1901] {
            let wheel = run_harness(&cfg, seed);
            let reference = run_harness_reference(&cfg, seed);
            assert_eq!(
                wheel, reference,
                "schedulers diverged (seed {seed}, piggyback {piggyback})"
            );
        }
    }
}

fn plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("baseline", FaultPlan::empty()),
        (
            "loss",
            FaultPlan::new(vec![FaultEvent {
                at: 400,
                kind: FaultKind::DiskStreamLoss { count: 4 },
            }]),
        ),
        (
            "outage",
            FaultPlan::new(vec![FaultEvent {
                at: 500,
                kind: FaultKind::DiskOutage {
                    count: 6,
                    recover_after: 120,
                },
            }]),
        ),
        (
            "slowdown",
            FaultPlan::new(vec![FaultEvent {
                at: 300,
                kind: FaultKind::DiskSlowdown {
                    period: 3,
                    duration: 90,
                },
            }]),
        ),
        (
            "squeeze",
            FaultPlan::new(vec![
                FaultEvent {
                    at: 420,
                    kind: FaultKind::BufferShrink { segments: 30 },
                },
                FaultEvent {
                    at: 700,
                    kind: FaultKind::BufferRestore { segments: 30 },
                },
            ]),
        ),
        ("storm", FaultPlan::generate(9, 1440, 8)),
    ]
}

#[test]
fn wheel_matches_reference_scan_under_faults() {
    let cfg = config(true);
    let policy = DegradePolicy::default();
    for (name, plan) in plans() {
        for seed in [7u64, 23] {
            let wheel = run_chaos(&cfg, seed, &plan, policy);
            let reference = run_chaos_reference(&cfg, seed, &plan, policy);
            assert_eq!(
                wheel, reference,
                "chaos outcome diverged (plan {name}, seed {seed})"
            );
            assert_eq!(wheel.violation_count, 0, "plan {name} seed {seed}");
        }
    }
}
