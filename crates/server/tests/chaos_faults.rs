//! Fault-injection integration tests: each injected fault kind drives
//! the server through its graceful-degradation policy with hand-worked
//! timelines, checking the conservation invariants after every tick and
//! that viewers are delayed — never dropped, never served wrong bytes.

#![allow(clippy::unwrap_used)]

use std::sync::Arc;

use proptest::prelude::*;
use vod_dist::kinds::Gamma;
use vod_runtime::{BackendKind, DegradePolicy, FaultEvent, FaultKind, FaultPlan};
use vod_server::{
    run_chaos, run_chaos_backend, run_harness, HarnessConfig, HostedMovie, MovieId, ServerConfig,
    ServerError, SessionStatus, VodServer,
};
use vod_workload::{BehaviorModel, VcrKind};

/// Tick the server once and assert every conservation invariant holds.
fn checked_tick(server: &mut VodServer) {
    server.tick();
    let violations = server.check_invariants();
    assert!(violations.is_empty(), "invariants violated: {violations:?}");
}

fn run_checked(server: &mut VodServer, minutes: u64) {
    for _ in 0..minutes {
        checked_tick(server);
    }
}

/// Satellite regression for the under-provisioned-restart re-wait path:
/// a scheduled restart that fails (buffer exhausted) must push the
/// waiting batch to the *next* restart instant instead of panicking, and
/// the viewer must still complete with byte-exact delivery.
///
/// Geometry: `l = 10, n = 2, B = 4` quantizes to `T = 5, b = 2`. With a
/// buffer budget of exactly one partition (2 segments), the `t = 5`
/// restart finds the pool exhausted by the `t = 0` stream (which retires
/// only at `t = 10`), so the viewer queued for `t = 5` re-waits to 10.
#[test]
fn failed_restart_rewaits_batch_to_next_interval() {
    let movie = HostedMovie::from_allocation(MovieId(0), 10, 2, 4.0);
    assert_eq!(movie.geometry.restart_interval, 5);
    assert_eq!(movie.geometry.partition_capacity, 2);
    let mut server = VodServer::new(ServerConfig {
        disk_streams: 3,
        buffer_budget: 2,
        movies: vec![movie],
        vcr_rate: 3,
        piggyback: None,
    });
    run_checked(&mut server, 3); // t = 0 stream is live, holding the pool
    let viewer = server.open_session(MovieId(0)).unwrap();
    assert_eq!(
        server.session_status(viewer).unwrap(),
        SessionStatus::Waiting(5),
        "arrival at t = 3 missed the t = 0 enrollment window"
    );
    run_checked(&mut server, 3); // through the failed t = 5 restart
    assert_eq!(
        server.session_status(viewer).unwrap(),
        SessionStatus::Waiting(10),
        "failed restart must re-wait the batch, not lose it"
    );
    assert!(
        server.metrics().runtime.restart_failures >= 1,
        "the t = 5 restart failure must be counted"
    );
    run_checked(&mut server, 20); // t = 10 restart succeeds; movie plays out
    assert_eq!(server.session_status(viewer).unwrap(), SessionStatus::Done);
    let stats = server.session_stats(viewer).unwrap();
    assert_eq!(stats.total(), 10, "every segment delivered exactly once");
    assert_eq!(stats.verify_failures, 0);
}

/// A disk outage that revokes in-use leases degrades the enrolled viewer,
/// who retries with backoff and — once the outage recovers — finishes the
/// movie on a dedicated stream. Timeline is exact: degrade at 12, failed
/// retries at 14 and 16, recovery at 17, granted retry at 20.
#[test]
fn outage_revokes_leases_then_dedicated_retry_succeeds() {
    let movie = HostedMovie::from_allocation(MovieId(0), 30, 3, 15.0);
    assert_eq!(movie.geometry.restart_interval, 10);
    assert_eq!(movie.geometry.partition_capacity, 5);
    let mut server = VodServer::new(ServerConfig {
        piggyback: None,
        ..ServerConfig::provisioned(vec![movie], 2)
    });
    server.inject_faults(
        FaultPlan::new(vec![FaultEvent {
            at: 12,
            kind: FaultKind::DiskOutage {
                count: 100, // everything: free streams and both live leases
                recover_after: 5,
            },
        }]),
        DegradePolicy::default(),
    );
    let viewer = server.open_session(MovieId(0)).unwrap();
    run_checked(&mut server, 12);
    assert_eq!(
        server.session_status(viewer).unwrap(),
        SessionStatus::Shared
    );
    checked_tick(&mut server); // t = 12: outage strikes
    assert_eq!(
        server.session_status(viewer).unwrap(),
        SessionStatus::Degraded
    );
    assert_eq!(server.degraded_sessions(), 1);
    assert_eq!(
        server.metrics().leases_revoked,
        2,
        "both live playback leases revoked"
    );
    run_checked(&mut server, 8); // retries fail at 14/16; recovery at 17; grant at 20
    assert_eq!(
        server.session_status(viewer).unwrap(),
        SessionStatus::Dedicated,
        "post-recovery retry must grant a dedicated stream"
    );
    assert_eq!(server.degraded_sessions(), 0);
    let rt = server.runtime_metrics();
    assert_eq!(rt.degraded_entries, 1);
    assert_eq!(rt.degraded_dedicated, 1);
    assert_eq!(
        rt.denied_transient, 2,
        "the two refused retries classify as transient once one succeeds"
    );
    assert_eq!(rt.denied_permanent, 0);
    assert!(
        (rt.rewait_minutes - 9.0).abs() < 1e-9,
        "degraded ticks 12..=20"
    );
    run_checked(&mut server, 30);
    assert_eq!(server.session_status(viewer).unwrap(), SessionStatus::Done);
    let stats = server.session_stats(viewer).unwrap();
    assert_eq!(stats.total(), 30);
    assert_eq!(stats.verify_failures, 0);
}

/// The same-tick recovery-vs-timeout race, resolved for recovery. The
/// timeline is exact: outage degrades the viewer at 12, retries fail at
/// 14 and 16 (backoff 1 → 2 → 4), and with `retry_timeout = 8` the next
/// retry, the timeout expiry, *and* the outage recovery
/// (`recover_after: 8`) all land on tick 20. With `recovery_wins` the
/// session gets one last lease attempt against the just-returned
/// streams before the timeout resolves — and it must succeed, because
/// the streams that came back are exactly what it was retrying for.
#[test]
fn recovery_landing_on_the_timeout_tick_wins_the_race() {
    let movie = HostedMovie::from_allocation(MovieId(0), 30, 3, 15.0);
    let mut server = VodServer::new(ServerConfig {
        piggyback: None,
        ..ServerConfig::provisioned(vec![movie], 2)
    });
    server.inject_faults(
        FaultPlan::new(vec![FaultEvent {
            at: 12,
            kind: FaultKind::DiskOutage {
                count: 100,
                recover_after: 8, // recovery at 20 == since 12 + timeout 8
            },
        }]),
        DegradePolicy {
            retry_timeout: 8,
            recovery_wins: true,
            ..DegradePolicy::default()
        },
    );
    let viewer = server.open_session(MovieId(0)).unwrap();
    run_checked(&mut server, 13); // through the t = 12 outage
    assert_eq!(
        server.session_status(viewer).unwrap(),
        SessionStatus::Degraded
    );
    run_checked(&mut server, 8); // retries refused at 14/16; race tick 20
    assert_eq!(
        server.session_status(viewer).unwrap(),
        SessionStatus::Dedicated,
        "recovery landing on the timeout tick must win the race"
    );
    let rt = server.runtime_metrics();
    assert_eq!(rt.degraded_dedicated, 1);
    assert_eq!(
        rt.denied_transient, 2,
        "the 14/16 refusals classify as transient once the last chance lands"
    );
    assert_eq!(rt.denied_permanent, 0);
    run_checked(&mut server, 40);
    assert_eq!(server.session_status(viewer).unwrap(), SessionStatus::Done);
    let stats = server.session_stats(viewer).unwrap();
    assert_eq!(stats.total(), 30);
    assert_eq!(stats.verify_failures, 0);
}

/// The identical timeline under the default policy
/// (`recovery_wins: false`, the historical order): the timeout resolves
/// *before* the same-tick recovery, so the retry sequence classifies as
/// permanently denied even though capacity came back that very tick.
/// The viewer is delayed, never dropped — it rejoins a later restart's
/// batch window and still completes byte-exact.
#[test]
fn default_policy_resolves_timeout_before_same_tick_recovery() {
    let movie = HostedMovie::from_allocation(MovieId(0), 30, 3, 15.0);
    let mut server = VodServer::new(ServerConfig {
        piggyback: None,
        ..ServerConfig::provisioned(vec![movie], 2)
    });
    server.inject_faults(
        FaultPlan::new(vec![FaultEvent {
            at: 12,
            kind: FaultKind::DiskOutage {
                count: 100,
                recover_after: 8,
            },
        }]),
        DegradePolicy {
            retry_timeout: 8,
            ..DegradePolicy::default()
        },
    );
    let viewer = server.open_session(MovieId(0)).unwrap();
    run_checked(&mut server, 21); // same timeline through the race tick
    assert_eq!(
        server.session_status(viewer).unwrap(),
        SessionStatus::Degraded,
        "timeout-first order must not grant the dedicated stream"
    );
    let rt = server.runtime_metrics();
    assert_eq!(rt.degraded_dedicated, 0);
    assert_eq!(rt.denied_transient, 0);
    assert_eq!(
        rt.denied_permanent, 2,
        "the 14/16 refusals resolve permanent at the timeout"
    );
    run_checked(&mut server, 60); // a later restart's window covers position 12
    assert_eq!(server.session_status(viewer).unwrap(), SessionStatus::Done);
    let rt = server.runtime_metrics();
    assert_eq!(rt.degraded_rejoined, 1, "batch admission remains open");
    let stats = server.session_stats(viewer).unwrap();
    assert_eq!(stats.total(), 30, "delayed, never dropped");
    assert_eq!(stats.verify_failures, 0);
}

/// A disk slowdown stalls enrolled playback on off-period ticks (the
/// stream produces no segment, so the viewer waits with it) but delivery
/// stays byte-exact and complete.
#[test]
fn slowdown_stalls_playback_without_losing_segments() {
    let movie = HostedMovie::from_allocation(MovieId(0), 10, 1, 10.0);
    assert_eq!(movie.geometry.partition_capacity, 10, "full buffering");
    let mut server = VodServer::new(ServerConfig {
        piggyback: None,
        ..ServerConfig::provisioned(vec![movie], 1)
    });
    server.inject_faults(
        FaultPlan::new(vec![FaultEvent {
            at: 3,
            kind: FaultKind::DiskSlowdown {
                period: 2,
                duration: 10,
            },
        }]),
        DegradePolicy::default(),
    );
    let viewer = server.open_session(MovieId(0)).unwrap();
    run_checked(&mut server, 30);
    assert_eq!(server.session_status(viewer).unwrap(), SessionStatus::Done);
    let stats = server.session_stats(viewer).unwrap();
    assert_eq!(stats.total(), 10, "slowdown delays, never drops, segments");
    assert_eq!(stats.verify_failures, 0);
    let stalls = server.runtime_metrics().stall_minutes;
    assert!(
        (stalls - 5.0).abs() < 1e-9,
        "odd ticks 3,5,7,9,11 stall (got {stalls})"
    );
}

/// A buffer shrink that overcommits the pool evicts partitions; the
/// evicted viewer degrades and finishes on a dedicated stream; a later
/// restore lets scheduled restarts succeed again.
#[test]
fn buffer_shrink_evicts_partitions_and_restore_heals() {
    let movie = HostedMovie::from_allocation(MovieId(0), 20, 2, 10.0);
    assert_eq!(movie.geometry.restart_interval, 10);
    assert_eq!(movie.geometry.partition_capacity, 5);
    let config = ServerConfig {
        piggyback: None,
        ..ServerConfig::provisioned(vec![movie], 2)
    };
    let budget = config.buffer_budget as u32;
    let mut server = VodServer::new(config);
    server.inject_faults(
        FaultPlan::new(vec![
            FaultEvent {
                at: 15,
                kind: FaultKind::BufferShrink {
                    segments: budget - 2, // leaves less than one partition
                },
            },
            FaultEvent {
                at: 25,
                kind: FaultKind::BufferRestore {
                    segments: budget - 2,
                },
            },
        ]),
        DegradePolicy::default(),
    );
    let viewer = server.open_session(MovieId(0)).unwrap();
    run_checked(&mut server, 15);
    assert_eq!(
        server.session_status(viewer).unwrap(),
        SessionStatus::Shared
    );
    checked_tick(&mut server); // t = 15: shrink evicts every partition
    assert!(server.metrics().partitions_evicted >= 1);
    assert_eq!(
        server.session_status(viewer).unwrap(),
        SessionStatus::Degraded,
        "evicted partition degrades its enrolled viewer"
    );
    run_checked(&mut server, 40);
    assert_eq!(server.session_status(viewer).unwrap(), SessionStatus::Done);
    let stats = server.session_stats(viewer).unwrap();
    assert_eq!(stats.total(), 20);
    assert_eq!(stats.verify_failures, 0);
    assert!(
        server.metrics().runtime.restart_failures >= 1,
        "restarts failed while the pool was shrunk"
    );
}

/// While streams are failed, new VCR phase-1 grants are refused by the
/// starvation policy (playback is preserved ahead of trick modes).
#[test]
fn starvation_policy_denies_new_vcr_grants() {
    let movie = HostedMovie::from_allocation(MovieId(0), 20, 2, 10.0);
    let mut server = VodServer::new(ServerConfig {
        piggyback: None,
        ..ServerConfig::provisioned(vec![movie], 2)
    });
    server.inject_faults(
        FaultPlan::new(vec![FaultEvent {
            at: 5,
            kind: FaultKind::DiskStreamLoss { count: 1 }, // a free stream fails
        }]),
        DegradePolicy::default(),
    );
    let viewer = server.open_session(MovieId(0)).unwrap();
    run_checked(&mut server, 6);
    assert_eq!(
        server.session_status(viewer).unwrap(),
        SessionStatus::Shared
    );
    assert!(matches!(
        server.request_vcr(viewer, VcrKind::FastForward, 3),
        Err(ServerError::VcrDenied)
    ));
    assert_eq!(server.metrics().vcr_denied_degraded, 1);
    assert_eq!(server.runtime_metrics().denied_permanent, 1);
    // Playback itself is untouched by the policy.
    run_checked(&mut server, 30);
    assert_eq!(server.session_status(viewer).unwrap(), SessionStatus::Done);
    assert_eq!(server.session_stats(viewer).unwrap().verify_failures, 0);
}

fn harness_config() -> HarnessConfig {
    let movie = HostedMovie::from_allocation(MovieId(0), 120, 20, 100.0);
    HarnessConfig {
        server: ServerConfig {
            piggyback: None,
            ..ServerConfig::provisioned(vec![movie], 40)
        },
        movie: MovieId(0),
        extra_movies: vec![],
        behavior: BehaviorModel::uniform_dist((0.2, 0.2, 0.6), 30.0, Arc::new(Gamma::paper_fig7())),
        mean_interarrival: 2.0,
        warmup: 120,
        measure: 600,
    }
}

/// The empty plan must reproduce `run_harness` bitwise — degradation
/// machinery costs nothing when nothing fails.
#[test]
fn empty_plan_is_bitwise_identical_to_harness() {
    let cfg = harness_config();
    let chaos = run_chaos(&cfg, 7, &FaultPlan::empty(), DegradePolicy::default());
    assert_eq!(chaos.metrics, run_harness(&cfg, 7));
    assert_eq!(chaos.violation_count, 0, "{:?}", chaos.violations);
    assert_eq!(chaos.degraded_at_end, 0);
}

/// A generated fault storm under full load: bitwise-deterministic
/// outcomes, zero invariant violations, and the fault machinery visibly
/// exercised.
#[test]
fn generated_storm_is_deterministic_and_conserving() {
    let cfg = harness_config();
    let plan = FaultPlan::generate(3, cfg.warmup + cfg.measure, 6);
    assert_eq!(plan.len(), 6);
    let a = run_chaos(&cfg, 11, &plan, DegradePolicy::default());
    let b = run_chaos(&cfg, 11, &plan, DegradePolicy::default());
    assert_eq!(a, b, "same (seed, plan) must reproduce bitwise");
    assert_eq!(a.violation_count, 0, "{:?}", a.violations);
    assert!(a.metrics.faults_injected > 0, "storm landed in the window");
}

/// A deliberately under-provisioned config so the dedicated backend
/// keeps a deep FIFO queue and every seeded storm hits live holders,
/// queued viewers, and starved retriers alike.
fn tight_config() -> HarnessConfig {
    let movie = HostedMovie::from_allocation(MovieId(0), 30, 2, 10.0);
    HarnessConfig {
        server: ServerConfig {
            piggyback: None,
            ..ServerConfig::provisioned(vec![movie], 2)
        },
        movie: MovieId(0),
        extra_movies: vec![],
        behavior: BehaviorModel::uniform_dist((0.2, 0.2, 0.6), 30.0, Arc::new(Gamma::paper_fig7())),
        mean_interarrival: 2.0,
        warmup: 30,
        measure: 150,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Queue conservation for the dedicated backend under seeded
    /// fail/recover storms: every tick, each queue entry is a distinct
    /// live `Queued` session without a lease, every `Queued` session is
    /// in the queue exactly once, and the reserve's failure ledger
    /// mirrors the disk's — `check_invariants` audits all of it, so the
    /// whole storm must run violation-free and deterministically.
    #[test]
    fn dedicated_queue_conserved_under_seeded_storms(seed in 0u64..100_000) {
        let cfg = tight_config();
        let plan = FaultPlan::generate(seed, cfg.warmup + cfg.measure, 5);
        let policy = DegradePolicy::default();
        let a = run_chaos_backend(&cfg, BackendKind::DedicatedStream, seed, &plan, policy);
        prop_assert_eq!(
            a.outcome.violation_count, 0,
            "violations: {:?}", a.outcome.violations
        );
        prop_assert!(a.outcome.sessions_done <= a.outcome.sessions_opened);
        let b = run_chaos_backend(&cfg, BackendKind::DedicatedStream, seed, &plan, policy);
        prop_assert_eq!(a, b, "same (seed, plan) must reproduce bitwise");
    }

    /// The pyramid backend under the same seeded storms: channel-wheel
    /// phase consistency, per-session front == bitmap audit, and
    /// stall/metric monotonicity all hold tick by tick.
    #[test]
    fn pyramid_fronts_conserved_under_seeded_storms(seed in 0u64..100_000) {
        let cfg = tight_config();
        let plan = FaultPlan::generate(seed, cfg.warmup + cfg.measure, 5);
        let policy = DegradePolicy::default();
        let a = run_chaos_backend(&cfg, BackendKind::PyramidBroadcast, seed, &plan, policy);
        prop_assert_eq!(
            a.outcome.violation_count, 0,
            "violations: {:?}", a.outcome.violations
        );
        prop_assert!(a.outcome.sessions_done <= a.outcome.sessions_opened);
    }
}
