//! Drive the data-path server with a statistically principled scripted
//! load (same primitives as the analytic model: Poisson arrivals, Zipf
//! popularity, behavior-model VCR interactions) and check the global
//! invariants hold under sustained realistic traffic.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use std::sync::Arc;

use vod_dist::kinds::Gamma;
use vod_dist::rng::seeded;
use vod_server::{HostedMovie, MovieId, ServerConfig, SessionId, VodServer};
use vod_workload::{generate_script, BehaviorModel, LoadAction, Poisson, Zipf};

#[test]
fn scripted_load_preserves_invariants() {
    let lengths = [120u32, 90, 60];
    let movies: Vec<HostedMovie> = lengths
        .iter()
        .enumerate()
        .map(|(i, &l)| HostedMovie::from_allocation(MovieId(i as u32), l, l / 10, l as f64 / 2.0))
        .collect();
    let mut server = VodServer::new(ServerConfig::provisioned(movies, 25));

    let behavior =
        BehaviorModel::uniform_dist((0.2, 0.2, 0.6), 30.0, Arc::new(Gamma::paper_fig7()));
    let mut rng = seeded(41);
    let mut arrivals = Poisson::with_mean_interarrival(1.0);
    let catalog = Zipf::new(3, 0.8);
    let horizon = 1000.0;
    let script = generate_script(
        horizon,
        &mut arrivals,
        &behavior,
        &catalog,
        |rank| lengths[rank] as f64,
        &mut rng,
    );
    assert!(script.len() > 1500, "script too small: {}", script.len());

    // Replay: integer-minute server, so actions fire at floor(at).
    let mut cursor = 0usize;
    let mut session_ids: Vec<SessionId> = Vec::new();
    for minute in 0..horizon as u64 {
        while cursor < script.len() && script[cursor].at < (minute + 1) as f64 {
            match script[cursor].action {
                LoadAction::OpenSession { movie_rank } => {
                    let id = server
                        .open_session(MovieId(movie_rank as u32))
                        .expect("movie hosted");
                    session_ids.push(id);
                }
                LoadAction::Vcr {
                    session_seq,
                    kind,
                    magnitude,
                } => {
                    if let Some(&id) = session_ids.get(session_seq) {
                        // Sessions may have finished or be mid-VCR; the
                        // server rejects those — that is load, not error.
                        let _ = server.request_vcr(id, kind, magnitude.round().max(1.0) as u32);
                    }
                }
            }
            cursor += 1;
        }
        server.tick();
        assert!(server.disk().in_use() <= server.disk().capacity());
        assert!(server.buffer_pool().used() <= server.buffer_pool().budget());
    }

    let m = server.metrics();
    assert_eq!(m.verify_failures, 0, "data path must be byte-exact");
    assert_eq!(
        m.runtime.restart_failures, 0,
        "headroom guard must protect restarts"
    );
    assert!(m.sessions_done > 300, "done: {}", m.sessions_done);
    assert!(
        m.runtime.resumes.trials() > 100,
        "resumes: {}",
        m.runtime.resumes.trials()
    );
    assert!(
        m.buffer_service_fraction() > 0.6,
        "batched service should dominate: {}",
        m.buffer_service_fraction()
    );
}
