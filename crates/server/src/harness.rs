//! Deterministic load harness: drives a [`VodServer`] with the same
//! statistical workload primitives the simulator uses (Poisson arrivals,
//! a [`BehaviorModel`] VCR mix), under a fixed seed, and reports the
//! shared [`RuntimeMetrics`] vocabulary.
//!
//! This is the server-side leg of the three-way cross-validation
//! (analytic model ↔ event simulator ↔ tick server): the same `(l, B, n,
//! VCR mix)` configuration runs through all three and the hit
//! probabilities are compared. Everything here is integer-minute — the
//! continuous samples are floored/rounded onto the tick grid — so
//! agreement with the continuous-time model is approximate by design
//! (tolerances live in the cross-validation test).

use vod_dist::rng::{exponential, seeded};
use vod_runtime::{DegradePolicy, FaultPlan, RuntimeMetrics};
use vod_workload::BehaviorModel;

use crate::content::MovieId;
use crate::server::{ServerConfig, VodServer};
use crate::session::{SessionId, SessionStatus};

/// Workload configuration for [`run_harness`].
#[derive(Clone)]
pub struct HarnessConfig {
    /// Server under test.
    pub server: ServerConfig,
    /// Movie every arrival requests (single-movie validation runs).
    pub movie: MovieId,
    /// Viewer interaction behavior (same model `vod-sim` consumes).
    pub behavior: BehaviorModel,
    /// Mean minutes between viewer arrivals (Poisson process).
    pub mean_interarrival: f64,
    /// Warm-up ticks excluded from measurement (metrics are reset after).
    pub warmup: u64,
    /// Measured ticks after warm-up.
    pub measure: u64,
}

/// Result of one [`run_chaos`] run: the measured metrics plus everything
/// the per-tick invariant checks observed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOutcome {
    /// Measured [`RuntimeMetrics`] (same vocabulary as [`run_harness`]).
    pub metrics: RuntimeMetrics,
    /// Total per-tick invariant and monotonicity violations observed.
    pub violation_count: u64,
    /// First few violation descriptions, `"t=<tick>: <what>"` (capped so
    /// a badly broken run cannot exhaust memory).
    pub violations: Vec<String>,
    /// Sessions the workload opened over the whole run.
    pub sessions_opened: u64,
    /// Sessions that reached `Done` (finished or closed) by the end.
    pub sessions_done: u64,
    /// Sessions still degraded when the run ended.
    pub degraded_at_end: u32,
    /// Ticks driven (warm-up + measured).
    pub ticks: u64,
}

/// Cap on stored violation strings in a [`ChaosOutcome`].
const MAX_VIOLATION_REPORTS: usize = 16;

/// Drive the server with a seeded workload and return the measured
/// [`RuntimeMetrics`]. Same seed, same config ⇒ bitwise-identical
/// metrics (asserted by the cross-validation test).
pub fn run_harness(cfg: &HarnessConfig, seed: u64) -> RuntimeMetrics {
    run_driver(
        cfg,
        seed,
        &FaultPlan::empty(),
        DegradePolicy::default(),
        false,
    )
    .metrics
}

/// Drive the server with the same seeded workload as [`run_harness`]
/// while injecting `plan`, checking conservation invariants and metrics
/// monotonicity after **every tick**. With an empty plan this is
/// [`run_harness`] plus checks: the same driver runs underneath, so the
/// metrics are bitwise identical by construction.
pub fn run_chaos(
    cfg: &HarnessConfig,
    seed: u64,
    plan: &FaultPlan,
    policy: DegradePolicy,
) -> ChaosOutcome {
    run_driver(cfg, seed, plan, policy, true)
}

/// The single driver underneath [`run_harness`] and [`run_chaos`]. The
/// RNG consumption order never depends on `plan` or `check`, so the
/// fault-free workload sequence is identical across both entry points.
fn run_driver(
    cfg: &HarnessConfig,
    seed: u64,
    plan: &FaultPlan,
    policy: DegradePolicy,
    check: bool,
) -> ChaosOutcome {
    let mut server = VodServer::new(cfg.server.clone());
    server.inject_faults(plan.clone(), policy);
    let mut rng = seeded(seed);
    let mut next_arrival = exponential(&mut rng, cfg.mean_interarrival);
    // (session, tick at which its next interaction is due)
    let mut pending: Vec<(SessionId, u64)> = Vec::new();
    let horizon = cfg.warmup + cfg.measure;
    let mut sessions_opened: u64 = 0;
    let mut violation_count: u64 = 0;
    let mut violations: Vec<String> = Vec::new();
    let mut prev_rt: Option<RuntimeMetrics> = None;
    for minute in 0..horizon {
        if minute == cfg.warmup {
            server.reset_metrics();
            // The reset legitimately zeroes counters; restart the
            // monotonicity baseline with it.
            prev_rt = None;
        }
        while next_arrival < (minute + 1) as f64 {
            // vod-lint: allow(no-panic) — HarnessConfig ties `movie` to the
            // ServerConfig hosting it; a miss is a harness-construction bug.
            let id = server.open_session(cfg.movie).expect("movie hosted");
            sessions_opened += 1;
            let gap = cfg.behavior.next_interaction_gap(&mut rng);
            pending.push((id, minute + (gap.ceil() as u64).max(1)));
            next_arrival += exponential(&mut rng, cfg.mean_interarrival);
        }
        let mut i = 0;
        while i < pending.len() {
            let (id, due) = pending[i];
            if due > minute {
                i += 1;
                continue;
            }
            // vod-lint: allow(no-panic) — ids come from open_session and stay
            // queryable until this loop sees Done and drops them from pending.
            match server.session_status(id).expect("session exists") {
                SessionStatus::Done => {
                    pending.swap_remove(i);
                    continue;
                }
                SessionStatus::Shared | SessionStatus::Dedicated => {
                    let req = cfg.behavior.sample_request(&mut rng);
                    let magnitude = (req.magnitude.round() as u32).max(1);
                    // Denied ops are counted by the server; either way the
                    // viewer's next interaction clock restarts now.
                    let _ = server.request_vcr(id, req.kind, magnitude);
                    let gap = cfg.behavior.next_interaction_gap(&mut rng);
                    pending[i].1 = minute + (gap.ceil() as u64).max(1);
                }
                // Waiting in the batch queue, mid-VCR, or degraded: the
                // interaction clock only runs during playback — defer one
                // tick.
                SessionStatus::Waiting(_) | SessionStatus::InVcr | SessionStatus::Degraded => {
                    pending[i].1 = minute + 1;
                }
            }
            i += 1;
        }
        server.tick();
        if check {
            let mut record = |what: String| {
                violation_count += 1;
                if violations.len() < MAX_VIOLATION_REPORTS {
                    violations.push(format!("t={minute}: {what}"));
                }
            };
            for what in server.check_invariants() {
                record(what);
            }
            let rt = server.runtime_metrics();
            if let Some(prev) = &prev_rt {
                for field in prev.monotone_violations(&rt) {
                    record(format!("counter `{field}` went backwards"));
                }
            }
            prev_rt = Some(rt);
        }
    }
    ChaosOutcome {
        metrics: server.runtime_metrics(),
        violation_count,
        violations,
        sessions_opened,
        sessions_done: server.metrics().sessions_done + server.metrics().sessions_closed_early,
        degraded_at_end: server.degraded_sessions(),
        ticks: horizon,
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use vod_dist::kinds::Gamma;

    use super::*;
    use crate::server::HostedMovie;

    fn config() -> HarnessConfig {
        let movie = HostedMovie::from_allocation(MovieId(0), 120, 20, 100.0);
        HarnessConfig {
            server: ServerConfig {
                piggyback: None,
                ..ServerConfig::provisioned(vec![movie], 40)
            },
            movie: MovieId(0),
            behavior: BehaviorModel::uniform_dist(
                (0.2, 0.2, 0.6),
                30.0,
                Arc::new(Gamma::paper_fig7()),
            ),
            mean_interarrival: 2.0,
            warmup: 240,
            measure: 1200,
        }
    }

    #[test]
    fn harness_is_deterministic() {
        let cfg = config();
        let a = run_harness(&cfg, 7);
        let b = run_harness(&cfg, 7);
        assert_eq!(a, b, "same seed must reproduce bitwise-identical metrics");
        assert!(a.resumes.trials() > 50, "workload actually exercised VCR");
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = config();
        let a = run_harness(&cfg, 7);
        let b = run_harness(&cfg, 8);
        assert_ne!(a, b);
    }
}
