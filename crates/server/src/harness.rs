//! Deterministic load harness: drives a [`DeliveryBackend`] (the
//! batching [`VodServer`] by default) with the same statistical workload
//! primitives the simulator uses (Poisson arrivals, a [`BehaviorModel`]
//! VCR mix), under a fixed seed, and reports the shared
//! [`RuntimeMetrics`] vocabulary. One `drive` loop serves every entry
//! point — harness, chaos, and the backend comparison.
//!
//! This is the server-side leg of the three-way cross-validation
//! (analytic model ↔ event simulator ↔ tick server): the same `(l, B, n,
//! VCR mix)` configuration runs through all three and the hit
//! probabilities are compared. Everything here is integer-minute — the
//! continuous samples are floored/rounded onto the tick grid — so
//! agreement with the continuous-time model is approximate by design
//! (tolerances live in the cross-validation test).

use rand::RngCore;
use vod_dist::rng::{exponential, seeded};
use vod_runtime::{BackendKind, DegradePolicy, FaultPlan, RuntimeMetrics};
use vod_workload::{BehaviorModel, VcrKind};

use crate::backend::{make_backend, DeliveryBackend};
use crate::content::MovieId;
use crate::server::{HostedMovie, ServerConfig, VodServer};
use crate::session::{SessionId, SessionStatus};

/// Workload configuration for [`run_harness`].
#[derive(Clone)]
pub struct HarnessConfig {
    /// Server under test.
    pub server: ServerConfig,
    /// Movie every arrival requests (single-movie validation runs).
    pub movie: MovieId,
    /// Further hosted movies arrivals cycle through round-robin after
    /// [`movie`](Self::movie). Empty keeps the historical single-movie
    /// workload — same RNG stream, bitwise-identical metrics.
    pub extra_movies: Vec<MovieId>,
    /// Viewer interaction behavior (same model `vod-sim` consumes).
    pub behavior: BehaviorModel,
    /// Mean minutes between viewer arrivals (Poisson process).
    pub mean_interarrival: f64,
    /// Warm-up ticks excluded from measurement (metrics are reset after).
    pub warmup: u64,
    /// Measured ticks after warm-up.
    pub measure: u64,
}

/// Result of one [`run_chaos`] run: the measured metrics plus everything
/// the per-tick invariant checks observed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOutcome {
    /// Measured [`RuntimeMetrics`] (same vocabulary as [`run_harness`]).
    pub metrics: RuntimeMetrics,
    /// Total per-tick invariant and monotonicity violations observed.
    pub violation_count: u64,
    /// First few violation descriptions, `"t=<tick>: <what>"` (capped so
    /// a badly broken run cannot exhaust memory).
    pub violations: Vec<String>,
    /// Sessions the workload opened over the whole run.
    pub sessions_opened: u64,
    /// Sessions that reached `Done` (finished or closed) by the end.
    pub sessions_done: u64,
    /// Sessions still degraded when the run ended.
    pub degraded_at_end: u32,
    /// Ticks driven (warm-up + measured).
    pub ticks: u64,
}

/// Cap on stored violation strings in a [`ChaosOutcome`].
const MAX_VIOLATION_REPORTS: usize = 16;

impl ChaosOutcome {
    /// Outcome schema version; bump on any key change in
    /// [`to_json`](Self::to_json).
    pub const SCHEMA_VERSION: u32 = 1;

    /// Serialize to a single-line JSON object with a pinned key order
    /// (`schema_version`, `violations`, `violation_details`,
    /// `sessions_opened`, `sessions_done`, `degraded_at_end`, `ticks`,
    /// `metrics`). The shape is frozen by the serde-stability suite:
    /// report consumers may parse positionally.
    pub fn to_json(&self) -> String {
        let details: Vec<String> = self
            .violations
            .iter()
            .map(|v| format!("\"{}\"", escape_json(v)))
            .collect();
        format!(
            concat!(
                "{{\"schema_version\":{},",
                "\"violations\":{},",
                "\"violation_details\":[{}],",
                "\"sessions_opened\":{},",
                "\"sessions_done\":{},",
                "\"degraded_at_end\":{},",
                "\"ticks\":{},",
                "\"metrics\":{}}}"
            ),
            Self::SCHEMA_VERSION,
            self.violation_count,
            details.join(","),
            self.sessions_opened,
            self.sessions_done,
            self.degraded_at_end,
            self.ticks,
            self.metrics.to_json(),
        )
    }
}

/// Escape a violation string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Drive the server with a seeded workload and return the measured
/// [`RuntimeMetrics`]. Same seed, same config ⇒ bitwise-identical
/// metrics (asserted by the cross-validation test).
pub fn run_harness(cfg: &HarnessConfig, seed: u64) -> RuntimeMetrics {
    run_driver(
        cfg,
        seed,
        &FaultPlan::empty(),
        DegradePolicy::default(),
        false,
        false,
    )
    .metrics
}

/// [`run_harness`] with the server in reference-scan mode (the historical
/// full-table session loop instead of the timer wheel). Exists solely so
/// the equivalence suite can pin the two schedulers against each other.
#[doc(hidden)]
pub fn run_harness_reference(cfg: &HarnessConfig, seed: u64) -> RuntimeMetrics {
    run_driver(
        cfg,
        seed,
        &FaultPlan::empty(),
        DegradePolicy::default(),
        false,
        true,
    )
    .metrics
}

/// Drive the server with the same seeded workload as [`run_harness`]
/// while injecting `plan`, checking conservation invariants and metrics
/// monotonicity after **every tick**. With an empty plan this is
/// [`run_harness`] plus checks: the same driver runs underneath, so the
/// metrics are bitwise identical by construction.
pub fn run_chaos(
    cfg: &HarnessConfig,
    seed: u64,
    plan: &FaultPlan,
    policy: DegradePolicy,
) -> ChaosOutcome {
    run_driver(cfg, seed, plan, policy, true, false)
}

/// [`run_chaos`] against the reference-scan scheduler; see
/// [`run_harness_reference`].
#[doc(hidden)]
pub fn run_chaos_reference(
    cfg: &HarnessConfig,
    seed: u64,
    plan: &FaultPlan,
    policy: DegradePolicy,
) -> ChaosOutcome {
    run_driver(cfg, seed, plan, policy, true, true)
}

/// One backend-generic harness run: the [`ChaosOutcome`] plus the
/// provisioning and startup-wait observables the cost comparison needs.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendRun {
    /// Which delivery scheme ran.
    pub kind: BackendKind,
    /// The workload outcome (metrics + invariant checks).
    pub outcome: ChaosOutcome,
    /// Mean startup wait over the measured window, minutes (0 when no
    /// session started in the window).
    pub startup_wait_mean: f64,
    /// Startup-wait samples behind the mean.
    pub startup_wait_samples: u64,
    /// Provisioned I/O streams `Σn` (stream term of `C = C_n(φΣB + Σn)`).
    pub io_streams: u32,
    /// Provisioned server buffer `ΣB` in segments (buffer term).
    pub buffer_segments: u64,
}

/// Run the seeded harness workload against the delivery scheme `kind`,
/// built from `cfg.server` via [`make_backend`](crate::make_backend),
/// with per-tick invariant checks on. For
/// [`BackendKind::BatchingBuffering`] the metrics are bitwise identical
/// to [`run_harness`] on the same config/seed (pinned by the
/// `backend_equivalence` suite).
pub fn run_harness_backend(cfg: &HarnessConfig, kind: BackendKind, seed: u64) -> BackendRun {
    run_chaos_backend(
        cfg,
        kind,
        seed,
        &FaultPlan::empty(),
        DegradePolicy::default(),
    )
}

/// [`run_harness_backend`] with a fault plan: the backend-generic
/// [`run_chaos`].
pub fn run_chaos_backend(
    cfg: &HarnessConfig,
    kind: BackendKind,
    seed: u64,
    plan: &FaultPlan,
    policy: DegradePolicy,
) -> BackendRun {
    let mut server = make_backend(kind, &cfg.server);
    server.inject_faults(plan.clone(), policy);
    let outcome = drive(server.as_mut(), cfg, seed, true);
    let waits = server.startup_waits();
    BackendRun {
        kind,
        startup_wait_mean: if waits.count() == 0 {
            0.0
        } else {
            waits.mean()
        },
        startup_wait_samples: waits.count(),
        io_streams: server.io_streams(),
        buffer_segments: server.buffer_segments(),
        outcome,
    }
}

/// The single driver underneath [`run_harness`] and [`run_chaos`]. The
/// RNG consumption order never depends on `plan` or `check`, so the
/// fault-free workload sequence is identical across both entry points.
fn run_driver(
    cfg: &HarnessConfig,
    seed: u64,
    plan: &FaultPlan,
    policy: DegradePolicy,
    check: bool,
    reference: bool,
) -> ChaosOutcome {
    let mut server = VodServer::new(cfg.server.clone());
    server.set_reference_scan(reference);
    server.inject_faults(plan.clone(), policy);
    drive(&mut server, cfg, seed, check)
}

/// The workload loop itself, generic over the delivery scheme. Every
/// entry point in this module funnels here, so no driver logic is
/// duplicated between the harness, the chaos runs, and the backend
/// comparison.
fn drive(
    server: &mut dyn DeliveryBackend,
    cfg: &HarnessConfig,
    seed: u64,
    check: bool,
) -> ChaosOutcome {
    let mut rng = seeded(seed);
    let mut next_arrival = exponential(&mut rng, cfg.mean_interarrival);
    // (session, tick at which its next interaction is due)
    let mut pending: Vec<(SessionId, u64)> = Vec::new();
    let horizon = cfg.warmup + cfg.measure;
    let mut sessions_opened: u64 = 0;
    let mut violation_count: u64 = 0;
    let mut violations: Vec<String> = Vec::new();
    let mut prev_rt: Option<RuntimeMetrics> = None;
    for minute in 0..horizon {
        if minute == cfg.warmup {
            server.reset_metrics();
            // The reset legitimately zeroes counters; restart the
            // monotonicity baseline with it.
            prev_rt = None;
        }
        while next_arrival < (minute + 1) as f64 {
            // Round-robin over the requested catalog; an empty
            // `extra_movies` reduces to the historical single-movie
            // workload with an untouched RNG stream.
            let movie = if cfg.extra_movies.is_empty() {
                cfg.movie
            } else {
                let slot = (sessions_opened % (1 + cfg.extra_movies.len() as u64)) as usize;
                if slot == 0 {
                    cfg.movie
                } else {
                    cfg.extra_movies[slot - 1]
                }
            };
            // vod-lint: allow(no-panic) — HarnessConfig ties its movies to the
            // ServerConfig hosting them; a miss is a harness-construction bug.
            let id = server.open_session(movie).expect("movie hosted");
            sessions_opened += 1;
            let gap = cfg.behavior.next_interaction_gap(&mut rng);
            pending.push((id, minute + (gap.ceil() as u64).max(1)));
            next_arrival += exponential(&mut rng, cfg.mean_interarrival);
        }
        let mut i = 0;
        while i < pending.len() {
            let (id, due) = pending[i];
            if due > minute {
                i += 1;
                continue;
            }
            // vod-lint: allow(no-panic) — ids come from open_session and stay
            // queryable until this loop sees Done and drops them from pending.
            match server.session_status(id).expect("session exists") {
                SessionStatus::Done => {
                    pending.swap_remove(i);
                    continue;
                }
                SessionStatus::Shared | SessionStatus::Dedicated => {
                    let req = cfg.behavior.sample_request(&mut rng);
                    let magnitude = (req.magnitude.round() as u32).max(1);
                    // Denied ops are counted by the server; either way the
                    // viewer's next interaction clock restarts now.
                    let _ = server.request_vcr(id, req.kind, magnitude);
                    let gap = cfg.behavior.next_interaction_gap(&mut rng);
                    pending[i].1 = minute + (gap.ceil() as u64).max(1);
                }
                // Waiting in the batch queue, mid-VCR, or degraded: the
                // interaction clock only runs during playback — defer one
                // tick.
                SessionStatus::Waiting(_) | SessionStatus::InVcr | SessionStatus::Degraded => {
                    pending[i].1 = minute + 1;
                }
            }
            i += 1;
        }
        server.tick();
        if check {
            let mut record = |what: String| {
                violation_count += 1;
                if violations.len() < MAX_VIOLATION_REPORTS {
                    violations.push(format!("t={minute}: {what}"));
                }
            };
            for what in server.check_invariants() {
                record(what);
            }
            let rt = server.runtime_metrics();
            if let Some(prev) = &prev_rt {
                for field in prev.monotone_violations(&rt) {
                    record(format!("counter `{field}` went backwards"));
                }
            }
            prev_rt = Some(rt);
        }
    }
    ChaosOutcome {
        metrics: server.runtime_metrics(),
        violation_count,
        violations,
        sessions_opened,
        sessions_done: server.sessions_finished(),
        degraded_at_end: server.degraded_sessions(),
        ticks: horizon,
    }
}

/// Workload shape for [`run_scale`]: a mass-batching population, the
/// million-session north star's stress case. Every session is opened
/// before the first tick, so each movie's cohort enrolls into one
/// restart en masse at tick 0 — the worst case for the restart memo and
/// the timer wheel's bulk drain.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Concurrent sessions to open before the first tick.
    pub sessions: u64,
    /// Ticks to drive after opening (each live session consumes one
    /// segment per tick).
    pub ticks: u64,
    /// Hosted movies. Sessions are assigned in contiguous blocks —
    /// block `m` is movie `m`'s batching cohort.
    pub movies: u32,
    /// Sessions issued a seeded-random VCR operation each tick
    /// (denials count as issued, like the chaos harness).
    pub vcr_per_tick: u32,
}

/// What one [`run_scale`] run measured. Pure virtual-time observables:
/// wall-clock and memory measurement belong to the bench binary, which
/// is exempt from the determinism lint wall.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleOutcome {
    /// Sessions opened (all before tick 0).
    pub sessions: u64,
    /// Sessions still live (not `Done`) after the last tick.
    pub concurrent_at_end: u64,
    /// Segments delivered (buffer + disk), byte-verified.
    pub segments: u64,
    /// VCR operations accepted by the server.
    pub vcr_accepted: u64,
    /// Scheduler events processed: session opens + delivered segments +
    /// accepted VCR operations. The numerator of the bench's events/sec.
    pub events: u64,
    /// Ticks driven.
    pub ticks: u64,
    /// Byte-verification failures (must be 0).
    pub verify_failures: u64,
    /// The shared mechanism counters.
    pub metrics: RuntimeMetrics,
}

/// Drive a [`VodServer`] with `cfg.sessions` concurrent sessions for
/// `cfg.ticks` virtual minutes and return the event totals. Same seed,
/// same config ⇒ bitwise-identical outcome, like every other driver in
/// this module.
///
/// # Panics
///
/// Panics if `cfg.sessions` or `cfg.movies` is zero.
pub fn run_scale(cfg: &ScaleConfig, seed: u64) -> ScaleOutcome {
    // vod-lint: allow(no-panic) — a zero-session or zero-movie scale run is a
    // caller bug; the driver cannot size a server around it.
    assert!(
        cfg.sessions > 0 && cfg.movies > 0,
        "scale run needs at least one session and one movie"
    );
    // The harness geometry (l = 120, n = 20, B = 100): restarts every 6
    // ticks with 5-tick enrollment windows, so a tick-0 cohort stays in
    // lockstep and the one-entry verify memo covers it.
    let movies: Vec<HostedMovie> = (0..cfg.movies)
        .map(|m| HostedMovie::from_allocation(MovieId(m), 120, 20, 100.0))
        .collect();
    let vcr_reserve = cfg.vcr_per_tick.saturating_mul(4).clamp(8, 4096);
    let mut server = VodServer::new(ServerConfig::provisioned(movies, vcr_reserve));
    let mut rng = seeded(seed);
    // Contiguous block assignment: adjacent session indices share a
    // movie, so the per-tick delivery walk switches movies (and misses
    // the verify memo) only `cfg.movies` times per tick.
    let ids: Vec<SessionId> = (0..cfg.sessions)
        .map(|i| {
            let movie = MovieId((i * u64::from(cfg.movies) / cfg.sessions) as u32);
            // vod-lint: allow(no-panic) — the movie id is derived from the
            // hosted range above; a miss is a driver bug.
            server.open_session(movie).expect("movie hosted")
        })
        .collect();
    let mut vcr_accepted: u64 = 0;
    for _ in 0..cfg.ticks {
        for _ in 0..cfg.vcr_per_tick {
            let target = ids[(rng.next_u64() % cfg.sessions) as usize];
            let kind = match rng.next_u64() % 3 {
                0 => VcrKind::FastForward,
                1 => VcrKind::Rewind,
                _ => VcrKind::Pause,
            };
            let magnitude = (rng.next_u64() % 30 + 1) as u32;
            if server.request_vcr(target, kind, magnitude).is_ok() {
                vcr_accepted += 1;
            }
        }
        server.tick();
    }
    let metrics = server.runtime_metrics();
    let segments = (metrics.buffer_minutes + metrics.disk_minutes) as u64;
    let done = server.metrics().sessions_done + server.metrics().sessions_closed_early;
    ScaleOutcome {
        sessions: cfg.sessions,
        concurrent_at_end: cfg.sessions - done,
        segments,
        vcr_accepted,
        events: cfg.sessions + segments + vcr_accepted,
        ticks: cfg.ticks,
        verify_failures: server.metrics().verify_failures,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use vod_dist::kinds::Gamma;

    use super::*;

    fn config() -> HarnessConfig {
        let movie = HostedMovie::from_allocation(MovieId(0), 120, 20, 100.0);
        HarnessConfig {
            server: ServerConfig {
                piggyback: None,
                ..ServerConfig::provisioned(vec![movie], 40)
            },
            movie: MovieId(0),
            extra_movies: vec![],
            behavior: BehaviorModel::uniform_dist(
                (0.2, 0.2, 0.6),
                30.0,
                Arc::new(Gamma::paper_fig7()),
            ),
            mean_interarrival: 2.0,
            warmup: 240,
            measure: 1200,
        }
    }

    #[test]
    fn harness_is_deterministic() {
        let cfg = config();
        let a = run_harness(&cfg, 7);
        let b = run_harness(&cfg, 7);
        assert_eq!(a, b, "same seed must reproduce bitwise-identical metrics");
        assert!(a.resumes.trials() > 50, "workload actually exercised VCR");
    }

    #[test]
    fn chaos_outcome_json_shape_is_pinned() {
        let outcome = ChaosOutcome {
            metrics: RuntimeMetrics::new(),
            violation_count: 2,
            violations: vec!["t=3: lease \"drift\"".to_string(), "t=4: x\\y".to_string()],
            sessions_opened: 10,
            sessions_done: 7,
            degraded_at_end: 1,
            ticks: 60,
        };
        let json = outcome.to_json();
        let expected_prefix = concat!(
            "{\"schema_version\":1,",
            "\"violations\":2,",
            "\"violation_details\":[\"t=3: lease \\\"drift\\\"\",\"t=4: x\\\\y\"],",
            "\"sessions_opened\":10,",
            "\"sessions_done\":7,",
            "\"degraded_at_end\":1,",
            "\"ticks\":60,",
            "\"metrics\":{\"schema_version\":2,"
        );
        assert!(
            json.starts_with(expected_prefix),
            "pinned key order/escaping changed:\n{json}"
        );
        assert!(
            json.ends_with("}}"),
            "metrics object must close the outcome"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = config();
        let a = run_harness(&cfg, 7);
        let b = run_harness(&cfg, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn scale_run_is_deterministic_and_conserves_segments() {
        let cfg = ScaleConfig {
            sessions: 3000,
            ticks: 30,
            movies: 4,
            vcr_per_tick: 20,
        };
        let a = run_scale(&cfg, 42);
        let b = run_scale(&cfg, 42);
        assert_eq!(a, b, "same seed must reproduce the outcome bitwise");
        assert_eq!(a.verify_failures, 0);
        assert_eq!(a.concurrent_at_end, 3000, "no session finishes in 30 ticks");
        // Every session enrolls at tick 0 and then consumes one segment
        // per tick, minus time parked in VCR/pause states.
        assert!(a.segments > 0 && a.segments <= cfg.sessions * cfg.ticks);
        assert!(a.vcr_accepted > 0, "the VCR sprinkle never landed");
        assert_eq!(a.events, a.sessions + a.segments + a.vcr_accepted);
    }
}
