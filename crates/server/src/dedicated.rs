//! Pure unicast baseline backend: every viewer holds a dedicated disk
//! stream for the whole viewing.
//!
//! This is the scheme the paper's batching+buffering design is priced
//! against: zero server-side buffer (`ΣB = 0`), but stream demand grows
//! linearly with concurrency, and with the *same* provisioned stream
//! pool as the batching server, load beyond the pool queues arrivals
//! (startup wait) instead of batching them. No shared windows exist, so
//! every resume that needs service is a miss by construction — `P(hit)`
//! collapses to the FF-to-end release path. Interactive operations are
//! therefore pure reserve accounting (the arXiv:1706.06642 framing:
//! interactions cost bandwidth, never buffer).
//!
//! Implemented natively against the same [`DiskSubsystem`] /
//! [`StreamReserve`] substrate as the batching server so the accounting
//! vocabulary (acquisitions, denials, starvation, occupancy) is
//! field-for-field comparable.
//!
//! # Fault semantics (chaos-grade)
//!
//! Stream loss and outage revoke leases out of live viewings: the holder
//! enters the [`DegradePolicy`] ledger (bounded re-wait, backoff
//! retries, resolution-time denial classification) and, past the retry
//! timeout, falls back to the FIFO admission queue — from there its
//! waits are ordinary queueing, whose head-of-line refusals are
//! *transient* denials (the mid-queue regression test
//! `mid_queue_stream_fail_keeps_denials_transient` pins that taxonomy).
//! The reserve mirrors every disk failure exactly
//! (`reserve.failed == disk.failed`, audited per tick): holders release
//! their slots before the reserve marks them failed, so a full pool can
//! no longer hide a failure from the accountant.

use std::collections::{BTreeMap, VecDeque};

use vod_runtime::{
    Arena, BackendKind, DegradePolicy, FaultKind, FaultPlan, RuntimeMetrics, StreamReserve,
};
use vod_workload::{TimeWeighted, VcrKind, Welford};

use crate::backend::{Adoption, DeliveryBackend};
use crate::content::{verify_segment, MovieId};
use crate::disk::{DiskSubsystem, StreamLease};
use crate::metrics::ServerMetrics;
use crate::server::{ServerConfig, ServerError};
use crate::session::{DeliveryStats, SessionId, SessionStatus};

/// Per-session state machine of the unicast backend.
enum DState {
    /// Waiting for a free stream (FIFO).
    Queued,
    /// Consuming one segment per tick through its own lease.
    Playing,
    /// Mid FF/RW sweep at the configured VCR rate.
    Vcr {
        kind: VcrKind,
        /// Movie minutes left to sweep.
        remaining: u32,
    },
    /// Paused; the lease was released (a paused viewer consumes no
    /// bandwidth — same policy as the batching server).
    Paused {
        /// Ticks until the viewer resumes.
        remaining: u32,
    },
    /// Lost (or was refused) a stream mid-viewing. Follows the
    /// [`DegradePolicy`] ledger: bounded re-wait, then acquisition
    /// retries under exponential backoff whose refusals are classified at
    /// resolution time (transient when a retry eventually succeeds,
    /// permanent when the sequence times out); after the timeout the
    /// session re-enters the FIFO admission queue, where further waits
    /// are ordinary queueing (transient denials), not degradation.
    Starved {
        /// Tick the starvation began (timeout anchor).
        since: u64,
        /// Next tick an acquisition retry is allowed.
        next_retry: u64,
        /// Current backoff interval in ticks.
        backoff: u64,
        /// Refused acquisitions awaiting resolution-time classification.
        pending_denials: u64,
        /// Ledger-shape parity with the other backends; never set here —
        /// the timeout re-queues the session instead of parking it.
        retries_exhausted: bool,
    },
    /// Finished.
    Done,
}

struct DSession {
    movie_idx: usize,
    position: u32,
    opened_at: u64,
    /// First admission already recorded in `startup_waits`: a session
    /// that falls back to the queue after starving must not count a
    /// second startup wait.
    admitted: bool,
    state: DState,
    lease: Option<StreamLease>,
    stats: DeliveryStats,
}

/// Fresh `Starved` state under `policy`, carrying `pending` refusals
/// already awaiting classification (1 when a refused acquisition caused
/// the starvation, 0 when a fault revoked the lease outright).
fn starved_state(now: u64, policy: &DegradePolicy, pending: u64) -> DState {
    DState::Starved {
        since: now,
        next_retry: now + policy.rewait_bound.max(1),
        backoff: policy.retry_backoff.max(1),
        pending_denials: pending,
        retries_exhausted: false,
    }
}

/// The dedicated-stream (pure unicast) backend. See the module docs.
pub struct DedicatedServer {
    now: u64,
    config: ServerConfig,
    disk: DiskSubsystem,
    /// Accountant over the *whole* stream pool: unlike the batching
    /// server there is no pre-allocated restart schedule, so every
    /// stream is "dedicated" in the reserve's sense.
    reserve: StreamReserve,
    sessions: Arena<DSession>,
    /// FIFO of queued session indices awaiting their first stream.
    queue: VecDeque<u32>,
    /// Indices of sessions past the queue and not yet `Done`, ascending
    /// (session slots are never reused, so push order is index order).
    active: Vec<u32>,
    metrics: ServerMetrics,
    movie_index: BTreeMap<MovieId, usize>,
    startup_waits: Welford,
    plan: FaultPlan,
    fault_mode: bool,
    policy: DegradePolicy,
    /// Active disk slowdown `(period, until)`: leases serve only on
    /// ticks divisible by `period`, through tick `until` exclusive.
    slowdown: Option<(u32, u64)>,
    /// Outage recoveries scheduled by tick.
    recovery_due: BTreeMap<u64, u32>,
    /// Tick of the most recent recovery that returned streams; a starved
    /// retry timeout expiring on this exact tick attempts one last lease
    /// first — recovery wins the same-tick race.
    recovered_at: Option<u64>,
    starved_count: u32,
}

impl DedicatedServer {
    /// Build the unicast backend over the same catalog and stream pool
    /// as `config` (the buffer budget is ignored: `ΣB = 0`).
    pub fn new(config: ServerConfig) -> Self {
        let mut disk = DiskSubsystem::new(config.disk_streams);
        let mut movie_index = BTreeMap::new();
        for (i, m) in config.movies.iter().enumerate() {
            disk.register_movie(m.movie, m.geometry.length);
            movie_index.insert(m.movie, i);
        }
        let reserve = StreamReserve::with_capacity(config.disk_streams);
        Self {
            now: 0,
            config,
            disk,
            reserve,
            sessions: Arena::new(),
            queue: VecDeque::new(),
            active: Vec::new(),
            metrics: ServerMetrics::new(),
            movie_index,
            startup_waits: Welford::default(),
            plan: FaultPlan::empty(),
            fault_mode: false,
            policy: DegradePolicy::default(),
            slowdown: None,
            recovery_due: BTreeMap::new(),
            recovered_at: None,
            starved_count: 0,
        }
    }

    /// Try to take one stream (reserve + disk in lockstep), counting the
    /// attempt.
    fn try_lease(&mut self) -> Option<StreamLease> {
        self.metrics.runtime.acquisition_attempts += 1;
        let now = self.now as f64;
        if !self.reserve.try_acquire(now) {
            return None;
        }
        match self.disk.acquire() {
            Ok(lease) => Some(lease),
            Err(_) => {
                self.reserve.release(now);
                None
            }
        }
    }

    fn release_lease(&mut self, lease: StreamLease) {
        self.disk.release(lease);
        self.reserve.release(self.now as f64);
    }

    /// Apply the fault events scheduled at the current tick. Buffer
    /// faults are meaningless here (no buffer) and are skipped without
    /// counting, the same way `vod-sim` skips tick-grid-only kinds.
    fn apply_faults(&mut self) {
        if !self.fault_mode {
            return;
        }
        if let Some(streams) = self.recovery_due.remove(&self.now) {
            let recovered = self.disk.recover_streams(streams);
            self.reserve.recover_streams(recovered);
            if recovered > 0 {
                self.recovered_at = Some(self.now);
            }
        }
        let events: Vec<FaultKind> = self
            .plan
            .events_at(self.now)
            .iter()
            .map(|e| e.kind)
            .collect();
        for kind in events {
            match kind {
                FaultKind::DiskStreamLoss { count } | FaultKind::DiskOutage { count, .. } => {
                    let before = self.disk.failed();
                    let revoked = self.disk.fail_streams(count);
                    let applied = self.disk.failed().saturating_sub(before);
                    if let FaultKind::DiskOutage { recover_after, .. } = kind {
                        *self
                            .recovery_due
                            .entry(self.now + recover_after)
                            .or_insert(0) += applied;
                    }
                    // Revoked leases strand their holders: into the
                    // degrade ledger, lease gone. The holders release
                    // *before* the reserve marks the failure — the
                    // reserve only fails free streams, so the old
                    // fail-first order silently under-failed it whenever
                    // every stream was in use and left the reserve
                    // claiming capacity the disk no longer had.
                    let now = self.now;
                    let policy = self.policy;
                    for idx in 0..self.sessions.slot_count() {
                        let Some(sess) = self.sessions.at_mut(idx) else {
                            continue;
                        };
                        let dead = sess
                            .lease
                            .as_ref()
                            .is_some_and(|l| revoked.contains(&l.id()));
                        if dead {
                            sess.lease = None;
                            if !matches!(sess.state, DState::Done) {
                                if matches!(sess.state, DState::Playing | DState::Vcr { .. }) {
                                    self.metrics.playback.add(self.now as f64, -1.0);
                                }
                                // Revocation, not a refused acquisition:
                                // nothing pending to classify yet.
                                sess.state = starved_state(now, &policy, 0);
                                self.starved_count += 1;
                                self.metrics.runtime.degraded_entries += 1;
                            }
                            self.metrics.leases_revoked += 1;
                            self.reserve.release(self.now as f64);
                        }
                    }
                    self.reserve.fail_streams(applied);
                    self.metrics.runtime.faults_injected += 1;
                }
                FaultKind::DiskSlowdown { period, duration } => {
                    self.slowdown = Some((period.max(1), self.now + duration));
                    self.metrics.runtime.faults_injected += 1;
                }
                // Buffer faults are meaningless without a buffer; shard
                // events belong to the federation front tier. Both are
                // skipped without counting.
                FaultKind::BufferShrink { .. }
                | FaultKind::BufferRestore { .. }
                | FaultKind::ShardOutage { .. }
                | FaultKind::ShardRecovery { .. } => {}
            }
        }
        if let Some((_, until)) = self.slowdown {
            if self.now >= until {
                self.slowdown = None;
            }
        }
    }

    /// Is the disk serving this tick (false only mid-slowdown on an
    /// off-period tick)?
    fn disk_serving(&self) -> bool {
        match self.slowdown {
            Some((period, until)) if self.now < until => self.now.is_multiple_of(u64::from(period)),
            _ => true,
        }
    }

    /// Grant queued sessions in FIFO order while streams remain.
    fn drain_queue(&mut self) {
        while let Some(&idx) = self.queue.front() {
            let Some(lease) = self.try_lease() else {
                // Queued arrivals retry, so the denial is transient.
                self.reserve.record_denials(1, true);
                break;
            };
            self.queue.pop_front();
            let now = self.now;
            let sess = self.sessions.live_at_mut(idx as usize);
            sess.lease = Some(lease);
            sess.state = DState::Playing;
            if !sess.admitted {
                sess.admitted = true;
                self.startup_waits.push((now - sess.opened_at) as f64);
            }
            self.metrics.playback.add(now as f64, 1.0);
            self.active.push(idx);
        }
    }

    /// Deliver one segment to a playing session through its lease.
    /// Returns false when the movie ended (session finished).
    fn consume_one(&mut self, idx: u32) -> bool {
        let (movie_idx, position, length) = {
            let sess = self.sessions.live_at(idx as usize);
            let length = self.config.movies[sess.movie_idx].geometry.length;
            (sess.movie_idx, sess.position, length)
        };
        if position >= length {
            self.finish(idx);
            return false;
        }
        let movie = self.config.movies[movie_idx].movie;
        let sess = self.sessions.live_at_mut(idx as usize);
        // vod-lint: allow(no-panic) — a Playing session holds a lease by
        // construction; losing it without a state change is a backend bug.
        let lease = sess.lease.as_ref().expect("playing session holds lease");
        let verified = self
            .disk
            .read(lease, movie, position)
            .map(|seg| verify_segment(&seg))
            .unwrap_or(false);
        let sess = self.sessions.live_at_mut(idx as usize);
        sess.stats.from_disk += 1;
        if !verified {
            sess.stats.verify_failures += 1;
            self.metrics.verify_failures += 1;
        }
        sess.position += 1;
        self.metrics.runtime.disk_minutes += 1.0;
        if sess.position >= length {
            self.finish(idx);
            return false;
        }
        true
    }

    /// Retire a finished session: release its stream, close the books.
    fn finish(&mut self, idx: u32) {
        let lease = {
            let sess = self.sessions.live_at_mut(idx as usize);
            sess.state = DState::Done;
            sess.lease.take()
        };
        if let Some(lease) = lease {
            self.release_lease(lease);
        }
        self.metrics.playback.add(self.now as f64, -1.0);
        self.metrics.sessions_done += 1;
    }
}

impl DeliveryBackend for DedicatedServer {
    fn kind(&self) -> BackendKind {
        BackendKind::DedicatedStream
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn open_session(&mut self, movie: MovieId) -> Result<SessionId, ServerError> {
        let movie_idx = *self
            .movie_index
            .get(&movie)
            .ok_or(ServerError::UnknownMovie(movie))?;
        let id = SessionId(self.sessions.insert(DSession {
            movie_idx,
            position: 0,
            opened_at: self.now,
            admitted: false,
            state: DState::Queued,
            lease: None,
            stats: DeliveryStats::default(),
        }));
        let idx = id.0.index() as u32;
        if self.queue.is_empty() {
            if let Some(lease) = self.try_lease() {
                let sess = self.sessions.live_at_mut(idx as usize);
                sess.lease = Some(lease);
                sess.state = DState::Playing;
                sess.admitted = true;
                self.startup_waits.push(0.0);
                self.metrics.playback.add(self.now as f64, 1.0);
                self.active.push(idx);
                return Ok(id);
            }
            self.reserve.record_denials(1, true);
        }
        self.queue.push_back(idx);
        Ok(id)
    }

    fn request_vcr(
        &mut self,
        id: SessionId,
        kind: VcrKind,
        magnitude: u32,
    ) -> Result<(), ServerError> {
        let sess = self
            .sessions
            .get(id.0)
            .ok_or(ServerError::UnknownSession(id))?;
        if !matches!(sess.state, DState::Playing) {
            return Err(ServerError::InvalidState { operation: "vcr" });
        }
        let position = sess.position;
        let sess = self.sessions.live_mut(id.0);
        match kind {
            VcrKind::Pause => {
                // A paused viewer consumes nothing: the stream goes back
                // to the pool (and is fought for again at resume).
                sess.state = DState::Paused {
                    remaining: magnitude.max(1),
                };
                if let Some(lease) = sess.lease.take() {
                    self.release_lease(lease);
                }
                self.metrics.playback.add(self.now as f64, -1.0);
            }
            VcrKind::FastForward | VcrKind::Rewind => {
                if matches!(kind, VcrKind::Rewind) && magnitude >= position {
                    self.metrics.runtime.rw_truncated += 1;
                }
                sess.state = DState::Vcr {
                    kind,
                    remaining: magnitude.max(1),
                };
            }
        }
        Ok(())
    }

    fn session_position(&self, id: SessionId) -> Result<u32, ServerError> {
        self.sessions
            .get(id.0)
            .map(|s| s.position)
            .ok_or(ServerError::UnknownSession(id))
    }

    fn adopt_session(
        &mut self,
        movie: MovieId,
        position: u32,
    ) -> Result<(SessionId, Adoption), ServerError> {
        let movie_idx = *self
            .movie_index
            .get(&movie)
            .ok_or(ServerError::UnknownMovie(movie))?;
        if position >= self.config.movies[movie_idx].geometry.length {
            return Err(ServerError::InvalidState { operation: "adopt" });
        }
        // A migration places immediately or refuses: the FIFO queue is
        // for fresh admissions, and queueing a displaced session here
        // would hide it from the front tier's failover ledger.
        let Some(lease) = self.try_lease() else {
            // Locally permanent — the ledger may resolve the displaced
            // session elsewhere; see `FederationMetrics`.
            self.reserve.record_denials(1, false);
            return Err(ServerError::VcrDenied);
        };
        let id = SessionId(self.sessions.insert(DSession {
            movie_idx,
            position,
            opened_at: self.now,
            admitted: true,
            state: DState::Playing,
            lease: Some(lease),
            stats: DeliveryStats::default(),
        }));
        self.metrics.playback.add(self.now as f64, 1.0);
        self.active.push(id.0.index() as u32);
        Ok((id, Adoption::DedicatedStream))
    }

    fn session_status(&self, id: SessionId) -> Result<SessionStatus, ServerError> {
        let sess = self
            .sessions
            .get(id.0)
            .ok_or(ServerError::UnknownSession(id))?;
        Ok(match sess.state {
            DState::Queued => SessionStatus::Waiting(self.now + 1),
            DState::Playing => SessionStatus::Dedicated,
            DState::Vcr { .. } | DState::Paused { .. } => SessionStatus::InVcr,
            DState::Starved { .. } => SessionStatus::Degraded,
            DState::Done => SessionStatus::Done,
        })
    }

    fn tick(&mut self) {
        self.apply_faults();
        self.drain_queue();
        let serving = self.disk_serving();
        let now = self.now;
        let policy = self.policy;
        let vcr_rate = self.config.vcr_rate.max(1);
        // Session slots are never reused and `active` is push-ordered, so
        // this walk is ascending-index — the same deterministic order as
        // the batching server's session phase.
        let mut i = 0;
        while i < self.active.len() {
            let idx = self.active[i];
            let state_now = {
                let sess = self.sessions.live_at(idx as usize);
                match sess.state {
                    DState::Playing => 0u8,
                    DState::Vcr { .. } => 1,
                    DState::Paused { .. } => 2,
                    DState::Starved { .. } => 3,
                    DState::Queued | DState::Done => 4,
                }
            };
            match state_now {
                0 => {
                    if serving {
                        if !self.consume_one(idx) {
                            self.active.swap_remove(i);
                            continue;
                        }
                    } else {
                        self.metrics.runtime.stall_minutes += 1.0;
                    }
                }
                1 => {
                    // Sweep at the VCR display rate on the held lease.
                    let length = {
                        let sess = self.sessions.live_at(idx as usize);
                        self.config.movies[sess.movie_idx].geometry.length
                    };
                    let now = self.now;
                    let sess = self.sessions.live_at_mut(idx as usize);
                    let DState::Vcr { kind, remaining } = &mut sess.state else {
                        unreachable!("state tag checked above");
                    };
                    let step = vcr_rate.min(*remaining);
                    *remaining -= step;
                    let kind = *kind;
                    let done = *remaining == 0;
                    match kind {
                        VcrKind::FastForward => {
                            sess.position = sess.position.saturating_add(step).min(length);
                        }
                        VcrKind::Rewind => {
                            sess.position = sess.position.saturating_sub(step);
                        }
                        VcrKind::Pause => unreachable!("pause never enters Vcr"),
                    }
                    let reached_end = sess.position >= length;
                    self.metrics.runtime.disk_minutes += 1.0;
                    self.sessions.live_at_mut(idx as usize).stats.from_disk += 1;
                    if reached_end {
                        // FF off the end releases the viewer: the model's
                        // P(end) path, counted as a hit for comparability.
                        self.metrics.runtime.ff_end += 1;
                        self.metrics.runtime.record_resume(kind, true);
                        self.finish(idx);
                        self.active.swap_remove(i);
                        continue;
                    }
                    if done {
                        // No shared window can cover the resume: a miss by
                        // construction, but the viewer already holds the
                        // stream, so playback continues seamlessly.
                        self.metrics.runtime.record_resume(kind, false);
                        self.sessions.live_at_mut(idx as usize).state = DState::Playing;
                    }
                    let _ = now;
                }
                2 => {
                    let sess = self.sessions.live_at_mut(idx as usize);
                    let DState::Paused { remaining } = &mut sess.state else {
                        unreachable!("state tag checked above");
                    };
                    *remaining = remaining.saturating_sub(1);
                    if *remaining == 0 {
                        // Resume needs a fresh stream; no window exists, so
                        // the trial is a miss either way.
                        self.metrics.runtime.record_resume(VcrKind::Pause, false);
                        match self.try_lease() {
                            Some(lease) => {
                                let sess = self.sessions.live_at_mut(idx as usize);
                                sess.lease = Some(lease);
                                sess.state = DState::Playing;
                                self.metrics.playback.add(self.now as f64, 1.0);
                            }
                            None => {
                                // The refusal enters the degrade ledger
                                // as pending; it is classified
                                // transient/permanent at resolution.
                                self.metrics.runtime.resume_starved += 1;
                                self.sessions.live_at_mut(idx as usize).state =
                                    starved_state(now, &policy, 1);
                                self.starved_count += 1;
                                self.metrics.runtime.degraded_entries += 1;
                            }
                        }
                    }
                }
                3 => {
                    // Mirrors `VodServer::degraded_tick`, with one
                    // backend-specific exit: there is no shared window to
                    // rejoin, so the retry timeout resolves the pending
                    // refusals permanent and sends the session back to
                    // the FIFO admission queue — where later head-of-line
                    // refusals are ordinary transient queueing denials.
                    self.metrics.runtime.rewait_minutes += 1.0;
                    let (since, next_retry, backoff, pending, exhausted) = {
                        let sess = self.sessions.live_at(idx as usize);
                        let DState::Starved {
                            since,
                            next_retry,
                            backoff,
                            pending_denials,
                            retries_exhausted,
                        } = sess.state
                        else {
                            unreachable!("state tag checked above");
                        };
                        (
                            since,
                            next_retry,
                            backoff,
                            pending_denials,
                            retries_exhausted,
                        )
                    };
                    if !exhausted && now >= next_retry {
                        let timed_out = now.saturating_sub(since) >= self.policy.retry_timeout;
                        // A recovery landing on the timeout tick wins the
                        // race: the session gets one last lease attempt
                        // before the timeout resolves its ledger.
                        let last_chance = timed_out
                            && self.policy.recovery_wins
                            && self.recovered_at == Some(now);
                        if timed_out && !last_chance {
                            self.reserve.record_denials(pending, false);
                            let sess = self.sessions.live_at_mut(idx as usize);
                            sess.state = DState::Queued;
                            self.queue.push_back(idx);
                            debug_assert!(self.starved_count > 0, "starved session outside census");
                            self.starved_count -= 1;
                            self.metrics.runtime.degraded_rejoined += 1;
                            self.active.swap_remove(i);
                            continue;
                        }
                        match self.try_lease() {
                            Some(lease) => {
                                self.reserve.record_denials(pending, true);
                                let sess = self.sessions.live_at_mut(idx as usize);
                                sess.lease = Some(lease);
                                sess.state = DState::Playing;
                                debug_assert!(
                                    self.starved_count > 0,
                                    "starved session outside census"
                                );
                                self.starved_count -= 1;
                                self.metrics.runtime.degraded_dedicated += 1;
                                self.metrics.playback.add(self.now as f64, 1.0);
                            }
                            None if last_chance => {
                                // Recovery was not enough after all: the
                                // refused attempt joins the ledger and the
                                // timeout proceeds as usual.
                                self.reserve.record_denials(pending + 1, false);
                                let sess = self.sessions.live_at_mut(idx as usize);
                                sess.state = DState::Queued;
                                self.queue.push_back(idx);
                                debug_assert!(
                                    self.starved_count > 0,
                                    "starved session outside census"
                                );
                                self.starved_count -= 1;
                                self.metrics.runtime.degraded_rejoined += 1;
                                self.active.swap_remove(i);
                                continue;
                            }
                            None => {
                                let nb = (backoff * 2).min(self.policy.retry_backoff_cap.max(1));
                                let sess = self.sessions.live_at_mut(idx as usize);
                                if let DState::Starved {
                                    next_retry,
                                    backoff,
                                    pending_denials,
                                    ..
                                } = &mut sess.state
                                {
                                    *pending_denials = pending + 1;
                                    *next_retry = now + nb;
                                    *backoff = nb;
                                }
                            }
                        }
                    }
                }
                _ => {
                    self.active.swap_remove(i);
                    continue;
                }
            }
            i += 1;
        }
        self.now += 1;
    }

    fn reset_metrics(&mut self) {
        let now = self.now as f64;
        let playing = self.metrics.playback.current();
        self.metrics = ServerMetrics::new();
        self.metrics.playback = TimeWeighted::new(now, playing);
        self.reserve.rebaseline(now);
        self.startup_waits = Welford::default();
    }

    fn runtime_metrics(&self) -> RuntimeMetrics {
        let mut rt = self.metrics.runtime.clone();
        rt.dedicated_avg = self.reserve.average(self.now as f64);
        rt.dedicated_peak = self.reserve.peak();
        rt.denied_transient = self.reserve.denied_transient();
        rt.denied_permanent = self.reserve.denied_permanent();
        rt
    }

    fn startup_waits(&self) -> &Welford {
        &self.startup_waits
    }

    fn inject_faults(&mut self, plan: FaultPlan, policy: DegradePolicy) {
        self.fault_mode = !plan.is_empty();
        self.plan = plan;
        self.policy = policy;
    }

    fn check_invariants(&self) -> Vec<String> {
        let mut v = Vec::new();
        let disk = &self.disk;
        if disk.in_use() + disk.available() + disk.failed() != disk.capacity() {
            v.push(format!(
                "disk conservation broken: in_use {} + free {} + failed {} != provisioned {}",
                disk.in_use(),
                disk.available(),
                disk.failed(),
                disk.capacity()
            ));
        }
        // The reserve accounts the *whole* pool here, so its failure
        // ledger must track the disk's exactly — this is the audit that
        // catches the fail-before-release ordering bug.
        if self.reserve.failed() != disk.failed() {
            v.push(format!(
                "reserve failure accounting drifted from the disk: reserve {} != disk {}",
                self.reserve.failed(),
                disk.failed()
            ));
        }
        // Queue conservation: the FIFO and the active walk partition the
        // live population — every `Queued` session sits in the queue
        // exactly once and holds no lease; nothing else queues.
        let mut queued_seen = std::collections::BTreeMap::new();
        for &idx in &self.queue {
            *queued_seen.entry(idx).or_insert(0u32) += 1;
        }
        for (&idx, &count) in &queued_seen {
            if count > 1 {
                v.push(format!("session {idx} queued {count} times"));
            }
            match self.sessions.at(idx as usize) {
                Some(sess) if matches!(sess.state, DState::Queued) => {
                    if sess.lease.is_some() {
                        v.push(format!("queued session {idx} holds a lease"));
                    }
                }
                _ => v.push(format!("queue entry {idx} is not a queued session")),
            }
        }
        let mut held = 0u32;
        let mut starved = 0u32;
        for idx in 0..self.sessions.slot_count() {
            let Some(sess) = self.sessions.at(idx) else {
                continue;
            };
            if matches!(sess.state, DState::Queued) && !queued_seen.contains_key(&(idx as u32)) {
                v.push(format!("queued session {idx} missing from the FIFO"));
            }
            if sess.lease.is_some() {
                held += 1;
                if !matches!(sess.state, DState::Playing | DState::Vcr { .. }) {
                    v.push(format!(
                        "session {idx} holds a lease in a non-serving state"
                    ));
                }
            } else if matches!(sess.state, DState::Playing | DState::Vcr { .. }) {
                v.push(format!("session {idx} is serving without a lease"));
            }
            if matches!(sess.state, DState::Starved { .. }) {
                starved += 1;
            }
        }
        if held != disk.in_use() {
            v.push(format!(
                "lease accounting broken: sessions hold {held}, disk says {}",
                disk.in_use()
            ));
        }
        if held != self.reserve.in_use() {
            v.push(format!(
                "reserve accounting broken: sessions hold {held}, reserve says {}",
                self.reserve.in_use()
            ));
        }
        if starved != self.starved_count {
            v.push(format!(
                "starved population drifted: counted {starved}, tracked {}",
                self.starved_count
            ));
        }
        v
    }

    fn degraded_sessions(&self) -> u32 {
        self.starved_count
    }

    fn sessions_finished(&self) -> u64 {
        self.metrics.sessions_done + self.metrics.sessions_closed_early
    }

    fn verify_failures(&self) -> u64 {
        self.metrics.verify_failures
    }

    fn io_streams(&self) -> u32 {
        self.config.disk_streams
    }

    fn buffer_segments(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::HostedMovie;

    fn config() -> ServerConfig {
        let movie = HostedMovie::from_allocation(MovieId(0), 120, 20, 100.0);
        ServerConfig {
            piggyback: None,
            ..ServerConfig::provisioned(vec![movie], 40)
        }
    }

    #[test]
    fn single_viewer_plays_through_on_disk_only() {
        let mut s = DedicatedServer::new(config());
        let id = s.open_session(MovieId(0)).unwrap();
        assert_eq!(s.session_status(id).unwrap(), SessionStatus::Dedicated);
        for _ in 0..130 {
            s.tick();
            assert!(s.check_invariants().is_empty());
        }
        assert_eq!(s.session_status(id).unwrap(), SessionStatus::Done);
        assert_eq!(s.sessions_finished(), 1);
        assert_eq!(s.verify_failures(), 0);
        let rt = s.runtime_metrics();
        assert_eq!(rt.buffer_minutes, 0.0, "unicast never serves from buffer");
        assert_eq!(rt.disk_minutes, 120.0);
        assert_eq!(s.startup_waits().count(), 1);
        assert_eq!(s.startup_waits().mean(), 0.0);
    }

    #[test]
    fn overload_queues_and_records_startup_wait() {
        let movie = HostedMovie::from_allocation(MovieId(0), 10, 2, 4.0);
        let cfg = ServerConfig {
            disk_streams: 2,
            ..ServerConfig {
                piggyback: None,
                ..ServerConfig::provisioned(vec![movie], 0)
            }
        };
        let mut s = DedicatedServer::new(cfg);
        let a = s.open_session(MovieId(0)).unwrap();
        let b = s.open_session(MovieId(0)).unwrap();
        let c = s.open_session(MovieId(0)).unwrap();
        assert_eq!(s.session_status(c).unwrap(), SessionStatus::Waiting(1));
        // Both streams busy for 10 ticks; c starts when a finishes.
        for _ in 0..12 {
            s.tick();
            assert!(s.check_invariants().is_empty());
        }
        assert_eq!(s.session_status(a).unwrap(), SessionStatus::Done);
        assert_eq!(s.session_status(b).unwrap(), SessionStatus::Done);
        assert_ne!(s.session_status(c).unwrap(), SessionStatus::Waiting(1));
        assert_eq!(s.startup_waits().count(), 3);
        assert!(s.startup_waits().mean() > 0.0, "c waited for a stream");
    }

    #[test]
    fn resumes_are_always_misses_except_ff_end() {
        let mut s = DedicatedServer::new(config());
        let id = s.open_session(MovieId(0)).unwrap();
        s.tick();
        s.request_vcr(id, VcrKind::Rewind, 1).unwrap();
        s.tick();
        let rt = s.runtime_metrics();
        assert_eq!(rt.resumes.trials(), 1);
        assert_eq!(rt.resumes.hits(), 0, "no shared window can cover a resume");
        // FF off the end releases the viewer and counts as a hit.
        s.request_vcr(id, VcrKind::FastForward, 500).unwrap();
        for _ in 0..200 {
            s.tick();
        }
        let rt = s.runtime_metrics();
        assert_eq!(rt.ff_end, 1);
        assert_eq!(rt.resumes.hits(), 1);
        assert_eq!(s.session_status(id).unwrap(), SessionStatus::Done);
    }

    #[test]
    fn mid_queue_stream_fail_keeps_denials_transient() {
        use vod_runtime::FaultEvent;
        // Two streams, both taken; two more viewers queue behind them.
        let movie = HostedMovie::from_allocation(MovieId(0), 10, 2, 4.0);
        let cfg = ServerConfig {
            disk_streams: 2,
            ..ServerConfig {
                piggyback: None,
                ..ServerConfig::provisioned(vec![movie], 0)
            }
        };
        let mut s = DedicatedServer::new(cfg);
        // Long timeout: the revoked holders stay in the retry loop until
        // the outage recovers, so their refusals resolve transient.
        let policy = DegradePolicy {
            retry_timeout: 200,
            ..DegradePolicy::default()
        };
        let plan = FaultPlan::new(vec![FaultEvent {
            at: 5,
            kind: FaultKind::DiskOutage {
                count: 2,
                recover_after: 20,
            },
        }]);
        s.inject_faults(plan, policy);
        let a = s.open_session(MovieId(0)).unwrap();
        s.tick();
        let b = s.open_session(MovieId(0)).unwrap();
        let c = s.open_session(MovieId(0)).unwrap();
        let d = s.open_session(MovieId(0)).unwrap();
        for _ in 0..70 {
            s.tick();
            // Includes `reserve.failed == disk.failed`: with every
            // stream in use at the fault tick, the old fail-then-release
            // order left the reserve failure ledger at 0.
            let violations = s.check_invariants();
            assert!(violations.is_empty(), "{violations:?}");
        }
        for id in [a, b, c, d] {
            assert_eq!(s.session_status(id).unwrap(), SessionStatus::Done);
        }
        let rt = s.runtime_metrics();
        assert_eq!(rt.degraded_entries, 2, "both revoked holders degraded");
        assert_eq!(rt.degraded_dedicated, 2, "both recovered via retry");
        assert!(
            rt.denied_transient > 0,
            "queued-behind-the-outage refusals are transient"
        );
        assert_eq!(
            rt.denied_permanent, 0,
            "no refusal in this run was permanent: the queue and the \
             retry loop both eventually won a stream"
        );
        assert_eq!(s.startup_waits().count(), 4, "each admission counted once");
    }

    #[test]
    fn deterministic_under_replay() {
        let run = || {
            let mut s = DedicatedServer::new(config());
            let mut ids = Vec::new();
            for t in 0..60u64 {
                if t % 3 == 0 {
                    ids.push(s.open_session(MovieId(0)).unwrap());
                }
                if t == 20 {
                    let _ = s.request_vcr(ids[0], VcrKind::Pause, 5);
                }
                s.tick();
            }
            s.runtime_metrics()
        };
        assert_eq!(run(), run());
    }
}
