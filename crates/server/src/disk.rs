//! Simulated disk subsystem: a bounded pool of concurrent I/O streams.
//!
//! Stands in for the paper's SCSI disk farm (Example 2: a $700 2 GB disk
//! sustains 10 concurrent 4 Mb/s streams). Capacity is expressed directly
//! in *streams*, the unit every result in the paper uses. Reads require a
//! stream lease, so exceeding provisioned bandwidth is a programming
//! error surfaced at the call site rather than silent oversubscription.

use crate::content::{generate_segment, MovieId, Segment};

/// Lease on one disk I/O stream.
#[derive(Debug, PartialEq, Eq)]
pub struct StreamLease {
    id: u64,
}

impl StreamLease {
    /// Opaque lease id (diagnostics only).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Errors from the disk subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// All provisioned streams are in use.
    Saturated {
        /// Provisioned capacity.
        capacity: u32,
    },
    /// A read past the end of the movie.
    OutOfRange {
        /// Requested minute.
        index: u32,
        /// Movie length in minutes.
        length: u32,
    },
    /// Read attempted with a stale (already released) lease.
    StaleLease,
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Saturated { capacity } => {
                write!(f, "disk saturated: all {capacity} streams leased")
            }
            DiskError::OutOfRange { index, length } => {
                write!(f, "segment {index} out of range (movie length {length})")
            }
            DiskError::StaleLease => write!(f, "read through a released lease"),
        }
    }
}

impl std::error::Error for DiskError {}

/// The disk subsystem.
#[derive(Debug)]
pub struct DiskSubsystem {
    capacity: u32,
    active: Vec<u64>,
    /// Streams removed from service by injected faults. Conservation —
    /// `in_use + available + failed == capacity` — holds at all times.
    failed: u32,
    next_lease: u64,
    reads: u64,
    /// Known movie lengths for bounds checking, indexed by `MovieId`.
    lengths: std::collections::BTreeMap<MovieId, u32>,
}

impl DiskSubsystem {
    /// Provision `capacity` concurrent streams.
    pub fn new(capacity: u32) -> Self {
        Self {
            capacity,
            active: Vec::new(),
            failed: 0,
            next_lease: 0,
            reads: 0,
            lengths: std::collections::BTreeMap::new(),
        }
    }

    /// Register a movie (its length bounds reads).
    pub fn register_movie(&mut self, movie: MovieId, length_minutes: u32) {
        self.lengths.insert(movie, length_minutes);
    }

    /// Provisioned stream capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Streams currently leased.
    pub fn in_use(&self) -> u32 {
        self.active.len() as u32
    }

    /// Streams currently free (capacity less in-use and failed).
    pub fn available(&self) -> u32 {
        self.capacity
            .saturating_sub(self.in_use())
            .saturating_sub(self.failed)
    }

    /// Streams removed from service by injected faults.
    pub fn failed(&self) -> u32 {
        self.failed
    }

    /// Total segment reads served (for throughput accounting).
    pub fn total_reads(&self) -> u64 {
        self.reads
    }

    /// Acquire a stream lease.
    pub fn acquire(&mut self) -> Result<StreamLease, DiskError> {
        if self.in_use() + self.failed >= self.capacity {
            return Err(DiskError::Saturated {
                capacity: self.capacity,
            });
        }
        self.next_lease += 1;
        self.active.push(self.next_lease);
        Ok(StreamLease {
            id: self.next_lease,
        })
    }

    /// Remove `count` streams from service (fault injection). Free
    /// streams fail first; any shortfall revokes in-use leases, newest
    /// lease first (a deterministic victim order — the most recently
    /// granted stream is the cheapest to lose). Returns the revoked lease
    /// ids so the server can degrade their holders; reads through a
    /// revoked lease fail with [`DiskError::StaleLease`] from here on.
    /// At most `capacity − failed` streams can fail in total.
    pub fn fail_streams(&mut self, count: u32) -> Vec<u64> {
        // Same total-order discipline as `StreamReserve`: every difference
        // in the count/failed/free arithmetic clamps at zero instead of
        // relying on the caller's ordering to keep `from_free ≤ total`. A
        // wrapped difference here would revoke ~4 billion leases. The
        // `as usize` below widens u32 → usize (lossless on every
        // supported target), so the clamp is the only place precision
        // can change.
        let total = count.min(self.capacity.saturating_sub(self.failed));
        let from_free = total.min(self.available());
        self.failed += from_free;
        let to_revoke = total.saturating_sub(from_free) as usize;
        let mut revoked = Vec::with_capacity(to_revoke);
        for _ in 0..to_revoke {
            let Some((pos, _)) = self.active.iter().enumerate().max_by_key(|(_, &id)| id) else {
                break;
            };
            revoked.push(self.active.swap_remove(pos));
            self.failed += 1;
        }
        revoked
    }

    /// Return up to `count` previously failed streams to service; returns
    /// how many actually recovered.
    pub fn recover_streams(&mut self, count: u32) -> u32 {
        let recovered = count.min(self.failed);
        self.failed -= recovered;
        recovered
    }

    /// Release a lease.
    pub fn release(&mut self, lease: StreamLease) {
        if let Some(pos) = self.active.iter().position(|&id| id == lease.id) {
            self.active.swap_remove(pos);
        }
    }

    /// Read one segment through a lease.
    pub fn read(
        &mut self,
        lease: &StreamLease,
        movie: MovieId,
        index: u32,
    ) -> Result<Segment, DiskError> {
        if !self.active.contains(&lease.id) {
            return Err(DiskError::StaleLease);
        }
        if let Some(&len) = self.lengths.get(&movie) {
            if index >= len {
                return Err(DiskError::OutOfRange { index, length: len });
            }
        }
        self.reads += 1;
        Ok(generate_segment(movie, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::verify_segment;

    #[test]
    fn capacity_enforced() {
        let mut d = DiskSubsystem::new(2);
        let a = d.acquire().unwrap();
        let _b = d.acquire().unwrap();
        assert!(matches!(d.acquire(), Err(DiskError::Saturated { .. })));
        assert_eq!(d.in_use(), 2);
        d.release(a);
        assert_eq!(d.available(), 1);
        assert!(d.acquire().is_ok());
    }

    #[test]
    fn reads_serve_canonical_bytes() {
        let mut d = DiskSubsystem::new(1);
        d.register_movie(MovieId(7), 120);
        let lease = d.acquire().unwrap();
        let seg = d.read(&lease, MovieId(7), 55).unwrap();
        assert!(verify_segment(&seg));
        assert_eq!(seg.movie, MovieId(7));
        assert_eq!(seg.index, 55);
        assert_eq!(d.total_reads(), 1);
    }

    #[test]
    fn bounds_checked() {
        let mut d = DiskSubsystem::new(1);
        d.register_movie(MovieId(7), 120);
        let lease = d.acquire().unwrap();
        assert!(matches!(
            d.read(&lease, MovieId(7), 120),
            Err(DiskError::OutOfRange { .. })
        ));
    }

    #[test]
    fn fail_prefers_free_streams_then_revokes_newest() {
        let mut d = DiskSubsystem::new(4);
        d.register_movie(MovieId(1), 10);
        let a = d.acquire().unwrap();
        let b = d.acquire().unwrap();
        // 2 free: failing 3 consumes both free streams, then revokes the
        // newest lease (b).
        let revoked = d.fail_streams(3);
        assert_eq!(revoked, vec![b.id()]);
        assert_eq!(d.failed(), 3);
        assert_eq!(d.in_use(), 1);
        assert_eq!(d.available(), 0);
        assert_eq!(d.in_use() + d.available() + d.failed(), d.capacity());
        assert!(matches!(d.acquire(), Err(DiskError::Saturated { .. })));
        assert!(
            matches!(d.read(&b, MovieId(1), 0), Err(DiskError::StaleLease)),
            "revoked lease must be dead"
        );
        assert!(d.read(&a, MovieId(1), 0).is_ok(), "survivor still serves");
        assert_eq!(d.recover_streams(2), 2);
        assert!(d.acquire().is_ok());
        assert_eq!(d.recover_streams(5), 1, "recovery capped at failed");
        assert_eq!(d.failed(), 0);
    }

    #[test]
    fn fail_capped_at_remaining_capacity() {
        let mut d = DiskSubsystem::new(2);
        let a = d.acquire().unwrap();
        let revoked = d.fail_streams(10);
        assert_eq!(revoked, vec![a.id()], "everything fails, nothing twice");
        assert_eq!(d.failed(), 2);
        assert_eq!(d.fail_streams(1), Vec::<u64>::new());
        assert_eq!(d.failed(), 2);
        assert_eq!(d.in_use() + d.available() + d.failed(), d.capacity());
    }

    /// Regression for the revocation-count arithmetic: interleave fails,
    /// partial recoveries, releases, and re-fails (shrinking the pool
    /// while `failed > 0` and leases are outstanding) and require
    /// conservation plus exact revocation counts at every step. Before
    /// `total - from_free` became saturating this path depended on
    /// cross-expression ordering to avoid a wrap to ~4G revocations.
    #[test]
    fn fail_recover_interleavings_conserve_streams() {
        let mut d = DiskSubsystem::new(6);
        d.register_movie(MovieId(1), 10);
        let conserved = |d: &DiskSubsystem| d.in_use() + d.available() + d.failed() == d.capacity();
        let a = d.acquire().unwrap();
        let b = d.acquire().unwrap();
        let c = d.acquire().unwrap();
        // Fail 4 of 6: three free go first, then the newest lease (c).
        assert_eq!(d.fail_streams(4), vec![c.id()]);
        assert_eq!((d.in_use(), d.available(), d.failed()), (2, 0, 4));
        assert!(conserved(&d));
        // Shrink further while failed > 0 and nothing is free: both
        // remaining fails must come from revocations, newest first.
        assert_eq!(d.fail_streams(2), vec![b.id(), a.id()]);
        assert_eq!((d.in_use(), d.available(), d.failed()), (0, 0, 6));
        assert!(conserved(&d));
        // Everything is failed; more fails are no-ops, not wraps.
        assert_eq!(d.fail_streams(3), Vec::<u64>::new());
        assert!(conserved(&d));
        // Partial recovery, new lease, then a fail burst larger than the
        // free pool with failed still > 0.
        assert_eq!(d.recover_streams(3), 3);
        let e = d.acquire().unwrap();
        assert_eq!((d.in_use(), d.available(), d.failed()), (1, 2, 3));
        assert_eq!(d.fail_streams(3), vec![e.id()]);
        assert_eq!((d.in_use(), d.available(), d.failed()), (0, 0, 6));
        assert!(conserved(&d));
        assert!(matches!(
            d.read(&e, MovieId(1), 0),
            Err(DiskError::StaleLease)
        ));
        // Full recovery restores the whole pool.
        assert_eq!(d.recover_streams(u32::MAX), 6);
        assert_eq!((d.in_use(), d.available(), d.failed()), (0, 6, 0));
        assert!(conserved(&d));
    }

    #[test]
    fn stale_lease_rejected() {
        let mut d = DiskSubsystem::new(2);
        d.register_movie(MovieId(1), 10);
        let a = d.acquire().unwrap();
        let id_copy = StreamLease { id: a.id() };
        d.release(a);
        assert!(matches!(
            d.read(&id_copy, MovieId(1), 0),
            Err(DiskError::StaleLease)
        ));
    }
}
