//! Static partitioned buffer management (the paper's [12] substrate).
//!
//! Each I/O stream owns a *partition*: a ring of the most recent `B/n`
//! one-minute segments it displayed. Viewers enrolled in the partition
//! read those segments from memory instead of disk. A [`BufferPool`]
//! enforces the global budget `B` across all partitions (in segments ==
//! movie minutes, the paper's unit).

use std::collections::VecDeque;

use crate::content::{MovieId, Segment};

/// Errors from buffer accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufferError {
    /// The pool cannot cover another partition of the requested size.
    Exhausted {
        /// Segments requested.
        requested: usize,
        /// Segments still unallocated.
        available: usize,
    },
}

impl std::fmt::Display for BufferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BufferError::Exhausted {
                requested,
                available,
            } => write!(
                f,
                "buffer pool exhausted: requested {requested} segments, {available} available"
            ),
        }
    }
}

impl std::error::Error for BufferError {}

/// Global buffer accounting in segments (movie minutes).
#[derive(Debug)]
pub struct BufferPool {
    budget: usize,
    used: usize,
}

impl BufferPool {
    /// A pool of `budget` segments.
    pub fn new(budget: usize) -> Self {
        Self { budget, used: 0 }
    }

    /// Total budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Segments currently reserved by partitions.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Segments still unallocated (0 while overcommitted after a shrink).
    pub fn available(&self) -> usize {
        self.budget.saturating_sub(self.used)
    }

    /// Shrink the budget by up to `segments` (fault injection). Existing
    /// reservations are untouched, so the pool may be left overcommitted;
    /// the owner must evict partitions until
    /// [`BufferPool::overcommitted`] is 0 again. Returns the segments
    /// actually removed from the budget.
    pub fn shrink(&mut self, segments: usize) -> usize {
        let removed = segments.min(self.budget);
        self.budget -= removed;
        removed
    }

    /// Return `segments` to the budget (recovery from a shrink).
    pub fn grow(&mut self, segments: usize) {
        self.budget += segments;
    }

    /// Segments reserved beyond the current budget (nonzero only after a
    /// shrink, until the owner evicts partitions to fit again).
    pub fn overcommitted(&self) -> usize {
        self.used.saturating_sub(self.budget)
    }

    /// Reserve space for a partition of `capacity` segments.
    pub fn reserve(&mut self, capacity: usize) -> Result<(), BufferError> {
        if capacity > self.available() {
            return Err(BufferError::Exhausted {
                requested: capacity,
                available: self.available(),
            });
        }
        self.used += capacity;
        Ok(())
    }

    /// Return a partition's reservation.
    pub fn release(&mut self, capacity: usize) {
        debug_assert!(capacity <= self.used, "releasing more than reserved");
        self.used = self.used.saturating_sub(capacity);
    }
}

/// One stream's ring of recent segments.
#[derive(Debug)]
pub struct Partition {
    movie: MovieId,
    capacity: usize,
    /// Segments in display order; back = most recent (the stream front).
    ring: VecDeque<Segment>,
}

impl Partition {
    /// Empty partition for `movie` holding up to `capacity` segments.
    pub fn new(movie: MovieId, capacity: usize) -> Self {
        Self {
            movie,
            capacity,
            ring: VecDeque::with_capacity(capacity),
        }
    }

    /// Owning movie.
    pub fn movie(&self) -> MovieId {
        self.movie
    }

    /// Configured capacity in segments.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Segments currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no segments are retained yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Append the segment the stream just displayed, evicting the oldest
    /// when full. Panics if fed a segment for the wrong movie or out of
    /// order — partitions are strictly sequential by construction.
    pub fn advance(&mut self, seg: Segment) {
        assert_eq!(seg.movie, self.movie, "segment for wrong movie");
        if let Some(back) = self.ring.back() {
            assert_eq!(
                seg.index,
                back.index + 1,
                "partition fed out of order: {} after {}",
                seg.index,
                back.index
            );
        }
        if self.capacity == 0 {
            return; // pure batching: nothing is retained
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(seg);
    }

    /// The newest segment index retained (the stream's display front).
    pub fn front_index(&self) -> Option<u32> {
        self.ring.back().map(|s| s.index)
    }

    /// The oldest segment index retained (the trailing edge).
    pub fn tail_index(&self) -> Option<u32> {
        self.ring.front().map(|s| s.index)
    }

    /// Does the window currently cover `index`?
    pub fn covers(&self, index: u32) -> bool {
        match (self.tail_index(), self.front_index()) {
            (Some(lo), Some(hi)) => (lo..=hi).contains(&index),
            _ => false,
        }
    }

    /// Fetch segment `index` from the ring, if covered.
    pub fn get(&self, index: u32) -> Option<&Segment> {
        let lo = self.tail_index()?;
        if !self.covers(index) {
            return None;
        }
        self.ring.get((index - lo) as usize)
    }
}

/// One broadcast channel's staging slot: the single segment the channel
/// is transmitting this tick. Pyramid fast broadcasting retains no
/// trailing window server-side — clients buffer ahead instead — so a
/// channel's buffer demand is exactly one segment, reserved against the
/// shared [`BufferPool`] like any partition. Unlike [`Partition`], the
/// slot is cyclic: a channel loops its segment forever, so consecutive
/// stores jump backwards at every cycle boundary by design.
#[derive(Debug)]
pub struct BroadcastSlot {
    movie: MovieId,
    current: Option<Segment>,
}

impl BroadcastSlot {
    /// Empty staging slot for `movie`'s channel.
    pub fn new(movie: MovieId) -> Self {
        Self {
            movie,
            current: None,
        }
    }

    /// Owning movie.
    pub fn movie(&self) -> MovieId {
        self.movie
    }

    /// Stage the segment the channel broadcasts this tick, replacing the
    /// previous one. Panics if fed a segment for the wrong movie.
    pub fn store(&mut self, seg: Segment) {
        assert_eq!(seg.movie, self.movie, "segment for wrong movie");
        self.current = Some(seg);
    }

    /// Empty the slot (the channel's schedule slot is padding this tick).
    pub fn clear(&mut self) {
        self.current = None;
    }

    /// The staged segment, if the channel broadcast one this tick.
    pub fn current(&self) -> Option<&Segment> {
        self.current.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::generate_segment;

    fn seg(i: u32) -> Segment {
        generate_segment(MovieId(1), i)
    }

    #[test]
    fn pool_accounting() {
        let mut p = BufferPool::new(10);
        p.reserve(4).unwrap();
        p.reserve(6).unwrap();
        assert_eq!(p.available(), 0);
        assert!(matches!(p.reserve(1), Err(BufferError::Exhausted { .. })));
        p.release(6);
        assert_eq!(p.available(), 6);
        assert_eq!(p.used(), 4);
    }

    #[test]
    fn shrink_and_grow_track_overcommit() {
        let mut p = BufferPool::new(10);
        p.reserve(8).unwrap();
        assert_eq!(p.shrink(4), 4);
        assert_eq!(p.budget(), 6);
        assert_eq!(p.overcommitted(), 2);
        assert_eq!(p.available(), 0, "no headroom while overcommitted");
        assert!(matches!(p.reserve(1), Err(BufferError::Exhausted { .. })));
        p.release(4); // evicting a partition clears the overcommit
        assert_eq!(p.overcommitted(), 0);
        assert_eq!(p.available(), 2);
        p.grow(4);
        assert_eq!(p.budget(), 10);
        assert_eq!(p.available(), 6);
        assert_eq!(p.shrink(100), 10, "shrink capped at the budget");
        assert_eq!(p.budget(), 0);
    }

    #[test]
    fn ring_evicts_in_order() {
        let mut part = Partition::new(MovieId(1), 3);
        for i in 0..5 {
            part.advance(seg(i));
        }
        assert_eq!(part.len(), 3);
        assert_eq!(part.tail_index(), Some(2));
        assert_eq!(part.front_index(), Some(4));
        assert!(part.covers(3));
        assert!(!part.covers(1));
        assert!(!part.covers(5));
        assert_eq!(part.get(3).unwrap().index, 3);
        assert!(part.get(1).is_none());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_feed_panics() {
        let mut part = Partition::new(MovieId(1), 3);
        part.advance(seg(0));
        part.advance(seg(2));
    }

    #[test]
    fn zero_capacity_retains_nothing() {
        let mut part = Partition::new(MovieId(1), 0);
        part.advance(seg(0));
        assert!(part.is_empty());
        assert!(!part.covers(0));
    }
}
