//! The virtual-time VOD server: batching scheduler, partitioned buffer
//! service, dedicated-stream VCR service, and piggyback merge-back.
//!
//! Time advances in integer minutes via [`VodServer::tick`]; one tick
//! displays one segment at normal playback rate. Restart intervals are
//! quantized to whole minutes by [`QuantizedGeometry`] (the analytic
//! model and `vod-sim` cover the continuous-time behavior; this crate's
//! job is a byte-exact data path with honest resource accounting).
//!
//! Semantics per tick `t` (then the clock becomes `t + 1`):
//! 1. retire streams that finished displaying and whose partitions have
//!    no enrolled readers left;
//! 2. start streams scheduled at `t` (each acquires a disk lease and a
//!    partition reservation);
//! 3. every playing stream reads its next segment from disk into its
//!    partition;
//! 4. every session consumes: enrolled sessions read from their
//!    partition, dedicated sessions read through their own lease,
//!    VCR-active sessions sweep at the configured rate, paused sessions
//!    count down; resumes are classified hit/miss against live windows.

use std::collections::BTreeMap;

use vod_runtime::{
    Arena, ArenaId, DegradePolicy, FaultKind, FaultPlan, QuantizedGeometry, ResumeClass,
    RuntimeMetrics, StreamReserve, TimerWheel,
};
use vod_workload::{TimeWeighted, VcrKind, Welford};

use crate::backend::Adoption;
use crate::buffer::{BufferPool, Partition};
use crate::content::{verify_segment, MovieId};
use crate::disk::{DiskSubsystem, StreamLease};
use crate::metrics::ServerMetrics;
use crate::session::{DeliveryStats, SessionId, SessionState, SessionStatus, StreamId};
use crate::{BufferError, DiskError};

/// One movie hosted under static partitioning: identity plus the
/// quantized `(T, b)` schedule derived in `vod-runtime`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostedMovie {
    /// Movie identity.
    pub movie: MovieId,
    /// Quantized restart/window geometry (single source of the rounding
    /// rule: [`QuantizedGeometry::from_allocation`]).
    pub geometry: QuantizedGeometry,
}

impl HostedMovie {
    /// Derive hosting parameters from the paper's `(l, B, n)` triple.
    pub fn from_allocation(
        movie: MovieId,
        length: u32,
        n_streams: u32,
        buffer_minutes: f64,
    ) -> Self {
        Self {
            movie,
            geometry: QuantizedGeometry::from_allocation(length, n_streams, buffer_minutes),
        }
    }

    /// Maximum batching wait in minutes: `w = T − b`.
    pub fn max_wait(&self) -> u32 {
        self.geometry.max_wait()
    }

    /// Upper bound on simultaneously live streams (including partitions
    /// lingering for trailing readers).
    pub fn max_live_streams(&self) -> u32 {
        self.geometry.max_live_streams()
    }
}

/// Piggybacking configuration (the paper's phase-2 fallback, after
/// [1, 7, 9]): a dedicated post-miss session displays slightly faster,
/// gaining one segment every `catchup_period` ticks until it re-enters a
/// partition window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PiggybackConfig {
    /// Ticks between catch-up segments; 20 ≈ a 5% display-rate increase,
    /// the range the piggybacking literature considers imperceptible.
    pub catchup_period: u32,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Total concurrent disk streams provisioned.
    pub disk_streams: u32,
    /// Total buffer budget in segments.
    pub buffer_budget: usize,
    /// Hosted movies.
    pub movies: Vec<HostedMovie>,
    /// Display rate of FF and RW in segments per tick.
    pub vcr_rate: u32,
    /// Piggyback merge-back; `None` disables it.
    pub piggyback: Option<PiggybackConfig>,
}

impl ServerConfig {
    /// Provision disk and buffer generously enough that scheduled
    /// restarts can never fail, leaving `vcr_reserve` streams for VCR
    /// service.
    pub fn provisioned(movies: Vec<HostedMovie>, vcr_reserve: u32) -> Self {
        let disk: u32 = movies.iter().map(|m| m.max_live_streams()).sum::<u32>() + vcr_reserve;
        let buffer: usize = movies
            .iter()
            .map(|m| (m.max_live_streams() * m.geometry.partition_capacity) as usize)
            .sum();
        Self {
            disk_streams: disk,
            buffer_budget: buffer,
            movies,
            vcr_rate: 3,
            piggyback: Some(PiggybackConfig { catchup_period: 20 }),
        }
    }
}

/// Errors surfaced by the server API.
#[derive(Debug)]
pub enum ServerError {
    /// The movie is not hosted.
    UnknownMovie(MovieId),
    /// No such session (or already closed).
    UnknownSession(SessionId),
    /// The session cannot accept this request in its current state.
    InvalidState {
        /// What was attempted.
        operation: &'static str,
    },
    /// No disk stream available for the request.
    VcrDenied,
    /// Underlying disk failure (indicates a server bug).
    Disk(DiskError),
    /// Underlying buffer failure (indicates under-provisioning).
    Buffer(BufferError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::UnknownMovie(m) => write!(f, "movie {m:?} is not hosted"),
            ServerError::UnknownSession(s) => write!(f, "no such session {s:?}"),
            ServerError::InvalidState { operation } => {
                write!(f, "session state does not allow `{operation}`")
            }
            ServerError::VcrDenied => write!(f, "no I/O stream available for VCR service"),
            ServerError::Disk(e) => write!(f, "disk: {e}"),
            ServerError::Buffer(e) => write!(f, "buffer: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<DiskError> for ServerError {
    fn from(e: DiskError) -> Self {
        ServerError::Disk(e)
    }
}
impl From<BufferError> for ServerError {
    fn from(e: BufferError) -> Self {
        ServerError::Buffer(e)
    }
}

struct ActiveStream {
    movie_idx: usize,
    started: u64,
    /// Disk lease; dropped (released) once the stream finishes displaying.
    lease: Option<StreamLease>,
    partition: Partition,
    enrolled: u32,
    /// Next segment index this stream reads from disk. Equal to the
    /// stream's age on every fault-free tick; a disk-slowdown fault lets
    /// it lag behind (the stream then serves only every k-th tick).
    next_read: u32,
}

struct Session {
    movie_idx: usize,
    /// Next segment to consume.
    position: u32,
    state: SessionState,
    /// Dedicated disk lease, when holding one.
    lease: Option<StreamLease>,
    stats: DeliveryStats,
    piggyback_phase: u32,
}

/// The server.
///
/// Session and stream populations live in generational [`Arena`]s (the
/// liveness seam is [`Arena::live`]/[`Arena::live_mut`] and their
/// raw-index twins: callers only dereference ids/indices they observed
/// live earlier in the same call chain, and a miss aborts loudly).
/// Session slots are never reused — ids stay queryable after `Done`, and
/// session indices are append-only, which keeps the per-tick processing
/// order identical to the historical full-table scan. Stream slots *are*
/// reused, lowest-index-first, matching the historical free-slot scan.
pub struct VodServer {
    now: u64,
    config: ServerConfig,
    disk: DiskSubsystem,
    pool: BufferPool,
    streams: Arena<ActiveStream>,
    sessions: Arena<Session>,
    /// Session indices in actionable states (Enrolled / Dedicated /
    /// VcrActive / Degraded), ascending. Rebuilt each tick by the merge
    /// loop in `advance_sessions`; `Waiting` sessions live in `wakeups`
    /// instead and `Done` sessions in neither, so a tick touches only
    /// sessions that can act — the million-session hot path.
    active: Vec<u32>,
    /// Timer wheel of Waiting-session wakeups keyed by `start_at` tick.
    wakeups: TimerWheel<u32>,
    /// Wheel entries known stale (their session closed while Waiting);
    /// each fires once as a no-op and is dropped. Tracked so the
    /// invariant check can reconcile `wakeups.len()` exactly.
    wheel_stale: u64,
    /// Per-movie memo of "the stream that restarted at this tick",
    /// replacing the per-waking-session stream scan with one scan per
    /// restart batch. Valid within one tick's session phase (streams do
    /// not start or retire there); reset by `advance_sessions`.
    restart_memo: Vec<Option<Option<StreamId>>>,
    /// One-entry memo of the last `(stream, position) → verified` buffer
    /// read this tick. Within a tick a partition is immutable, and a
    /// restart batch shares one position, so cohort reads after the first
    /// skip the segment re-generation in `verify_segment`.
    verify_memo: Option<(ArenaId, u32, bool)>,
    /// Test-only oracle mode: process sessions with the historical full
    /// 0..n scan (no wheel, no memos). Set at construction time via
    /// `set_reference_scan`; the equivalence suite pins wheel mode
    /// against it bit for bit.
    reference_scan: bool,
    metrics: ServerMetrics,
    movie_index: BTreeMap<MovieId, usize>,
    /// Dedicated-stream accountant for VCR service. Its capacity is the
    /// disk streams left over once the restart schedule's worst case is
    /// pre-allocated, so VCR service can never eat into the headroom a
    /// scheduled restart needs (the paper's separation of pre-allocated
    /// playback resources from the VCR reserve). This static cap is
    /// equivalent to the dynamic check `available > reserved − in_use`
    /// whenever the schedule stays within its pre-allocation.
    reserve: StreamReserve,
    /// Injected fault schedule (empty unless [`VodServer::inject_faults`]
    /// was called — and then every fault-only code path below stays
    /// unreachable, keeping fault-free runs bitwise identical).
    plan: FaultPlan,
    /// Degradation policy applied to sessions that lose their resources.
    policy: DegradePolicy,
    /// True once a non-empty plan is injected; gates the fault-tolerant
    /// recovery paths (a fault-free server still fails loudly on
    /// impossible states instead of silently re-queueing).
    fault_mode: bool,
    /// Active disk slowdown: `(period, until)` — streams serve only on
    /// ticks divisible by `period`, through tick `until` exclusive.
    slowdown: Option<(u32, u64)>,
    /// Outage recoveries scheduled by tick: streams to return to service.
    recovery_due: BTreeMap<u64, u32>,
    /// Tick of the most recent outage recovery that actually returned
    /// streams to service. Degraded sessions whose retry timeout expires
    /// on exactly this tick get one last lease attempt before the
    /// timeout resolves their denials as permanent — recovery wins the
    /// same-tick race (see `degraded_tick`).
    recovered_at: Option<u64>,
    /// Sessions currently in the degraded re-wait state.
    degraded_count: u32,
    /// Startup waits (minutes from open to scheduled playback start),
    /// one sample per opened session. Lives outside [`RuntimeMetrics`]
    /// because that schema's JSON key order is pinned; backend-generic
    /// drivers read it through `DeliveryBackend::startup_waits`.
    startup_waits: Welford,
}

impl VodServer {
    /// Build a server from a configuration.
    pub fn new(config: ServerConfig) -> Self {
        let mut disk = DiskSubsystem::new(config.disk_streams);
        let mut movie_index = BTreeMap::new();
        for (i, m) in config.movies.iter().enumerate() {
            disk.register_movie(m.movie, m.geometry.length);
            movie_index.insert(m.movie, i);
        }
        let pool = BufferPool::new(config.buffer_budget);
        let playback_reserved = config
            .movies
            .iter()
            .map(|m| m.max_live_streams())
            .sum::<u32>()
            .min(config.disk_streams);
        let reserve =
            StreamReserve::with_capacity(config.disk_streams.saturating_sub(playback_reserved));
        let n_movies = config.movies.len();
        Self {
            now: 0,
            config,
            disk,
            pool,
            streams: Arena::new(),
            sessions: Arena::new(),
            active: Vec::new(),
            wakeups: TimerWheel::new(),
            wheel_stale: 0,
            restart_memo: vec![None; n_movies],
            verify_memo: None,
            reference_scan: false,
            metrics: ServerMetrics::new(),
            movie_index,
            reserve,
            plan: FaultPlan::empty(),
            policy: DegradePolicy::default(),
            fault_mode: false,
            slowdown: None,
            recovery_due: BTreeMap::new(),
            recovered_at: None,
            degraded_count: 0,
            startup_waits: Welford::default(),
        }
    }

    /// Arm the server with a fault schedule and a degradation policy.
    /// Faults apply at the top of each tick, before streams retire, start
    /// or advance. Injecting an empty plan leaves behavior bitwise
    /// identical to a server never armed at all.
    pub fn inject_faults(&mut self, plan: FaultPlan, policy: DegradePolicy) {
        self.fault_mode = !plan.is_empty();
        self.plan = plan;
        self.policy = policy;
    }

    /// Sessions currently in the degraded re-wait state.
    pub fn degraded_sessions(&self) -> u32 {
        self.degraded_count
    }

    /// Test-only oracle switch: process sessions with the historical full
    /// 0..n scan instead of the timer wheel + active list (memos off too).
    /// Flip it right after construction, before any session opens — the
    /// equivalence suite pins the two modes against each other bit for
    /// bit.
    #[doc(hidden)]
    pub fn set_reference_scan(&mut self, on: bool) {
        self.reference_scan = on;
    }

    /// Acquire a disk lease for VCR/dedicated service out of the VCR
    /// reserve. Counts the attempt; `None` means the reserve (or, never
    /// in a provisioned server, the disk itself) is exhausted.
    fn try_vcr_lease(&mut self) -> Option<StreamLease> {
        let now = self.now as f64;
        self.metrics.runtime.acquisition_attempts += 1;
        if !self.reserve.try_acquire(now) {
            return None;
        }
        match self.disk.acquire() {
            Ok(lease) => Some(lease),
            Err(_) => {
                self.reserve.release(now);
                None
            }
        }
    }

    /// Release a dedicated lease back to disk and reserve.
    fn release_vcr_lease(&mut self, lease: StreamLease) {
        self.disk.release(lease);
        self.reserve.release(self.now as f64);
    }

    /// Current virtual time in minutes.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The configuration this server was provisioned from.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Server metrics so far.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Snapshot of the shared mechanism counters with the reserve's
    /// occupancy statistics filled in — directly comparable (same fields,
    /// same meanings) to a `vod-sim` report's runtime metrics.
    pub fn runtime_metrics(&self) -> RuntimeMetrics {
        let mut rt = self.metrics.runtime.clone();
        rt.dedicated_avg = self.reserve.average(self.now as f64);
        rt.dedicated_peak = self.reserve.peak();
        rt.denied_transient = self.reserve.denied_transient();
        rt.denied_permanent = self.reserve.denied_permanent();
        rt
    }

    /// Check the server's conservation invariants and return a
    /// human-readable description of every violation (empty when
    /// healthy). The chaos harness calls this after every tick; the
    /// checks are pure reads.
    ///
    /// Invariants: stream conservation (`in_use + free + failed ==
    /// provisioned`, and every in-use stream is held by exactly one
    /// lease); the VCR reserve's holds equal the session-held leases;
    /// buffer accounting (partition capacities sum to the pool's `used`,
    /// never overcommitted between ticks); enrollment counts match the
    /// sessions pointing at each stream; no session slot is lost; the
    /// degraded population matches the states.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut v = Vec::new();
        let disk = &self.disk;
        if disk.in_use() + disk.available() + disk.failed() != disk.capacity() {
            v.push(format!(
                "disk conservation broken: in_use {} + free {} + failed {} != provisioned {}",
                disk.in_use(),
                disk.available(),
                disk.failed(),
                disk.capacity()
            ));
        }
        let stream_leases = self
            .streams
            .iter()
            .filter(|(_, s)| s.lease.is_some())
            .count() as u32;
        let session_leases = self
            .sessions
            .iter()
            .filter(|(_, s)| s.lease.is_some())
            .count() as u32;
        if stream_leases + session_leases != disk.in_use() {
            v.push(format!(
                "lease conservation broken: streams hold {stream_leases}, sessions hold \
                 {session_leases}, disk says {} in use",
                disk.in_use()
            ));
        }
        if session_leases != self.reserve.in_use() {
            v.push(format!(
                "reserve drift: sessions hold {session_leases} dedicated leases, reserve says {}",
                self.reserve.in_use()
            ));
        }
        let partition_segments: usize = self
            .streams
            .iter()
            .map(|(_, s)| s.partition.capacity())
            .sum();
        if partition_segments != self.pool.used() {
            v.push(format!(
                "buffer accounting broken: partitions total {partition_segments} segments, \
                 pool says {} used",
                self.pool.used()
            ));
        }
        if self.pool.overcommitted() != 0 {
            v.push(format!(
                "buffer overcommitted between ticks: {} segments beyond budget",
                self.pool.overcommitted()
            ));
        }
        for (sid, s) in self.streams.iter() {
            let i = sid.index();
            let readers = self
                .sessions
                .iter()
                .filter(
                    |(_, sess)| matches!(sess.state, SessionState::Enrolled { stream } if stream.0 == sid),
                )
                .count() as u32;
            if readers != s.enrolled {
                v.push(format!(
                    "enrollment drift on stream {i}: {readers} readers vs enrolled {}",
                    s.enrolled
                ));
            }
        }
        for idx in 0..self.sessions.slot_count() {
            match self.sessions.at(idx) {
                None => v.push(format!("session slot {idx} lost (empty)")),
                Some(sess) => {
                    if let SessionState::Enrolled { stream } = sess.state {
                        if !self.streams.contains(stream.0) {
                            v.push(format!(
                                "session {idx} enrolled in dead stream {}",
                                stream.0.index()
                            ));
                        }
                    }
                }
            }
        }
        let degraded = self
            .sessions
            .iter()
            .filter(|(_, s)| matches!(s.state, SessionState::Degraded { .. }))
            .count() as u32;
        if degraded != self.degraded_count {
            v.push(format!(
                "degraded population drift: {degraded} sessions vs counter {}",
                self.degraded_count
            ));
        }
        if !self.reference_scan {
            self.check_scheduler_invariants(&mut v);
        }
        v
    }

    /// Coherence of the wheel-mode scheduler structures: the active list
    /// is strictly ascending, covers exactly the actionable sessions
    /// (entries may linger for sessions closed since the last tick — they
    /// drop at the next rebuild — but a `Waiting` entry is always wrong),
    /// and the wheel holds one entry per waiting session plus the known
    /// stale ones.
    fn check_scheduler_invariants(&self, v: &mut Vec<String>) {
        if !self.active.windows(2).all(|w| w[0] < w[1]) {
            v.push("active list not strictly ascending".to_string());
        }
        let mut cursor = self.active.iter().copied().peekable();
        let mut waiting = 0u64;
        for (id, sess) in self.sessions.iter() {
            let idx = id.index() as u32;
            while cursor.peek().is_some_and(|&a| a < idx) {
                cursor.next();
            }
            let listed = cursor.peek() == Some(&idx);
            match sess.state {
                SessionState::Waiting { .. } => {
                    waiting += 1;
                    if listed {
                        v.push(format!("waiting session {idx} on the active list"));
                    }
                }
                SessionState::Done => {}
                _ => {
                    if !listed {
                        v.push(format!("actionable session {idx} missing from active list"));
                    }
                }
            }
        }
        if waiting + self.wheel_stale != self.wakeups.len() as u64 {
            v.push(format!(
                "wheel population drift: {waiting} waiting + {} stale != {} scheduled",
                self.wheel_stale,
                self.wakeups.len()
            ));
        }
    }

    /// Reset all counters and re-baseline the occupancy statistics at the
    /// current instant, so measurements exclude warm-up (the same
    /// discipline as `vod-sim`'s warm-up window).
    pub fn reset_metrics(&mut self) {
        let now = self.now as f64;
        let playing = self.metrics.playback.current();
        self.metrics = ServerMetrics::new();
        self.metrics.playback = TimeWeighted::new(now, playing);
        self.reserve.rebaseline(now);
        self.startup_waits = Welford::default();
    }

    /// Startup-wait samples (minutes between `open_session` and the
    /// session's scheduled playback start) since the last metrics reset.
    pub fn startup_waits(&self) -> &Welford {
        &self.startup_waits
    }

    /// Disk subsystem state (for capacity assertions in tests).
    pub fn disk(&self) -> &DiskSubsystem {
        &self.disk
    }

    /// Buffer pool state.
    pub fn buffer_pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Open a session for `movie`. Joins the newest open enrollment window
    /// (type-2 viewer) or queues for the next restart (type-1).
    pub fn open_session(&mut self, movie: MovieId) -> Result<SessionId, ServerError> {
        let movie_idx = *self
            .movie_index
            .get(&movie)
            .ok_or(ServerError::UnknownMovie(movie))?;
        let geometry = self.config.movies[movie_idx].geometry;
        // A stream whose window will cover position 0 when this session
        // first consumes (the enrollment window of the paper's Figure 1).
        let join = self.joinable_stream(movie_idx, 0);
        let (state, wake_at) = match join {
            Some(stream) => {
                self.streams.live_mut(stream.0).enrolled += 1;
                self.startup_waits.push(0.0);
                (SessionState::Enrolled { stream }, None)
            }
            None => {
                // The next restart instant ≥ now. A stream scheduled at
                // `now` has not started yet (ticks process start-of-minute
                // events), so `start_at == now` is valid and the session
                // enrolls during the coming tick.
                let t = geometry.restart_interval as u64;
                let start_at = self.now.div_ceil(t) * t;
                self.startup_waits.push((start_at - self.now) as f64);
                (SessionState::Waiting { start_at }, Some(start_at))
            }
        };
        let id = SessionId(self.sessions.insert(Session {
            movie_idx,
            position: 0,
            state,
            lease: None,
            stats: DeliveryStats::default(),
            piggyback_phase: 0,
        }));
        // Session slots are never reused, so the new index is maximal and
        // the active list stays sorted by pushing.
        let idx = id.0.index() as u32;
        match wake_at {
            Some(at) => self.wakeups.schedule(at, idx),
            None => self.active.push(idx),
        }
        Ok(id)
    }

    /// Adopt a session displaced from another federation shard, resuming
    /// `movie` at `position`. A migration, not an admission: no
    /// startup-wait sample is recorded (the viewer already started
    /// elsewhere), and placement is immediate or refused — an in-window
    /// batch cohort when some live partition covers `position`
    /// ([`Adoption::CohortJoin`]), else a dedicated stream from the VCR
    /// reserve ([`Adoption::DedicatedStream`]), else
    /// [`ServerError::VcrDenied`] so the front tier's failover ledger
    /// backs off and retries.
    pub fn adopt_session(
        &mut self,
        movie: MovieId,
        position: u32,
    ) -> Result<(SessionId, Adoption), ServerError> {
        let movie_idx = *self
            .movie_index
            .get(&movie)
            .ok_or(ServerError::UnknownMovie(movie))?;
        if position >= self.config.movies[movie_idx].geometry.length {
            return Err(ServerError::InvalidState { operation: "adopt" });
        }
        let (state, lease) = match self.joinable_stream(movie_idx, position) {
            Some(stream) => {
                self.streams.live_mut(stream.0).enrolled += 1;
                (SessionState::Enrolled { stream }, None)
            }
            None => match self.try_vcr_lease() {
                Some(lease) => (SessionState::Dedicated, Some(lease)),
                None => {
                    self.metrics.runtime.vcr_denied += 1;
                    // The shard never observes the retry's resolution
                    // (the ledger may re-admit elsewhere), so locally
                    // the refusal is permanent; transient/permanent
                    // classification of the *displaced session* lives in
                    // the front tier's `FederationMetrics`.
                    self.reserve.record_denials(1, false);
                    return Err(ServerError::VcrDenied);
                }
            },
        };
        let adoption = if lease.is_some() {
            Adoption::DedicatedStream
        } else {
            Adoption::CohortJoin
        };
        let id = SessionId(self.sessions.insert(Session {
            movie_idx,
            position,
            state,
            lease,
            stats: DeliveryStats::default(),
            piggyback_phase: 0,
        }));
        // Session slots are never reused, so the new index is maximal
        // and the active list stays sorted by pushing.
        self.active.push(id.0.index() as u32);
        Ok((id, adoption))
    }

    /// Issue a VCR operation on a playing session. `magnitude` is the
    /// movie minutes to sweep (FF/RW) or the pause duration in minutes.
    pub fn request_vcr(
        &mut self,
        id: SessionId,
        kind: VcrKind,
        magnitude: u32,
    ) -> Result<(), ServerError> {
        let (movie_idx, position, has_lease, state_ok) = {
            let sess = self
                .sessions
                .get(id.0)
                .ok_or(ServerError::UnknownSession(id))?;
            let ok = matches!(
                sess.state,
                SessionState::Enrolled { .. } | SessionState::Dedicated
            );
            (sess.movie_idx, sess.position, sess.lease.is_some(), ok)
        };
        if !state_ok {
            return Err(ServerError::InvalidState { operation: "vcr" });
        }
        // FF/RW with viewing need a dedicated stream for phase 1.
        let needs_lease = matches!(kind, VcrKind::FastForward | VcrKind::Rewind);
        let new_lease = if needs_lease && !has_lease {
            // Starvation policy: while degraded sessions wait for streams
            // or failed streams shrink the pool, new phase-1 grants are
            // refused outright — playback (and recovery) has priority
            // over fresh VCR service. Unreachable without injected
            // faults, so fault-free denial behavior is unchanged.
            if self.fault_mode && (self.degraded_count > 0 || self.disk.failed() > 0) {
                self.metrics.runtime.vcr_denied += 1;
                self.metrics.vcr_denied_degraded += 1;
                self.reserve.record_denials(1, false);
                return Err(ServerError::VcrDenied);
            }
            match self.try_vcr_lease() {
                Some(lease) => Some(lease),
                None => {
                    self.metrics.runtime.vcr_denied += 1;
                    // Issue-time Erlang loss: the viewer stays in the
                    // batch and never retries this request — permanent.
                    self.reserve.record_denials(1, false);
                    return Err(ServerError::VcrDenied);
                }
            }
        } else {
            None
        };
        let length = self.config.movies[movie_idx].geometry.length;
        let sess = self.sessions.live_mut(id.0);
        if let Some(lease) = new_lease {
            sess.lease = Some(lease);
        }
        // A paused viewer consumes nothing: release any dedicated stream.
        if matches!(kind, VcrKind::Pause) {
            if let Some(lease) = sess.lease.take() {
                self.disk.release(lease);
                self.reserve.release(self.now as f64);
            }
        }
        // Leave the partition, if enrolled.
        if let SessionState::Enrolled { stream } = sess.state {
            if let Some(s) = self.streams.get_mut(stream.0) {
                s.enrolled -= 1;
            }
        }
        if matches!(kind, VcrKind::Rewind) && magnitude >= position {
            self.metrics.runtime.rw_truncated += 1;
        }
        let remaining = vod_runtime::truncate_sweep(kind, magnitude, position, length);
        let sess = self.sessions.live_mut(id.0);
        sess.state = SessionState::VcrActive { kind, remaining };
        Ok(())
    }

    /// Close a session early (the viewer quits). Releases any dedicated
    /// lease, leaves the enrolled partition, and freezes the delivery
    /// statistics, which remain queryable. Closing an already-finished
    /// session is a no-op; closing an unknown id is an error.
    pub fn close_session(&mut self, id: SessionId) -> Result<DeliveryStats, ServerError> {
        let stats = {
            let sess = self
                .sessions
                .get(id.0)
                .ok_or(ServerError::UnknownSession(id))?;
            sess.stats
        };
        let idx = id.0.index();
        let already_done = matches!(self.sessions.live_at(idx).state, SessionState::Done);
        if !already_done {
            // A degraded session that quits resolves its retry denials as
            // permanent (no retry ever succeeded) and leaves the degraded
            // population.
            let pending = self.exit_degraded(idx);
            self.reserve.record_denials(pending, false);
            let sess = self.sessions.live_at_mut(idx);
            if matches!(sess.state, SessionState::Waiting { .. }) {
                // The wheel still holds this session's wakeup; it fires
                // once as a no-op and is dropped then.
                self.wheel_stale += 1;
            }
            if let SessionState::Enrolled { stream } = sess.state {
                if let Some(st) = self.streams.get_mut(stream.0) {
                    st.enrolled -= 1;
                }
            }
            let lease = self.sessions.live_at_mut(idx).lease.take();
            if let Some(lease) = lease {
                self.release_vcr_lease(lease);
            }
            self.sessions.live_at_mut(idx).state = SessionState::Done;
            self.metrics.sessions_closed_early += 1;
        }
        Ok(stats)
    }

    /// Status snapshot of a session.
    pub fn session_status(&self, id: SessionId) -> Result<SessionStatus, ServerError> {
        let sess = self
            .sessions
            .get(id.0)
            .ok_or(ServerError::UnknownSession(id))?;
        Ok(match &sess.state {
            SessionState::Waiting { start_at } => SessionStatus::Waiting(*start_at),
            SessionState::Enrolled { .. } => SessionStatus::Shared,
            SessionState::Dedicated => SessionStatus::Dedicated,
            SessionState::VcrActive { .. } => SessionStatus::InVcr,
            SessionState::Degraded { .. } => SessionStatus::Degraded,
            SessionState::Done => SessionStatus::Done,
        })
    }

    /// Delivery statistics of a session (available after completion too).
    pub fn session_stats(&self, id: SessionId) -> Result<DeliveryStats, ServerError> {
        self.sessions
            .get(id.0)
            .map(|s| s.stats)
            .ok_or(ServerError::UnknownSession(id))
    }

    /// Session playback position (next segment to consume).
    pub fn session_position(&self, id: SessionId) -> Result<u32, ServerError> {
        self.sessions
            .get(id.0)
            .map(|s| s.position)
            .ok_or(ServerError::UnknownSession(id))
    }

    /// Advance one virtual minute.
    pub fn tick(&mut self) {
        let t = self.now;
        if self.fault_mode {
            self.apply_faults(t);
        }
        self.retire_streams();
        self.start_due_streams(t);
        self.advance_streams(t);
        self.advance_sessions(t);
        self.now = t + 1;
    }

    /// Run `minutes` ticks.
    pub fn run(&mut self, minutes: u64) {
        for _ in 0..minutes {
            self.tick();
        }
    }

    // ---- faults ------------------------------------------------------------

    /// Apply scheduled recoveries and fault events for tick `t`.
    /// Recoveries land first so an outage ending exactly when a new fault
    /// strikes frees capacity before the new fault consumes it.
    fn apply_faults(&mut self, t: u64) {
        if let Some(count) = self.recovery_due.remove(&t) {
            let recovered = self.disk.recover_streams(count);
            self.reserve.recover_streams(recovered);
            if recovered > 0 {
                self.recovered_at = Some(t);
            }
        }
        if let Some((_, until)) = self.slowdown {
            if t >= until {
                self.slowdown = None;
            }
        }
        let due: Vec<FaultKind> = self.plan.events_at(t).iter().map(|e| e.kind).collect();
        for kind in due {
            match kind {
                FaultKind::DiskStreamLoss { count } => {
                    self.metrics.runtime.faults_injected += 1;
                    self.fail_disk_streams(t, count);
                }
                FaultKind::DiskOutage {
                    count,
                    recover_after,
                } => {
                    self.metrics.runtime.faults_injected += 1;
                    let failed = self.fail_disk_streams(t, count);
                    if failed > 0 {
                        let due = t + recover_after.max(1);
                        *self.recovery_due.entry(due).or_insert(0) += failed;
                    }
                }
                FaultKind::DiskSlowdown { period, duration } => {
                    self.metrics.runtime.faults_injected += 1;
                    if period > 1 {
                        self.slowdown = Some((period, t + duration));
                    }
                }
                FaultKind::BufferShrink { segments } => {
                    self.metrics.runtime.faults_injected += 1;
                    self.pool.shrink(segments as usize);
                    self.evict_partitions_to_fit(t);
                }
                FaultKind::BufferRestore { segments } => {
                    self.metrics.runtime.faults_injected += 1;
                    self.pool.grow(segments as usize);
                }
                // Whole-shard events are interpreted by the federation
                // front tier, never by a shard itself: below the front
                // tier they are inert and uncounted.
                FaultKind::ShardOutage { .. } | FaultKind::ShardRecovery { .. } => {}
            }
        }
    }

    /// Remove `count` disk streams from service, degrading every holder
    /// of a revoked lease. Returns how many streams actually failed.
    fn fail_disk_streams(&mut self, t: u64, count: u32) -> u32 {
        let failed_before = self.disk.failed();
        let revoked = self.disk.fail_streams(count);
        // `fail_streams` only ever grows the failed count, but keep the
        // difference total-order-safe anyway: a future recovery path
        // interleaved here must shrink this delta, never wrap it.
        let newly_failed = self.disk.failed().saturating_sub(failed_before);
        // Mirror the capacity loss into the VCR reserve: the dedicated
        // share shrinks before the playback pre-allocation does.
        self.reserve.fail_streams(newly_failed);
        self.metrics.leases_revoked += revoked.len() as u64;
        for id in revoked {
            self.strip_revoked_lease(t, id);
        }
        newly_failed
    }

    /// Find the holder of revoked lease `id`, drop the dead lease, and
    /// degrade the holder. A playback stream loses its partition (its
    /// enrolled readers degrade); a dedicated/VCR session loses its
    /// stream and re-queues.
    fn strip_revoked_lease(&mut self, t: u64, id: u64) {
        for stream_idx in 0..self.streams.slot_count() {
            let Some(sid) = self.streams.id_at(stream_idx) else {
                continue;
            };
            let holds = self
                .streams
                .live(sid)
                .lease
                .as_ref()
                .is_some_and(|l| l.id() == id);
            if holds {
                self.metrics.playback.add(t as f64, -1.0);
                self.kill_stream(t, sid);
                return;
            }
        }
        for idx in 0..self.sessions.slot_count() {
            let holds = self
                .sessions
                .at(idx)
                .is_some_and(|s| s.lease.as_ref().is_some_and(|l| l.id() == id));
            if holds {
                let sess = self.sessions.live_at_mut(idx);
                // The lease is already dead at the disk; drop it without a
                // disk release, but return the hold to the reserve.
                sess.lease = None;
                self.reserve.release(t as f64);
                if matches!(sess.state, SessionState::VcrActive { .. }) {
                    self.metrics.sweeps_aborted += 1;
                }
                self.enter_degraded(t, idx);
                return;
            }
        }
    }

    /// Retire stream `sid` immediately: degrade its enrolled readers,
    /// release its partition, and free the slot. The caller has already
    /// settled the disk lease (revoked or released).
    fn kill_stream(&mut self, t: u64, sid: ArenaId) {
        for idx in 0..self.sessions.slot_count() {
            let enrolled_here = self.sessions.at(idx).is_some_and(
                |s| matches!(s.state, SessionState::Enrolled { stream } if stream.0 == sid),
            );
            if enrolled_here {
                self.enter_degraded(t, idx);
            }
        }
        if let Some(mut s) = self.streams.remove(sid) {
            if let Some(lease) = s.lease.take() {
                self.disk.release(lease);
            }
            self.pool.release(s.partition.capacity());
        }
    }

    /// Evict whole partitions (victim order: fewest enrolled readers,
    /// then oldest start, then lowest slot — deterministic) until the
    /// pool is no longer overcommitted after a buffer shrink. Evicted
    /// streams release their disk lease normally; their readers degrade.
    fn evict_partitions_to_fit(&mut self, t: u64) {
        while self.pool.overcommitted() > 0 {
            let victim = self
                .streams
                .iter()
                .min_by_key(|(id, s)| (s.enrolled, s.started, id.index()))
                .map(|(id, _)| id);
            let Some(sid) = victim else { break };
            let held_lease = self.streams.get(sid).is_some_and(|s| s.lease.is_some());
            if held_lease {
                self.metrics.playback.add(t as f64, -1.0);
            }
            self.metrics.partitions_evicted += 1;
            self.kill_stream(t, sid);
        }
    }

    /// Is disk service stalled at tick `t` by an active slowdown fault?
    fn disk_stalled(&self, t: u64) -> bool {
        match self.slowdown {
            Some((period, until)) => t < until && !t.is_multiple_of(period as u64),
            None => false,
        }
    }

    /// Move session `idx` into the degraded re-wait state (it has already
    /// been detached from any stream, partition, or lease).
    fn enter_degraded(&mut self, t: u64, idx: usize) {
        let sess = self.sessions.live_at_mut(idx);
        if let SessionState::Enrolled { stream } = sess.state {
            if let Some(s) = self.streams.get_mut(stream.0) {
                s.enrolled -= 1;
            }
        }
        if matches!(
            sess.state,
            SessionState::Degraded { .. } | SessionState::Done
        ) {
            return;
        }
        sess.state = SessionState::Degraded {
            since: t,
            next_retry: t + self.policy.rewait_bound.max(1),
            backoff: self.policy.retry_backoff.max(1),
            pending_denials: 0,
            retries_exhausted: false,
        };
        sess.piggyback_phase = 0;
        self.degraded_count += 1;
        self.metrics.runtime.degraded_entries += 1;
    }

    // ---- streams -----------------------------------------------------------

    fn retire_streams(&mut self) {
        for i in 0..self.streams.slot_count() {
            let retire = match self.streams.at_mut(i) {
                Some(s) => {
                    let geometry = self.config.movies[s.movie_idx].geometry;
                    // Displaying ends once every segment has been read —
                    // `next_read` equals the stream's age on fault-free
                    // ticks and lags it under a disk slowdown.
                    if s.next_read >= geometry.length {
                        // Release the disk lease as soon as displaying ends.
                        if let Some(lease) = s.lease.take() {
                            self.disk.release(lease);
                            self.metrics.playback.add(self.now as f64, -1.0);
                        }
                        // Keep the frozen partition until its trailing
                        // readers finish.
                        s.enrolled == 0
                    } else {
                        false
                    }
                }
                None => false,
            };
            if retire {
                if let Some(s) = self.streams.id_at(i).and_then(|id| self.streams.remove(id)) {
                    self.pool.release(s.partition.capacity());
                }
            }
        }
    }

    fn start_due_streams(&mut self, t: u64) {
        for movie_idx in 0..self.config.movies.len() {
            let hosted = self.config.movies[movie_idx];
            let geometry = hosted.geometry;
            if !t.is_multiple_of(geometry.restart_interval as u64) {
                continue;
            }
            let lease = match self.disk.acquire() {
                Ok(l) => l,
                Err(_) => {
                    self.metrics.runtime.restart_failures += 1;
                    continue;
                }
            };
            if self
                .pool
                .reserve(geometry.partition_capacity as usize)
                .is_err()
            {
                self.disk.release(lease);
                self.metrics.runtime.restart_failures += 1;
                continue;
            }
            self.metrics.playback.add(t as f64, 1.0);
            let stream = ActiveStream {
                movie_idx,
                started: t,
                lease: Some(lease),
                partition: Partition::new(hosted.movie, geometry.partition_capacity as usize),
                enrolled: 0,
                next_read: 0,
            };
            // Lowest-index-first slot reuse — the arena's insert order
            // matches the free-slot scan this replaces.
            self.streams.insert(stream);
        }
    }

    fn advance_streams(&mut self, t: u64) {
        let stalled = self.disk_stalled(t);
        for i in 0..self.streams.slot_count() {
            let Some(s) = self.streams.at_mut(i) else {
                continue;
            };
            let hosted = self.config.movies[s.movie_idx];
            if s.next_read >= hosted.geometry.length {
                continue;
            }
            if stalled {
                // Disk slowdown: no stream reads this tick; `next_read`
                // holds and enrolled readers at the front stall with it.
                continue;
            }
            // vod-lint: allow(no-panic) — retire_streams only drops the lease once
            // next_read ≥ length, and the guard above skips exactly those streams.
            let lease = s.lease.as_ref().expect("playing stream holds a lease");
            let seg = self
                .disk
                .read(lease, hosted.movie, s.next_read)
                // vod-lint: allow(no-panic) — next_read < length above bounds the read.
                .expect("scheduled read is in range");
            s.partition.advance(seg);
            s.next_read += 1;
        }
    }

    // ---- sessions ----------------------------------------------------------

    /// Process every session that can act at tick `t`.
    ///
    /// Wheel mode walks the merged ascending-index stream of the active
    /// list and the wakeups due at `t` — the same relative order as the
    /// historical full `0..n` scan, which is bitwise-identical because
    /// the skipped sessions (`Done`, not-yet-due `Waiting`) were strict
    /// no-ops in that scan. Reference mode (`set_reference_scan`) still
    /// runs the full scan as the equivalence oracle.
    fn advance_sessions(&mut self, t: u64) {
        for memo in self.restart_memo.iter_mut() {
            *memo = None;
        }
        self.verify_memo = None;
        if self.reference_scan {
            for idx in 0..self.sessions.slot_count() {
                self.advance_session(t, idx);
            }
            return;
        }
        let mut due = self.wakeups.drain_tick(t);
        due.sort_unstable();
        let prev_active = std::mem::take(&mut self.active);
        let mut next_active = Vec::with_capacity(prev_active.len() + due.len());
        let (mut a, mut d) = (0usize, 0usize);
        loop {
            // A session is never in both sources: Waiting sessions are
            // only on the wheel, everything actionable only on the list.
            let from_wheel = match (prev_active.get(a), due.get(d)) {
                (Some(&act), Some(&wake)) => {
                    debug_assert_ne!(act, wake, "session both active and waiting");
                    wake < act
                }
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (None, None) => break,
            };
            let idx = if from_wheel {
                let i = due[d];
                d += 1;
                i
            } else {
                let i = prev_active[a];
                a += 1;
                i
            };
            if from_wheel
                && matches!(
                    self.sessions.live_at(idx as usize).state,
                    SessionState::Done
                )
            {
                // The session closed while waiting; its wakeup fires once
                // as a no-op and the stale entry is accounted off.
                debug_assert!(self.wheel_stale > 0, "stale wakeup with no accounted entry");
                self.wheel_stale -= 1;
                continue;
            }
            self.advance_session(t, idx as usize);
            match self.sessions.live_at(idx as usize).state {
                SessionState::Done => {}
                SessionState::Waiting { start_at } => self.wakeups.schedule(start_at, idx),
                _ => next_active.push(idx),
            }
        }
        self.active = next_active;
    }

    /// First live stream of `movie_idx` that restarted at tick `t`, in
    /// slot order (at most one exists: `start_due_streams` starts one
    /// stream per movie per due tick).
    fn find_restarted_stream(&self, movie_idx: usize, t: u64) -> Option<StreamId> {
        self.streams
            .iter()
            .find(|(_, s)| s.movie_idx == movie_idx && s.started == t)
            .map(|(id, _)| StreamId(id))
    }

    fn advance_session(&mut self, t: u64, idx: usize) {
        enum Act {
            Nothing,
            StartWaiting,
            Enrolled,
            Dedicated,
            Vcr(VcrKind),
            Degraded,
        }
        let act = {
            let Some(sess) = self.sessions.at(idx) else {
                return;
            };
            match sess.state {
                SessionState::Done => Act::Nothing,
                SessionState::Waiting { start_at } if start_at == t => Act::StartWaiting,
                SessionState::Waiting { .. } => Act::Nothing,
                SessionState::Enrolled { .. } => Act::Enrolled,
                SessionState::Dedicated => Act::Dedicated,
                SessionState::VcrActive { kind, .. } => Act::Vcr(kind),
                SessionState::Degraded { .. } => Act::Degraded,
            }
        };
        match act {
            Act::Nothing => {}
            Act::StartWaiting => {
                // The restart happened earlier in this tick; enroll in the
                // stream that just started. The whole batch shares one
                // answer, so wheel mode memoizes the scan per movie
                // (streams neither start nor retire during the session
                // phase, which keeps the memo valid for the entire tick).
                let movie_idx = self.sessions.live_at(idx).movie_idx;
                let stream = if self.reference_scan {
                    self.find_restarted_stream(movie_idx, t)
                } else {
                    match self.restart_memo[movie_idx] {
                        Some(cached) => cached,
                        None => {
                            let found = self.find_restarted_stream(movie_idx, t);
                            self.restart_memo[movie_idx] = Some(found);
                            found
                        }
                    }
                };
                let Some(stream) = stream else {
                    // The scheduled restart failed to start (under-provisioned
                    // disk or buffer, counted in `restart_failures`). The
                    // batch keeps waiting for the next restart instant
                    // instead of aborting the server.
                    let t_int = self.config.movies[movie_idx].geometry.restart_interval as u64;
                    self.sessions.live_at_mut(idx).state = SessionState::Waiting {
                        start_at: t + t_int,
                    };
                    return;
                };
                self.sessions.live_at_mut(idx).state = SessionState::Enrolled { stream };
                self.streams.live_mut(stream.0).enrolled += 1;
                self.consume_enrolled(t, idx);
            }
            Act::Enrolled => self.consume_enrolled(t, idx),
            Act::Dedicated => self.consume_dedicated(t, idx),
            Act::Vcr(VcrKind::FastForward) => self.sweep_forward(t, idx),
            Act::Vcr(VcrKind::Rewind) => self.sweep_backward(t, idx),
            Act::Vcr(VcrKind::Pause) => self.pause_countdown(t, idx),
            Act::Degraded => self.degraded_tick(t, idx),
        }
    }

    /// One degraded re-wait tick: free batch rejoin if a live window
    /// covers the position; otherwise, past the re-wait bound, retry
    /// dedicated acquisition with exponential backoff until the timeout,
    /// after which only batch admission remains. See [`DegradePolicy`].
    fn degraded_tick(&mut self, t: u64, idx: usize) {
        self.metrics.runtime.rewait_minutes += 1.0;
        let (movie_idx, position) = {
            let sess = self.sessions.live_at(idx);
            (sess.movie_idx, sess.position)
        };
        if let Some(stream) = self.joinable_stream(movie_idx, position) {
            // Rejoined the batch: the dedicated retries (if any) never
            // succeeded, so their denials resolve as permanent.
            let pending = self.exit_degraded(idx);
            self.reserve.record_denials(pending, false);
            self.metrics.runtime.degraded_rejoined += 1;
            self.sessions.live_at_mut(idx).state = SessionState::Enrolled { stream };
            self.streams.live_mut(stream.0).enrolled += 1;
            self.consume_enrolled(t, idx);
            return;
        }
        let (since, next_retry, backoff, pending, exhausted) = {
            let sess = self.sessions.live_at(idx);
            let SessionState::Degraded {
                since,
                next_retry,
                backoff,
                pending_denials,
                retries_exhausted,
            } = sess.state
            else {
                unreachable!("caller checked state")
            };
            (
                since,
                next_retry,
                backoff,
                pending_denials,
                retries_exhausted,
            )
        };
        if exhausted || t < next_retry {
            return;
        }
        if t.saturating_sub(since) >= self.policy.retry_timeout {
            // Timeout — but when an outage recovery landed on this very
            // tick, recovery wins the race: the streams it returned are
            // exactly what the session has been retrying for, so give it
            // one last lease attempt before the sequence resolves. Only
            // if that attempt also fails does the timeout proceed.
            if self.policy.recovery_wins
                && self.recovered_at == Some(t)
                && self.degraded_retry_lease(t, idx, pending, backoff)
            {
                return;
            }
            // Give up on dedicated service, classify the whole retry
            // sequence as permanently denied, and fall back to batch
            // admission (keep waiting for a window rejoin). A refused
            // last-chance attempt above added one pending denial; read
            // the live count so it resolves with the rest.
            let pending = match self.sessions.live_at(idx).state {
                SessionState::Degraded {
                    pending_denials, ..
                } => pending_denials,
                _ => pending,
            };
            self.reserve.record_denials(pending, false);
            let sess = self.sessions.live_at_mut(idx);
            if let SessionState::Degraded {
                pending_denials,
                retries_exhausted,
                ..
            } = &mut sess.state
            {
                *pending_denials = 0;
                *retries_exhausted = true;
            }
            return;
        }
        self.degraded_retry_lease(t, idx, pending, backoff);
    }

    /// One dedicated-stream retry for degraded session `idx`. On success
    /// the session exits degraded into `Dedicated` (pending denials
    /// resolve transient) and `true` returns; on refusal the backoff
    /// ledger advances and `false` returns.
    fn degraded_retry_lease(&mut self, t: u64, idx: usize, pending: u64, backoff: u64) -> bool {
        match self.try_vcr_lease() {
            Some(lease) => {
                // Retry succeeded: earlier refusals in this sequence were
                // transient denials.
                let pending = self.exit_degraded(idx);
                self.reserve.record_denials(pending, true);
                self.metrics.runtime.degraded_dedicated += 1;
                let sess = self.sessions.live_at_mut(idx);
                sess.lease = Some(lease);
                sess.state = SessionState::Dedicated;
                sess.piggyback_phase = 0;
                true
            }
            None => {
                let next_backoff = (backoff * 2).min(self.policy.retry_backoff_cap.max(1));
                let sess = self.sessions.live_at_mut(idx);
                if let SessionState::Degraded {
                    next_retry,
                    backoff,
                    pending_denials,
                    ..
                } = &mut sess.state
                {
                    *pending_denials = pending + 1;
                    *next_retry = t + next_backoff;
                    *backoff = next_backoff;
                }
                false
            }
        }
    }

    /// Leave the degraded state (recovery or close); returns the pending
    /// denial count awaiting classification and fixes the population
    /// counter. The caller sets the next state.
    fn exit_degraded(&mut self, idx: usize) -> u64 {
        let sess = self.sessions.live_at_mut(idx);
        let SessionState::Degraded {
            pending_denials, ..
        } = sess.state
        else {
            return 0;
        };
        debug_assert!(
            self.degraded_count > 0,
            "degraded session outside the census"
        );
        self.degraded_count -= 1;
        pending_denials
    }

    /// Consume the next segment from the enrolled partition.
    fn consume_enrolled(&mut self, t: u64, idx: usize) {
        let (stream_id, position, movie_idx) = {
            let sess = self.sessions.live_at(idx);
            let SessionState::Enrolled { stream } = sess.state else {
                unreachable!("caller checked state")
            };
            (stream.0, sess.position, sess.movie_idx)
        };
        let length = self.config.movies[movie_idx].geometry.length;
        // A restart batch reads the same `(stream, position)` segment in
        // one cohort; partitions are immutable during the session phase,
        // so the verification outcome can be memoized across the cohort
        // (wheel mode only — the reference oracle recomputes every read).
        let memo = (!self.reference_scan)
            .then_some(self.verify_memo)
            .flatten()
            .filter(|&(s, p, _)| s == stream_id && p == position)
            .map(|(_, _, ok)| ok);
        let verified = match memo {
            Some(ok) => ok,
            None => {
                let stream = self.streams.live(stream_id);
                match stream.partition.get(position) {
                    Some(seg) => {
                        let ok = verify_segment(seg);
                        if !self.reference_scan {
                            self.verify_memo = Some((stream_id, position, ok));
                        }
                        ok
                    }
                    None if self.fault_mode => {
                        // Under faults an uncovered position has two honest
                        // outcomes instead of a panic: the stream has not yet
                        // produced the segment (disk slowdown — stall with it),
                        // or the window moved past us (degraded re-wait).
                        let ahead = stream
                            .partition
                            .front_index()
                            .is_none_or(|front| position > front);
                        if ahead {
                            self.metrics.runtime.stall_minutes += 1.0;
                        } else {
                            self.enter_degraded(t, idx);
                        }
                        return;
                    }
                    None => {
                        // vod-lint: allow(no-panic) — without injected faults an
                        // underrun means the enrollment invariant is broken; serving
                        // a wrong segment silently would corrupt the data path, so
                        // abort loudly.
                        panic!(
                            "buffer underrun: session at {position} not covered by \
                             partition [{:?}, {:?}] (enrollment invariant broken)",
                            stream.partition.tail_index(),
                            stream.partition.front_index()
                        )
                    }
                }
            }
        };
        let sess = self.sessions.live_at_mut(idx);
        sess.stats.from_buffer += 1;
        if !verified {
            sess.stats.verify_failures += 1;
            self.metrics.verify_failures += 1;
        }
        self.metrics.runtime.buffer_minutes += 1.0;
        sess.position += 1;
        if sess.position >= length {
            self.finish_session(t, idx);
        }
    }

    /// Consume via the session's dedicated lease; piggyback toward the
    /// preceding partition when enabled.
    fn consume_dedicated(&mut self, t: u64, idx: usize) {
        if self.disk_stalled(t) {
            self.metrics.runtime.stall_minutes += 1.0;
            return;
        }
        let length = {
            let sess = self.sessions.live_at(idx);
            self.config.movies[sess.movie_idx].geometry.length
        };
        self.read_via_lease(idx);
        // Optional piggyback catch-up segment.
        if let Some(pb) = self.config.piggyback {
            let due = {
                let sess = self.sessions.live_at_mut(idx);
                sess.piggyback_phase += 1;
                sess.piggyback_phase >= pb.catchup_period
                    && sess.position < length
                    && matches!(sess.state, SessionState::Dedicated)
            };
            if due {
                let sess = self.sessions.live_at_mut(idx);
                sess.piggyback_phase = 0;
                self.read_via_lease(idx);
            }
        }
        let (movie_idx, position) = {
            let sess = self.sessions.live_at(idx);
            (sess.movie_idx, sess.position)
        };
        if position >= length {
            self.finish_session(t, idx);
            return;
        }
        // Merge back if a window now covers us (piggyback payoff).
        if let Some(stream) = self.joinable_stream(movie_idx, position) {
            let lease = self.sessions.live_at_mut(idx).lease.take();
            if let Some(lease) = lease {
                self.release_vcr_lease(lease);
                self.metrics.piggyback_merges += 1;
            }
            self.sessions.live_at_mut(idx).state = SessionState::Enrolled { stream };
            self.streams.live_mut(stream.0).enrolled += 1;
        }
    }

    /// Read `position` via the session's own lease and advance.
    fn read_via_lease(&mut self, idx: usize) {
        let (movie, position) = {
            let sess = self.sessions.live_at(idx);
            (self.config.movies[sess.movie_idx].movie, sess.position)
        };
        let seg = {
            let sess = self.sessions.live_at(idx);
            let lease = sess
                .lease
                .as_ref()
                // vod-lint: allow(no-panic) — Dedicated/VcrActive states imply a
                // held lease; the state machine never drops one while reading.
                .expect("dedicated session holds a lease");
            self.disk
                .read(lease, movie, position)
                // vod-lint: allow(no-panic) — callers check position < length
                // before every dedicated read.
                .expect("dedicated read in range")
        };
        let ok = verify_segment(&seg);
        let sess = self.sessions.live_at_mut(idx);
        sess.stats.from_disk += 1;
        if !ok {
            sess.stats.verify_failures += 1;
            self.metrics.verify_failures += 1;
        }
        self.metrics.runtime.disk_minutes += 1.0;
        sess.position += 1;
    }

    fn sweep_forward(&mut self, t: u64, idx: usize) {
        if self.disk_stalled(t) {
            self.metrics.runtime.stall_minutes += 1.0;
            return;
        }
        let length = {
            let sess = self.sessions.live_at(idx);
            self.config.movies[sess.movie_idx].geometry.length
        };
        let steps = {
            let sess = self.sessions.live_at_mut(idx);
            let SessionState::VcrActive { remaining, .. } = &mut sess.state else {
                unreachable!("caller checked state")
            };
            let steps = (*remaining).min(self.config.vcr_rate);
            *remaining -= steps;
            steps
        };
        for _ in 0..steps {
            self.read_via_lease(idx);
        }
        let sess = self.sessions.live_at_mut(idx);
        if sess.position >= length {
            // FF ran to the end: the viewing is over (the model's P(end)).
            // Counted as a hit, matching the simulator's default
            // `count_ff_end_as_hit` convention.
            self.metrics.runtime.ff_end += 1;
            self.metrics
                .runtime
                .record_resume(VcrKind::FastForward, true);
            self.finish_session(t, idx);
            return;
        }
        if matches!(sess.state, SessionState::VcrActive { remaining: 0, .. }) {
            self.resume(t, idx, true, VcrKind::FastForward);
        }
    }

    fn sweep_backward(&mut self, t: u64, idx: usize) {
        if self.disk_stalled(t) {
            self.metrics.runtime.stall_minutes += 1.0;
            return;
        }
        let steps = {
            let sess = self.sessions.live_at_mut(idx);
            let SessionState::VcrActive { remaining, .. } = &mut sess.state else {
                unreachable!("caller checked state")
            };
            let steps = (*remaining).min(self.config.vcr_rate).min(sess.position);
            // Both differences clamp at zero: `steps` is bounded by both
            // operands today, but a rewind past the start must never wrap
            // the residual sweep into billions of segments.
            *remaining = remaining
                .saturating_sub(steps)
                .min(sess.position.saturating_sub(steps));
            steps
        };
        // Rewind with viewing displays segments in reverse order; each is
        // read through the dedicated lease.
        for _ in 0..steps {
            let (movie, target) = {
                let sess = self.sessions.live_at(idx);
                (self.config.movies[sess.movie_idx].movie, sess.position - 1)
            };
            let seg = {
                let sess = self.sessions.live_at(idx);
                let lease = sess
                    .lease
                    .as_ref()
                    // vod-lint: allow(no-panic) — a rewinding session acquired its
                    // lease in request_vcr and keeps it until resume.
                    .expect("rewinding session holds a lease");
                // vod-lint: allow(no-panic) — target < position ≤ length bounds the read.
                self.disk.read(lease, movie, target).expect("in range")
            };
            let ok = verify_segment(&seg);
            let sess = self.sessions.live_at_mut(idx);
            sess.stats.from_disk += 1;
            if !ok {
                sess.stats.verify_failures += 1;
                self.metrics.verify_failures += 1;
            }
            self.metrics.runtime.disk_minutes += 1.0;
            sess.position -= 1;
        }
        let sess = self.sessions.live_at_mut(idx);
        let done = matches!(sess.state, SessionState::VcrActive { remaining: 0, .. })
            || sess.position == 0;
        if done {
            self.resume(t, idx, true, VcrKind::Rewind);
        }
    }

    fn pause_countdown(&mut self, t: u64, idx: usize) {
        let resume_now = {
            let sess = self.sessions.live_at_mut(idx);
            let SessionState::VcrActive { remaining, .. } = &mut sess.state else {
                unreachable!("caller checked state")
            };
            if *remaining == 0 {
                // The full pause elapsed on previous ticks; resume now so
                // a pause of d minutes really shifts the pattern by d.
                true
            } else {
                *remaining -= 1;
                false
            }
        };
        if resume_now {
            self.resume(t, idx, false, VcrKind::Pause);
        }
    }

    /// Resume to normal playback: join a covering partition (hit) or fall
    /// back to a dedicated stream (miss). The classification itself —
    /// covered ⇒ hit — is [`ResumeClass::classify`], shared with the
    /// simulator; the window probe is the live-stream join rule.
    fn resume(&mut self, _t: u64, idx: usize, holds_lease: bool, kind: VcrKind) {
        let (movie_idx, position) = {
            let sess = self.sessions.live_at(idx);
            (sess.movie_idx, sess.position)
        };
        let joinable = self.joinable_stream(movie_idx, position);
        let class = ResumeClass::classify(joinable.is_some());
        self.metrics.runtime.record_resume(kind, class.is_hit());
        if let Some(stream) = joinable {
            let lease = self.sessions.live_at_mut(idx).lease.take();
            if let Some(lease) = lease {
                self.release_vcr_lease(lease);
            }
            self.sessions.live_at_mut(idx).state = SessionState::Enrolled { stream };
            self.streams.live_mut(stream.0).enrolled += 1;
            return;
        }
        // Miss: continue on a dedicated stream.
        if holds_lease {
            let sess = self.sessions.live_at_mut(idx);
            debug_assert!(sess.lease.is_some());
            sess.state = SessionState::Dedicated;
            sess.piggyback_phase = 0;
            return;
        }
        // Paused viewer resuming on a miss must acquire a stream now; if
        // none is free the resume is starved: the session stays paused and
        // retries next tick (recovery policy — the simulator instead drops
        // the viewer; the *event* counted is the same).
        match self.try_vcr_lease() {
            Some(lease) => {
                let sess = self.sessions.live_at_mut(idx);
                sess.lease = Some(lease);
                sess.state = SessionState::Dedicated;
                sess.piggyback_phase = 0;
            }
            None => {
                self.metrics.runtime.resume_starved += 1;
                let sess = self.sessions.live_at_mut(idx);
                sess.state = SessionState::VcrActive {
                    kind: VcrKind::Pause,
                    remaining: 1,
                };
            }
        }
    }

    /// Any live stream of `movie_idx` a session at `position` can join —
    /// [`QuantizedGeometry::stream_join_covers`] applied to each live
    /// partition's actual `(front, filled)` state, in slot order.
    fn joinable_stream(&self, movie_idx: usize, position: u32) -> Option<StreamId> {
        let geometry = self.config.movies[movie_idx].geometry;
        self.streams
            .iter()
            .find(|(_, s)| {
                s.movie_idx == movie_idx
                    && s.partition.front_index().is_some_and(|front| {
                        geometry.stream_join_covers(front, s.partition.len() as u32, position)
                    })
            })
            .map(|(id, _)| StreamId(id))
    }

    fn finish_session(&mut self, _t: u64, idx: usize) {
        let sess = self.sessions.live_at_mut(idx);
        if let SessionState::Enrolled { stream } = sess.state {
            if let Some(s) = self.streams.get_mut(stream.0) {
                s.enrolled -= 1;
            }
        }
        let lease = sess.lease.take();
        if let Some(lease) = lease {
            self.release_vcr_lease(lease);
        }
        self.sessions.live_at_mut(idx).state = SessionState::Done;
        self.metrics.sessions_done += 1;
    }
}
