//! Server-wide counters.

use vod_runtime::RuntimeMetrics;
use vod_workload::TimeWeighted;

/// Aggregated server metrics: the shared mechanism-level vocabulary
/// ([`RuntimeMetrics`] — identical in meaning to the simulator's) plus
/// counters only a byte-exact data path can produce.
#[derive(Debug)]
pub struct ServerMetrics {
    /// Shared mechanism counters (resume classifications, denials,
    /// starvation, service minutes). The occupancy fields
    /// (`dedicated_avg`/`dedicated_peak`) are filled by
    /// [`crate::VodServer::runtime_metrics`], which snapshots the live
    /// reserve; they stay 0 here.
    pub runtime: RuntimeMetrics,
    /// Byte-verification failures (must stay 0).
    pub verify_failures: u64,
    /// Playback (scheduled restart) streams in use over time.
    pub playback: TimeWeighted,
    /// Sessions completed.
    pub sessions_done: u64,
    /// Sessions closed early by the client.
    pub sessions_closed_early: u64,
    /// Dedicated streams released by piggyback merges.
    pub piggyback_merges: u64,
    /// Disk leases revoked out from under their holders by injected
    /// stream-loss faults (0 in fault-free runs, like the three below).
    pub leases_revoked: u64,
    /// Partitions evicted to clear a buffer-shrink overcommit.
    pub partitions_evicted: u64,
    /// FF/RW sweeps aborted mid-flight because their lease was revoked.
    pub sweeps_aborted: u64,
    /// New VCR phase-1 grants refused by the starvation policy (degraded
    /// sessions or failed streams present), over and above the reserve's
    /// ordinary Erlang-loss denials.
    pub vcr_denied_degraded: u64,
}

impl ServerMetrics {
    pub(crate) fn new() -> Self {
        Self {
            runtime: RuntimeMetrics::new(),
            verify_failures: 0,
            playback: TimeWeighted::new(0.0, 0.0),
            sessions_done: 0,
            sessions_closed_early: 0,
            piggyback_merges: 0,
            leases_revoked: 0,
            partitions_evicted: 0,
            sweeps_aborted: 0,
            vcr_denied_degraded: 0,
        }
    }

    /// Fraction of all delivered segments served from memory.
    pub fn buffer_service_fraction(&self) -> f64 {
        self.runtime.buffer_service_fraction()
    }
}
