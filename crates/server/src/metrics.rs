//! Server-wide counters.

use vod_workload::{Ratio, TimeWeighted};

/// Aggregated server metrics.
#[derive(Debug)]
pub struct ServerMetrics {
    /// Segments served from buffer partitions.
    pub buffer_segments: u64,
    /// Segments served from dedicated disk streams.
    pub disk_segments: u64,
    /// Byte-verification failures (must stay 0).
    pub verify_failures: u64,
    /// VCR resume outcomes.
    pub resume_hits: Ratio,
    /// VCR requests denied for lack of a free disk stream.
    pub vcr_denied: u64,
    /// Scheduled restarts that could not acquire a disk stream (a
    /// correctly sized server never sees one).
    pub restart_failures: u64,
    /// Dedicated streams in use over time.
    pub dedicated: TimeWeighted,
    /// Playback (scheduled restart) streams in use over time.
    pub playback: TimeWeighted,
    /// Sessions completed.
    pub sessions_done: u64,
    /// Sessions closed early by the client.
    pub sessions_closed_early: u64,
    /// Dedicated streams released by piggyback merges.
    pub piggyback_merges: u64,
}

impl ServerMetrics {
    pub(crate) fn new() -> Self {
        Self {
            buffer_segments: 0,
            disk_segments: 0,
            verify_failures: 0,
            resume_hits: Ratio::new(),
            vcr_denied: 0,
            restart_failures: 0,
            dedicated: TimeWeighted::new(0.0, 0.0),
            playback: TimeWeighted::new(0.0, 0.0),
            sessions_done: 0,
            sessions_closed_early: 0,
            piggyback_merges: 0,
        }
    }

    /// Fraction of all delivered segments served from memory.
    pub fn buffer_service_fraction(&self) -> f64 {
        let total = self.buffer_segments + self.disk_segments;
        if total == 0 {
            0.0
        } else {
            self.buffer_segments as f64 / total as f64
        }
    }
}
