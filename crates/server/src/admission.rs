//! Bridging the sizing model to server provisioning.
//!
//! `vod-sizing` answers *how many streams and buffer minutes each popular
//! movie should get*; this module turns such a [`ResourcePlan`] into a
//! runnable [`ServerConfig`], adding the VCR reserve the plan's hit
//! probability makes affordable.
//!
//! The produced config is the common currency of every
//! [`DeliveryBackend`](crate::DeliveryBackend): admission *policy*
//! (batch enrollment, boundary joins, FIFO stream grants) lives behind
//! the trait, but the provisioning envelope — hosted movies with their
//! `(T, b)` geometry, the stream pool, the buffer budget — is fixed
//! here, so `make_backend` comparisons hold the catalog and worst-case
//! startup promise constant while the delivery scheme varies.

use vod_sizing::ResourcePlan;

use crate::content::MovieId;
use crate::server::{HostedMovie, ServerConfig};

/// Size a VCR stream reserve from the plan: with hit probability `p_hit`
/// each VCR operation holds a dedicated stream only briefly, and (1 −
/// p_hit) of them hold it until the end of the movie. A crude Little's-law
/// bound on concurrent holds is
///
/// ```text
/// reserve ≈ ops_per_min · (E[phase1] + (1 − p_hit) · E[residual movie])
/// ```
///
/// The default helper uses the conservative per-movie worst hit
/// probability from the plan.
pub fn vcr_reserve_estimate(
    plan: &ResourcePlan,
    vcr_ops_per_minute: f64,
    mean_phase1_minutes: f64,
    mean_residual_minutes: f64,
) -> u32 {
    let worst_hit = plan
        .allocations
        .iter()
        .map(|a| a.p_hit)
        .fold(1.0f64, f64::min);
    let holds =
        vcr_ops_per_minute * (mean_phase1_minutes + (1.0 - worst_hit) * mean_residual_minutes);
    holds.ceil().max(1.0) as u32
}

/// Build a provisioned [`ServerConfig`] from a sizing plan.
///
/// `lengths[i]` is the movie length in minutes for `plan.allocations[i]`;
/// movies are assigned ids `0, 1, …` in plan order.
///
/// # Panics
/// Panics when `lengths` and the plan disagree in length — the two come
/// from the same catalog and diverging them is a programming error.
pub fn config_from_plan(plan: &ResourcePlan, lengths: &[u32], vcr_reserve: u32) -> ServerConfig {
    assert_eq!(
        plan.allocations.len(),
        lengths.len(),
        "one length per planned movie"
    );
    let movies = plan
        .allocations
        .iter()
        .zip(lengths)
        .enumerate()
        .map(|(i, (alloc, &len))| {
            HostedMovie::from_allocation(MovieId(i as u32), len, alloc.n_streams, alloc.buffer)
        })
        .collect();
    ServerConfig::provisioned(movies, vcr_reserve)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_sizing::MovieAllocation;

    fn plan() -> ResourcePlan {
        ResourcePlan {
            allocations: vec![
                MovieAllocation {
                    movie: "a".into(),
                    n_streams: 10,
                    buffer: 30.0,
                    p_hit: 0.6,
                },
                MovieAllocation {
                    movie: "b".into(),
                    n_streams: 5,
                    buffer: 20.0,
                    p_hit: 0.8,
                },
            ],
        }
    }

    #[test]
    fn reserve_scales_with_miss_rate() {
        let p = plan();
        let low = vcr_reserve_estimate(&p, 1.0, 3.0, 0.0);
        let high = vcr_reserve_estimate(&p, 1.0, 3.0, 60.0);
        assert!(high > low);
        // Worst hit probability is 0.6: residual term = 0.4 · 60 = 24.
        assert_eq!(high, (3.0f64 + 24.0).ceil() as u32);
    }

    #[test]
    fn config_mirrors_plan() {
        let p = plan();
        let cfg = config_from_plan(&p, &[120, 60], 8);
        assert_eq!(cfg.movies.len(), 2);
        assert_eq!(cfg.movies[0].geometry.restart_interval, 12); // 120/10
        assert_eq!(cfg.movies[0].geometry.partition_capacity, 3); // 30/10
        assert_eq!(cfg.movies[1].geometry.restart_interval, 12); // 60/5
        assert_eq!(cfg.movies[1].geometry.partition_capacity, 4); // 20/5
                                                                  // Provisioning covers every live stream plus the reserve.
        let need: u32 = cfg.movies.iter().map(|m| m.max_live_streams()).sum();
        assert_eq!(cfg.disk_streams, need + 8);
    }

    #[test]
    #[should_panic(expected = "one length per planned movie")]
    fn mismatched_lengths_panic() {
        config_from_plan(&plan(), &[120], 1);
    }
}
