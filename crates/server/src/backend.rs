//! The [`DeliveryBackend`] trait: the seam between workload drivers and
//! delivery schemes.
//!
//! The harness/chaos driver, the fault plans, and the workload scripts
//! only ever need a small surface from a server: open sessions, issue
//! VCR operations, advance virtual time, and read the shared
//! [`RuntimeMetrics`] vocabulary. This trait is that surface. The
//! incumbent batching+buffering [`VodServer`] implements it by
//! delegation (provably behavior-preserving — the `backend_equivalence`
//! suite pins `run_harness` through the trait against the inherent API
//! bitwise), and the two comparison backends implement it natively:
//! [`PyramidServer`](crate::PyramidServer) (fast broadcasting) and
//! [`DedicatedServer`](crate::DedicatedServer) (pure unicast).
//!
//! What each backend owns behind the trait: admission shaping (batch
//! enrollment vs. boundary join vs. immediate grant), restart/segment
//! scheduling on the `TimerWheel`, per-tick buffer occupancy, and the
//! mapping of its internal states onto the shared [`SessionStatus`] and
//! metrics vocabulary. See DESIGN.md §12 for the full contract.

use vod_runtime::{BackendKind, DegradePolicy, FaultPlan, RuntimeMetrics};
use vod_workload::{VcrKind, Welford};

use crate::content::MovieId;
use crate::dedicated::DedicatedServer;
use crate::pyramid::PyramidServer;
use crate::server::{ServerConfig, ServerError, VodServer};
use crate::session::{SessionId, SessionStatus};

/// How a backend re-admitted a displaced session
/// ([`DeliveryBackend::adopt_session`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adoption {
    /// Joined an existing batch/broadcast cohort whose window covers the
    /// session's position — free, no dedicated resources consumed.
    CohortJoin,
    /// Granted a dedicated stream from the backend's reserve (cross-shard
    /// borrowing when the front tier drives the adoption).
    DedicatedStream,
}

/// A delivery scheme a workload driver can run sessions against.
///
/// Contract (every implementor, pinned by the equivalence and proptest
/// suites):
///
/// * **Determinism** — same construction + same call sequence ⇒
///   bitwise-identical metrics and statuses. No wall clock, no ambient
///   randomness.
/// * **Liveness** — `open_session` on a hosted movie always succeeds;
///   backends that cannot start playback immediately queue the session
///   (status [`SessionStatus::Waiting`]) rather than erroring.
/// * **Accounting** — `runtime_metrics` uses each counter with the
///   exact meaning documented on [`RuntimeMetrics`]; `startup_waits`
///   gets one sample per opened session (minutes from open to scheduled
///   playback start; samples for still-queued sessions may be recorded
///   at start time).
/// * **Conservation** — `check_invariants` returns human-readable
///   violations of the backend's resource-conservation laws; it must be
///   a pure read, cheap enough to run after every tick.
pub trait DeliveryBackend {
    /// Which scheme this is (names the row in comparison reports).
    fn kind(&self) -> BackendKind;

    /// Current virtual time in minutes.
    fn now(&self) -> u64;

    /// Open a session for `movie`; queues if playback cannot start now.
    fn open_session(&mut self, movie: MovieId) -> Result<SessionId, ServerError>;

    /// Issue a VCR operation on a playing session (`magnitude` = minutes
    /// swept for FF/RW, pause duration for Pause).
    fn request_vcr(
        &mut self,
        id: SessionId,
        kind: VcrKind,
        magnitude: u32,
    ) -> Result<(), ServerError>;

    /// Current session status in the shared vocabulary.
    fn session_status(&self, id: SessionId) -> Result<SessionStatus, ServerError>;

    /// Playback position (whole minutes consumed) of a session. Valid
    /// for any live or finished session; the federation front tier
    /// snapshots it when draining a shard marked for outage.
    fn session_position(&self, id: SessionId) -> Result<u32, ServerError>;

    /// Adopt a session displaced from another shard, resuming `movie` at
    /// `position`. Unlike `open_session` this is a migration, not an
    /// admission: no startup-wait sample is recorded, and the backend
    /// must either place the session immediately (join a cohort whose
    /// window covers `position`, or grant a dedicated stream) or refuse
    /// with [`ServerError::VcrDenied`] so the caller's failover ledger
    /// can back off and retry. `position` past the movie end is an
    /// [`ServerError::InvalidState`]; a backend whose delivery scheme
    /// cannot start mid-movie may refuse every call.
    fn adopt_session(
        &mut self,
        movie: MovieId,
        position: u32,
    ) -> Result<(SessionId, Adoption), ServerError>;

    /// Advance one virtual minute.
    fn tick(&mut self);

    /// Reset counters and re-baseline occupancy statistics (end of
    /// warm-up).
    fn reset_metrics(&mut self);

    /// Snapshot of the shared mechanism counters.
    fn runtime_metrics(&self) -> RuntimeMetrics;

    /// Startup-wait samples since the last reset (one per session whose
    /// playback start has been scheduled).
    fn startup_waits(&self) -> &Welford;

    /// Arm a deterministic fault schedule and degradation policy. An
    /// empty plan must leave behavior bitwise identical to a never-armed
    /// backend.
    fn inject_faults(&mut self, plan: FaultPlan, policy: DegradePolicy);

    /// Conservation-invariant violations (empty when healthy).
    fn check_invariants(&self) -> Vec<String>;

    /// Sessions currently in a degraded/starved re-wait state.
    fn degraded_sessions(&self) -> u32;

    /// Sessions that reached `Done` (finished or closed early).
    fn sessions_finished(&self) -> u64;

    /// Byte-verification failures on the delivery path (must stay 0).
    fn verify_failures(&self) -> u64;

    /// Provisioned I/O streams `Σn` — the stream term of the cost model
    /// `C = C_n(φΣB + Σn)`.
    fn io_streams(&self) -> u32;

    /// Provisioned server-side buffer `ΣB` in segments — the buffer term
    /// of the cost model.
    fn buffer_segments(&self) -> u64;
}

impl DeliveryBackend for VodServer {
    fn kind(&self) -> BackendKind {
        BackendKind::BatchingBuffering
    }

    fn now(&self) -> u64 {
        VodServer::now(self)
    }

    fn open_session(&mut self, movie: MovieId) -> Result<SessionId, ServerError> {
        VodServer::open_session(self, movie)
    }

    fn request_vcr(
        &mut self,
        id: SessionId,
        kind: VcrKind,
        magnitude: u32,
    ) -> Result<(), ServerError> {
        VodServer::request_vcr(self, id, kind, magnitude)
    }

    fn session_status(&self, id: SessionId) -> Result<SessionStatus, ServerError> {
        VodServer::session_status(self, id)
    }

    fn session_position(&self, id: SessionId) -> Result<u32, ServerError> {
        VodServer::session_position(self, id)
    }

    fn adopt_session(
        &mut self,
        movie: MovieId,
        position: u32,
    ) -> Result<(SessionId, Adoption), ServerError> {
        VodServer::adopt_session(self, movie, position)
    }

    fn tick(&mut self) {
        VodServer::tick(self)
    }

    fn reset_metrics(&mut self) {
        VodServer::reset_metrics(self)
    }

    fn runtime_metrics(&self) -> RuntimeMetrics {
        VodServer::runtime_metrics(self)
    }

    fn startup_waits(&self) -> &Welford {
        VodServer::startup_waits(self)
    }

    fn inject_faults(&mut self, plan: FaultPlan, policy: DegradePolicy) {
        VodServer::inject_faults(self, plan, policy)
    }

    fn check_invariants(&self) -> Vec<String> {
        VodServer::check_invariants(self)
    }

    fn degraded_sessions(&self) -> u32 {
        VodServer::degraded_sessions(self)
    }

    fn sessions_finished(&self) -> u64 {
        self.metrics().sessions_done + self.metrics().sessions_closed_early
    }

    fn verify_failures(&self) -> u64 {
        self.metrics().verify_failures
    }

    fn io_streams(&self) -> u32 {
        self.config().disk_streams
    }

    fn buffer_segments(&self) -> u64 {
        self.config().buffer_budget as u64
    }
}

/// Build the backend of `kind` from one shared [`ServerConfig`]. The
/// config is the batching scheme's vocabulary (movies with quantized
/// `(T, b)` geometry, a disk-stream pool, a buffer budget); the other
/// backends re-derive their own provisioning from it so a comparison
/// holds the hosted catalog and the promised worst-case startup wait
/// fixed while the delivery scheme varies:
///
/// * `BatchingBuffering` — the config verbatim.
/// * `PyramidBroadcast` — per movie, the smallest channel count whose
///   segment-1 period ≤ the movie's batching `max_wait`; buffer shrinks
///   to one staging segment per channel.
/// * `DedicatedStream` — the same disk-stream pool, zero buffer; every
///   session needs its own stream.
pub fn make_backend(kind: BackendKind, config: &ServerConfig) -> Box<dyn DeliveryBackend> {
    match kind {
        BackendKind::BatchingBuffering => Box::new(VodServer::new(config.clone())),
        BackendKind::PyramidBroadcast => Box::new(PyramidServer::new(config.clone())),
        BackendKind::DedicatedStream => Box::new(DedicatedServer::new(config.clone())),
    }
}
