//! Viewer sessions: state machine types.
//!
//! The server (`crate::server`) drives these states tick by tick. Time is
//! integer minutes; one tick displays one segment at normal playback.
//!
//! ```text
//! Waiting ──restart──▶ Enrolled(stream) ──VCR──▶ VcrActive ──resume hit──▶ Enrolled
//!                         │                        │
//!                         │                        └─resume miss──▶ Dedicated ──piggyback──▶ Enrolled
//!                         └──────────── end of movie ──▶ Done
//!
//! Enrolled/Dedicated/VcrActive ──fault (lost stream or partition)──▶ Degraded
//!     Degraded ──window rejoin──▶ Enrolled      (bounded re-wait, the free path)
//!     Degraded ──retry granted──▶ Dedicated     (backoff, stops at the timeout)
//! ```
//!
//! `Degraded` only arises under an injected [`vod_runtime::FaultPlan`];
//! a fault-free run never constructs it, so pre-fault behavior is
//! bitwise unchanged.

use vod_runtime::ArenaId;
use vod_workload::VcrKind;

/// Session identifier: a generational handle into the server's session
/// arena. Ids stay valid (and queryable) after the session finishes —
/// session slots are never reused — but a fabricated or foreign id
/// safely fails to resolve instead of aliasing another session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub ArenaId);

/// Identifier of an active stream within the server: a generational
/// handle into the stream arena. Stream slots *are* reused as streams
/// retire, so a stale `StreamId` held across a retirement resolves to
/// `None` rather than the slot's new occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub ArenaId);

/// Where a session currently gets its frames.
#[derive(Debug)]
pub enum SessionState {
    /// Queued for the next restart of the movie (type-1 viewer).
    Waiting {
        /// Tick at which the session will start.
        start_at: u64,
    },
    /// Reading from a stream's buffer partition (type-2 viewer or a
    /// post-resume hit).
    Enrolled {
        /// The stream whose partition serves this session.
        stream: StreamId,
    },
    /// Holding a dedicated disk stream (post-miss playback, possibly
    /// piggybacking its way back into a partition).
    Dedicated,
    /// Mid-VCR operation.
    VcrActive {
        /// Operation kind.
        kind: VcrKind,
        /// Segments still to sweep (FF/RW) or ticks still to wait (PAU).
        remaining: u32,
    },
    /// Lost its stream or partition to an injected fault; re-queued with
    /// bounded re-wait. Each tick the server first tries a free batch
    /// rejoin (a live window covering the position), then — once past the
    /// policy's re-wait bound — retries dedicated-stream acquisition with
    /// exponential backoff until the retry timeout, after which the
    /// session falls back to pure batch admission. Playback position is
    /// preserved; the viewer is never dropped.
    Degraded {
        /// Tick at which degradation began.
        since: u64,
        /// Next tick a dedicated-stream retry is allowed.
        next_retry: u64,
        /// Current backoff in ticks (doubles per refusal, capped).
        backoff: u64,
        /// Dedicated-stream denials accumulated while degraded, awaiting
        /// transient/permanent classification at recovery or timeout.
        pending_denials: u64,
        /// Retries stopped (timeout hit); only batch rejoin remains.
        retries_exhausted: bool,
    },
    /// Finished (reached the end of the movie).
    Done,
}

/// Per-session delivery accounting; the integration tests assert
/// `verify_failures == 0` — the data path must deliver byte-exact
/// segments no matter which source served them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Segments served from a buffer partition.
    pub from_buffer: u64,
    /// Segments served from a dedicated disk stream.
    pub from_disk: u64,
    /// Segments whose bytes did not match the canonical content.
    pub verify_failures: u64,
}

impl DeliveryStats {
    /// All segments delivered.
    pub fn total(&self) -> u64 {
        self.from_buffer + self.from_disk
    }
}

/// Public status snapshot of a session.
///
/// This is the *shared* vocabulary every
/// [`DeliveryBackend`](crate::DeliveryBackend) maps its internal states
/// onto, so the workload driver stays scheme-agnostic: batching reads
/// `Waiting` as "queued for the next restart", pyramid as "parked until
/// the next segment-1 boundary", dedicated as "queued for a free
/// stream"; `Shared` covers both partition playback and broadcast
/// reception; `Dedicated` covers a private stream, whether primary
/// (unicast baseline) or a catch-up beyond the broadcast front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Waiting for a scheduled playback start (tick at which it starts).
    Waiting(u64),
    /// Playing from a shared resource (partition or broadcast channel).
    Shared,
    /// Playing from a dedicated stream.
    Dedicated,
    /// Mid-VCR operation.
    InVcr,
    /// Re-queued after a fault took its stream or partition (degraded
    /// re-wait; playback resumes via window rejoin or a granted retry).
    Degraded,
    /// Completed.
    Done,
}
