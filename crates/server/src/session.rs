//! Viewer sessions: state machine types.
//!
//! The server (`crate::server`) drives these states tick by tick. Time is
//! integer minutes; one tick displays one segment at normal playback.
//!
//! ```text
//! Waiting ──restart──▶ Enrolled(stream) ──VCR──▶ VcrActive ──resume hit──▶ Enrolled
//!                         │                        │
//!                         │                        └─resume miss──▶ Dedicated ──piggyback──▶ Enrolled
//!                         └──────────── end of movie ──▶ Done
//! ```

use vod_workload::VcrKind;

/// Session identifier (index into the server's session table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub usize);

/// Identifier of an active stream within the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub usize);

/// Where a session currently gets its frames.
#[derive(Debug)]
pub enum SessionState {
    /// Queued for the next restart of the movie (type-1 viewer).
    Waiting {
        /// Tick at which the session will start.
        start_at: u64,
    },
    /// Reading from a stream's buffer partition (type-2 viewer or a
    /// post-resume hit).
    Enrolled {
        /// The stream whose partition serves this session.
        stream: StreamId,
    },
    /// Holding a dedicated disk stream (post-miss playback, possibly
    /// piggybacking its way back into a partition).
    Dedicated,
    /// Mid-VCR operation.
    VcrActive {
        /// Operation kind.
        kind: VcrKind,
        /// Segments still to sweep (FF/RW) or ticks still to wait (PAU).
        remaining: u32,
    },
    /// Finished (reached the end of the movie).
    Done,
}

/// Per-session delivery accounting; the integration tests assert
/// `verify_failures == 0` — the data path must deliver byte-exact
/// segments no matter which source served them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Segments served from a buffer partition.
    pub from_buffer: u64,
    /// Segments served from a dedicated disk stream.
    pub from_disk: u64,
    /// Segments whose bytes did not match the canonical content.
    pub verify_failures: u64,
}

impl DeliveryStats {
    /// All segments delivered.
    pub fn total(&self) -> u64 {
        self.from_buffer + self.from_disk
    }
}

/// Public status snapshot of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Waiting for the next restart (tick at which it starts).
    Waiting(u64),
    /// Playing from a shared partition.
    Shared,
    /// Playing from a dedicated stream.
    Dedicated,
    /// Mid-VCR operation.
    InVcr,
    /// Completed.
    Done,
}
