//! # vod-server — virtual-time VOD server data path
//!
//! A functioning (virtual-time, byte-exact) implementation of the system
//! the paper analyzes: batching via periodic stream restarts (the paper's ref. \[5\]), static
//! partitioned buffering (ref. \[12\]), VCR service on dedicated streams, and
//! piggyback merge-back (ref. \[7\]) as the phase-2 fallback. Content is
//! deterministic synthetic video (see `content`), so every delivered
//! segment is verifiable — the data path checks itself.
//!
//! ```
//! use vod_server::{HostedMovie, MovieId, ServerConfig, VodServer};
//!
//! let movie = HostedMovie::from_allocation(MovieId(0), 120, 10, 60.0);
//! let mut server = VodServer::new(ServerConfig::provisioned(vec![movie], 4));
//! let session = server.open_session(MovieId(0)).unwrap();
//! server.run(130);
//! let stats = server.session_stats(session).unwrap();
//! assert_eq!(stats.verify_failures, 0);
//! assert_eq!(stats.total(), 120); // every segment delivered exactly once
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

mod admission;
mod backend;
mod buffer;
mod content;
mod dedicated;
mod disk;
mod harness;
mod metrics;
mod pyramid;
mod server;
mod session;

pub use admission::{config_from_plan, vcr_reserve_estimate};
pub use backend::{make_backend, Adoption, DeliveryBackend};
pub use buffer::{BroadcastSlot, BufferError, BufferPool, Partition};
pub use content::{checksum, generate_segment, verify_segment, MovieId, Segment, SEGMENT_BYTES};
pub use dedicated::DedicatedServer;
pub use disk::{DiskError, DiskSubsystem, StreamLease};
pub use harness::{
    run_chaos, run_chaos_backend, run_harness, run_harness_backend, run_scale, BackendRun,
    ChaosOutcome, HarnessConfig, ScaleConfig, ScaleOutcome,
};
#[doc(hidden)]
pub use harness::{run_chaos_reference, run_harness_reference};
pub use metrics::ServerMetrics;
pub use pyramid::PyramidServer;
pub use server::{HostedMovie, PiggybackConfig, ServerConfig, ServerError, VodServer};
pub use session::{DeliveryStats, SessionId, SessionState, SessionStatus, StreamId};
